//! Reference numbers transcribed from the paper, used by the experiment
//! harness to print paper-vs-measured comparisons.

/// Paper Table VII "Init. prob. %" column: the state distribution of every
/// model variable after parameter learning on 70 failed products.
pub fn init_percent(variable: &str) -> Option<&'static [f64]> {
    let dist: &'static [f64] = match variable {
        "vp1" => &[20.0, 59.9, 20.0, 0.1],
        "vp1x" => &[20.0, 20.0, 20.0, 20.0, 20.0],
        "vp2" => &[20.0, 59.9, 20.0, 0.1],
        "enb13_pin" | "enb4_pin" | "enbsw_pin" => &[20.0, 20.0, 20.0, 20.0, 20.0],
        "sw" => &[73.6, 9.09, 16.3, 1.00],
        "reg1" => &[80.2, 18.4, 1.20, 0.15],
        "reg2" => &[27.7, 51.6, 20.0, 0.66],
        "reg3" => &[89.9, 8.36, 1.55, 0.23],
        "reg4" => &[80.8, 13.1, 5.62, 0.48],
        "lcbg" => &[27.7, 57.7, 13.6, 0.90],
        "enbsw" => &[80.8, 19.2],
        "warnvpst" => &[53.3, 46.7],
        "enblSen" => &[35.7, 64.3],
        "vx" => &[17.5, 82.5],
        "hcbg" => &[41.4, 58.6],
        "enb4" => &[80.7, 19.3],
        "enb13" => &[77.0, 23.0],
        _ => return None,
    };
    Some(dist)
}

/// Paper Table VII: posterior fault-state mass (%) of each latent variable
/// for the five diagnostic cases, in order `[d1, d2, d3, d4, d5]`.
/// The fault states are `{0}` for the two-state latents and `{0, 2, 3}`
/// for `lcbg`.
pub fn latent_fault_percent(variable: &str) -> Option<[f64; 5]> {
    Some(match variable {
        "lcbg" => [1.81, 0.0, 10.354, 59.17, 0.0],
        "enbsw" => [83.7, 0.33, 99.3, 94.9, 93.5],
        "warnvpst" => [40.8, 0.0, 98.1, 94.8, 0.0],
        "enblSen" => [4.17, 0.78, 10.7, 53.6, 0.67],
        "vx" => [1.36, 0.76, 1.01, 1.04, 0.72],
        "hcbg" => [42.4, 7.31, 29.1, 66.4, 5.26],
        "enb4" => [85.3, 0.07, 99.4, 94.9, 0.07],
        "enb13" => [89.5, 97.7, 99.2, 93.1, 0.0],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::model::{LATENTS, VARIABLES};

    #[test]
    fn init_column_is_complete_and_near_normalised() {
        for v in VARIABLES {
            let dist = init_percent(v).unwrap_or_else(|| panic!("missing {v}"));
            let total: f64 = dist.iter().sum();
            assert!(
                (total - 100.0).abs() < 1.5,
                "{v} init column sums to {total}%"
            );
        }
        assert!(init_percent("ghost").is_none());
    }

    #[test]
    fn latent_reference_is_complete() {
        for v in LATENTS {
            assert!(latent_fault_percent(v).is_some(), "missing {v}");
        }
        assert!(latent_fault_percent("reg1").is_none());
    }
}
