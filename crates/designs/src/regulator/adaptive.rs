//! Closed-loop adaptive diagnosis on the regulator: the sequential
//! diagnoser picks the next output to measure inside a failing stimulus
//! suite, the on-demand virtual ATE answers it, and the loop stops when a
//! block is isolated — compared head-to-head against the fixed program
//! order on the paper's case studies and on sampled fault populations.

use crate::adaptive::{run_cross_suite, ClosedLoopReport, CrossSuiteOutcome, PopulationRun};
use crate::error::{Error, Result};
use crate::regulator::cases::CaseStudy;
use crate::regulator::program::{suite_plans, test_number, SuitePlan, CONTROL_VARS, OBSERVED_VARS};
use crate::regulator::{rig, synthesize};
use abbd_ate::{DeviceSession, NoiseModel, OnDemandTester};
use abbd_core::{
    Action, CostModel, DecisionTrace, DiagnosisSession, DiagnosticEngine, Outcome,
    SequentialOutcome, StoppingPolicy, Strategy,
};
use abbd_dlog2bbn::ModelSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Opens a session on the engine's shared compilation, seeded with a
/// suite's control states, candidates restricted to the suite's five
/// outputs.
fn seeded_session(
    engine: &DiagnosticEngine,
    controls: impl IntoIterator<Item = (&'static str, usize)>,
    policy: StoppingPolicy,
) -> Result<DiagnosisSession> {
    let mut d =
        DiagnosisSession::new(Arc::clone(engine.compiled()), policy).map_err(Error::Core)?;
    for (name, state) in controls {
        d.observe(name, state).map_err(Error::Core)?;
    }
    d.set_candidates(OBSERVED_VARS).map_err(Error::Core)?;
    Ok(d)
}

/// A measurement oracle answering from paper Table VI: the case study's
/// recorded observable states, with deviations from the suite's healthy
/// states marked failing.
fn table_vi_oracle<'c>(
    case: &'c CaseStudy,
    plan: &'c SuitePlan,
) -> impl FnMut(&Action) -> abbd_core::Result<Outcome> + 'c {
    move |action: &Action| {
        let name = action.target();
        let oi = OBSERVED_VARS
            .iter()
            .position(|v| *v == name)
            .ok_or_else(|| abbd_core::Error::Oracle {
                variable: name.into(),
                reason: "not one of the suite's outputs".into(),
            })?;
        let (_, state) = case.observables[oi];
        Ok(Outcome {
            state,
            failing: state != plan.healthy_states[oi],
        })
    }
}

/// The regulator's live-bench oracle: [`crate::adaptive::bench_oracle`]
/// over this suite's five outputs and test numbering.
fn bench_oracle<'s, 'd, 'a>(
    session: &'s mut DeviceSession<'d, 'a>,
    spec: &'s ModelSpec,
    suite_index: usize,
) -> impl FnMut(&Action) -> abbd_core::Result<Outcome> + use<'s, 'd, 'a> {
    crate::adaptive::bench_oracle(session, spec, &OBSERVED_VARS, move |oi| {
        test_number(suite_index, oi)
    })
}

fn plan_for(suite: &str) -> Result<(usize, SuitePlan)> {
    suite_plans()
        .into_iter()
        .enumerate()
        .find(|(_, p)| p.name == suite)
        .ok_or_else(|| Error::Pipeline(format!("unknown suite `{suite}`")))
}

/// Runs one Table VI case study adaptively: controls seeded, outputs
/// measured most-informative-first, stopping per `policy`.
///
/// # Errors
///
/// Propagates diagnosis errors.
pub fn adaptive_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
) -> Result<SequentialOutcome> {
    let (_, plan) = plan_for(case.suite)?;
    let mut d = seeded_session(engine, case.controls, policy)?;
    d.run(table_vi_oracle(case, &plan)).map_err(Error::Core)
}

/// The fixed-order baseline for [`adaptive_case_study`]: same seeding,
/// same stopping policy, outputs measured in ATE program order.
///
/// # Errors
///
/// Propagates diagnosis errors.
pub fn fixed_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
) -> Result<SequentialOutcome> {
    let (_, plan) = plan_for(case.suite)?;
    let mut d = seeded_session(engine, case.controls, policy)?;
    d.run_scripted(&OBSERVED_VARS, table_vi_oracle(case, &plan))
        .map_err(Error::Core)
}

/// The regulator's reference measurement prices, tester-seconds: the
/// four regulator outputs are quick DC reads with slightly different
/// settling (the switched output `sw` drives a power FET and settles
/// slowest), swapping stimulus suites costs a reconfiguration, and
/// physically probing an internal block in step two costs FIB/SEM time
/// three orders of magnitude above any electrical test.
pub fn reference_cost_model() -> CostModel {
    let mut cost = CostModel::new(1.0, 4.0, 900.0).expect("static prices are valid");
    cost.set_cost("reg1", 1.0).expect("static price");
    cost.set_cost("reg2", 1.2).expect("static price");
    cost.set_cost("reg3", 1.2).expect("static price");
    cost.set_cost("reg4", 1.5).expect("static price");
    cost.set_cost("sw", 2.0).expect("static price");
    cost
}

/// [`adaptive_case_study`] under an explicit [`Strategy`] and
/// [`CostModel`], returning the full [`DecisionTrace`] alongside the
/// outcome — the generator behind the golden-trace conformance corpus.
///
/// # Errors
///
/// Propagates strategy/diagnosis errors.
pub fn traced_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
    strategy: Strategy,
    cost: CostModel,
) -> Result<(SequentialOutcome, DecisionTrace)> {
    let (_, plan) = plan_for(case.suite)?;
    let mut d = seeded_session(engine, case.controls, policy)?;
    d.set_strategy(strategy).map_err(Error::Core)?;
    d.set_cost_model(cost).map_err(Error::Core)?;
    d.run_traced(table_vi_oracle(case, &plan))
        .map_err(Error::Core)
}

/// The latent blocks a step-two probe can land on, with their bench
/// nets: every regulator latent drives a `<name>_out` net in the
/// behavioural circuit, so "physically probe `hcbg`" means reading
/// `hcbg_out` under the applied stimulus.
fn probe_net_of(circuit: &abbd_blocks::Circuit, latent: &str) -> Result<abbd_blocks::NetId> {
    let net = format!("{}_out", latent.to_lowercase());
    circuit
        .find_net(&net)
        .ok_or_else(|| Error::Pipeline(format!("latent `{latent}` has no bench net `{net}`")))
}

/// The mixed-candidate measurement prices: the usual per-test
/// tester-seconds and suite-switch penalty of
/// [`reference_cost_model`], but probes priced as bench-needle
/// touchdowns on exposed pads (a few times a regulator read) rather
/// than FIB/SEM time — the regime where interleaving a probe into the
/// electrical test plan is economically on the table at all.
pub fn mixed_cost_model() -> CostModel {
    let mut cost = CostModel::new(1.0, 4.0, 3.0).expect("static prices are valid");
    cost.set_cost("reg1", 1.0).expect("static price");
    cost.set_cost("reg2", 1.2).expect("static price");
    cost.set_cost("reg3", 1.2).expect("static price");
    cost.set_cost("reg4", 1.5).expect("static price");
    cost.set_cost("sw", 2.0).expect("static price");
    cost
}

/// Runs one Table VI case study over the *mixed* candidate set: the
/// suite's five electrical tests **and** a bench-needle probe of every
/// latent block, ranked together in one loop. Tests and probes are both
/// answered by the virtual bench, which carries the case's injected
/// fault — the unified-session scenario the legacy two-phase flow
/// ([`two_phase_case_study`]) is compared against.
///
/// The loop interleaves on its own: while the remaining tests carry
/// information the cheap tests win, and the moment they stop paying
/// their way the decisive probe outranks them — *before* the test
/// program is exhausted, which a tests-then-probes flow structurally
/// cannot do.
///
/// # Errors
///
/// Propagates fabrication, strategy and diagnosis errors.
pub fn mixed_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
    strategy: Strategy,
    cost: CostModel,
) -> Result<(SequentialOutcome, DecisionTrace)> {
    let rig = rig();
    let tester = OnDemandTester::new(&rig.circuit, &rig.program).map_err(Error::Ate)?;
    let (si, _) = plan_for(case.suite)?;
    let device = injected_device(&rig.circuit, case)?;
    let mut bench = tester.session(&device, NoiseModel::none(), 7);
    let spec = rig.model.spec();

    let mut session = seeded_session(engine, case.controls, policy)?;
    session.set_strategy(strategy).map_err(Error::Core)?;
    session.set_cost_model(cost).map_err(Error::Core)?;
    let mut actions: Vec<Action> = OBSERVED_VARS.iter().map(|n| Action::test(*n)).collect();
    actions.extend(
        crate::regulator::model::LATENTS
            .iter()
            .map(|n| Action::probe(*n)),
    );
    session.set_actions(actions).map_err(Error::Core)?;

    let mut executor = crate::adaptive::BenchExecutor::new(&mut bench, spec);
    for (oi, name) in OBSERVED_VARS.iter().enumerate() {
        executor = executor.map_test(*name, test_number(si, oi));
    }
    for latent in crate::regulator::model::LATENTS {
        executor = executor.map_probe(latent, probe_net_of(&rig.circuit, latent)?);
    }
    session.run_traced(executor).map_err(Error::Core)
}

/// The legacy step-one/step-two flow over the same bench, same fault,
/// same prices: run the suite's electrical tests to completion first
/// (probes are not in the menu), then — only once the test program has
/// nothing left — open the probe phase on the same evidence. Returns
/// `(step one, step two)`.
///
/// # Errors
///
/// Same as [`mixed_case_study`].
pub fn two_phase_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
    strategy: Strategy,
    cost: CostModel,
) -> Result<(SequentialOutcome, SequentialOutcome)> {
    let rig = rig();
    let tester = OnDemandTester::new(&rig.circuit, &rig.program).map_err(Error::Ate)?;
    let (si, _) = plan_for(case.suite)?;
    let device = injected_device(&rig.circuit, case)?;
    let mut bench = tester.session(&device, NoiseModel::none(), 7);
    let spec = rig.model.spec();

    let mut session = seeded_session(engine, case.controls, policy)?;
    session.set_strategy(strategy).map_err(Error::Core)?;
    session.set_cost_model(cost).map_err(Error::Core)?;

    // Step one: electrical tests only.
    let mut executor = crate::adaptive::BenchExecutor::new(&mut bench, spec);
    for (oi, name) in OBSERVED_VARS.iter().enumerate() {
        executor = executor.map_test(*name, test_number(si, oi));
    }
    let step_one = session.run(executor).map_err(Error::Core)?;

    // Step two: the probe menu opens only now, on the same evidence.
    let remaining: Vec<Action> = crate::regulator::model::LATENTS
        .iter()
        .filter(|latent| session.observation().state_of(latent).is_none())
        .map(|n| Action::probe(*n))
        .collect();
    session.set_actions(remaining).map_err(Error::Core)?;
    let mut executor = crate::adaptive::BenchExecutor::new(&mut bench, spec);
    for latent in crate::regulator::model::LATENTS {
        executor = executor.map_probe(latent, probe_net_of(&rig.circuit, latent)?);
    }
    let step_two = session.run(executor).map_err(Error::Core)?;
    Ok((step_one, step_two))
}

/// A golden device carrying exactly the case study's injected fault.
fn injected_device(
    circuit: &abbd_blocks::Circuit,
    case: &CaseStudy,
) -> Result<abbd_blocks::Device> {
    let (block, mode) = &case.injected;
    let block = circuit
        .require_block(block)
        .map_err(|e| Error::Pipeline(e.to_string()))?;
    let mut device = abbd_blocks::Device::golden(circuit);
    device.id = 990;
    device.faults = abbd_blocks::DeviceFaults::single(abbd_blocks::Fault::new(block, *mode));
    Ok(device)
}

/// One device of the cross-suite population scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSuiteReport {
    /// Device serial number.
    pub device_id: u64,
    /// Ground-truth `block:mode` fault tags (scoring only).
    pub truth: Vec<String>,
    /// The failing suites the loop could measure under, in the order
    /// the full-program log first showed them failing.
    pub suites: Vec<String>,
    /// The cross-suite closed-loop result.
    pub outcome: CrossSuiteOutcome,
    /// Distinct operating points the bench solved
    /// ([`DeviceSession::suites_touched`]).
    pub suites_touched: usize,
    /// Stimulus swaps the bench actually performed
    /// ([`DeviceSession::stimulus_switches`]) — equals the driver's
    /// count, asserted by the scenario tests.
    pub bench_switches: usize,
}

impl CrossSuiteReport {
    /// `true` when the loop's top candidate names a block that is
    /// actually faulty on the device.
    pub fn hit(&self) -> bool {
        self.outcome.top_candidate.as_deref().is_some_and(|top| {
            self.truth
                .iter()
                .any(|tag| tag.split(':').next() == Some(top))
        })
    }
}

/// Population totals of a cross-suite scenario under one strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSuiteSummary {
    /// The strategy the scenario ran under.
    pub strategy: Strategy,
    /// Number of devices.
    pub devices: usize,
    /// Total measurements spent.
    pub tests: usize,
    /// Total stimulus-suite switches across the population.
    pub stimulus_switches: usize,
    /// Total distinct operating points solved.
    pub suites_touched: usize,
    /// Runs that ended with an isolated fault.
    pub isolated: usize,
    /// Runs whose top candidate matched an injected fault.
    pub hits: usize,
    /// Total measurement cost, tester-seconds.
    pub tester_seconds: f64,
}

/// Aggregates one strategy's cross-suite reports.
pub fn summarize_cross_suite(
    strategy: Strategy,
    reports: &[CrossSuiteReport],
) -> CrossSuiteSummary {
    CrossSuiteSummary {
        strategy,
        devices: reports.len(),
        tests: reports.iter().map(|r| r.outcome.tests_used()).sum(),
        stimulus_switches: reports.iter().map(|r| r.outcome.stimulus_switches).sum(),
        suites_touched: reports.iter().map(|r| r.suites_touched).sum(),
        isolated: reports.iter().filter(|r| r.outcome.isolated).count(),
        hits: reports.iter().filter(|r| r.hit()).count(),
        tester_seconds: reports.iter().map(|r| r.outcome.tester_seconds).sum(),
    }
}

/// Cross-suite closed-loop scenario over a sampled fault population: for
/// each fabricated failing regulator, every suite its full-program log
/// fails under becomes a seeded diagnosis context, and the
/// [`run_cross_suite`] driver arbitrates which `(suite, output)` to
/// measure next under `strategy`, executing through one shared on-demand
/// bench session per device (so suite switches are physically counted by
/// the session too). Deterministic for a fixed `seed`.
///
/// This is the scenario where measurement *economics* show: a cost-blind
/// myopic loop ping-pongs between near-tied twin tests of different
/// suites, while [`Strategy::CostWeighted`] finishes a suite before
/// paying the reconfiguration penalty for the next.
///
/// Devices whose bench session produces a reading the model spec cannot
/// bin (e.g. NaN from a non-converged operating point) are skipped — the
/// sequential counterpart of the case generator counting such readings
/// as unbinnable — so the report vector can be shorter than `n_failing`.
///
/// # Errors
///
/// Propagates fabrication, simulation and diagnosis errors.
pub fn cross_suite_population(
    engine: &DiagnosticEngine,
    n_failing: usize,
    seed: u64,
    policy: StoppingPolicy,
    strategy: Strategy,
    cost: &CostModel,
) -> Result<PopulationRun<CrossSuiteReport>> {
    let rig = rig();
    let tester = OnDemandTester::new(&rig.circuit, &rig.program).map_err(Error::Ate)?;
    let population = synthesize(n_failing, seed, 0)?;
    let spec = rig.model.spec();
    let plans = suite_plans();
    let mut reports = Vec::with_capacity(population.devices.len());
    let mut skipped = Vec::new();
    for (device, log) in population.devices.iter().zip(&population.logs) {
        // Every suite the full program flags, ordered by first failure.
        let mut failing_suites: Vec<String> = Vec::new();
        for record in log.records.iter().filter(|r| !r.passed) {
            if !failing_suites.contains(&record.suite) {
                failing_suites.push(record.suite.clone());
            }
        }
        if failing_suites.is_empty() {
            return Err(Error::Pipeline("synthesized device never fails".into()));
        }

        let mut contexts: Vec<(String, DiagnosisSession)> = Vec::new();
        let mut suite_indices: Vec<usize> = Vec::new();
        for suite in &failing_suites {
            let (si, _) = plan_for(suite)?;
            let plan = &plans[si];
            let controls = CONTROL_VARS.iter().copied().zip(plan.control_states);
            contexts.push((suite.clone(), seeded_session(engine, controls, policy)?));
            suite_indices.push(si);
        }

        let mut session = tester.session(device, NoiseModel::production(), seed);
        let mut device_cost = cost.clone();
        device_cost.set_current_suite(None);
        let outcome = {
            let session = &mut session;
            let spec = &spec;
            let suite_indices = &suite_indices;
            run_cross_suite(
                &mut contexts,
                &mut device_cost,
                strategy,
                policy,
                move |context, name| {
                    let oi = OBSERVED_VARS
                        .iter()
                        .position(|v| *v == name)
                        .ok_or_else(|| abbd_core::Error::Oracle {
                            variable: name.into(),
                            reason: "not one of the suite's outputs".into(),
                        })?;
                    crate::adaptive::measure_on_bench(
                        session,
                        spec,
                        name,
                        test_number(suite_indices[context], oi),
                    )
                },
            )
        };
        let outcome = match outcome {
            Ok(outcome) => outcome,
            // An unbinnable reading (NaN operating point) means this
            // device cannot be diagnosed on this bench; skip it rather
            // than abort the whole population — and say so in the run.
            Err(abbd_core::Error::Oracle { .. }) => {
                skipped.push(device.id);
                continue;
            }
            Err(e) => return Err(Error::Core(e)),
        };
        reports.push(CrossSuiteReport {
            device_id: device.id,
            truth: log.truth.clone(),
            suites: failing_suites,
            suites_touched: session.suites_touched(),
            bench_switches: session.stimulus_switches(),
            outcome,
        });
    }
    Ok(PopulationRun { reports, skipped })
}

/// Closed-loop scenario over a sampled fault population: fabricates
/// `n_failing` defective regulators, and for each one runs the sequential
/// diagnoser inside its first failing suite twice — adaptively and in
/// fixed program order — against the live on-demand ATE. Deterministic
/// for a fixed `seed`.
///
/// The returned reports compare tests-to-isolation per device; aggregate
/// with [`crate::adaptive::summarize`]. Devices whose bench session
/// produces a reading the model spec cannot bin are skipped and reported
/// in [`PopulationRun::skipped`], so the report vector can be shorter
/// than `n_failing`.
///
/// # Errors
///
/// Propagates fabrication, simulation and diagnosis errors.
pub fn closed_loop_population(
    engine: &DiagnosticEngine,
    n_failing: usize,
    seed: u64,
    policy: StoppingPolicy,
) -> Result<PopulationRun<ClosedLoopReport>> {
    closed_loop_population_with_noise(engine, n_failing, seed, policy, NoiseModel::production())
}

/// [`closed_loop_population`] under an explicit measurement-noise model.
///
/// The production voltmeter (2 mV sigma) never pushes a reading outside
/// the model's state bands, but a degraded bench can: readings the spec
/// cannot bin make their device undiagnosable, and this driver skips it
/// *and reports it* in [`PopulationRun::skipped`] — the regression the
/// skip-accounting test pins with a deliberately noisy voltmeter.
///
/// # Errors
///
/// Same as [`closed_loop_population`].
pub fn closed_loop_population_with_noise(
    engine: &DiagnosticEngine,
    n_failing: usize,
    seed: u64,
    policy: StoppingPolicy,
    noise: NoiseModel,
) -> Result<PopulationRun<ClosedLoopReport>> {
    let rig = rig();
    let tester = OnDemandTester::new(&rig.circuit, &rig.program).map_err(Error::Ate)?;
    let population = synthesize(n_failing, seed, 0)?;
    let spec = rig.model.spec();
    let mut reports = Vec::with_capacity(population.devices.len());
    let mut skipped = Vec::new();
    for (device, log) in population.devices.iter().zip(&population.logs) {
        let failing_suite = log
            .records
            .iter()
            .find(|r| !r.passed)
            .map(|r| r.suite.clone())
            .ok_or_else(|| Error::Pipeline("synthesized device never fails".into()))?;
        let (si, plan) = plan_for(&failing_suite)?;
        let controls = CONTROL_VARS.iter().copied().zip(plan.control_states);

        let mut adaptive_d = seeded_session(engine, controls.clone(), policy)?;
        let mut session = tester.session(device, noise.clone(), seed);
        let adaptive = match adaptive_d.run(bench_oracle(&mut session, spec, si)) {
            Ok(outcome) => outcome,
            // An unbinnable reading means this device cannot be diagnosed
            // on this bench; skip it (reported) rather than abort.
            Err(abbd_core::Error::Oracle { .. }) => {
                skipped.push(device.id);
                continue;
            }
            Err(e) => return Err(Error::Core(e)),
        };

        let mut fixed_d = seeded_session(engine, controls, policy)?;
        let mut session = tester.session(device, noise.clone(), seed);
        let fixed = match fixed_d.run_scripted(&OBSERVED_VARS, bench_oracle(&mut session, spec, si))
        {
            Ok(outcome) => outcome,
            Err(abbd_core::Error::Oracle { .. }) => {
                skipped.push(device.id);
                continue;
            }
            Err(e) => return Err(Error::Core(e)),
        };

        reports.push(ClosedLoopReport {
            device_id: device.id,
            truth: log.truth.clone(),
            suite: failing_suite,
            adaptive,
            fixed,
        });
    }
    Ok(PopulationRun { reports, skipped })
}

#[cfg(test)]
mod tests {
    /// The skip-accounting regression: devices the bench cannot bin are
    /// skipped *and reported by serial number* — the population total
    /// always adds up instead of quietly shrinking.
    #[test]
    fn skipped_devices_are_reported_not_dropped() {
        let engine = quick_engine();
        // The production voltmeter (2 mV) never leaves the state bands:
        // nothing skipped, every device reported.
        let clean = closed_loop_population(&engine, 6, 2, StoppingPolicy::default()).unwrap();
        assert!(clean.skipped.is_empty());
        assert_eq!(clean.devices_attempted(), 6);
        // A degraded voltmeter (250 mV sigma) pushes off-state readings
        // below the model's lowest band; those devices are undiagnosable
        // on this bench and must be named, not dropped.
        let noisy = closed_loop_population_with_noise(
            &engine,
            6,
            2,
            StoppingPolicy::default(),
            NoiseModel::uniform(0.25),
        )
        .unwrap();
        assert_eq!(
            noisy.skipped,
            vec![4, 5],
            "deterministic for the fixed seed"
        );
        assert_eq!(noisy.reports.len(), 4);
        assert_eq!(
            noisy.devices_attempted(),
            6,
            "reports + skipped must account for every synthesized device"
        );
        for report in &noisy.reports {
            assert!(
                !noisy.skipped.contains(&report.device_id),
                "a device cannot be both reported and skipped"
            );
        }
    }

    use super::*;
    use crate::adaptive::summarize;
    use crate::regulator::cases::case_studies;
    use crate::regulator::fit;
    use abbd_bbn::learn::EmConfig;
    use abbd_core::LearnAlgorithm;

    fn quick_engine() -> DiagnosticEngine {
        fit(
            24,
            42,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .unwrap()
        .engine
    }

    /// The case-study acceptance check: on every Table VI case the
    /// adaptive order isolates the fault in no more measurements than the
    /// ATE program order, and on d1 it reproduces the paper's candidate
    /// ambiguity.
    #[test]
    fn adaptive_never_uses_more_tests_than_fixed_on_case_studies() {
        let engine = quick_engine();
        let policy = StoppingPolicy::default();
        for case in case_studies() {
            let adaptive = adaptive_case_study(&engine, &case, policy).unwrap();
            let fixed = fixed_case_study(&engine, &case, policy).unwrap();
            assert!(
                adaptive.tests_used() <= fixed.tests_used(),
                "case {}: adaptive {} > fixed {}",
                case.id,
                adaptive.tests_used(),
                fixed.tests_used()
            );
            // Both orders end at the same place when both exhaust.
            if adaptive.tests_used() == 5 && fixed.tests_used() == 5 {
                assert_eq!(
                    adaptive.diagnosis.fault_mass(),
                    fixed.diagnosis.fault_mass(),
                    "case {}: full-program runs must agree",
                    case.id
                );
            }
        }
    }

    #[test]
    fn d1_adaptive_top_candidate_matches_the_paper() {
        let engine = quick_engine();
        let d1 = &case_studies()[0];
        let outcome = adaptive_case_study(&engine, d1, StoppingPolicy::default()).unwrap();
        let top = outcome
            .diagnosis
            .top_candidate()
            .expect("d1 has candidates");
        assert!(
            d1.expected_candidates.contains(&top),
            "top candidate {top} not in {:?}",
            d1.expected_candidates
        );
    }

    /// The lookahead acceptance check: on every Table VI case study,
    /// depth-2 expectimax planning isolates the fault in no more
    /// measurements than the myopic loop (d1 and d3 are the cases the
    /// golden corpus pins).
    #[test]
    fn lookahead_depth2_needs_no_more_tests_than_myopic_on_case_studies() {
        let engine = quick_engine();
        let policy = StoppingPolicy::default();
        for case in case_studies() {
            let (myopic, _) =
                traced_case_study(&engine, &case, policy, Strategy::Myopic, CostModel::unit())
                    .unwrap();
            let (lookahead, _) = traced_case_study(
                &engine,
                &case,
                policy,
                Strategy::Lookahead { depth: 2 },
                CostModel::unit(),
            )
            .unwrap();
            assert!(
                lookahead.tests_used() <= myopic.tests_used(),
                "case {}: lookahead {} > myopic {}",
                case.id,
                lookahead.tests_used(),
                myopic.tests_used()
            );
            assert_eq!(
                lookahead.diagnosis.top_candidate(),
                myopic.diagnosis.top_candidate(),
                "case {}: strategies disagree on the culprit",
                case.id
            );
        }
    }

    /// Traces replay the run they came from: chosen sequence matches the
    /// applied measurements, rankings are sorted by score, posteriors are
    /// recorded per step.
    #[test]
    fn traced_case_study_records_the_whole_decision_path() {
        let engine = quick_engine();
        let d1 = &case_studies()[0];
        let (outcome, trace) = traced_case_study(
            &engine,
            d1,
            StoppingPolicy::default(),
            Strategy::CostWeighted,
            reference_cost_model(),
        )
        .unwrap();
        assert_eq!(trace.strategy, Strategy::CostWeighted);
        assert_eq!(trace.stop, outcome.stop);
        assert_eq!(trace.steps.len(), outcome.tests_used());
        for (step, applied) in trace.steps.iter().zip(&outcome.applied) {
            assert_eq!(step.chosen, applied.variable);
            assert_eq!(step.state, applied.state);
            assert_eq!(step.failing, applied.failing);
            assert_eq!(step.scores[0].variable, step.chosen, "best score wins");
            for w in step.scores.windows(2) {
                assert!(w[0].score >= w[1].score, "ranking must be sorted");
            }
            assert!(!step.fault_mass.is_empty());
            assert!(step.scores.iter().all(|s| s.cost > 0.0));
        }
        assert_eq!(
            trace.top_candidate.as_deref(),
            outcome.diagnosis.top_candidate()
        );
        assert!(!trace.final_fault_mass.is_empty());
    }

    /// The cost-aware acceptance check on the 16-device population:
    /// cost-weighted arbitration *strictly* reduces stimulus-suite
    /// switches versus the cost-blind myopic loop, the driver's switch
    /// count agrees with what the bench session physically performed, and
    /// isolation quality does not regress.
    #[test]
    fn cost_weighted_strictly_reduces_stimulus_switches_on_the_population() {
        let engine = quick_engine();
        let policy = StoppingPolicy::default();
        let cost = reference_cost_model();
        let run = |strategy| {
            let run = cross_suite_population(&engine, 16, 2024, policy, strategy, &cost).unwrap();
            assert!(run.skipped.is_empty(), "seed 2024 diagnoses every device");
            assert_eq!(run.devices_attempted(), 16);
            let reports = run.reports;
            assert_eq!(reports.len(), 16);
            for r in &reports {
                assert_eq!(
                    r.outcome.stimulus_switches, r.bench_switches,
                    "device {}: driver switch accounting must match the bench",
                    r.device_id
                );
                assert!(!r.suites.is_empty());
                assert!(r.suites_touched <= r.suites.len());
            }
            summarize_cross_suite(strategy, &reports)
        };
        let myopic = run(Strategy::Myopic);
        let weighted = run(Strategy::CostWeighted);
        assert!(
            weighted.stimulus_switches < myopic.stimulus_switches,
            "cost-weighted {} switches must be strictly below myopic {}",
            weighted.stimulus_switches,
            myopic.stimulus_switches
        );
        assert!(
            weighted.tester_seconds < myopic.tester_seconds,
            "cost-weighted {} s must undercut myopic {} s",
            weighted.tester_seconds,
            myopic.tester_seconds
        );
        assert!(weighted.isolated >= myopic.isolated);
        assert!(weighted.hits >= myopic.hits);
    }

    /// The mixed-candidate regression (ROADMAP open item): on d1 —
    /// whose electrical evidence leaves warnvpst and hcbg ambiguous —
    /// the unified ranking reaches for a bench probe *while an
    /// electrical test is still on the menu*, isolates the fault
    /// without ever running that test, and beats the legacy
    /// tests-then-probes flow on both measurements and tester-seconds.
    /// The two-phase flow cannot make that trade by construction: its
    /// step one has no probes in the menu, so it must play the test
    /// program out first.
    #[test]
    fn unified_session_interleaves_the_decisive_probe_on_d1() {
        let engine = quick_engine();
        let d1 = &case_studies()[0];
        // Tests alone top out below 0.99 fault mass on this fit (the
        // ambiguity: warnvpst ~0.99, hcbg ~0.41 after the full
        // program), so 0.995 is exactly "electrical evidence cannot
        // convict". No gain floor: step one of the legacy flow must
        // play the test program out, which is its structural handicap.
        let policy = StoppingPolicy {
            fault_mass_threshold: 0.995,
            max_steps: 32,
            min_gain: 0.0,
        };
        let (unified, trace) = mixed_case_study(
            &engine,
            d1,
            policy,
            Strategy::CostWeighted,
            mixed_cost_model(),
        )
        .unwrap();
        let (step_one, step_two) = two_phase_case_study(
            &engine,
            d1,
            policy,
            Strategy::CostWeighted,
            mixed_cost_model(),
        )
        .unwrap();

        let is_probe = |name: &str| crate::regulator::model::LATENTS.contains(&name);
        // The unified loop isolates a paper-sanctioned culprit.
        assert_eq!(unified.stop, abbd_core::StopReason::Isolated);
        let top = unified.diagnosis.top_candidate().expect("isolated");
        assert!(
            d1.expected_candidates.contains(&top),
            "top candidate {top} not in {:?}",
            d1.expected_candidates
        );
        // The decisive step: the ranking chose a probe while at least
        // one electrical test was still a live candidate — the mixed
        // candidate set made "probe now or test more?" one decision.
        let probe_step = trace
            .steps
            .iter()
            .find(|step| is_probe(&step.chosen))
            .expect("the unified plan must reach for a probe");
        assert!(
            probe_step
                .scores
                .iter()
                .any(|sc| OBSERVED_VARS.contains(&sc.variable.as_str())),
            "the chosen probe must have outranked a pending test"
        );
        // ... and that pending test never needed to run at all.
        let tests_taken = unified
            .applied
            .iter()
            .filter(|a| !is_probe(&a.variable))
            .count();
        assert!(
            tests_taken < OBSERVED_VARS.len(),
            "unified plan must not need the whole test program"
        );
        // The legacy flow would not (and cannot) pick the probe early:
        // step one exhausts every electrical test without isolating,
        // only then does step two probe its way to the same verdict.
        assert!(step_one.applied.iter().all(|a| !is_probe(&a.variable)));
        assert_eq!(step_one.applied.len(), OBSERVED_VARS.len());
        assert_ne!(step_one.stop, abbd_core::StopReason::Isolated);
        assert_eq!(step_two.stop, abbd_core::StopReason::Isolated);
        assert_eq!(step_two.diagnosis.top_candidate(), Some(top));
        // Head to head: strictly fewer measurements and tester-seconds.
        let two_phase_tests = step_one.tests_used() + step_two.tests_used();
        let two_phase_seconds = step_one.tester_seconds() + step_two.tester_seconds();
        assert!(
            unified.tests_used() < two_phase_tests,
            "unified {} measurements must beat two-phase {}",
            unified.tests_used(),
            two_phase_tests
        );
        assert!(
            unified.tester_seconds() < two_phase_seconds,
            "unified {:.1}s must beat two-phase {:.1}s",
            unified.tester_seconds(),
            two_phase_seconds
        );
    }

    #[test]
    fn closed_loop_population_reports_and_aggregates() {
        let engine = quick_engine();
        let run = closed_loop_population(&engine, 8, 2024, StoppingPolicy::default()).unwrap();
        assert!(run.skipped.is_empty(), "seed 2024 diagnoses every device");
        let reports = run.reports;
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert!(r.adaptive.tests_used() <= 5);
            assert!(r.fixed.tests_used() <= 5);
            assert!(!r.truth.is_empty());
        }
        let summary = summarize(&reports);
        assert_eq!(summary.devices, 8);
        assert!(
            summary.adaptive_tests <= summary.fixed_tests,
            "adaptive {} > fixed {} across the population",
            summary.adaptive_tests,
            summary.fixed_tests
        );
    }
}
