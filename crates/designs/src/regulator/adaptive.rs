//! Closed-loop adaptive diagnosis on the regulator: the sequential
//! diagnoser picks the next output to measure inside a failing stimulus
//! suite, the on-demand virtual ATE answers it, and the loop stops when a
//! block is isolated — compared head-to-head against the fixed program
//! order on the paper's case studies and on sampled fault populations.

use crate::adaptive::ClosedLoopReport;
use crate::error::{Error, Result};
use crate::regulator::cases::CaseStudy;
use crate::regulator::program::{suite_plans, test_number, SuitePlan, CONTROL_VARS, OBSERVED_VARS};
use crate::regulator::{rig, synthesize};
use abbd_ate::{DeviceSession, NoiseModel, OnDemandTester};
use abbd_core::{
    DiagnosticEngine, Measured, SequentialDiagnoser, SequentialOutcome, StoppingPolicy,
};
use abbd_dlog2bbn::ModelSpec;

/// Builds a diagnoser seeded with a suite's control states, candidates
/// restricted to the suite's five outputs.
fn seeded_diagnoser<'e>(
    engine: &'e DiagnosticEngine,
    controls: impl IntoIterator<Item = (&'static str, usize)>,
    policy: StoppingPolicy,
) -> Result<SequentialDiagnoser<'e>> {
    let mut d = SequentialDiagnoser::new(engine, policy).map_err(Error::Core)?;
    for (name, state) in controls {
        d.observe(name, state).map_err(Error::Core)?;
    }
    d.set_candidates(OBSERVED_VARS).map_err(Error::Core)?;
    Ok(d)
}

/// A measurement oracle answering from paper Table VI: the case study's
/// recorded observable states, with deviations from the suite's healthy
/// states marked failing.
fn table_vi_oracle<'c>(
    case: &'c CaseStudy,
    plan: &'c SuitePlan,
) -> impl FnMut(&str) -> abbd_core::Result<Measured> + 'c {
    move |name| {
        let oi = OBSERVED_VARS
            .iter()
            .position(|v| *v == name)
            .ok_or_else(|| abbd_core::Error::Oracle {
                variable: name.into(),
                reason: "not one of the suite's outputs".into(),
            })?;
        let (_, state) = case.observables[oi];
        Ok(Measured {
            state,
            failing: state != plan.healthy_states[oi],
        })
    }
}

/// The regulator's live-bench oracle: [`crate::adaptive::bench_oracle`]
/// over this suite's five outputs and test numbering.
fn bench_oracle<'s, 'd, 'a>(
    session: &'s mut DeviceSession<'d, 'a>,
    spec: &'s ModelSpec,
    suite_index: usize,
) -> impl FnMut(&str) -> abbd_core::Result<Measured> + use<'s, 'd, 'a> {
    crate::adaptive::bench_oracle(session, spec, &OBSERVED_VARS, move |oi| {
        test_number(suite_index, oi)
    })
}

fn plan_for(suite: &str) -> Result<(usize, SuitePlan)> {
    suite_plans()
        .into_iter()
        .enumerate()
        .find(|(_, p)| p.name == suite)
        .ok_or_else(|| Error::Pipeline(format!("unknown suite `{suite}`")))
}

/// Runs one Table VI case study adaptively: controls seeded, outputs
/// measured most-informative-first, stopping per `policy`.
///
/// # Errors
///
/// Propagates diagnosis errors.
pub fn adaptive_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
) -> Result<SequentialOutcome> {
    let (_, plan) = plan_for(case.suite)?;
    let mut d = seeded_diagnoser(engine, case.controls, policy)?;
    d.run(table_vi_oracle(case, &plan)).map_err(Error::Core)
}

/// The fixed-order baseline for [`adaptive_case_study`]: same seeding,
/// same stopping policy, outputs measured in ATE program order.
///
/// # Errors
///
/// Propagates diagnosis errors.
pub fn fixed_case_study(
    engine: &DiagnosticEngine,
    case: &CaseStudy,
    policy: StoppingPolicy,
) -> Result<SequentialOutcome> {
    let (_, plan) = plan_for(case.suite)?;
    let mut d = seeded_diagnoser(engine, case.controls, policy)?;
    d.run_scripted(&OBSERVED_VARS, table_vi_oracle(case, &plan))
        .map_err(Error::Core)
}

/// Closed-loop scenario over a sampled fault population: fabricates
/// `n_failing` defective regulators, and for each one runs the sequential
/// diagnoser inside its first failing suite twice — adaptively and in
/// fixed program order — against the live on-demand ATE. Deterministic
/// for a fixed `seed`.
///
/// The returned reports compare tests-to-isolation per device; aggregate
/// with [`crate::adaptive::summarize`].
///
/// # Errors
///
/// Propagates fabrication, simulation and diagnosis errors.
pub fn closed_loop_population(
    engine: &DiagnosticEngine,
    n_failing: usize,
    seed: u64,
    policy: StoppingPolicy,
) -> Result<Vec<ClosedLoopReport>> {
    let rig = rig();
    let tester = OnDemandTester::new(&rig.circuit, &rig.program).map_err(Error::Ate)?;
    let population = synthesize(n_failing, seed, 0)?;
    let spec = rig.model.spec();
    let mut reports = Vec::with_capacity(population.devices.len());
    for (device, log) in population.devices.iter().zip(&population.logs) {
        let failing_suite = log
            .records
            .iter()
            .find(|r| !r.passed)
            .map(|r| r.suite.clone())
            .ok_or_else(|| Error::Pipeline("synthesized device never fails".into()))?;
        let (si, plan) = plan_for(&failing_suite)?;
        let controls = CONTROL_VARS.iter().copied().zip(plan.control_states);

        let mut adaptive_d = seeded_diagnoser(engine, controls.clone(), policy)?;
        let mut session = tester.session(device, NoiseModel::production(), seed);
        let adaptive = adaptive_d
            .run(bench_oracle(&mut session, spec, si))
            .map_err(Error::Core)?;

        let mut fixed_d = seeded_diagnoser(engine, controls, policy)?;
        let mut session = tester.session(device, NoiseModel::production(), seed);
        let fixed = fixed_d
            .run_scripted(&OBSERVED_VARS, bench_oracle(&mut session, spec, si))
            .map_err(Error::Core)?;

        reports.push(ClosedLoopReport {
            device_id: device.id,
            truth: log.truth.clone(),
            suite: failing_suite,
            adaptive,
            fixed,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::summarize;
    use crate::regulator::cases::case_studies;
    use crate::regulator::fit;
    use abbd_bbn::learn::EmConfig;
    use abbd_core::LearnAlgorithm;

    fn quick_engine() -> DiagnosticEngine {
        fit(
            24,
            42,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .unwrap()
        .engine
    }

    /// The case-study acceptance check: on every Table VI case the
    /// adaptive order isolates the fault in no more measurements than the
    /// ATE program order, and on d1 it reproduces the paper's candidate
    /// ambiguity.
    #[test]
    fn adaptive_never_uses_more_tests_than_fixed_on_case_studies() {
        let engine = quick_engine();
        let policy = StoppingPolicy::default();
        for case in case_studies() {
            let adaptive = adaptive_case_study(&engine, &case, policy).unwrap();
            let fixed = fixed_case_study(&engine, &case, policy).unwrap();
            assert!(
                adaptive.tests_used() <= fixed.tests_used(),
                "case {}: adaptive {} > fixed {}",
                case.id,
                adaptive.tests_used(),
                fixed.tests_used()
            );
            // Both orders end at the same place when both exhaust.
            if adaptive.tests_used() == 5 && fixed.tests_used() == 5 {
                assert_eq!(
                    adaptive.diagnosis.fault_mass(),
                    fixed.diagnosis.fault_mass(),
                    "case {}: full-program runs must agree",
                    case.id
                );
            }
        }
    }

    #[test]
    fn d1_adaptive_top_candidate_matches_the_paper() {
        let engine = quick_engine();
        let d1 = &case_studies()[0];
        let outcome = adaptive_case_study(&engine, d1, StoppingPolicy::default()).unwrap();
        let top = outcome
            .diagnosis
            .top_candidate()
            .expect("d1 has candidates");
        assert!(
            d1.expected_candidates.contains(&top),
            "top candidate {top} not in {:?}",
            d1.expected_candidates
        );
    }

    #[test]
    fn closed_loop_population_reports_and_aggregates() {
        let engine = quick_engine();
        let reports = closed_loop_population(&engine, 8, 2024, StoppingPolicy::default()).unwrap();
        assert_eq!(reports.len(), 8);
        for r in &reports {
            assert!(r.adaptive.tests_used() <= 5);
            assert!(r.fixed.tests_used() <= 5);
            assert!(!r.truth.is_empty());
        }
        let summary = summarize(&reports);
        assert_eq!(summary.devices, 8);
        assert!(
            summary.adaptive_tests <= summary.fixed_tests,
            "adaptive {} > fixed {} across the population",
            summary.adaptive_tests,
            summary.fixed_tests
        );
    }
}
