//! Fleet drift: a shifted defect mix for the regulator, plus the scoring
//! helper the fleet-learning tests use to measure recovery.
//!
//! The paper fits the expert model once against ~70 customer returns and
//! then serves it. A real product line keeps failing after that snapshot,
//! and the defect mix moves. Here the moving part is the switchable
//! output driver `sw`: during bring-up it almost never failed, so any
//! `sw_out`-only failure was correctly blamed on its far more common
//! enable gate `enbsw` — `sw` dead and `enbsw` dead are observationally
//! identical in the enabled suites, and the prior breaks the tie. After
//! drift a marginal process step kills (and sticks) the driver itself, so
//! that same tie must break the other way. The shift *is* learnable from
//! datalogs alone: `sw` stuck-at failures also violate the `all_off` and
//! `low_supply` suites, which no enable defect can, and those decisive
//! traces teach the refit that `sw_out` failures are the driver's own —
//! the enable's posterior blame drains away until diagnosis falls
//! through to the observable itself (the paper's candidate of last
//! resort). A model fitted on the old mix keeps blaming `enbsw` forever;
//! the fleet-learning loop ([`abbd_core::fleet`]) exists to notice the
//! new traces and refit.
//!
//! This module provides the drifted side of that experiment:
//!
//! * [`drifted_catalog`] / [`drifted_universe`] — the post-drift defect
//!   weights: `sw` dead/stuck dominates, `enbsw` drops to background,
//!   everything else shrinks proportionally;
//! * [`synthesize_drifted`] — a failing population drawn from that mix
//!   (same circuit, same test program — only the defects moved);
//! * [`isolation_accuracy`] — fraction of failing cases whose top
//!   candidate names a truly faulted block, scored against the datalog
//!   ground truth. This is the number that degrades under drift and must
//!   recover after a gated refit.

use crate::error::Result;
use crate::regulator::{synthesize_with, Population, RegulatorRig};
use abbd_blocks::{FaultMode, FaultUniverse};
use abbd_core::{CompiledModel, Observation};
use abbd_dlog2bbn::NamedCase;
use abbd_scenarios::{FaultKind, FaultLibrary};

/// Relative occurrence weights per `(block, mode)` after the drift: a
/// process excursion in the switchable output driver. Roughly 93% of
/// returns are now `sw` defects — half stuck high (the decisive
/// signature that also fails the disabled suites), half plain dead
/// (ambiguous against `enbsw`) — while everything else, including the
/// bring-up era's top suspects, trickles in at background rates. The
/// concentration is the realistic shape of a single marginal lot: one
/// step fails one block, and the return stream is suddenly monotone.
pub fn drifted_catalog() -> Vec<(&'static str, FaultMode, f64)> {
    vec![
        ("sw", FaultMode::Dead, 4.0),
        ("sw", FaultMode::StuckAt(17.0), 4.0),
        ("warnvpst", FaultMode::Dead, 0.15),
        ("enb13", FaultMode::Dead, 0.1),
        ("lcbg", FaultMode::Dead, 0.08),
        ("hcbg", FaultMode::Dead, 0.08),
        ("enb4", FaultMode::Dead, 0.05),
        ("reg1", FaultMode::Dead, 0.05),
        ("reg3", FaultMode::Dead, 0.04),
        ("enbsw", FaultMode::Dead, 0.03),
        ("reg2", FaultMode::Dead, 0.03),
        ("reg4", FaultMode::Dead, 0.03),
    ]
}

/// The drifted catalogue as a scenario-engine fault library.
pub fn drifted_library() -> FaultLibrary {
    drifted_catalog()
        .into_iter()
        .map(|(block, mode, weight)| (block, FaultKind::from(mode), weight))
        .collect()
}

/// Builds the drifted fault universe over the rig's circuit.
pub fn drifted_universe(rig: &RegulatorRig) -> FaultUniverse {
    drifted_library()
        .universe(&rig.circuit)
        .expect("catalog names exist")
}

/// Fabricates `n_failing` defective regulators from the *drifted* defect
/// mix. Deterministic for a fixed `seed`; `first_id` offsets serial
/// numbers so drifted devices never collide with a nominal population.
///
/// # Errors
///
/// Propagates simulation and case-generation errors.
pub fn synthesize_drifted(
    rig: &RegulatorRig,
    n_failing: usize,
    seed: u64,
    first_id: u64,
) -> Result<Population> {
    let universe = drifted_universe(rig);
    synthesize_with(rig, &universe, n_failing, seed, first_id)
}

/// Fraction of failing cases (cases with at least one failing observable)
/// whose diagnosis puts a truly faulted block on top. Cases that pass
/// everything carry no isolation signal and are skipped; a case whose
/// evidence is impossible under the model counts as a miss rather than an
/// error, so a badly drifted model scores low instead of aborting the
/// experiment.
///
/// Returns `0.0` when no case in `cases` is failing.
pub fn isolation_accuracy(compiled: &CompiledModel, cases: &[NamedCase]) -> f64 {
    let mut ws = compiled.make_workspace();
    let mut scored = 0usize;
    let mut hits = 0usize;
    for case in cases {
        if case.failing.is_empty() {
            continue;
        }
        scored += 1;
        let observation = Observation::from(case);
        let Ok(evidence) = compiled.evidence_from(&observation) else {
            continue;
        };
        let Ok(diagnosis) =
            compiled.diagnose_with_policy_in(&mut ws, &observation, &evidence, compiled.policy())
        else {
            continue;
        };
        let hit = diagnosis.top_candidate().is_some_and(|top| {
            case.truth
                .iter()
                .any(|tag| tag.split(':').next() == Some(top))
        });
        if hit {
            hits += 1;
        }
    }
    if scored == 0 {
        0.0
    } else {
        hits as f64 / scored as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::{self, rig};
    use abbd_bbn::learn::EmConfig;
    use abbd_core::LearnAlgorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn drifted_universe_flips_the_skew() {
        let rig = rig();
        let u = drifted_universe(&rig);
        let sw = rig.circuit.require_block("sw").unwrap();
        let enbsw = rig.circuit.require_block("enbsw").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let (mut sw_hits, mut enbsw_hits) = (0usize, 0usize);
        for _ in 0..n {
            let f = u.sample(&mut rng).unwrap();
            if f.block == sw {
                sw_hits += 1;
            } else if f.block == enbsw {
                enbsw_hits += 1;
            }
        }
        assert!(
            sw_hits > 5 * enbsw_hits,
            "after drift sw ({sw_hits}) must dominate enbsw ({enbsw_hits})"
        );
    }

    #[test]
    fn drifted_population_is_deterministic_and_failing() {
        let rig = rig();
        let a = synthesize_drifted(&rig, 8, 99, 1000).unwrap();
        let b = synthesize_drifted(&rig, 8, 99, 1000).unwrap();
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.devices.len(), 8);
        assert!(a.cases.iter().any(|c| !c.failing.is_empty()));
        assert!(a.devices.iter().all(|d| d.id >= 1000));
    }

    #[test]
    fn accuracy_scores_a_fitted_model_above_zero() {
        let fitted = regulator::fit(
            24,
            42,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .unwrap();
        let acc = isolation_accuracy(fitted.engine.compiled(), &fitted.cases);
        assert!(
            (0.0..=1.0).contains(&acc) && acc > 0.0,
            "in-sample accuracy should be positive, got {acc}"
        );
        assert_eq!(isolation_accuracy(fitted.engine.compiled(), &[]), 0.0);
    }
}
