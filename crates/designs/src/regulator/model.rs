//! The regulator's model variables (paper Table V), usable states with
//! voltage bands (paper Table VII columns LL/UL/Remarks) and the BBN
//! dependency structure (paper Fig. 3, reconstructed from the case-study
//! narrative of §IV-B).

// The 3.14 V regulator output limit is the paper's specification value,
// not an approximation of pi.
#![allow(clippy::approx_constant)]

use abbd_core::CircuitModel;
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};

/// The 19 model-variable names in paper Table VII order.
pub const VARIABLES: [&str; 19] = [
    "vp1",
    "vp1x",
    "vp2",
    "enb13_pin",
    "enb4_pin",
    "enbsw_pin",
    "sw",
    "reg1",
    "reg2",
    "reg3",
    "reg4",
    "lcbg",
    "enbsw",
    "warnvpst",
    "enblSen",
    "vx",
    "hcbg",
    "enb4",
    "enb13",
];

/// The 8 latent (NOT CONTROL/OBSERVE) model variables.
pub const LATENTS: [&str; 8] = [
    "lcbg", "enbsw", "warnvpst", "enblSen", "vx", "hcbg", "enb4", "enb13",
];

fn enable_pin_bands() -> Vec<StateBand> {
    vec![
        StateBand::new("0", 0.9, 1.9, "bad state"),
        StateBand::new("1", 0.4, 2.4, "good state"),
        StateBand::new("2", 0.0, 0.9, "bad state"),
        StateBand::new("3", 2.4, 100.0, "good state"),
        StateBand::new("4", 0.0, 0.0, "ground"),
    ]
}

fn active_bands(low_remark: &str, high_remark: &str) -> Vec<StateBand> {
    vec![
        StateBand::new("0", 0.0, 2.5, low_remark),
        StateBand::new("1", 2.5, 100.0, high_remark),
    ]
}

fn bandgap_level_bands(bad: &str, good: &str) -> Vec<StateBand> {
    vec![
        StateBand::new("0", 0.0, 1.1, bad),
        StateBand::new("1", 1.1, 100.0, good),
    ]
}

/// Meter noise floor: a dead output reads as 0 V plus millivolt-scale
/// noise, so the "off" band must reach slightly below zero or dead
/// outputs randomly fall into the "negative voltage" band (or out of
/// every band for variables without one).
const NOISE_FLOOR: f64 = -0.05;

fn regulator_bands(nominal_lo: f64, nominal_hi: f64, off_remark: &str) -> Vec<StateBand> {
    vec![
        StateBand::new("0", NOISE_FLOOR, nominal_lo, off_remark),
        StateBand::new("1", nominal_lo, nominal_hi, "in regulation"),
        StateBand::new("2", nominal_hi, 500.0, "out of regulation"),
        StateBand::new("3", -500.0, NOISE_FLOOR, "negative voltage"),
    ]
}

/// The model-variable specification of paper Tables V and VII.
pub fn model_spec() -> ModelSpec {
    let v = |name: &str, ftype, bands, ckt_ref: Option<&str>| VariableSpec {
        name: name.into(),
        ftype,
        bands,
        ckt_ref: ckt_ref.map(str::to_string),
    };
    ModelSpec::new([
        v(
            "vp1",
            FunctionalType::Control,
            vec![
                StateBand::new("0", 0.0, 4.0, "low level"),
                StateBand::new("1", 4.0, 7.5, "intermediate level"),
                StateBand::new("2", 7.5, 14.4, "nominal level"),
                StateBand::new("3", 14.4, 100.0, "loaddump level"),
            ],
            Some("1"),
        ),
        v(
            "vp1x",
            FunctionalType::Control,
            vec![
                StateBand::new("0", 0.0, 4.0, "bad state"),
                StateBand::new("1", 4.0, 5.0, "off state"),
                StateBand::new("2", 5.0, 6.5, "off-up/on-down"),
                StateBand::new("3", 6.5, 7.5, "on state"),
                StateBand::new("4", 7.5, 100.0, "on state"),
            ],
            Some("1"),
        ),
        v(
            "vp2",
            FunctionalType::Control,
            vec![
                StateBand::new("0", 0.0, 3.5, "low level"),
                StateBand::new("1", 4.75, 6.0, "intermediate level"),
                StateBand::new("2", 6.0, 14.4, "nominal level"),
                StateBand::new("3", 14.4, 100.0, "loaddump level"),
            ],
            Some("2"),
        ),
        v(
            "enb13_pin",
            FunctionalType::Control,
            enable_pin_bands(),
            Some("3"),
        ),
        v(
            "enb4_pin",
            FunctionalType::Control,
            enable_pin_bands(),
            Some("4"),
        ),
        v(
            "enbsw_pin",
            FunctionalType::Control,
            enable_pin_bands(),
            Some("5"),
        ),
        v(
            "sw",
            FunctionalType::Observe,
            vec![
                StateBand::new("0", NOISE_FLOOR, 8.0, "short circuit"),
                StateBand::new("1", 8.0, 13.5, "normal mode"),
                StateBand::new("2", 13.5, 16.0, "clamp level"),
                StateBand::new("3", 16.0, 100.0, "others"),
            ],
            Some("6"),
        ),
        v(
            "reg1",
            FunctionalType::Observe,
            vec![
                StateBand::new("0", NOISE_FLOOR, 8.0, "switch off/defect"),
                StateBand::new("1", 8.0, 9.0, "in regulation"),
                StateBand::new("2", 9.0, 500.0, "out of regulation"),
                StateBand::new("3", -500.0, NOISE_FLOOR, "negative voltage"),
            ],
            Some("7"),
        ),
        v(
            "reg2",
            FunctionalType::Observe,
            regulator_bands(4.75, 5.25, "out of regulation"),
            Some("8"),
        ),
        v(
            "reg3",
            FunctionalType::Observe,
            regulator_bands(4.75, 5.25, "out of regulation"),
            Some("9"),
        ),
        v(
            "reg4",
            FunctionalType::Observe,
            regulator_bands(3.14, 3.46, "out of regulation"),
            Some("10"),
        ),
        v(
            "lcbg",
            FunctionalType::Latent,
            vec![
                StateBand::new("0", 0.0, 1.1, "non operational"),
                StateBand::new("1", 1.1, 1.3, "nominal operating"),
                StateBand::new("2", 1.3, 14.4, "non operational"),
                StateBand::new("3", 14.4, 100.0, "short circuit"),
            ],
            Some("12"),
        ),
        v(
            "enbsw",
            FunctionalType::Latent,
            active_bands("non-active", "active"),
            Some("11"),
        ),
        v(
            "warnvpst",
            FunctionalType::Latent,
            active_bands("off", "on"),
            Some("13"),
        ),
        v(
            "enblSen",
            FunctionalType::Latent,
            active_bands("non-active", "active"),
            Some("14"),
        ),
        v(
            "vx",
            FunctionalType::Latent,
            bandgap_level_bands("bad state", "good state"),
            None,
        ),
        v(
            "hcbg",
            FunctionalType::Latent,
            bandgap_level_bands("bad state", "good state"),
            None,
        ),
        v(
            "enb4",
            FunctionalType::Latent,
            active_bands("non-active", "active"),
            Some("15"),
        ),
        v(
            "enb13",
            FunctionalType::Latent,
            active_bands("non-active", "active"),
            Some("16"),
        ),
    ])
    .expect("static spec always validates")
}

/// The BBN structure of paper Fig. 3: model variables plus the
/// cause–effect dependencies named in the case-study walkthroughs
/// (warnvpst ← {lcbg, hcbg}; the enables ← {warnvpst, pin}; the
/// lcbg→enblSen→hcbg chain; vx as the OR of the enable pins; outputs fed
/// by their enable, reference and supply).
pub fn circuit_model() -> CircuitModel {
    let mut m = CircuitModel::new(model_spec());
    let dep = |m: &mut CircuitModel, p: &str, c: &str| {
        m.depends(p, c).expect("static edges always validate");
    };
    dep(&mut m, "vp1", "lcbg");
    dep(&mut m, "enb13_pin", "vx");
    dep(&mut m, "enb4_pin", "vx");
    dep(&mut m, "enbsw_pin", "vx");
    dep(&mut m, "vx", "enblSen");
    dep(&mut m, "lcbg", "enblSen");
    dep(&mut m, "vp1", "hcbg");
    dep(&mut m, "enblSen", "hcbg");
    dep(&mut m, "lcbg", "warnvpst");
    dep(&mut m, "hcbg", "warnvpst");
    dep(&mut m, "warnvpst", "enb13");
    dep(&mut m, "enb13_pin", "enb13");
    dep(&mut m, "warnvpst", "enb4");
    dep(&mut m, "enb4_pin", "enb4");
    dep(&mut m, "warnvpst", "enbsw");
    dep(&mut m, "enbsw_pin", "enbsw");
    dep(&mut m, "vp1", "reg1");
    dep(&mut m, "enb13", "reg1");
    dep(&mut m, "hcbg", "reg1");
    dep(&mut m, "vp1", "reg3");
    dep(&mut m, "enb13", "reg3");
    dep(&mut m, "hcbg", "reg3");
    dep(&mut m, "vp1", "reg4");
    dep(&mut m, "enb4", "reg4");
    dep(&mut m, "hcbg", "reg4");
    dep(&mut m, "vp2", "reg2");
    dep(&mut m, "lcbg", "reg2");
    dep(&mut m, "vp1x", "sw");
    dep(&mut m, "enbsw", "sw");
    // lcbg fails in three of its four states (dead, drifted high, short).
    m.set_fault_states("lcbg", &[0, 2, 3])
        .expect("static fault states");
    // Observable fault states are condition-relative; state 0 is the "off
    // or defective" band used for self-candidate triggering.
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_paper_inventory() {
        let spec = model_spec();
        assert_eq!(spec.len(), 19);
        let names: Vec<&str> = spec.variables().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, VARIABLES.to_vec());
        // Functional-type counts from Table V: 6 control, 5 observe, 8 latent.
        let controls = spec
            .variables()
            .iter()
            .filter(|v| v.ftype.is_control())
            .count();
        let observables = spec
            .variables()
            .iter()
            .filter(|v| v.ftype.is_observable())
            .count();
        let latents = spec
            .variables()
            .iter()
            .filter(|v| v.ftype == FunctionalType::Latent)
            .count();
        assert_eq!((controls, observables, latents), (6, 5, 8));
    }

    #[test]
    fn cardinalities_match_table_vii() {
        let spec = model_spec();
        let card = |n: &str| spec.find(n).unwrap().card();
        assert_eq!(card("vp1"), 4);
        assert_eq!(card("vp1x"), 5);
        assert_eq!(card("vp2"), 4);
        assert_eq!(card("enb13_pin"), 5);
        assert_eq!(card("sw"), 4);
        assert_eq!(card("reg1"), 4);
        assert_eq!(card("lcbg"), 4);
        assert_eq!(card("warnvpst"), 2);
        assert_eq!(card("hcbg"), 2);
        assert_eq!(card("enb13"), 2);
    }

    #[test]
    fn binning_examples_from_table_vii() {
        let spec = model_spec();
        // Healthy nominal outputs land in their "in regulation" states.
        assert_eq!(spec.bin("reg1", 8.5).unwrap(), Some(1));
        assert_eq!(spec.bin("reg2", 5.0).unwrap(), Some(1));
        assert_eq!(spec.bin("reg4", 3.3).unwrap(), Some(1));
        assert_eq!(spec.bin("sw", 14.7).unwrap(), Some(2));
        assert_eq!(spec.bin("sw", 12.0).unwrap(), Some(1));
        // Dead outputs land in state 0.
        assert_eq!(spec.bin("reg1", 0.0).unwrap(), Some(0));
        assert_eq!(spec.bin("sw", 0.05).unwrap(), Some(0));
        // lcbg levels.
        assert_eq!(spec.bin("lcbg", 1.2).unwrap(), Some(1));
        assert_eq!(spec.bin("lcbg", 0.3).unwrap(), Some(0));
        assert_eq!(spec.bin("lcbg", 12.0).unwrap(), Some(2));
    }

    #[test]
    fn structure_matches_narrative() {
        let m = circuit_model();
        assert_eq!(m.parents_of("warnvpst"), vec!["lcbg", "hcbg"]);
        assert_eq!(m.parents_of("enb13"), vec!["warnvpst", "enb13_pin"]);
        assert_eq!(
            m.parents_of("vx"),
            vec!["enb13_pin", "enb4_pin", "enbsw_pin"]
        );
        assert_eq!(m.parents_of("hcbg"), vec!["vp1", "enblSen"]);
        assert_eq!(m.parents_of("reg2"), vec!["vp2", "lcbg"]);
        assert_eq!(m.parents_of("sw"), vec!["vp1x", "enbsw"]);
        // The lcbg -> enblSen -> hcbg chain the paper's d4 walkthrough uses.
        let anc = m.latent_ancestors("hcbg");
        assert!(anc.contains(&"enblSen".to_string()));
        assert!(anc.contains(&"lcbg".to_string()));
        assert!(anc.contains(&"vx".to_string()));
        assert_eq!(m.latents(), LATENTS.to_vec());
        assert_eq!(m.fault_states("lcbg"), vec![0, 2, 3]);
        assert_eq!(m.fault_states("warnvpst"), vec![0]);
    }

    #[test]
    fn model_builds_into_an_acyclic_network() {
        let m = circuit_model();
        let dm = abbd_core::ModelBuilder::new(m).build_expert_only().unwrap();
        assert_eq!(dm.network().var_count(), 19);
    }
}
