//! The regulator's fault universe: the catalogue of block-level defects
//! the synthetic "customer return" population is drawn from (standing in
//! for the paper's 70 failed products).
//!
//! The catalogue is expressed as an [`abbd_scenarios::FaultLibrary`], so
//! the same entries drive device-level sampling here and model-level
//! scenario generation in the scenario engine.

use abbd_blocks::{Circuit, FaultMode, FaultUniverse};
use abbd_scenarios::{FaultKind, FaultLibrary};

/// Relative occurrence weights per `(block, mode)`. The mix is skewed the
/// way the paper's case studies suggest: supply-status (`warnvpst`) and
/// high-current bandgap (`hcbg`) defects are common, the enable sense and
/// OR gate rarely fail, and every output block can die on its own.
pub fn fault_catalog() -> Vec<(&'static str, FaultMode, f64)> {
    vec![
        ("lcbg", FaultMode::Dead, 2.5),
        ("lcbg", FaultMode::GainDrift(0.7), 1.0),
        ("lcbg", FaultMode::ShortToInput, 0.5),
        ("hcbg", FaultMode::Dead, 2.2),
        ("hcbg", FaultMode::GainDrift(0.8), 0.5),
        ("warnvpst", FaultMode::Dead, 4.0),
        ("warnvpst", FaultMode::StuckAt(0.1), 0.5),
        ("enblSen", FaultMode::Dead, 0.2),
        ("vx", FaultMode::Dead, 0.15),
        ("enb13", FaultMode::Dead, 2.5),
        ("enb4", FaultMode::Dead, 1.5),
        ("enbsw", FaultMode::Dead, 3.5),
        ("reg1", FaultMode::Dead, 1.5),
        ("reg1", FaultMode::GainDrift(1.15), 0.5),
        ("reg2", FaultMode::Dead, 1.0),
        ("reg3", FaultMode::Dead, 1.5),
        ("reg4", FaultMode::Dead, 1.0),
        ("sw", FaultMode::Dead, 0.6),
        ("sw", FaultMode::StuckAt(17.0), 0.2),
    ]
}

/// The catalogue as a scenario-engine fault library — the single source
/// both the device-level universe and the model-level population
/// samplers compile from.
pub fn fault_library() -> FaultLibrary {
    fault_catalog()
        .into_iter()
        .map(|(block, mode, weight)| (block, FaultKind::from(mode), weight))
        .collect()
}

/// Builds the weighted fault universe over a circuit instance.
pub fn fault_universe(circuit: &Circuit) -> FaultUniverse {
    fault_library()
        .universe(circuit)
        .expect("catalog names exist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::circuit::circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn universe_covers_every_latent_block() {
        let c = circuit();
        let u = fault_universe(&c);
        assert_eq!(u.len(), fault_catalog().len());
        for latent in [
            "lcbg", "hcbg", "warnvpst", "enblSen", "vx", "enb13", "enb4", "enbsw",
        ] {
            let id = c.require_block(latent).unwrap();
            assert!(
                u.iter().any(|(f, _)| f.block == id),
                "no fault catalogued for {latent}"
            );
        }
    }

    #[test]
    fn sampling_respects_skew() {
        let c = circuit();
        let u = fault_universe(&c);
        let warn = c.require_block("warnvpst").unwrap();
        let vx = c.require_block("vx").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut warn_hits = 0usize;
        let mut vx_hits = 0usize;
        for _ in 0..n {
            let f = u.sample(&mut rng).unwrap();
            if f.block == warn {
                warn_hits += 1;
            } else if f.block == vx {
                vx_hits += 1;
            }
        }
        assert!(
            warn_hits > 5 * vx_hits,
            "warnvpst ({warn_hits}) must dominate vx ({vx_hits})"
        );
    }
}
