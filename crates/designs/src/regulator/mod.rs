//! The DATE 2010 multiple-output voltage regulator: behavioural circuit,
//! model variables and structure, expert estimate, test program, fault
//! universe, the five diagnostic case studies, and the end-to-end fitting
//! pipeline.

pub mod adaptive;
pub mod cases;
pub mod circuit;
pub mod drift;
pub mod expert;
pub mod faults;
pub mod grid;
pub mod model;
pub mod paper;
pub mod program;

use crate::error::Result;
use abbd_ate::{DeviceLog, NoiseModel, TestProgram};
use abbd_blocks::{Circuit, Device, FaultUniverse};
use abbd_core::{CircuitModel, DiagnosticEngine, ExpertKnowledge, LearnAlgorithm, ModelBuilder};
use abbd_dlog2bbn::{CaseMapping, GenerationStats, NamedCase};

/// Default equivalent sample size of the expert estimate. Each CPT row
/// carries this many pseudo-observations, so the designer's tables anchor
/// the rows that only a handful of the ~70 real devices inform — exactly
/// the paper's "fine-tuning" regime (data adjusts, expert structure
/// persists).
pub const DEFAULT_ESS: f64 = 150.0;

/// Default EM iteration budget for fine-tuning. Deliberately small:
/// early-stopped EM keeps the fitted tables close to the expert estimate
/// and prevents the rich-get-richer blame drift that full EM convergence
/// exhibits on ambiguous latent chains (competing explanations along
/// vx→enblSen→hcbg→warnvpst are not identifiable from observables alone).
pub const DEFAULT_EM_ITERATIONS: usize = 5;

/// The learning configuration used throughout the regulator experiments:
/// EM, early-stopped at [`DEFAULT_EM_ITERATIONS`].
pub fn default_algorithm() -> LearnAlgorithm {
    LearnAlgorithm::Em(abbd_bbn::learn::EmConfig {
        max_iterations: DEFAULT_EM_ITERATIONS,
        tolerance: 1e-6,
    })
}

/// Everything needed to run the regulator flow, bundled.
#[derive(Debug, Clone)]
pub struct RegulatorRig {
    /// The behavioural circuit (Fig. 2).
    pub circuit: Circuit,
    /// The specification test program.
    pub program: TestProgram,
    /// The Dlog2BBN mapping for case generation.
    pub mapping: CaseMapping,
    /// The structural circuit model (Table V + Fig. 3).
    pub model: CircuitModel,
    /// The product expert's CPT estimate.
    pub expert: ExpertKnowledge,
    /// The defect catalogue the population is drawn from.
    pub universe: FaultUniverse,
}

/// Builds the complete rig with the default expert strength.
pub fn rig() -> RegulatorRig {
    let circuit = circuit::circuit();
    let (program, mapping) = program::test_program(&circuit);
    RegulatorRig {
        model: model::circuit_model(),
        expert: expert::expert_knowledge(DEFAULT_ESS),
        universe: faults::fault_universe(&circuit),
        circuit,
        program,
        mapping,
    }
}

/// The outcome of the end-to-end fitting pipeline.
#[derive(Debug)]
pub struct FittedRegulator {
    /// The compiled diagnostic engine over the fine-tuned model.
    pub engine: DiagnosticEngine,
    /// The defective devices that were fabricated.
    pub devices: Vec<Device>,
    /// Their no-stop-on-fail datalogs.
    pub logs: Vec<DeviceLog>,
    /// The generated learning cases.
    pub cases: Vec<NamedCase>,
    /// Case-generation statistics.
    pub stats: GenerationStats,
}

/// A synthetic failing population: devices, datalogs and cases.
#[derive(Debug, Clone)]
pub struct Population {
    /// The defective devices.
    pub devices: Vec<Device>,
    /// Their no-stop-on-fail datalogs.
    pub logs: Vec<DeviceLog>,
    /// The Dlog2BBN cases, one per `(device, suite)`.
    pub cases: Vec<NamedCase>,
    /// Case-generation statistics.
    pub stats: GenerationStats,
}

/// Fabricates `n_failing` defective regulators (the "customer returns"),
/// tests them and converts the datalogs to cases. Deterministic for a
/// fixed `seed`; `first_id` offsets the device serial numbers so separate
/// populations do not collide.
///
/// # Errors
///
/// Propagates simulation and case-generation errors.
pub fn synthesize(n_failing: usize, seed: u64, first_id: u64) -> Result<Population> {
    let rig = rig();
    let universe = rig.universe.clone();
    synthesize_with(&rig, &universe, n_failing, seed, first_id)
}

/// [`synthesize`] drawing defects from a caller-supplied fault universe
/// instead of the rig's default — the lever for fleet-drift scenarios
/// ([`drift`]): same circuit, same test program, different defect mix.
///
/// Delegates to the scenario engine's device-level sampler
/// ([`abbd_scenarios::synthesize_failing`]) under the production noise
/// model; the draw sequence is identical to the historical in-crate
/// loop, so seeded populations (and the golden-trace corpus built on
/// them) are unchanged.
///
/// # Errors
///
/// Propagates simulation and case-generation errors.
pub fn synthesize_with(
    rig: &RegulatorRig,
    universe: &FaultUniverse,
    n_failing: usize,
    seed: u64,
    first_id: u64,
) -> Result<Population> {
    let population = abbd_scenarios::synthesize_failing(
        &rig.circuit,
        &rig.program,
        &rig.mapping,
        rig.model.spec(),
        universe,
        n_failing,
        seed,
        first_id,
        &NoiseModel::production(),
    )?;
    Ok(Population {
        devices: population.devices,
        logs: population.logs,
        cases: population.cases,
        stats: population.stats,
    })
}

/// Diagnoses a whole population of cases (one per `(device, suite)`) in a
/// single parallel batch against one compiled engine — the serving shape
/// of the ATE return-floor loop. Results come back in case order; each
/// case succeeds or fails independently.
///
/// This is the designs-layer face of
/// [`abbd_core::DiagnosticEngine::diagnose_batch`]: it maps Dlog2BBN cases
/// to observations and fans them out with one reused propagation
/// workspace per worker thread.
pub fn diagnose_population(
    engine: &DiagnosticEngine,
    cases: &[NamedCase],
) -> Vec<std::result::Result<abbd_core::Diagnosis, abbd_core::Error>> {
    let observations: Vec<abbd_core::Observation> =
        cases.iter().map(abbd_core::Observation::from).collect();
    engine.diagnose_batch(&observations)
}

/// Runs the paper's §IV flow end to end: fabricate `n_failing` defective
/// devices, test them, convert the datalogs to cases with Dlog2BBN,
/// fine-tune the expert model, and compile the diagnostic engine.
///
/// Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Propagates simulation, case-generation and learning errors.
pub fn fit(n_failing: usize, seed: u64, algorithm: LearnAlgorithm) -> Result<FittedRegulator> {
    let rig = rig();
    let population = synthesize(n_failing, seed, 0)?;
    let fitted = ModelBuilder::new(rig.model)
        .with_expert(rig.expert)
        .learn(&population.cases, algorithm)?;
    let engine = DiagnosticEngine::new(fitted)?;
    Ok(FittedRegulator {
        engine,
        devices: population.devices,
        logs: population.logs,
        cases: population.cases,
        stats: population.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_bbn::learn::EmConfig;

    fn quick_fit() -> FittedRegulator {
        fit(
            24,
            42,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .unwrap()
    }

    #[test]
    fn pipeline_produces_cases_and_engine() {
        let fitted = quick_fit();
        assert_eq!(fitted.devices.len(), 24);
        assert_eq!(fitted.logs.len(), 24);
        // One case per (device, suite).
        assert_eq!(fitted.stats.cases, 24 * 6);
        assert_eq!(fitted.cases.len(), 24 * 6);
        let summary = fitted.engine.model().summary().expect("learning ran");
        assert!(summary.iterations >= 1);
        assert_eq!(summary.case_count, 24 * 6);
    }

    #[test]
    fn fit_is_deterministic() {
        let a = quick_fit();
        let b = quick_fit();
        assert_eq!(a.engine.model().network(), b.engine.model().network());
        assert_eq!(a.cases, b.cases);
    }

    #[test]
    fn batch_population_diagnosis_matches_sequential() {
        let fitted = quick_fit();
        let cases: Vec<NamedCase> = fitted
            .cases
            .iter()
            .filter(|c| !c.failing.is_empty())
            .take(12)
            .cloned()
            .collect();
        assert!(
            !cases.is_empty(),
            "a failing population yields failing cases"
        );
        let batch = diagnose_population(&fitted.engine, &cases);
        assert_eq!(batch.len(), cases.len());
        for (case, got) in cases.iter().zip(&batch) {
            let obs = abbd_core::Observation::from(case);
            match (fitted.engine.diagnose(&obs), got) {
                (Ok(seq), Ok(batched)) => {
                    assert_eq!(batched.posteriors(), seq.posteriors());
                    assert_eq!(batched.candidates(), seq.candidates());
                }
                (Err(_), Err(_)) => {}
                (seq, batched) => {
                    panic!("batch/sequential disagree: {seq:?} vs {batched:?}")
                }
            }
        }
    }

    #[test]
    fn cases_hide_latents_and_observe_everything_else() {
        let fitted = quick_fit();
        for case in &fitted.cases {
            for latent in model::LATENTS {
                assert_eq!(case.state_of(latent), None, "{latent} must stay hidden");
            }
            // 6 controls + up to 5 observables.
            assert!(case.assignment.len() >= 6);
            assert!(case.assignment.len() <= 11);
        }
    }
}
