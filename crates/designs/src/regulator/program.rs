//! The regulator's specification test program: six stimulus suites
//! covering the paper's test conditions (nominal, intermediate supply,
//! high enable levels, all-off, low supply, load dump), plus the
//! Dlog2BBN mapping that turns datalogs into cases.

// The 3.14 V regulator output limit is the paper's specification value,
// not an approximation of pi.
#![allow(clippy::approx_constant)]

use abbd_ate::{Limits, TestDef, TestProgram, TestSuite};
use abbd_blocks::{Circuit, Stimulus};
use abbd_dlog2bbn::CaseMapping;

/// One stimulus configuration with its declared control states and
/// expected healthy observable states (used to mark failing observables
/// and to cross-check the behavioural circuit).
#[derive(Debug, Clone)]
pub struct SuitePlan {
    /// Suite name.
    pub name: &'static str,
    /// Forced voltages `[vp1, vp1x, vp2, enb13_pin, enb4_pin, enbsw_pin]`.
    pub voltages: [f64; 6],
    /// Declared control states for case generation, Table VI style.
    pub control_states: [usize; 6],
    /// Per-output `(lo, hi)` test limits `[reg1, reg2, reg3, reg4, sw]`.
    pub limits: [(f64, f64); 5],
    /// The state a healthy device shows per output `[reg1, reg2, reg3,
    /// reg4, sw]` after binning.
    pub healthy_states: [usize; 5],
}

/// The observable variables in test order within each suite.
pub const OBSERVED_VARS: [&str; 5] = ["reg1", "reg2", "reg3", "reg4", "sw"];

/// The six suites of the regulator test program.
pub fn suite_plans() -> Vec<SuitePlan> {
    vec![
        SuitePlan {
            name: "nominal_on",
            voltages: [12.0, 15.0, 8.0, 1.2, 1.2, 1.2],
            control_states: [2, 4, 2, 1, 1, 1],
            limits: [
                (8.0, 9.0),
                (4.75, 5.25),
                (4.75, 5.25),
                (3.14, 3.46),
                (13.5, 16.0),
            ],
            healthy_states: [1, 1, 1, 1, 2],
        },
        SuitePlan {
            name: "intermediate_on",
            voltages: [6.5, 7.0, 5.9, 1.2, 1.2, 1.2],
            control_states: [1, 3, 1, 1, 1, 1],
            limits: [
                (5.0, 6.0),
                (4.75, 5.25),
                (4.75, 5.25),
                (3.14, 3.46),
                (6.2, 7.2),
            ],
            healthy_states: [0, 1, 1, 1, 0],
        },
        SuitePlan {
            name: "high_enable",
            voltages: [12.0, 15.0, 8.0, 3.3, 3.3, 3.3],
            control_states: [2, 4, 2, 3, 3, 3],
            limits: [
                (8.0, 9.0),
                (4.75, 5.25),
                (4.75, 5.25),
                (3.14, 3.46),
                (13.5, 16.0),
            ],
            healthy_states: [1, 1, 1, 1, 2],
        },
        SuitePlan {
            name: "all_off",
            voltages: [12.0, 15.0, 8.0, 0.0, 0.0, 0.0],
            control_states: [2, 4, 2, 4, 4, 4],
            limits: [
                (-0.1, 0.5),
                (4.75, 5.25),
                (-0.1, 0.5),
                (-0.1, 0.5),
                (-0.1, 0.5),
            ],
            healthy_states: [0, 1, 0, 0, 0],
        },
        SuitePlan {
            name: "low_supply",
            voltages: [2.0, 2.0, 2.0, 1.2, 1.2, 1.2],
            control_states: [0, 0, 0, 1, 1, 1],
            limits: [
                (-0.1, 0.5),
                (-0.1, 0.5),
                (-0.1, 0.5),
                (-0.1, 0.5),
                (-0.1, 0.5),
            ],
            healthy_states: [0, 0, 0, 0, 0],
        },
        SuitePlan {
            name: "loaddump",
            voltages: [20.0, 20.0, 16.0, 1.2, 1.2, 1.2],
            control_states: [3, 4, 3, 1, 1, 1],
            limits: [
                (8.0, 9.0),
                (4.75, 5.25),
                (4.75, 5.25),
                (3.14, 3.46),
                (15.5, 16.0),
            ],
            healthy_states: [1, 1, 1, 1, 2],
        },
    ]
}

/// The ATE test number of `(suite index, output index)`.
pub fn test_number(suite_index: usize, output_index: usize) -> u32 {
    ((suite_index + 1) * 100 + output_index + 1) as u32
}

/// The control variable names in stimulus order.
pub const CONTROL_VARS: [&str; 6] = ["vp1", "vp1x", "vp2", "enb13_pin", "enb4_pin", "enbsw_pin"];

/// Builds the test program and the matching Dlog2BBN case mapping.
pub fn test_program(circuit: &Circuit) -> (TestProgram, CaseMapping) {
    let mut mapping = CaseMapping::new();
    let program: TestProgram = suite_plans()
        .iter()
        .enumerate()
        .map(|(si, plan)| {
            let mut stimulus = Stimulus::new();
            for (net_name, volts) in CONTROL_VARS.iter().zip(plan.voltages) {
                let net = circuit.require_net(net_name).expect("static nets exist");
                stimulus.force(net, volts);
            }
            let tests: Vec<TestDef> = OBSERVED_VARS
                .iter()
                .enumerate()
                .map(|(oi, var)| {
                    let number = test_number(si, oi);
                    mapping.map_test(number, *var);
                    TestDef {
                        number,
                        name: format!("{}_{}", plan.name, var),
                        measured: circuit
                            .require_net(&format!("{var}_out"))
                            .expect("static nets exist"),
                        limits: Limits::new(plan.limits[oi].0, plan.limits[oi].1),
                    }
                })
                .collect();
            mapping.declare_suite(
                plan.name,
                CONTROL_VARS
                    .iter()
                    .zip(plan.control_states)
                    .map(|(n, s)| (*n, s)),
            );
            TestSuite {
                name: plan.name.into(),
                stimulus,
                tests,
            }
        })
        .collect();
    (program, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::circuit::circuit;
    use crate::regulator::model::model_spec;
    use abbd_ate::{test_device, NoiseModel};
    use abbd_blocks::Device;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn program_validates_against_circuit_and_spec() {
        let c = circuit();
        let (program, mapping) = test_program(&c);
        assert_eq!(program.suite_count(), 6);
        assert_eq!(program.test_count(), 30);
        program.validate(&c).unwrap();
        mapping.validate(&model_spec()).unwrap();
    }

    #[test]
    fn control_states_match_declared_voltages() {
        // Every declared control state band must contain the forced voltage
        // (the paper's enable-pin bands overlap, so check containment, not
        // first-match binning).
        let spec = model_spec();
        for plan in suite_plans() {
            for ((var, volts), state) in CONTROL_VARS
                .iter()
                .zip(plan.voltages)
                .zip(plan.control_states)
            {
                let v = spec.find(var).unwrap();
                let band = &v.bands[state];
                assert!(
                    band.contains(volts),
                    "suite {}: {var}={volts} V not in declared state {state} ({}..{})",
                    plan.name,
                    band.lo,
                    band.hi
                );
            }
        }
    }

    #[test]
    fn golden_device_passes_and_bins_to_healthy_states() {
        let c = circuit();
        let (program, _) = test_program(&c);
        let spec = model_spec();
        let mut rng = StdRng::seed_from_u64(77);
        let log = test_device(
            &c,
            &program,
            &Device::golden(&c),
            &NoiseModel::none(),
            &mut rng,
        )
        .unwrap();
        assert!(
            log.all_passed(),
            "golden device must pass the whole program"
        );
        for (si, plan) in suite_plans().iter().enumerate() {
            for (oi, var) in OBSERVED_VARS.iter().enumerate() {
                let number = test_number(si, oi);
                let record = log
                    .records
                    .iter()
                    .find(|r| r.test_number == number)
                    .unwrap();
                let state = spec.find(var).unwrap().bin(record.value);
                assert_eq!(
                    state,
                    Some(plan.healthy_states[oi]),
                    "suite {} {var}: {} V",
                    plan.name,
                    record.value
                );
            }
        }
    }

    #[test]
    fn test_numbers_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for si in 0..6 {
            for oi in 0..5 {
                assert!(seen.insert(test_number(si, oi)));
            }
        }
    }
}
