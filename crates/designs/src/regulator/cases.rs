//! The five diagnostic case studies of paper Table VI: test conditions,
//! observed responses, the expert's fail-block verdicts, and the physical
//! fault each case corresponds to in the behavioural circuit.

use crate::regulator::program::{suite_plans, OBSERVED_VARS};
use abbd_blocks::FaultMode;
use abbd_core::Observation;

/// One Table VI row.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Case label (`d1`..`d5`).
    pub id: &'static str,
    /// The test-program suite whose conditions the case was observed under.
    pub suite: &'static str,
    /// Controllable block states (paper "Controllable blocks / State").
    pub controls: [(&'static str, usize); 6],
    /// Observable block states (paper "Observable blocks / State").
    pub observables: [(&'static str, usize); 5],
    /// The paper's fail-block verdicts ("Fail blocks" column).
    pub expected_candidates: &'static [&'static str],
    /// The physical block fault that produces this signature in the
    /// behavioural circuit (used to re-simulate the case end to end).
    pub injected: (&'static str, FaultMode),
}

/// All five case studies, transcribed from Table VI.
pub fn case_studies() -> Vec<CaseStudy> {
    vec![
        CaseStudy {
            id: "d1",
            suite: "nominal_on",
            controls: [
                ("vp1", 2),
                ("vp1x", 4),
                ("vp2", 2),
                ("enb13_pin", 1),
                ("enb4_pin", 1),
                ("enbsw_pin", 1),
            ],
            observables: [
                ("reg1", 0),
                ("reg2", 1),
                ("reg3", 0),
                ("reg4", 0),
                ("sw", 0),
            ],
            expected_candidates: &["warnvpst", "hcbg"],
            injected: ("hcbg", FaultMode::Dead),
        },
        CaseStudy {
            id: "d2",
            suite: "nominal_on",
            controls: [
                ("vp1", 2),
                ("vp1x", 4),
                ("vp2", 2),
                ("enb13_pin", 1),
                ("enb4_pin", 1),
                ("enbsw_pin", 1),
            ],
            observables: [
                ("reg1", 0),
                ("reg2", 1),
                ("reg3", 0),
                ("reg4", 1),
                ("sw", 2),
            ],
            expected_candidates: &["enb13"],
            injected: ("enb13", FaultMode::Dead),
        },
        CaseStudy {
            id: "d3",
            suite: "intermediate_on",
            controls: [
                ("vp1", 1),
                ("vp1x", 3),
                ("vp2", 1),
                ("enb13_pin", 1),
                ("enb4_pin", 1),
                ("enbsw_pin", 1),
            ],
            observables: [
                ("reg1", 0),
                ("reg2", 1),
                ("reg3", 0),
                ("reg4", 0),
                ("sw", 0),
            ],
            expected_candidates: &["warnvpst"],
            injected: ("warnvpst", FaultMode::Dead),
        },
        CaseStudy {
            id: "d4",
            suite: "high_enable",
            controls: [
                ("vp1", 2),
                ("vp1x", 4),
                ("vp2", 2),
                ("enb13_pin", 3),
                ("enb4_pin", 3),
                ("enbsw_pin", 3),
            ],
            observables: [
                ("reg1", 0),
                ("reg2", 0),
                ("reg3", 0),
                ("reg4", 0),
                ("sw", 0),
            ],
            expected_candidates: &["lcbg"],
            injected: ("lcbg", FaultMode::Dead),
        },
        CaseStudy {
            id: "d5",
            suite: "nominal_on",
            controls: [
                ("vp1", 2),
                ("vp1x", 4),
                ("vp2", 2),
                ("enb13_pin", 1),
                ("enb4_pin", 1),
                ("enbsw_pin", 1),
            ],
            observables: [
                ("reg1", 1),
                ("reg2", 1),
                ("reg3", 1),
                ("reg4", 1),
                ("sw", 0),
            ],
            expected_candidates: &["enbsw"],
            injected: ("enbsw", FaultMode::Dead),
        },
    ]
}

impl CaseStudy {
    /// Builds the diagnostic observation: all controls and observables,
    /// with observables deviating from the suite's healthy states marked
    /// as failing.
    pub fn observation(&self) -> Observation {
        let plan = suite_plans()
            .into_iter()
            .find(|p| p.name == self.suite)
            .expect("case suites exist");
        let mut obs = Observation::new();
        for (name, state) in self.controls {
            obs.set(name, state);
        }
        for (i, (name, state)) in self.observables.into_iter().enumerate() {
            debug_assert_eq!(name, OBSERVED_VARS[i]);
            obs.set(name, state);
            if state != plan.healthy_states[i] {
                obs.mark_failing(name);
            }
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::circuit::circuit;
    use crate::regulator::model::model_spec;
    use crate::regulator::program::{test_number, test_program};
    use abbd_ate::{test_device, NoiseModel};
    use abbd_blocks::{Device, DeviceFaults, Fault};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn five_cases_with_known_suites() {
        let cases = case_studies();
        assert_eq!(cases.len(), 5);
        let suites: Vec<&str> = suite_plans().iter().map(|p| p.name).collect();
        for c in &cases {
            assert!(suites.contains(&c.suite), "{} uses unknown suite", c.id);
            assert!(!c.expected_candidates.is_empty());
        }
    }

    #[test]
    fn observations_mark_deviating_outputs() {
        let cases = case_studies();
        let d1 = &cases[0];
        let obs = d1.observation();
        assert_eq!(obs.len(), 11);
        assert!(obs.failing().contains(&"reg1".to_string()));
        assert!(obs.failing().contains(&"sw".to_string()));
        assert!(!obs.failing().contains(&"reg2".to_string()));
        // d3's reg1=0 matches the healthy intermediate state: not failing.
        let d3 = &cases[2];
        let obs3 = d3.observation();
        assert!(!obs3.failing().contains(&"reg1".to_string()));
        assert!(obs3.failing().contains(&"reg3".to_string()));
        // d5 fails only on sw.
        let d5 = &cases[4];
        assert_eq!(d5.observation().failing(), &["sw".to_string()]);
    }

    /// The central physical-fidelity check: injecting each case's fault
    /// into the behavioural circuit and running the test suite reproduces
    /// exactly the observable states Table VI lists.
    #[test]
    fn injected_faults_reproduce_table_vi_signatures() {
        let c = circuit();
        let (program, _) = test_program(&c);
        let spec = model_spec();
        let plans = suite_plans();
        let mut rng = StdRng::seed_from_u64(11);
        for case in case_studies() {
            let (block, mode) = case.injected;
            let id = c.require_block(block).unwrap();
            let mut dut = Device::golden(&c);
            dut.faults = DeviceFaults::single(Fault::new(id, mode));
            let log = test_device(&c, &program, &dut, &NoiseModel::none(), &mut rng).unwrap();
            let si = plans.iter().position(|p| p.name == case.suite).unwrap();
            for (oi, (var, expected_state)) in case.observables.into_iter().enumerate() {
                let number = test_number(si, oi);
                let record = log
                    .records
                    .iter()
                    .find(|r| r.test_number == number)
                    .unwrap();
                let got = spec.find(var).unwrap().bin(record.value);
                assert_eq!(
                    got,
                    Some(expected_state),
                    "case {}: {var} measured {} V, expected state {expected_state}",
                    case.id,
                    record.value
                );
            }
        }
    }
}
