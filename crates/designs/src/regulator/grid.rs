//! The regulator's stimulus-grid diagnosis rig: a supply × enable test
//! family, a noise-calibrated fault-hypothesis model, and the closed
//! loop that isolates a seeded fault from a 60-candidate menu.
//!
//! The paper's program picks six hand-chosen stimulus corners; this
//! module sweeps the primary supply `vp1` across six levels crossed with
//! the 1.3 V-domain enable pin, measures all five outputs at every grid
//! point, and lets `rank_actions` choose among the resulting 60
//! candidates. The model is the scenario engine's single-latent
//! hypothesis fit: one state per catalogue fault (plus a degraded
//! `sw_out` instrument and "healthy"), observable CPTs Monte-Carlo
//! calibrated under the production noise model.

use crate::error::Result;
use crate::regulator::{circuit, faults};
use abbd_ate::NoiseModel;
use abbd_blocks::{Circuit, Device, DeviceFaults, Fault};
use abbd_core::{
    CompiledModel, DecisionTrace, DiagnosisSession, SequentialOutcome, StoppingPolicy, Strategy,
};
use abbd_scenarios::{
    fit_fault_hypotheses, FamilyMeasure, FamilyProgram, FaultEntry, FaultKind, FaultLibrary,
    HypothesisFit, McFitConfig, StimulusAxis, TestFamily,
};
use std::sync::Arc;

/// Seconds one probe costs on the grid bench (tests are priced by the
/// family's timing).
pub const GRID_PROBE_SECONDS: f64 = 30.0;

/// The supply × enable stimulus family: `vp1` at six levels crossed with
/// `enb13_pin` off/on, the three remaining supplies and enables held at
/// their nominal-on levels, all five outputs measured at every point —
/// 12 suites, 60 candidates.
pub fn grid_family() -> TestFamily {
    TestFamily::new("grid")
        .hold("vp1x", 15.0)
        .hold("vp2", 8.0)
        .hold("enb4_pin", 1.2)
        .hold("enbsw_pin", 1.2)
        .sweep(StimulusAxis::new("vp1", [2.0, 6.5, 9.0, 12.0, 16.0, 20.0]))
        .sweep(StimulusAxis::new("enb13_pin", [0.0, 1.2]))
        .measure(FamilyMeasure::new("reg1_out", 0.35, 25.0))
        .measure(FamilyMeasure::new("reg2_out", 0.25, 25.0))
        .measure(FamilyMeasure::new("reg3_out", 0.25, 25.0))
        .measure(FamilyMeasure::new("reg4_out", 0.16, 25.0))
        .measure(FamilyMeasure::new("sw_out", 0.6, 25.0))
        .timing(1.0, 5.0)
}

/// The grid's hypothesis library: the full device-fault catalogue plus a
/// degraded instrument on the switched output's measurement path, so the
/// hypothesis space also spans "the rack is lying about `sw_out`".
pub fn grid_library() -> FaultLibrary {
    let mut library = faults::fault_library();
    library.add("sw_out", FaultKind::DegradedInstrument(250.0), 0.4);
    library
}

/// The grid stopping policy. The hypothesis model has a single latent,
/// so isolation-by-fault-mass is meaningless (the latent always carries
/// the whole mass); the loop instead runs until no candidate offers
/// gain, like the paper's exhaustive baseline but pruned by VOI.
pub fn grid_policy() -> StoppingPolicy {
    StoppingPolicy {
        fault_mass_threshold: 1.0,
        max_steps: 32,
        min_gain: 1e-3,
    }
}

/// The assembled grid rig: circuit, discretised family, fitted
/// hypothesis model and its compiled form.
#[derive(Debug)]
pub struct GridRig {
    /// The behavioural regulator circuit.
    pub circuit: Circuit,
    /// The discretised supply × enable family (12 suites, 60 tests).
    pub program: FamilyProgram,
    /// The noise-calibrated hypothesis fit.
    pub fit: HypothesisFit,
    /// The fit's model, compiled for sessions.
    pub compiled: Arc<CompiledModel>,
}

/// Builds the grid rig with the default Monte-Carlo fit configuration.
///
/// # Errors
///
/// Propagates family discretisation, fit and compile failures.
pub fn grid_rig() -> Result<GridRig> {
    grid_rig_with(&McFitConfig::default())
}

/// [`grid_rig`] with an explicit fit configuration (benches shrink the
/// sample count).
///
/// # Errors
///
/// Propagates family discretisation, fit and compile failures.
pub fn grid_rig_with(cfg: &McFitConfig) -> Result<GridRig> {
    let circuit = circuit::circuit();
    let program = grid_family().discretize(&circuit)?;
    let fit = fit_fault_hypotheses(
        &circuit,
        &grid_library(),
        &program,
        &NoiseModel::production(),
        cfg,
    )?;
    let compiled = CompiledModel::compile(fit.model.clone())?.shared();
    Ok(GridRig {
        circuit,
        program,
        fit,
        compiled,
    })
}

/// Fabricates the device a library entry describes: golden part plus the
/// entry's fault for device kinds, a plain golden part for instrument
/// kinds (the defect is in the rack, not the part).
///
/// # Errors
///
/// Propagates unknown-block lookups.
pub fn device_for_entry(circuit: &Circuit, entry: &FaultEntry, id: u64) -> Result<Device> {
    let mut device = Device::golden(circuit);
    device.id = id;
    if let Some(mode) = entry.kind.device_mode() {
        let block = circuit.require_block(&entry.target)?;
        device.faults = DeviceFaults::single(Fault::new(block, mode));
    }
    Ok(device)
}

/// The bench noise a library entry's scenario is measured under: the
/// production rack, degraded per the entry for instrument kinds.
pub fn noise_for_entry(entry: &FaultEntry) -> NoiseModel {
    match entry.kind {
        FaultKind::DegradedInstrument(factor) => {
            NoiseModel::production().degraded(entry.target.clone(), factor)
        }
        _ => NoiseModel::production(),
    }
}

/// Runs the closed loop over the full 60-candidate grid menu for one
/// device: cost-weighted candidate selection under the family's
/// suite-switch pricing, measurements executed on demand through the
/// virtual ATE, full decision trace captured. Returns the outcome, the
/// trace, and the hypothesis tag the final posterior puts on top.
///
/// # Errors
///
/// Propagates session and bench failures.
pub fn diagnose_device(
    rig: &GridRig,
    device: &Device,
    noise: &NoiseModel,
    seed: u64,
) -> Result<(SequentialOutcome, DecisionTrace, String)> {
    let mut session = DiagnosisSession::new(Arc::clone(&rig.compiled), grid_policy())?;
    session.set_strategy(Strategy::CostWeighted)?;
    session.set_cost_model(rig.program.cost_model(GRID_PROBE_SECONDS)?)?;
    session.set_actions(rig.program.actions())?;
    let tester = rig.program.tester(&rig.circuit)?;
    let spec = rig.fit.model.circuit_model().spec();
    let bench = tester.session(device, noise.clone(), seed);
    let executor = rig.program.executor(spec, bench);
    let (outcome, trace) = session.run_traced(executor)?;
    let posterior = outcome
        .diagnosis
        .posterior_of(&rig.fit.fault_var)
        .expect("hypothesis latent has a posterior");
    let top = posterior
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(s, _)| rig.fit.tags[s].clone())
        .expect("hypothesis latent has states");
    Ok((outcome, trace, top))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_grid_shape() {
        let fam = grid_family();
        assert_eq!(fam.grid_size(), 12);
        assert_eq!(fam.candidate_count(), 60);
    }

    #[test]
    fn discretized_program_validates() {
        let circuit = circuit::circuit();
        let program = grid_family().discretize(&circuit).expect("grid builds");
        assert_eq!(program.program.suite_count(), 12);
        assert_eq!(program.program.test_count(), 60);
        assert_eq!(program.variables.len(), 60);
        // Per-family pricing: candidates in different suites pay the
        // switch, candidates in the active suite do not.
        let mut cost = program.cost_model(GRID_PROBE_SECONDS).expect("cost builds");
        let (first, _, first_suite) = program.var_test[0].clone();
        let (last, _, last_suite) = program.var_test[59].clone();
        assert_ne!(first_suite, last_suite);
        cost.set_current_suite(Some(first_suite));
        assert!(cost.cost_of(&last, false) > cost.cost_of(&first, false));
    }
}
