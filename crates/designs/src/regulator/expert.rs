//! The product designer's rough CPT estimate for the regulator (the paper:
//! "the product designer initially provided a rough estimate of the
//! conditional probability tables for all circuit model variables").
//!
//! Tables are generated from the block logic with explicit leak
//! probabilities — the designer's belief about how often each block
//! misbehaves despite healthy inputs. The leak asymmetries matter for the
//! case studies: `hcbg` is believed to fail mostly at nominal/load-dump
//! supply (stress-related), which is what lets case d3 exonerate it while
//! case d1 cannot.

use abbd_core::ExpertKnowledge;

/// Enumerates parent configurations (last parent fastest) and builds one
/// CPT row per configuration.
pub(crate) fn rule_rows<F>(parent_cards: &[usize], rule: F) -> Vec<Vec<f64>>
where
    F: Fn(&[usize]) -> Vec<f64>,
{
    let configs: usize = parent_cards.iter().product::<usize>().max(1);
    let mut rows = Vec::with_capacity(configs);
    let mut assignment = vec![0usize; parent_cards.len()];
    for _ in 0..configs {
        rows.push(rule(&assignment));
        for pos in (0..parent_cards.len()).rev() {
            assignment[pos] += 1;
            if assignment[pos] == parent_cards[pos] {
                assignment[pos] = 0;
            } else {
                break;
            }
        }
    }
    rows
}

/// `true` when an enable-pin state index means "pin asserted" (all bands
/// except `2` (below threshold) and `4` (ground) sit above the 0.4 V
/// assertion threshold).
fn pin_asserted(state: usize) -> bool {
    matches!(state, 0 | 1 | 3)
}

/// The expert estimate with the given equivalent sample size.
pub fn expert_knowledge(equivalent_sample_size: f64) -> ExpertKnowledge {
    let mut e = ExpertKnowledge::new(equivalent_sample_size);

    // Priors over the controllable conditions (overwritten by the observed
    // condition frequencies during fine-tuning).
    e.cpt("vp1", [vec![0.20, 0.30, 0.40, 0.10]]);
    e.cpt("vp1x", [vec![0.15, 0.05, 0.05, 0.15, 0.60]]);
    e.cpt("vp2", [vec![0.20, 0.20, 0.50, 0.10]]);
    for pin in ["enb13_pin", "enb4_pin", "enbsw_pin"] {
        e.cpt(pin, [vec![0.05, 0.45, 0.05, 0.30, 0.15]]);
    }

    // lcbg | vp1 — alive from intermediate supply upwards.
    e.cpt(
        "lcbg",
        rule_rows(&[4], |pa| match pa[0] {
            0 => vec![0.90, 0.07, 0.02, 0.01],
            3 => vec![0.06, 0.85, 0.05, 0.04],
            _ => vec![0.06, 0.90, 0.03, 0.01],
        }),
    );

    // vx | enb13_pin, enb4_pin, enbsw_pin — OR of the assertions. The OR
    // gate is passive and regarded as near-perfectly reliable.
    e.cpt(
        "vx",
        rule_rows(&[5, 5, 5], |pa| {
            if pa.iter().any(|&s| pin_asserted(s)) {
                vec![0.005, 0.995]
            } else {
                vec![0.99, 0.01]
            }
        }),
    );

    // enblSen | vx, lcbg — AND of vx asserted and lcbg nominal; also a
    // simple, reliable gate.
    e.cpt(
        "enblSen",
        rule_rows(&[2, 4], |pa| {
            if pa[0] == 1 && pa[1] == 1 {
                vec![0.004, 0.996]
            } else {
                vec![0.99, 0.01]
            }
        }),
    );

    // hcbg | vp1, enblSen — the supply-stress asymmetry: the designer
    // believes hcbg defects manifest at nominal/load-dump supply.
    e.cpt(
        "hcbg",
        rule_rows(&[4, 2], |pa| match (pa[0], pa[1]) {
            (0, 1) => vec![0.90, 0.10],
            (1, 1) => vec![0.01, 0.99],
            (_, 1) => vec![0.07, 0.93],
            _ => vec![0.97, 0.03],
        }),
    );

    // warnvpst | lcbg, hcbg — AND of both bandgaps healthy; the supply
    // monitor itself is believed to be the most failure-prone gate.
    e.cpt(
        "warnvpst",
        rule_rows(&[4, 2], |pa| {
            if pa[0] == 1 && pa[1] == 1 {
                vec![0.12, 0.88]
            } else {
                vec![0.96, 0.04]
            }
        }),
    );

    // Internal enables | warnvpst, pin.
    for enable in ["enb13", "enb4", "enbsw"] {
        e.cpt(
            enable,
            rule_rows(&[2, 5], |pa| {
                if pa[0] == 1 && pin_asserted(pa[1]) {
                    vec![0.08, 0.92]
                } else {
                    vec![0.97, 0.03]
                }
            }),
        );
    }

    // reg1 | vp1, enb13, hcbg — 8.5 V output needs nominal supply.
    e.cpt(
        "reg1",
        rule_rows(&[4, 2, 2], |pa| match (pa[0], pa[1], pa[2]) {
            (2, 1, 1) => vec![0.05, 0.90, 0.04, 0.01],
            (3, 1, 1) => vec![0.05, 0.85, 0.09, 0.01],
            (_, 1, 1) => vec![0.93, 0.04, 0.02, 0.01],
            _ => vec![0.95, 0.02, 0.02, 0.01],
        }),
    );
    // reg3 | vp1, enb13, hcbg — 5 V output regulates from intermediate up.
    e.cpt(
        "reg3",
        rule_rows(&[4, 2, 2], |pa| match (pa[0], pa[1], pa[2]) {
            (0, 1, 1) => vec![0.95, 0.03, 0.01, 0.01],
            (1, 1, 1) => vec![0.10, 0.85, 0.04, 0.01],
            (_, 1, 1) => vec![0.05, 0.90, 0.04, 0.01],
            _ => vec![0.95, 0.02, 0.02, 0.01],
        }),
    );
    // reg4 | vp1, enb4, hcbg — 3.3 V output regulates from intermediate up.
    e.cpt(
        "reg4",
        rule_rows(&[4, 2, 2], |pa| match (pa[0], pa[1], pa[2]) {
            (0, 1, 1) => vec![0.90, 0.07, 0.02, 0.01],
            (_, 1, 1) => vec![0.05, 0.90, 0.04, 0.01],
            _ => vec![0.95, 0.02, 0.02, 0.01],
        }),
    );
    // reg2 | vp2, lcbg — always-on, referenced from lcbg.
    e.cpt(
        "reg2",
        rule_rows(&[4, 4], |pa| match (pa[0], pa[1]) {
            (0, 1) => vec![0.95, 0.03, 0.01, 0.01],
            (_, 1) => vec![0.05, 0.90, 0.04, 0.01],
            _ => vec![0.90, 0.04, 0.05, 0.01],
        }),
    );
    // sw | vp1x, enbsw — level-dependent: high battery engages the clamp.
    e.cpt(
        "sw",
        rule_rows(&[5, 2], |pa| match (pa[0], pa[1]) {
            (4, 1) => vec![0.025, 0.25, 0.695, 0.03],
            (3, 1) => vec![0.90, 0.07, 0.02, 0.01],
            (0, 1) => vec![0.97, 0.01, 0.01, 0.01],
            (_, 1) => vec![0.93, 0.04, 0.02, 0.01],
            _ => vec![0.96, 0.02, 0.01, 0.01],
        }),
    );

    e
}

/// A deliberately *rough* version of the expert estimate: every CPT row is
/// blended halfway towards uniform, washing out the calibration while
/// keeping the directional structure. This models the paper's starting
/// point — "a rough estimate of the conditional probability tables" — and
/// is what the knowledge-source ablation fine-tunes.
pub fn rough_expert_knowledge(equivalent_sample_size: f64) -> ExpertKnowledge {
    let sharp = expert_knowledge(equivalent_sample_size);
    let spec = crate::regulator::model::model_spec();
    let mut rough = ExpertKnowledge::new(equivalent_sample_size);
    for v in spec.variables() {
        let Some(table) = sharp.table(&v.name) else {
            continue;
        };
        let card = v.card();
        let uniform = 1.0 / card as f64;
        let rows: Vec<Vec<f64>> = table
            .chunks(card)
            .map(|row| row.iter().map(|p| 0.5 * p + 0.5 * uniform).collect())
            .collect();
        rough.cpt(v.name.clone(), rows);
    }
    rough
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regulator::model::circuit_model;
    use abbd_core::ModelBuilder;

    #[test]
    fn rule_rows_enumerates_last_parent_fastest() {
        let rows = rule_rows(&[2, 3], |pa| vec![pa[0] as f64, pa[1] as f64]);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], vec![0.0, 0.0]);
        assert_eq!(rows[1], vec![0.0, 1.0]);
        assert_eq!(rows[2], vec![0.0, 2.0]);
        assert_eq!(rows[3], vec![1.0, 0.0]);
        // No parents: a single row.
        let prior = rule_rows(&[], |_| vec![0.5, 0.5]);
        assert_eq!(prior.len(), 1);
    }

    #[test]
    fn expert_tables_fit_the_model() {
        let expert = expert_knowledge(30.0);
        let dm = ModelBuilder::new(circuit_model())
            .with_expert(expert)
            .build_expert_only()
            .unwrap();
        // Every CPT validated at build time; spot-check one asymmetry.
        let net = dm.network();
        let hcbg = net.var("hcbg").unwrap();
        // parents: vp1, enblSen (last fastest): row (vp1=2, enblSen=1).
        let nominal = net.cpt_row(hcbg, &[2, 1]).unwrap();
        let intermediate = net.cpt_row(hcbg, &[1, 1]).unwrap();
        assert!(
            nominal[0] > intermediate[0],
            "designer believes hcbg fails more at nominal supply"
        );
    }

    #[test]
    fn pin_assertion_convention() {
        assert!(pin_asserted(0));
        assert!(pin_asserted(1));
        assert!(!pin_asserted(2));
        assert!(pin_asserted(3));
        assert!(!pin_asserted(4));
    }

    #[test]
    fn rough_expert_is_a_uniform_blend() {
        let sharp = expert_knowledge(10.0);
        let rough = rough_expert_knowledge(10.0);
        let sharp_warn = sharp.table("warnvpst").unwrap();
        let rough_warn = rough.table("warnvpst").unwrap();
        assert_eq!(sharp_warn.len(), rough_warn.len());
        for (s, r) in sharp_warn.iter().zip(rough_warn) {
            assert!((r - (0.5 * s + 0.25)).abs() < 1e-12);
        }
        // Rows still sum to one, so the model builds.
        let dm = ModelBuilder::new(circuit_model())
            .with_expert(rough)
            .build_expert_only()
            .unwrap();
        assert_eq!(dm.network().var_count(), 19);
    }
}
