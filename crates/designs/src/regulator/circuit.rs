//! The behavioural block-level circuit of the multiple-output voltage
//! regulator (paper Fig. 2): a battery-supplied automotive regulator with
//! four regulated outputs, a high-side power switch, dual bandgap
//! references and supply-status gating of the output enables.
//!
//! Physical narrative (reconstructed from the paper's §IV):
//!
//! * `lcbg` — the always-on low-current bandgap, supplied from `vp1`; it
//!   references the always-on `reg2` and the enable-sense logic.
//! * `vx` — the OR of the three enable pins (paper: "the or-functionality
//!   of the enblx inputs").
//! * `enblSen` — enable sense: wakes the high-current machinery when any
//!   enable pin is asserted *and* the low-current bandgap is alive.
//! * `hcbg` — the high-current bandgap, powered from `vp1`, gated by
//!   `enblSen`; it references the three switched regulators.
//! * `warnvpst` — the supply-status flag: asserted only when both bandgaps
//!   are healthy; it gates every output enable.
//! * `enb13`, `enb4`, `enbsw` — internal enables combining `warnvpst` with
//!   the corresponding pin.
//! * `reg1` (8.5 V), `reg3` (5 V), `reg4` (3.3 V) — switched regulators
//!   from `vp1`; `reg2` (5 V) — always-on regulator from `vp2`; `sw` — the
//!   high-side power switch from `vp1x` with a 16 V clamp.

use abbd_blocks::{Behavior, Circuit, CircuitBuilder, LogicOp, Window};

/// Net names of the regulator's external inputs, in stimulus order.
pub const INPUT_NETS: [&str; 6] = ["vp1", "vp1x", "vp2", "enb13_pin", "enb4_pin", "enbsw_pin"];

/// Net names of the regulator's measured outputs.
pub const OUTPUT_NETS: [&str; 5] = ["sw_out", "reg1_out", "reg2_out", "reg3_out", "reg4_out"];

/// Pin voltage above which an enable input counts as asserted.
pub const PIN_THRESHOLD: f64 = 0.4;

/// Builds the voltage-regulator circuit.
///
/// Block names deliberately match the paper's model-variable names
/// (Table V) so the model layer can map blocks to variables by name.
pub fn circuit() -> Circuit {
    let mut cb = CircuitBuilder::new();
    let vp1 = cb.net("vp1").expect("fresh builder");
    let vp1x = cb.net("vp1x").expect("fresh builder");
    let vp2 = cb.net("vp2").expect("fresh builder");
    let enb13_pin = cb.net("enb13_pin").expect("fresh builder");
    let enb4_pin = cb.net("enb4_pin").expect("fresh builder");
    let enbsw_pin = cb.net("enbsw_pin").expect("fresh builder");
    let lcbg_out = cb.net("lcbg_out").expect("fresh builder");
    let vx_out = cb.net("vx_out").expect("fresh builder");
    let enblsen_out = cb.net("enblsen_out").expect("fresh builder");
    let hcbg_out = cb.net("hcbg_out").expect("fresh builder");
    let warnvpst_out = cb.net("warnvpst_out").expect("fresh builder");
    let enb13_out = cb.net("enb13_out").expect("fresh builder");
    let enb4_out = cb.net("enb4_out").expect("fresh builder");
    let enbsw_out = cb.net("enbsw_out").expect("fresh builder");
    let sw_out = cb.net("sw_out").expect("fresh builder");
    let reg1_out = cb.net("reg1_out").expect("fresh builder");
    let reg2_out = cb.net("reg2_out").expect("fresh builder");
    let reg3_out = cb.net("reg3_out").expect("fresh builder");
    let reg4_out = cb.net("reg4_out").expect("fresh builder");

    let pin_window = Window::new(PIN_THRESHOLD, 100.0);
    let logic_levels = (0.1, 5.0); // (out_low, out_high)

    cb.block_with_spread(
        "lcbg",
        Behavior::Reference {
            nominal: 1.2,
            min_supply: 3.5,
        },
        [vp1],
        lcbg_out,
        0.01,
        0.005,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "vx",
        Behavior::Logic {
            op: LogicOp::Or,
            windows: vec![pin_window, pin_window, pin_window],
            out_low: logic_levels.0,
            out_high: logic_levels.1,
        },
        [enb13_pin, enb4_pin, enbsw_pin],
        vx_out,
        0.02,
        0.02,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "enblSen",
        Behavior::Logic {
            op: LogicOp::And,
            windows: vec![Window::new(1.1, 100.0), Window::new(1.05, 1.35)],
            out_low: logic_levels.0,
            out_high: logic_levels.1,
        },
        [vx_out, lcbg_out],
        enblsen_out,
        0.02,
        0.02,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "hcbg",
        Behavior::Regulator {
            nominal: 1.2,
            dropout: 0.8,
            enable_threshold: 2.5,
            reference: Window::new(0.0, 200.0),
        },
        [vp1, enblsen_out, vp1],
        hcbg_out,
        0.01,
        0.005,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "warnvpst",
        Behavior::Logic {
            op: LogicOp::And,
            windows: vec![Window::new(1.05, 1.35), Window::new(1.1, 100.0)],
            out_low: logic_levels.0,
            out_high: logic_levels.1,
        },
        [lcbg_out, hcbg_out],
        warnvpst_out,
        0.02,
        0.02,
    )
    .expect("static netlist");
    for (name, pin, out) in [
        ("enb13", enb13_pin, enb13_out),
        ("enb4", enb4_pin, enb4_out),
        ("enbsw", enbsw_pin, enbsw_out),
    ] {
        cb.block_with_spread(
            name,
            Behavior::Logic {
                op: LogicOp::And,
                windows: vec![Window::new(2.5, 100.0), pin_window],
                out_low: logic_levels.0,
                out_high: logic_levels.1,
            },
            [warnvpst_out, pin],
            out,
            0.02,
            0.02,
        )
        .expect("static netlist");
    }
    let reference = Window::new(1.05, 1.35);
    cb.block_with_spread(
        "reg1",
        Behavior::Regulator {
            nominal: 8.5,
            dropout: 1.0,
            enable_threshold: 2.5,
            reference,
        },
        [vp1, enb13_out, hcbg_out],
        reg1_out,
        0.005,
        0.01,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "reg3",
        Behavior::Regulator {
            nominal: 5.0,
            dropout: 1.0,
            enable_threshold: 2.5,
            reference,
        },
        [vp1, enb13_out, hcbg_out],
        reg3_out,
        0.005,
        0.01,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "reg4",
        Behavior::Regulator {
            nominal: 3.3,
            dropout: 0.7,
            enable_threshold: 2.5,
            reference,
        },
        [vp1, enb4_out, hcbg_out],
        reg4_out,
        0.005,
        0.01,
    )
    .expect("static netlist");
    // reg2 is the always-on regulator: its enable rides on its own supply.
    cb.block_with_spread(
        "reg2",
        Behavior::Regulator {
            nominal: 5.0,
            dropout: 0.8,
            enable_threshold: 2.5,
            reference,
        },
        [vp2, vp2, lcbg_out],
        reg2_out,
        0.005,
        0.01,
    )
    .expect("static netlist");
    cb.block_with_spread(
        "sw",
        Behavior::Switch {
            drop: 0.3,
            clamp: 16.0,
            enable_threshold: 2.5,
        },
        [vp1x, enbsw_out],
        sw_out,
        0.005,
        0.02,
    )
    .expect("static netlist");

    cb.build().expect("static netlist always validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_blocks::{Device, DeviceFaults, Fault, FaultMode, SimConfig, Simulator, Stimulus};

    fn nominal_stimulus(c: &Circuit) -> Stimulus {
        let mut s = Stimulus::new();
        s.force(c.find_net("vp1").unwrap(), 12.0);
        s.force(c.find_net("vp1x").unwrap(), 15.0);
        s.force(c.find_net("vp2").unwrap(), 8.0);
        s.force(c.find_net("enb13_pin").unwrap(), 1.2);
        s.force(c.find_net("enb4_pin").unwrap(), 1.2);
        s.force(c.find_net("enbsw_pin").unwrap(), 1.2);
        s
    }

    #[test]
    fn structure_inventory() {
        let c = circuit();
        assert_eq!(c.block_count(), 13);
        assert_eq!(c.net_count(), 19);
        let inputs: Vec<&str> = c.input_nets().iter().map(|n| c.net_name(*n)).collect();
        assert_eq!(inputs, INPUT_NETS.to_vec());
        for name in OUTPUT_NETS {
            assert!(c.find_net(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn healthy_nominal_operating_point() {
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let op = sim
            .solve(&Device::golden(&c), &nominal_stimulus(&c))
            .unwrap();
        let v = |name: &str| op.voltage(c.find_net(name).unwrap());
        assert!((v("lcbg_out") - 1.2).abs() < 1e-9);
        assert!((v("hcbg_out") - 1.2).abs() < 1e-9);
        assert!(v("warnvpst_out") > 2.5);
        assert!(v("enb13_out") > 2.5);
        assert!((v("reg1_out") - 8.5).abs() < 1e-9);
        assert!((v("reg2_out") - 5.0).abs() < 1e-9);
        assert!((v("reg3_out") - 5.0).abs() < 1e-9);
        assert!((v("reg4_out") - 3.3).abs() < 1e-9);
        assert!((v("sw_out") - 14.7).abs() < 1e-9);
    }

    #[test]
    fn grounded_pins_switch_everything_off_except_reg2() {
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = nominal_stimulus(&c);
        for pin in ["enb13_pin", "enb4_pin", "enbsw_pin"] {
            stim.force(c.find_net(pin).unwrap(), 0.0);
        }
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        let v = |name: &str| op.voltage(c.find_net(name).unwrap());
        assert!(v("vx_out") < 1.0, "no pin asserted");
        assert!(v("reg1_out") < 0.2);
        assert!(v("reg3_out") < 0.2);
        assert!(v("reg4_out") < 0.2);
        assert!(v("sw_out") < 0.2);
        assert!((v("reg2_out") - 5.0).abs() < 1e-9, "reg2 is always on");
    }

    #[test]
    fn dead_lcbg_kills_reg2_too() {
        // Paper case d4's physical mechanism.
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let lcbg = c.find_block("lcbg").unwrap();
        let mut dut = Device::golden(&c);
        dut.faults = DeviceFaults::single(Fault::new(lcbg, FaultMode::Dead));
        let op = sim.solve(&dut, &nominal_stimulus(&c)).unwrap();
        let v = |name: &str| op.voltage(c.find_net(name).unwrap());
        assert!(v("reg2_out") < 0.2, "reg2 loses its reference");
        assert!(v("hcbg_out") < 0.2, "enable sense drops");
        assert!(v("reg1_out") < 0.2);
        assert!(v("sw_out") < 0.2);
    }

    #[test]
    fn dead_hcbg_mimics_dead_warnvpst() {
        // Paper case d1's ambiguity: hcbg-dead and warnvpst-dead produce
        // the same observable signature.
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let stim = nominal_stimulus(&c);
        let observed = |fault_block: &str| {
            let b = c.find_block(fault_block).unwrap();
            let mut dut = Device::golden(&c);
            dut.faults = DeviceFaults::single(Fault::new(b, FaultMode::Dead));
            let op = sim.solve(&dut, &stim).unwrap();
            OUTPUT_NETS
                .iter()
                .map(|n| op.voltage(c.find_net(n).unwrap()))
                .collect::<Vec<f64>>()
        };
        let via_hcbg = observed("hcbg");
        let via_warn = observed("warnvpst");
        for (a, b) in via_hcbg.iter().zip(&via_warn) {
            assert!((a - b).abs() < 1e-9, "signatures must coincide: {a} vs {b}");
        }
        // reg2 survives in both.
        assert!((via_hcbg[2] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn dead_enb13_spares_reg4_and_sw() {
        // Paper case d2's signature.
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let b = c.find_block("enb13").unwrap();
        let mut dut = Device::golden(&c);
        dut.faults = DeviceFaults::single(Fault::new(b, FaultMode::Dead));
        let op = sim.solve(&dut, &nominal_stimulus(&c)).unwrap();
        let v = |name: &str| op.voltage(c.find_net(name).unwrap());
        assert!(v("reg1_out") < 0.2);
        assert!(v("reg3_out") < 0.2);
        assert!((v("reg4_out") - 3.3).abs() < 1e-9);
        assert!((v("sw_out") - 14.7).abs() < 1e-9);
    }

    #[test]
    fn intermediate_supply_drops_reg1_naturally() {
        // Paper case d3's test condition: healthy devices already show
        // reg1 below regulation.
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(c.find_net("vp1").unwrap(), 6.5);
        stim.force(c.find_net("vp1x").unwrap(), 7.0);
        stim.force(c.find_net("vp2").unwrap(), 5.9);
        for pin in ["enb13_pin", "enb4_pin", "enbsw_pin"] {
            stim.force(c.find_net(pin).unwrap(), 1.2);
        }
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        let v = |name: &str| op.voltage(c.find_net(name).unwrap());
        assert!((v("reg1_out") - 5.5).abs() < 1e-9, "tracks vp1 - dropout");
        assert!((v("reg3_out") - 5.0).abs() < 1e-9, "still in regulation");
        assert!((v("reg4_out") - 3.3).abs() < 1e-9);
        assert!(
            (v("reg2_out") - 5.0).abs() < 1e-9,
            "5.9 V leaves just enough headroom"
        );
        assert!((v("sw_out") - 6.7).abs() < 1e-9);
    }

    #[test]
    fn loaddump_engages_switch_clamp() {
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(c.find_net("vp1").unwrap(), 20.0);
        stim.force(c.find_net("vp1x").unwrap(), 20.0);
        stim.force(c.find_net("vp2").unwrap(), 16.0);
        for pin in ["enb13_pin", "enb4_pin", "enbsw_pin"] {
            stim.force(c.find_net(pin).unwrap(), 1.2);
        }
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        let v = |name: &str| op.voltage(c.find_net(name).unwrap());
        assert!((v("sw_out") - 16.0).abs() < 1e-9, "clamped");
        assert!((v("reg1_out") - 8.5).abs() < 1e-9);
    }
}
