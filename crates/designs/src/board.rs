//! A parameterised synthetic multi-regulator board: the scale testbed
//! for hierarchical block-level diagnosis.
//!
//! The paper's industrial regulator has a few dozen model variables — big
//! enough to prove the method, too small to show why a board-level
//! abstraction pays. This module fabricates boards of `N` regulator-like
//! blocks hanging off two shared rails (`vin` supply, `vload` load
//! profile), seven variables per block:
//!
//! ```text
//!   vin ──► biasNN ──► bgNN ──► regNN ──► drvNN ──► outNN   (summary)
//!                        │         ▲         ├────► ilimNN
//!                        └► auxNN  └── vload ┘
//! ```
//!
//! `bias`/`bg`/`reg`/`drv` are latent block states (state 0 = dead),
//! `out` is the block's board-level summary observable, `aux` and `ilim`
//! its block-internal specification tests. With `N = 14` the board has
//! exactly 100 variables; [`BoardConfig::blocks`] scales to 500+. Every
//! block's CPTs are deterministically jittered from the board seed, so
//! blocks are distinguishable and regenerated boards are byte-identical.
//!
//! The partition feeding [`HierarchicalModel::build`] uses the two rails
//! as the interface and one [`BlockSpec`] per regulator — satisfying the
//! extraction contract by construction (every block parent is in-block
//! or a rail; rails have no block ancestors).

use crate::error::Result;
use abbd_core::{
    Action, BlockSpec, CircuitModel, DiagnosticModel, ExpertKnowledge, HierarchicalModel,
    ModelBuilder, Outcome,
};
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Shape of a synthetic board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoardConfig {
    /// Number of regulator blocks (7 variables each, plus the 2 rails).
    pub blocks: usize,
    /// Board seed: drives the per-block CPT jitter deterministically.
    pub seed: u64,
}

impl Default for BoardConfig {
    /// 14 blocks → exactly 100 model variables.
    fn default() -> Self {
        BoardConfig {
            blocks: 14,
            seed: 2010,
        }
    }
}

impl BoardConfig {
    /// Total model variable count: `7 * blocks + 2`.
    pub fn variable_count(&self) -> usize {
        7 * self.blocks + 2
    }

    /// The name of block `k`'s hierarchy block (`regNN`).
    pub fn block_name(&self, k: usize) -> String {
        format!("reg{k:02}")
    }
}

/// Per-block variable names, in declaration order.
fn block_vars(k: usize) -> [String; 7] {
    [
        format!("bias{k:02}"),
        format!("bg{k:02}"),
        format!("reg_s{k:02}"),
        format!("drv{k:02}"),
        format!("out{k:02}"),
        format!("aux{k:02}"),
        format!("ilim{k:02}"),
    ]
}

fn latent(name: &str) -> VariableSpec {
    VariableSpec {
        name: name.into(),
        ftype: FunctionalType::Latent,
        bands: vec![
            StateBand::new("dead", 0.0, 1.0, "block state faulty"),
            StateBand::new("ok", 1.0, 2.0, "block state healthy"),
        ],
        ckt_ref: None,
    }
}

fn observable(name: &str) -> VariableSpec {
    VariableSpec {
        name: name.into(),
        ftype: FunctionalType::Observe,
        bands: vec![
            StateBand::new("fail", 0.0, 1.0, "out of specification"),
            StateBand::new("pass", 1.0, 2.0, "within specification"),
        ],
        ckt_ref: None,
    }
}

fn control(name: &str, low: &str, high: &str) -> VariableSpec {
    VariableSpec {
        name: name.into(),
        ftype: FunctionalType::Control,
        bands: vec![
            StateBand::new(low, 0.0, 1.0, "rail condition 0"),
            StateBand::new(high, 1.0, 2.0, "rail condition 1"),
        ],
        ckt_ref: None,
    }
}

/// The board's structure model: rails, blocks, and the dependency DAG.
pub fn circuit_model(config: &BoardConfig) -> Result<CircuitModel> {
    let mut vars = vec![
        control("vin", "low", "nominal"),
        control("vload", "light", "heavy"),
    ];
    for k in 0..config.blocks {
        let [bias, bg, reg, drv, out, aux, ilim] = block_vars(k);
        vars.extend([
            latent(&bias),
            latent(&bg),
            latent(&reg),
            latent(&drv),
            observable(&out),
            observable(&aux),
            observable(&ilim),
        ]);
    }
    let mut cm = CircuitModel::new(ModelSpec::new(vars)?);
    for k in 0..config.blocks {
        let [bias, bg, reg, drv, out, aux, ilim] = block_vars(k);
        cm.depends("vin", &bias)?;
        cm.depends(&bias, &bg)?;
        cm.depends("vload", &reg)?;
        cm.depends(&bg, &reg)?;
        cm.depends(&reg, &drv)?;
        cm.depends(&drv, &out)?;
        cm.depends(&bg, &aux)?;
        cm.depends(&drv, &ilim)?;
    }
    Ok(cm)
}

/// The product expert's CPT estimate for the whole board, jittered per
/// block from the board seed (same seed → byte-identical tables).
pub fn expert(config: &BoardConfig) -> ExpertKnowledge {
    let mut e = ExpertKnowledge::new(crate::regulator::DEFAULT_ESS);
    e.cpt("vin", [[0.15, 0.85]]);
    e.cpt("vload", [[0.45, 0.55]]);
    for k in 0..config.blocks {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(k as u64));
        // Jitter in [0, 0.02): enough to distinguish blocks, small
        // enough that every block behaves like a regulator. One draw per
        // CPT row, so every row still sums to 1 exactly.
        let mut row = move |p0: f64| -> [f64; 2] {
            let p = p0 + rng.gen_range(0.0..0.02);
            [p, 1.0 - p]
        };
        let [bias, bg, reg, drv, out, aux, ilim] = block_vars(k);
        e.cpt(&bias, [row(0.25), row(0.03)]);
        e.cpt(&bg, [row(0.90), row(0.02)]);
        // reg | vload, bg (bg fastest): a dead bandgap usually kills
        // regulation; heavy load stresses it further.
        e.cpt(&reg, [row(0.85), row(0.015), row(0.92), row(0.04)]);
        e.cpt(&drv, [row(0.88), row(0.025)]);
        e.cpt(&out, [row(0.95), row(0.02)]);
        e.cpt(&aux, [row(0.85), row(0.05)]);
        e.cpt(&ilim, [row(0.90), row(0.04)]);
    }
    e
}

/// The fitted flat board model (expert-only: the board is synthetic, so
/// the expert tables *are* the ground truth).
pub fn flat_model(config: &BoardConfig) -> Result<DiagnosticModel> {
    Ok(ModelBuilder::new(circuit_model(config)?)
        .with_expert(expert(config))
        .build_expert_only()?)
}

/// The block partition: rails as interface, one block per regulator,
/// `outNN` as each block's board-level summary test.
pub fn partition(config: &BoardConfig) -> Vec<BlockSpec> {
    (0..config.blocks)
        .map(|k| {
            let vars = block_vars(k);
            let out = vars[4].clone();
            BlockSpec::new(config.block_name(k), vars, [out])
        })
        .collect()
}

/// The compiled abstraction tree over the board: abstract root plus one
/// lazily compiled sub-model per regulator block.
pub fn hierarchy(config: &BoardConfig) -> Result<HierarchicalModel> {
    Ok(HierarchicalModel::build(
        flat_model(config)?,
        ["vin", "vload"],
        partition(config),
    )?)
}

/// A d1-style single-fault scenario: one block's driver is dead, every
/// other block state healthy, rails nominal — plus the deterministic
/// measurement outcome of every variable on the bench.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// The faulty block's hierarchy name (`regNN`).
    pub block: String,
    /// The dead latent (`drvNN`).
    pub fault: String,
    /// Ground-truth state of every model variable.
    pub truth: BTreeMap<String, usize>,
}

/// Builds the d1-style scenario with block `faulty`'s driver dead.
///
/// The ground truth is no longer hand-tabulated: the scenario engine
/// propagates the injected fault (`drvNN = 0` under nominal rails)
/// through the board's own fitted network by per-variable argmax
/// ([`abbd_scenarios::most_likely_truth`]), so the truth map follows the
/// CPTs — a dead driver fails the output and trips the current limit
/// while the bandgap-side aux test keeps passing, because the tables say
/// so, for any board size or seed.
pub fn d1_scenario(config: &BoardConfig, faulty: usize) -> FaultScenario {
    let fault = block_vars(faulty)[3].clone();
    let model = flat_model(config).expect("board spec is static");
    let forced = [
        ("vin".to_string(), 1),
        ("vload".to_string(), 0),
        (fault.clone(), 0),
    ];
    let truth = abbd_scenarios::most_likely_truth(model.network(), &forced)
        .expect("forced variables are in the board model");
    FaultScenario {
        block: config.block_name(faulty),
        fault,
        truth,
    }
}

/// A bench executor answering every test/probe from the scenario's
/// ground truth (state 0 reads as a limit failure).
pub fn scenario_executor(
    scenario: &FaultScenario,
) -> impl FnMut(&Action) -> abbd_core::Result<Outcome> + '_ {
    move |action: &Action| {
        let state = scenario
            .truth
            .get(action.target())
            .copied()
            .ok_or_else(|| abbd_core::Error::Oracle {
                variable: action.target().into(),
                reason: "not on the bench".into(),
            })?;
        Ok(Outcome {
            state,
            failing: state == 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_core::{HierarchicalSession, StoppingPolicy};

    #[test]
    fn default_board_has_100_variables() {
        let config = BoardConfig::default();
        assert_eq!(config.variable_count(), 100);
        let flat = flat_model(&config).expect("board builds");
        assert_eq!(flat.network().var_count(), 100);
    }

    #[test]
    fn board_is_deterministic() {
        let config = BoardConfig::default();
        let a = flat_model(&config).expect("board builds");
        let b = flat_model(&config).expect("board builds");
        assert_eq!(a.network().to_json(), b.network().to_json());
    }

    #[test]
    fn hierarchy_isolates_the_dead_driver() {
        let config = BoardConfig {
            blocks: 4,
            seed: 2010,
        };
        let tree = hierarchy(&config).expect("hierarchy builds").shared();
        let scenario = d1_scenario(&config, 2);
        let mut session = HierarchicalSession::new(tree.clone(), StoppingPolicy::default())
            .expect("session opens");
        let outcome = session
            .run(scenario_executor(&scenario))
            .expect("closed loop runs");
        assert_eq!(session.descended_block(), Some(scenario.block.as_str()));
        assert_eq!(
            outcome.diagnosis.top_candidate(),
            Some(scenario.fault.as_str()),
            "stop: {:?}, fault mass: {:?}",
            outcome.stop,
            outcome.diagnosis.fault_mass()
        );
        assert_eq!(tree.submodel_compiles(), 1);
    }
}
