//! Shared closed-loop scenario reporting: the adaptive-vs-fixed
//! comparison both reference designs run over sampled fault populations.
//!
//! A *closed-loop scenario* puts a faulty device on the virtual bench,
//! seeds a [`abbd_core::DiagnosisSession`] with the failing suite's
//! control states, and lets it order the suite's measurements two ways:
//! adaptively (expected information gain) and in fixed ATE program order.
//! Both runs share the stopping policy, so the comparison isolates the
//! *ordering* effect: how many tester measurements until a fault is
//! isolated (or the program exhausted).

use abbd_ate::DeviceSession;
use abbd_blocks::NetId;
use abbd_core::{
    Action, ActionExecutor, CostModel, DiagnosisSession, Outcome, SequentialOutcome, StopReason,
    StoppingPolicy, Strategy,
};
use abbd_dlog2bbn::ModelSpec;
use serde::{Deserialize, Serialize};

/// Executes one ATE test on the session and bins the reading into the
/// model's state bands — the shared measurement primitive behind every
/// live-bench oracle. Limit verdicts come straight from the executed
/// record.
///
/// A reading the spec cannot bin (NaN from a non-converged operating
/// point, or a voltage outside every declared band) comes back as
/// [`abbd_core::Error::Oracle`]: the closed loop cannot continue on this
/// device. Population drivers catch exactly that error and *skip the
/// device* instead of aborting the whole population — the sequential
/// counterpart of the one-shot case generator counting such readings as
/// unbinnable and moving on.
pub(crate) fn measure_on_bench(
    session: &mut DeviceSession<'_, '_>,
    spec: &ModelSpec,
    name: &str,
    number: u32,
) -> abbd_core::Result<Outcome> {
    let record = session
        .execute(number)
        .map_err(|e| abbd_core::Error::Oracle {
            variable: name.into(),
            reason: e.to_string(),
        })?;
    let state = spec
        .bin(name, record.value)
        .map_err(|e| abbd_core::Error::Oracle {
            variable: name.into(),
            reason: e.to_string(),
        })?
        .ok_or_else(|| abbd_core::Error::Oracle {
            variable: name.into(),
            reason: format!("{} V falls outside every state band", record.value),
        })?;
    Ok(Outcome {
        state,
        failing: !record.passed,
    })
}

/// Binds one device's bench session to the model vocabulary: an
/// [`ActionExecutor`] that answers [`Action::Test`] by running the mapped
/// ATE test number (binned through the model spec, limit verdict from the
/// executed record) and [`Action::Probe`] by reading the mapped internal
/// circuit net under the applied stimulus
/// ([`DeviceSession::probe_net`]) and binning the voltage — probes carry
/// no ATE limits, so they never set the failing flag; the evidence is the
/// binned state itself.
///
/// This is the adapter that lets one [`DiagnosisSession`] drive the
/// virtual ATE through the *mixed* candidate set: electrical tests and
/// step-two physical probes through one execution path.
#[derive(Debug)]
pub struct BenchExecutor<'s, 'd, 'a> {
    session: &'s mut DeviceSession<'d, 'a>,
    spec: &'s ModelSpec,
    /// Variable → ATE test number.
    tests: Vec<(String, u32)>,
    /// Latent variable → internal circuit net.
    probes: Vec<(String, NetId)>,
}

impl<'s, 'd, 'a> BenchExecutor<'s, 'd, 'a> {
    /// Wraps a device session with empty mappings.
    pub fn new(session: &'s mut DeviceSession<'d, 'a>, spec: &'s ModelSpec) -> Self {
        BenchExecutor {
            session,
            spec,
            tests: Vec::new(),
            probes: Vec::new(),
        }
    }

    /// Maps a test action's target to its ATE test number.
    pub fn map_test(mut self, variable: impl Into<String>, number: u32) -> Self {
        self.tests.push((variable.into(), number));
        self
    }

    /// Maps a probe action's target to the circuit net a physical probe
    /// of that block would land on.
    pub fn map_probe(mut self, variable: impl Into<String>, net: NetId) -> Self {
        self.probes.push((variable.into(), net));
        self
    }
}

impl ActionExecutor for BenchExecutor<'_, '_, '_> {
    fn execute(&mut self, action: &Action) -> abbd_core::Result<Outcome> {
        let name = action.target();
        let unmapped = || abbd_core::Error::Oracle {
            variable: name.into(),
            reason: format!("no bench mapping for `{action}`"),
        };
        match action {
            Action::Test(_) => {
                let number = self
                    .tests
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, t)| t)
                    .ok_or_else(unmapped)?;
                measure_on_bench(self.session, self.spec, name, number)
            }
            Action::Probe(_) => {
                let net = self
                    .probes
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, t)| t)
                    .ok_or_else(unmapped)?;
                let voltage =
                    self.session
                        .probe_net(net)
                        .map_err(|e| abbd_core::Error::Oracle {
                            variable: name.into(),
                            reason: e.to_string(),
                        })?;
                let state = self
                    .spec
                    .bin(name, voltage)
                    .map_err(|e| abbd_core::Error::Oracle {
                        variable: name.into(),
                        reason: e.to_string(),
                    })?
                    .ok_or_else(|| abbd_core::Error::Oracle {
                        variable: name.into(),
                        reason: format!("{voltage} V falls outside every state band"),
                    })?;
                Ok(Outcome {
                    state,
                    failing: false,
                })
            }
        }
    }
}

/// Builds the live-bench measurement oracle both reference designs hand
/// to the sequential diagnoser: look the chosen variable up in
/// `measurables` and run [`measure_on_bench`] with its ATE test number
/// (as mapped by `test_number`, an output-index → test-number function
/// for the active suite).
pub(crate) fn bench_oracle<'s, 'd, 'a, F>(
    session: &'s mut DeviceSession<'d, 'a>,
    spec: &'s ModelSpec,
    measurables: &'s [&'s str],
    test_number: F,
) -> impl FnMut(&Action) -> abbd_core::Result<Outcome> + use<'s, 'd, 'a, F>
where
    F: Fn(usize) -> u32,
{
    move |action: &Action| {
        let name = action.target();
        let oi = measurables.iter().position(|v| *v == name).ok_or_else(|| {
            abbd_core::Error::Oracle {
                variable: name.into(),
                reason: "not one of the suite's measurable outputs".into(),
            }
        })?;
        measure_on_bench(session, spec, name, test_number(oi))
    }
}

/// The adaptive and fixed-order runs for one faulty device.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Device serial number.
    pub device_id: u64,
    /// Ground-truth `block:mode` fault tags (scoring only — the diagnoser
    /// never sees them).
    pub truth: Vec<String>,
    /// The stimulus suite the loop ran under (the first failing one).
    pub suite: String,
    /// The information-gain-ordered run.
    pub adaptive: SequentialOutcome,
    /// The ATE-program-ordered run under the same stopping policy.
    pub fixed: SequentialOutcome,
}

impl ClosedLoopReport {
    /// `true` when the adaptive run's top candidate names a block that is
    /// actually faulty on the device.
    pub fn adaptive_hit(&self) -> bool {
        hit(&self.adaptive, &self.truth)
    }

    /// `true` when the fixed-order run's top candidate names a block that
    /// is actually faulty on the device.
    pub fn fixed_hit(&self) -> bool {
        hit(&self.fixed, &self.truth)
    }
}

fn hit(outcome: &SequentialOutcome, truth: &[String]) -> bool {
    outcome
        .diagnosis
        .top_candidate()
        .is_some_and(|top| truth.iter().any(|tag| tag.split(':').next() == Some(top)))
}

/// Population-level totals of a closed-loop scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopSummary {
    /// Number of devices compared.
    pub devices: usize,
    /// Total measurements the adaptive runs spent.
    pub adaptive_tests: usize,
    /// Total measurements the fixed-order runs spent.
    pub fixed_tests: usize,
    /// Adaptive runs that stopped on fault isolation.
    pub adaptive_isolated: usize,
    /// Fixed-order runs that stopped on fault isolation.
    pub fixed_isolated: usize,
    /// Adaptive runs whose top candidate matched an injected fault.
    pub adaptive_hits: usize,
    /// Fixed-order runs whose top candidate matched an injected fault.
    pub fixed_hits: usize,
}

/// The result of a population driver: the per-device reports plus the
/// devices the bench could not diagnose.
///
/// Population drivers skip a device when its session produces a reading
/// the model spec cannot bin (NaN from a non-converged operating point,
/// or a voltage outside every declared band) — the sequential
/// counterpart of the one-shot case generator counting such readings as
/// unbinnable. Skipped devices used to vanish silently, understating the
/// population; now every driver reports them by serial number so yield
/// accounting stays honest: `reports.len() + skipped.len()` equals the
/// number of failing devices synthesized.
#[derive(Debug, Clone)]
pub struct PopulationRun<R> {
    /// One report per successfully diagnosed device, in synthesis order.
    pub reports: Vec<R>,
    /// Serial numbers of devices skipped as un-binnable, in synthesis
    /// order.
    pub skipped: Vec<u64>,
}

impl<R> PopulationRun<R> {
    /// Number of devices the driver attempted (diagnosed + skipped).
    pub fn devices_attempted(&self) -> usize {
        self.reports.len() + self.skipped.len()
    }
}

/// One measurement of a cross-suite closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSuiteStep {
    /// The stimulus suite the measurement ran under.
    pub suite: String,
    /// The measured model variable.
    pub variable: String,
    /// The binned state the bench reported.
    pub state: usize,
    /// Whether the measurement failed its ATE limits.
    pub failing: bool,
    /// The information value that ranked the measurement (within its
    /// suite's evidence context).
    pub gain: f64,
    /// The cost charged for it, including any suite-switch penalty.
    pub cost: f64,
    /// The strategy-adjusted selection score it won with.
    pub score: f64,
}

/// The result of one cross-suite closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossSuiteOutcome {
    /// Applied measurements, in execution order.
    pub applied: Vec<CrossSuiteStep>,
    /// Times the loop changed stimulus suite between consecutive
    /// measurements — the reconfiguration count a cost-aware plan
    /// minimises.
    pub stimulus_switches: usize,
    /// Whether any suite context crossed the fault-mass threshold.
    pub isolated: bool,
    /// The suite whose evidence context isolated the fault, if any.
    pub isolating_suite: Option<String>,
    /// The best top candidate across suite contexts when the loop ended.
    pub top_candidate: Option<String>,
    /// Total cost of the applied measurements, tester-seconds.
    pub tester_seconds: f64,
}

impl CrossSuiteOutcome {
    /// Number of measurements the loop spent.
    pub fn tests_used(&self) -> usize {
        self.applied.len()
    }
}

/// Drives a closed loop whose candidate measurements span several
/// stimulus suites of the same device.
///
/// The paper's model conditions on one suite's control states at a time,
/// so cross-suite selection runs one [`DiagnosisSession`] per failing
/// suite (each seeded with that suite's controls) and arbitrates
/// globally: each round, the context whose evidence changed re-scores
/// its remaining candidates (the others' values are cached — their
/// evidence is untouched), the driver prices each `(suite, candidate)`
/// pair through `cost`
/// (charging [`CostModel::cost_in_suite`]'s switch penalty when the
/// candidate's suite is not the currently applied one), and the
/// best-scoring pair is executed through `oracle(suite_index, variable)`.
///
/// Strategies arbitrate differently: [`Strategy::Myopic`] ranks by raw
/// within-context gain (cost-blind, the PR 2 behaviour — it will happily
/// ping-pong between suites chasing hundredths of a nat),
/// [`Strategy::CostWeighted`] by gain per tester-second, and
/// [`Strategy::Lookahead`] by expectimax value per tester-second.
///
/// The loop stops when any context's diagnosis crosses
/// `policy.fault_mass_threshold`, when the best remaining raw gain drops
/// below `policy.min_gain`, when `policy.max_steps` measurements were
/// spent, or when every candidate is exhausted.
///
/// # Errors
///
/// Propagates strategy/diagnosis/propagation errors and oracle failures.
pub fn run_cross_suite<F>(
    contexts: &mut [(String, DiagnosisSession)],
    cost: &mut CostModel,
    strategy: Strategy,
    policy: StoppingPolicy,
    mut oracle: F,
) -> Result<CrossSuiteOutcome, abbd_core::Error>
where
    F: FnMut(usize, &str) -> Result<Outcome, abbd_core::Error>,
{
    policy.validate()?;
    cost.validate()?;
    // Contexts compute information values; the driver owns the cost
    // arbitration, so in-context scoring stays cost-free.
    let context_strategy = match strategy {
        Strategy::CostWeighted => Strategy::Myopic,
        other => other,
    };
    for (_, session) in contexts.iter_mut() {
        session.set_strategy(context_strategy)?;
    }
    let mut applied: Vec<CrossSuiteStep> = Vec::new();
    let mut switches = 0usize;
    let mut tester_seconds = 0.0f64;
    // Per-context cached scores `(name, value, is_probe)`: only the
    // context that absorbed the previous measurement has changed
    // evidence, so only it re-runs the (potentially expensive —
    // milliseconds at lookahead depth 2) scoring pass per round. Costs
    // are *not* cached: the switch penalty depends on the currently
    // applied suite, so they are re-priced from the cached values every
    // round.
    let mut cached: Vec<Vec<(String, f64, bool)>> = vec![Vec::new(); contexts.len()];
    let mut stale: Vec<bool> = vec![true; contexts.len()];
    // A fault can only become isolated in the context that just absorbed
    // evidence, so after the initial sweep only that context re-checks.
    let mut recheck: Vec<usize> = (0..contexts.len()).collect();
    let (isolated, isolating_suite) = loop {
        // Stop as soon as a re-checked suite context pins a fault.
        let mut isolation = None;
        for &k in &recheck {
            let (name, session) = &mut contexts[k];
            let diagnosis = session.diagnose()?;
            if diagnosis
                .candidates()
                .first()
                .is_some_and(|c| c.fault_mass >= policy.fault_mass_threshold)
            {
                isolation = Some(name.clone());
                break;
            }
        }
        if let Some(suite) = isolation {
            break (true, Some(suite));
        }
        if applied.len() >= policy.max_steps {
            break (false, None);
        }
        // Global arbitration across every context's candidates.
        let mut best: Option<(usize, String, f64, f64, f64)> = None;
        let mut best_gain = f64::NEG_INFINITY;
        for (k, (_, session)) in contexts.iter_mut().enumerate() {
            if stale[k] {
                cached[k] = session
                    .rank_actions()?
                    .iter()
                    .map(|c| {
                        (
                            c.name().to_string(),
                            c.expected_information_gain(),
                            c.is_probe(),
                        )
                    })
                    .collect();
                stale[k] = false;
            }
            for (name, gain, is_probe) in &cached[k] {
                let step_cost = cost.cost_in_suite(name, *is_probe, Some(k));
                let score = match strategy {
                    Strategy::Myopic => *gain,
                    Strategy::CostWeighted | Strategy::Lookahead { .. } => gain / step_cost,
                };
                best_gain = best_gain.max(*gain);
                if best
                    .as_ref()
                    .is_none_or(|(_, _, _, _, s)| score.total_cmp(s).is_gt())
                {
                    best = Some((k, name.clone(), *gain, step_cost, score));
                }
            }
        }
        let Some((k, variable, gain, step_cost, score)) = best else {
            break (false, None);
        };
        if best_gain < policy.min_gain {
            break (false, None);
        }
        let measured = oracle(k, &variable)?;
        let (suite_name, session) = &mut contexts[k];
        session.observe(&variable, measured.state)?;
        if measured.failing {
            session.mark_failing(&variable);
        }
        stale[k] = true;
        recheck.clear();
        recheck.push(k);
        if cost.current_suite().is_some_and(|cur| cur != k) {
            switches += 1;
        }
        cost.set_current_suite(Some(k));
        tester_seconds += step_cost;
        applied.push(CrossSuiteStep {
            suite: suite_name.clone(),
            variable,
            state: measured.state,
            failing: measured.failing,
            gain,
            cost: step_cost,
            score,
        });
    };
    // The verdict: the isolating context's top candidate, or the most
    // suspicious candidate across contexts when the loop ran dry.
    let mut top_candidate: Option<String> = None;
    let mut top_mass = f64::NEG_INFINITY;
    for (name, session) in contexts.iter_mut() {
        let diagnosis = session.diagnose()?;
        if let Some(candidate) = diagnosis.candidates().first() {
            let preferred = isolating_suite.as_deref() == Some(name.as_str());
            if preferred || candidate.fault_mass > top_mass {
                top_mass = if preferred {
                    f64::INFINITY
                } else {
                    candidate.fault_mass
                };
                top_candidate = Some(candidate.variable.clone());
            }
        }
    }
    Ok(CrossSuiteOutcome {
        applied,
        stimulus_switches: switches,
        isolated,
        isolating_suite,
        top_candidate,
        tester_seconds,
    })
}

/// Aggregates a population of closed-loop reports.
pub fn summarize(reports: &[ClosedLoopReport]) -> ClosedLoopSummary {
    ClosedLoopSummary {
        devices: reports.len(),
        adaptive_tests: reports.iter().map(|r| r.adaptive.tests_used()).sum(),
        fixed_tests: reports.iter().map(|r| r.fixed.tests_used()).sum(),
        adaptive_isolated: reports
            .iter()
            .filter(|r| r.adaptive.stop == StopReason::Isolated)
            .count(),
        fixed_isolated: reports
            .iter()
            .filter(|r| r.fixed.stop == StopReason::Isolated)
            .count(),
        adaptive_hits: reports.iter().filter(|r| r.adaptive_hit()).count(),
        fixed_hits: reports.iter().filter(|r| r.fixed_hit()).count(),
    }
}
