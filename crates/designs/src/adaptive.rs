//! Shared closed-loop scenario reporting: the adaptive-vs-fixed
//! comparison both reference designs run over sampled fault populations.
//!
//! A *closed-loop scenario* puts a faulty device on the virtual bench,
//! seeds a [`abbd_core::SequentialDiagnoser`] with the failing suite's
//! control states, and lets it order the suite's measurements two ways:
//! adaptively (expected information gain) and in fixed ATE program order.
//! Both runs share the stopping policy, so the comparison isolates the
//! *ordering* effect: how many tester measurements until a fault is
//! isolated (or the program exhausted).

use abbd_ate::DeviceSession;
use abbd_core::{Measured, SequentialOutcome, StopReason};
use abbd_dlog2bbn::ModelSpec;

/// Builds the live-bench measurement oracle both reference designs hand
/// to the sequential diagnoser: look the chosen variable up in
/// `measurables`, execute its ATE test (as mapped by `test_number`, an
/// output-index → test-number function for the active suite) on the
/// device session, and bin the measured voltage into the model's state
/// bands. Limit verdicts come straight from the executed record.
pub(crate) fn bench_oracle<'s, 'd, 'a, F>(
    session: &'s mut DeviceSession<'d, 'a>,
    spec: &'s ModelSpec,
    measurables: &'s [&'s str],
    test_number: F,
) -> impl FnMut(&str) -> abbd_core::Result<Measured> + use<'s, 'd, 'a, F>
where
    F: Fn(usize) -> u32,
{
    move |name| {
        let oi = measurables.iter().position(|v| *v == name).ok_or_else(|| {
            abbd_core::Error::Oracle {
                variable: name.into(),
                reason: "not one of the suite's measurable outputs".into(),
            }
        })?;
        let record = session
            .execute(test_number(oi))
            .map_err(|e| abbd_core::Error::Oracle {
                variable: name.into(),
                reason: e.to_string(),
            })?;
        let state = spec
            .bin(name, record.value)
            .map_err(|e| abbd_core::Error::Oracle {
                variable: name.into(),
                reason: e.to_string(),
            })?
            .ok_or_else(|| abbd_core::Error::Oracle {
                variable: name.into(),
                reason: format!("{} V falls outside every state band", record.value),
            })?;
        Ok(Measured {
            state,
            failing: !record.passed,
        })
    }
}

/// The adaptive and fixed-order runs for one faulty device.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Device serial number.
    pub device_id: u64,
    /// Ground-truth `block:mode` fault tags (scoring only — the diagnoser
    /// never sees them).
    pub truth: Vec<String>,
    /// The stimulus suite the loop ran under (the first failing one).
    pub suite: String,
    /// The information-gain-ordered run.
    pub adaptive: SequentialOutcome,
    /// The ATE-program-ordered run under the same stopping policy.
    pub fixed: SequentialOutcome,
}

impl ClosedLoopReport {
    /// `true` when the adaptive run's top candidate names a block that is
    /// actually faulty on the device.
    pub fn adaptive_hit(&self) -> bool {
        hit(&self.adaptive, &self.truth)
    }

    /// `true` when the fixed-order run's top candidate names a block that
    /// is actually faulty on the device.
    pub fn fixed_hit(&self) -> bool {
        hit(&self.fixed, &self.truth)
    }
}

fn hit(outcome: &SequentialOutcome, truth: &[String]) -> bool {
    outcome
        .diagnosis
        .top_candidate()
        .is_some_and(|top| truth.iter().any(|tag| tag.split(':').next() == Some(top)))
}

/// Population-level totals of a closed-loop scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopSummary {
    /// Number of devices compared.
    pub devices: usize,
    /// Total measurements the adaptive runs spent.
    pub adaptive_tests: usize,
    /// Total measurements the fixed-order runs spent.
    pub fixed_tests: usize,
    /// Adaptive runs that stopped on fault isolation.
    pub adaptive_isolated: usize,
    /// Fixed-order runs that stopped on fault isolation.
    pub fixed_isolated: usize,
    /// Adaptive runs whose top candidate matched an injected fault.
    pub adaptive_hits: usize,
    /// Fixed-order runs whose top candidate matched an injected fault.
    pub fixed_hits: usize,
}

/// Aggregates a population of closed-loop reports.
pub fn summarize(reports: &[ClosedLoopReport]) -> ClosedLoopSummary {
    ClosedLoopSummary {
        devices: reports.len(),
        adaptive_tests: reports.iter().map(|r| r.adaptive.tests_used()).sum(),
        fixed_tests: reports.iter().map(|r| r.fixed.tests_used()).sum(),
        adaptive_isolated: reports
            .iter()
            .filter(|r| r.adaptive.stop == StopReason::Isolated)
            .count(),
        fixed_isolated: reports
            .iter()
            .filter(|r| r.fixed.stop == StopReason::Isolated)
            .count(),
        adaptive_hits: reports.iter().filter(|r| r.adaptive_hit()).count(),
        fixed_hits: reports.iter().filter(|r| r.fixed_hit()).count(),
    }
}
