//! Error type for the reference-design pipelines.

use std::fmt;

/// Result alias used throughout [`crate`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the end-to-end design pipelines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A circuit/simulation layer failure.
    Blocks(abbd_blocks::Error),
    /// An ATE layer failure.
    Ate(abbd_ate::Error),
    /// A case-generation failure.
    Dlog(abbd_dlog2bbn::Error),
    /// A model-building or diagnosis failure.
    Core(abbd_core::Error),
    /// A pipeline-level invariant was violated.
    Pipeline(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Blocks(e) => write!(f, "circuit error: {e}"),
            Error::Ate(e) => write!(f, "ate error: {e}"),
            Error::Dlog(e) => write!(f, "case generation error: {e}"),
            Error::Core(e) => write!(f, "diagnosis error: {e}"),
            Error::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Blocks(e) => Some(e),
            Error::Ate(e) => Some(e),
            Error::Dlog(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Pipeline(_) => None,
        }
    }
}

impl From<abbd_blocks::Error> for Error {
    fn from(e: abbd_blocks::Error) -> Self {
        Error::Blocks(e)
    }
}

impl From<abbd_ate::Error> for Error {
    fn from(e: abbd_ate::Error) -> Self {
        Error::Ate(e)
    }
}

impl From<abbd_dlog2bbn::Error> for Error {
    fn from(e: abbd_dlog2bbn::Error) -> Self {
        Error::Dlog(e)
    }
}

impl From<abbd_core::Error> for Error {
    fn from(e: abbd_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<abbd_scenarios::Error> for Error {
    fn from(e: abbd_scenarios::Error) -> Self {
        match e {
            abbd_scenarios::Error::Ate(e) => Error::Ate(e),
            abbd_scenarios::Error::Blocks(e) => Error::Blocks(e),
            abbd_scenarios::Error::Core(e) => Error::Core(e),
            abbd_scenarios::Error::Dlog(e) => Error::Dlog(e),
            abbd_scenarios::Error::Bbn(e) => Error::Pipeline(format!("bbn: {e}")),
            abbd_scenarios::Error::Scenario(msg) => Error::Pipeline(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let samples: Vec<Error> = vec![
            abbd_blocks::Error::UnknownNet("n".into()).into(),
            abbd_ate::Error::DuplicateTestNumber(1).into(),
            abbd_dlog2bbn::Error::UnknownVariable("v".into()).into(),
            abbd_core::Error::UnknownVariable("v".into()).into(),
            Error::Pipeline("p".into()),
        ];
        for e in &samples {
            assert!(!e.to_string().is_empty());
        }
        assert!(samples[0].source().is_some());
        assert!(samples[4].source().is_none());
    }
}
