//! The hypothetical four-block analogue circuit of paper Fig. 1 and
//! Tables I–IV: the worked example the paper uses to introduce BBN
//! structure and parameter modelling.
//!
//! Topology (Fig. 1a): two external inputs drive Block-1 and Block-2;
//! Block-1's output feeds Block-2 and Block-3; Block-3 feeds Block-4; the
//! circuit output is Block-4's output (with Block-2's output also
//! measurable, making Block-2 CONTROL/OBSERVE).
//!
//! BBN structure (Fig. 1b): `block1 → block2`, `block1 → block3`,
//! `block3 → block4`.

use crate::adaptive::ClosedLoopReport;
use crate::error::{Error, Result};
use abbd_ate::{
    test_population, DeviceLog, Limits, NoiseModel, OnDemandTester, TestDef, TestProgram, TestSuite,
};
use abbd_blocks::{
    sample_defective_devices, Behavior, Circuit, CircuitBuilder, Device, Fault, FaultMode,
    FaultUniverse, Stimulus, Window,
};
use abbd_core::{
    CircuitModel, DiagnosisSession, DiagnosticEngine, ExpertKnowledge, LearnAlgorithm,
    ModelBuilder, StoppingPolicy, Strategy,
};
use abbd_dlog2bbn::{
    generate_cases, CaseMapping, FunctionalType, GenerationStats, ModelSpec, NamedCase, StateBand,
    VariableSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the behavioural circuit of Fig. 1a.
pub fn circuit() -> Circuit {
    let mut cb = CircuitBuilder::new();
    let in1 = cb.net("in1").expect("fresh builder");
    let in2 = cb.net("in2").expect("fresh builder");
    let n1 = cb.net("n1").expect("fresh builder");
    let n3 = cb.net("n3").expect("fresh builder");
    let out2 = cb.net("out2").expect("fresh builder");
    let out4 = cb.net("out4").expect("fresh builder");
    cb.block(
        "block1",
        Behavior::LevelShift {
            gain: 1.0,
            offset: 0.0,
            rail: 10.0,
        },
        [in1],
        n1,
    )
    .expect("static netlist");
    // Block-2: a 4 V regulator supplied by in2, referenced from Block-1.
    cb.block(
        "block2",
        Behavior::Regulator {
            nominal: 4.0,
            dropout: 1.0,
            enable_threshold: 2.0,
            reference: Window::new(1.5, 10.0),
        },
        [in2, in2, n1],
        out2,
    )
    .expect("static netlist");
    // Block-3: a bandgap fed from Block-1's output.
    cb.block(
        "block3",
        Behavior::Reference {
            nominal: 1.2,
            min_supply: 4.0,
        },
        [n1],
        n3,
    )
    .expect("static netlist");
    // Block-4: an output amplifier of Block-3's reference.
    cb.block(
        "block4",
        Behavior::LevelShift {
            gain: 2.5,
            offset: 0.0,
            rail: 6.0,
        },
        [n3],
        out4,
    )
    .expect("static netlist");
    cb.build().expect("static netlist always validates")
}

/// The model variables of Tables I and II.
pub fn model_spec() -> ModelSpec {
    ModelSpec::new([
        VariableSpec {
            name: "block1".into(),
            ftype: FunctionalType::Control,
            bands: vec![
                StateBand::new("0", 0.0, 2.0, "Non-Operational"),
                StateBand::new("1", 2.0, 5.0, "Operational-I"),
                StateBand::new("2", 5.0, 10.0, "Operational-II"),
            ],
            ckt_ref: Some("Block-1".into()),
        },
        VariableSpec {
            name: "block2".into(),
            ftype: FunctionalType::ControlObserve,
            bands: vec![
                StateBand::new("0", -0.05, 3.5, "Non-Operational"),
                StateBand::new("1", 3.5, 4.5, "Operational"),
            ],
            ckt_ref: Some("Block-2".into()),
        },
        VariableSpec {
            name: "block3".into(),
            ftype: FunctionalType::Latent,
            bands: vec![
                StateBand::new("0", 0.0, 1.1, "Non-Operational"),
                StateBand::new("1", 1.1, 1.4, "Operational"),
            ],
            ckt_ref: Some("Block-3".into()),
        },
        VariableSpec {
            name: "block4".into(),
            ftype: FunctionalType::Observe,
            bands: vec![
                StateBand::new("0", -0.05, 2.75, "Non-Operational"),
                StateBand::new("1", 2.75, 3.25, "Operational"),
            ],
            ckt_ref: Some("Block-4".into()),
        },
    ])
    .expect("static spec always validates")
}

/// The BBN structure of Fig. 1b.
pub fn circuit_model() -> CircuitModel {
    let mut m = CircuitModel::new(model_spec());
    m.depends("block1", "block2").expect("static edges");
    m.depends("block1", "block3").expect("static edges");
    m.depends("block3", "block4").expect("static edges");
    m
}

/// The expert estimate behind Tables III and IV (the `P_blk21_0x`,
/// `P_blk31_0x` and `P_blk43_0x` entries).
pub fn expert_knowledge(equivalent_sample_size: f64) -> ExpertKnowledge {
    let mut e = ExpertKnowledge::new(equivalent_sample_size);
    e.cpt("block1", [[0.2, 0.4, 0.4]]);
    // Table III, left half: P(block2 | block1).
    e.cpt("block2", [[0.90, 0.10], [0.15, 0.85], [0.10, 0.90]]);
    // Table III, right half: P(block3 | block1).
    e.cpt("block3", [[0.95, 0.05], [0.30, 0.70], [0.10, 0.90]]);
    // Table IV: P(block4 | block3). The designer regards the output
    // amplifier as far more reliable than the bandgap feeding it, which is
    // what lets diagnosis blame block3 on the ambiguous block3→block4
    // chain.
    e.cpt("block4", [[0.93, 0.07], [0.025, 0.975]]);
    e
}

/// The suite names in program order. Suite index doubles as the block1
/// state the suite declares. The single source of the names —
/// [`test_program`] and [`closed_loop_population`] both consume it.
pub const SUITES: [&str; 3] = ["b1_off", "b1_op1", "b1_op2"];

/// The `in1` drive level of each suite, aligned with [`SUITES`].
const SUITE_LEVELS: [f64; 3] = [1.0, 3.0, 6.0];

/// The measurable outputs (model variables) in test order within each
/// suite, aligned with the numbering of [`test_number`].
pub const MEASURABLES: [&str; 2] = ["block2", "block4"];

/// The ATE test number of `(suite index, output index)` in the
/// hypothetical program: `out2` then `out4` under each suite. The single
/// source of the numbering scheme — [`test_program`] and the closed-loop
/// oracle both derive from it.
pub fn test_number(suite_index: usize, output_index: usize) -> u32 {
    (100 * (suite_index + 1) + output_index) as u32
}

/// The three stimulus suites: one per usable state of Block-1.
pub fn test_program(circuit: &Circuit) -> (TestProgram, CaseMapping) {
    let in1 = circuit.require_net("in1").expect("static nets");
    let in2 = circuit.require_net("in2").expect("static nets");
    let out2 = circuit.require_net("out2").expect("static nets");
    let out4 = circuit.require_net("out4").expect("static nets");
    let mut mapping = CaseMapping::new();
    let mut program = TestProgram::new();
    for (si, (name, in1_level)) in SUITES.into_iter().zip(SUITE_LEVELS).enumerate() {
        // Suite index == the block1 state the suite declares.
        let block1_state = si;
        let mut stimulus = Stimulus::new();
        stimulus.force(in1, in1_level);
        stimulus.force(in2, 6.0);
        let t_out2 = test_number(si, 0);
        let t_out4 = test_number(si, 1);
        mapping.map_test(t_out2, MEASURABLES[0]);
        mapping.map_test(t_out4, MEASURABLES[1]);
        mapping.declare_suite(name, [("block1", block1_state)]);
        let expected_out2 = if block1_state == 0 {
            (-0.1, 0.2)
        } else {
            (3.5, 4.5)
        };
        let expected_out4 = if block1_state == 2 {
            (2.75, 3.25)
        } else {
            (-0.1, 2.75)
        };
        program.push_suite(TestSuite {
            name: name.into(),
            stimulus: stimulus.clone(),
            tests: vec![
                TestDef {
                    number: t_out2,
                    name: format!("{name}_out2"),
                    measured: out2,
                    limits: Limits::new(expected_out2.0, expected_out2.1),
                },
                TestDef {
                    number: t_out4,
                    name: format!("{name}_out4"),
                    measured: out4,
                    limits: Limits::new(expected_out4.0, expected_out4.1),
                },
            ],
        });
    }
    (program, mapping)
}

/// The hypothetical circuit's fault universe.
pub fn fault_universe(circuit: &Circuit) -> FaultUniverse {
    [
        ("block1", FaultMode::Dead, 1.0),
        ("block2", FaultMode::Dead, 2.0),
        ("block2", FaultMode::GainDrift(0.5), 1.0),
        ("block3", FaultMode::Dead, 2.5),
        ("block3", FaultMode::GainDrift(0.7), 1.0),
        ("block4", FaultMode::Dead, 1.0),
    ]
    .into_iter()
    .map(|(b, m, w)| {
        (
            Fault::new(circuit.require_block(b).expect("static blocks"), m),
            w,
        )
    })
    .collect()
}

/// The fitted outcome of the hypothetical-circuit pipeline.
#[derive(Debug)]
pub struct FittedHypothetical {
    /// The compiled diagnostic engine.
    pub engine: DiagnosticEngine,
    /// The failing-device datalogs used for fine-tuning.
    pub logs: Vec<DeviceLog>,
    /// The generated cases.
    pub cases: Vec<NamedCase>,
    /// Case-generation statistics.
    pub stats: GenerationStats,
}

/// Runs the full flow on the hypothetical circuit: fabricate failing
/// devices, test, generate cases, fine-tune, compile.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn fit(n_failing: usize, seed: u64, algorithm: LearnAlgorithm) -> Result<FittedHypothetical> {
    let circuit = circuit();
    let (program, mapping) = test_program(&circuit);
    let universe = fault_universe(&circuit);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut logs: Vec<DeviceLog> = Vec::new();
    let mut next_id = 0u64;
    while logs.len() < n_failing {
        let devices = sample_defective_devices(&circuit, &universe, 1, next_id, &mut rng);
        next_id += 1;
        let device: Device = devices.into_iter().next().expect("non-empty universe");
        let mut batch = test_population(
            &circuit,
            &program,
            std::slice::from_ref(&device),
            &NoiseModel::production(),
            &mut rng,
        )?;
        let log = batch.pop().expect("one log per device");
        if !log.all_passed() {
            logs.push(log);
        }
    }
    let (cases, stats) = generate_cases(&model_spec(), &mapping, &logs)?;
    // The expert estimate is deliberately strong (the designer's belief
    // resists a few dozen noisy devices): with a weak prior, EM drifts the
    // block4 self-fault leak upwards on the observationally ambiguous
    // block3→block4 chain.
    let fitted = ModelBuilder::new(circuit_model())
        .with_expert(expert_knowledge(40.0))
        .learn(&cases, algorithm)?;
    let engine = DiagnosticEngine::new(fitted)?;
    Ok(FittedHypothetical {
        engine,
        logs,
        cases,
        stats,
    })
}

/// Closed-loop scenario on the hypothetical circuit over a sampled fault
/// population: for each fabricated failing device, the sequential
/// diagnoser orders the failing suite's two measurements adaptively and
/// in fixed program order against the live on-demand ATE, both under the
/// same stopping policy. Deterministic for a fixed `seed`.
///
/// With only two outputs the comparison is small, but it exercises the
/// same closed loop the regulator runs at scale — and on the worked
/// example it is easy to see *why* the adaptive order measures `block4`
/// first (block3, the only latent, barely shows through `block2`).
///
/// # Errors
///
/// Propagates fabrication, simulation and diagnosis errors.
pub fn closed_loop_population(
    engine: &DiagnosticEngine,
    n_failing: usize,
    seed: u64,
    policy: StoppingPolicy,
) -> Result<Vec<ClosedLoopReport>> {
    closed_loop_population_with(engine, n_failing, seed, policy, Strategy::Myopic)
}

/// [`closed_loop_population`] with the adaptive arm selecting
/// measurements under an explicit [`Strategy`] (the fixed-order arm is
/// unaffected — program order never scores).
///
/// # Errors
///
/// Same as [`closed_loop_population`].
pub fn closed_loop_population_with(
    engine: &DiagnosticEngine,
    n_failing: usize,
    seed: u64,
    policy: StoppingPolicy,
    strategy: Strategy,
) -> Result<Vec<ClosedLoopReport>> {
    let circuit = circuit();
    let (program, _) = test_program(&circuit);
    let universe = fault_universe(&circuit);
    let tester = OnDemandTester::new(&circuit, &program).map_err(Error::Ate)?;
    let spec = model_spec();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reports = Vec::with_capacity(n_failing);
    let mut next_id = 0u64;
    let mut guard = 0usize;
    while reports.len() < n_failing {
        guard += 1;
        if guard > n_failing * 20 + 100 {
            return Err(Error::Pipeline(
                "fault universe cannot produce enough program-visible failures".into(),
            ));
        }
        let device: Device = sample_defective_devices(&circuit, &universe, 1, next_id, &mut rng)
            .into_iter()
            .next()
            .ok_or_else(|| Error::Pipeline("empty fault universe".into()))?;
        next_id += 1;
        let log = test_population(
            &circuit,
            &program,
            std::slice::from_ref(&device),
            &NoiseModel::production(),
            &mut rng,
        )?
        .pop()
        .expect("one device in, one log out");
        let Some(failing) = log.records.iter().find(|r| !r.passed) else {
            continue; // this defect is invisible to the program; resample
        };
        let suite = failing.suite.clone();
        let si = SUITES
            .iter()
            .position(|s| *s == suite)
            .ok_or_else(|| Error::Pipeline(format!("unknown suite `{suite}`")))?;

        let run = |scripted: bool| -> Result<abbd_core::SequentialOutcome> {
            let mut d = DiagnosisSession::new(std::sync::Arc::clone(engine.compiled()), policy)
                .map_err(Error::Core)?;
            d.set_strategy(strategy).map_err(Error::Core)?;
            d.observe("block1", si).map_err(Error::Core)?;
            d.set_candidates(MEASURABLES).map_err(Error::Core)?;
            let mut session = tester.session(&device, NoiseModel::production(), seed);
            let oracle =
                crate::adaptive::bench_oracle(&mut session, &spec, &MEASURABLES, move |oi| {
                    test_number(si, oi)
                });
            if scripted {
                d.run_scripted(&MEASURABLES, oracle).map_err(Error::Core)
            } else {
                d.run(oracle).map_err(Error::Core)
            }
        };

        let adaptive = match run(false) {
            Ok(outcome) => outcome,
            // An unbinnable reading (NaN operating point) means this
            // device cannot be diagnosed on this bench; resample instead
            // of aborting the population, like invisible defects above.
            Err(Error::Core(abbd_core::Error::Oracle { .. })) => continue,
            Err(e) => return Err(e),
        };
        let fixed = match run(true) {
            Ok(outcome) => outcome,
            Err(Error::Core(abbd_core::Error::Oracle { .. })) => continue,
            Err(e) => return Err(e),
        };
        reports.push(ClosedLoopReport {
            device_id: device.id,
            truth: log.truth.clone(),
            suite,
            adaptive,
            fixed,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_bbn::learn::EmConfig;
    use abbd_blocks::{DeviceFaults, SimConfig, Simulator};
    use abbd_core::Observation;

    #[test]
    fn healthy_operating_points() {
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(c.find_net("in1").unwrap(), 6.0);
        stim.force(c.find_net("in2").unwrap(), 6.0);
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        let v = |n: &str| op.voltage(c.find_net(n).unwrap());
        assert!((v("out2") - 4.0).abs() < 1e-9);
        assert!((v("n3") - 1.2).abs() < 1e-9);
        assert!((v("out4") - 3.0).abs() < 1e-9);
        // Operational-I: block3 degrades, block4 follows.
        stim.force(c.find_net("in1").unwrap(), 3.0);
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        assert!(op.voltage(c.find_net("n3").unwrap()) < 1.1);
    }

    #[test]
    fn program_and_mapping_validate() {
        let c = circuit();
        let (program, mapping) = test_program(&c);
        program.validate(&c).unwrap();
        mapping.validate(&model_spec()).unwrap();
        assert_eq!(program.suite_count(), 3);
        assert_eq!(program.test_count(), 6);
    }

    #[test]
    fn pipeline_diagnoses_block3_failures() {
        let fitted = fit(
            30,
            7,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 10,
                tolerance: 1e-5,
            }),
        )
        .unwrap();
        // A device whose block3 died, observed at Operational-II: block2
        // fine, block4 dead.
        let mut obs = Observation::new();
        obs.set("block1", 2).set("block2", 1).set("block4", 0);
        obs.mark_failing("block4");
        let d = fitted.engine.diagnose(&obs).unwrap();
        assert_eq!(d.top_candidate(), Some("block3"), "{:?}", d.candidates());
    }

    #[test]
    fn healthy_observation_yields_nothing() {
        let fitted = fit(
            30,
            7,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 10,
                tolerance: 1e-5,
            }),
        )
        .unwrap();
        let mut obs = Observation::new();
        obs.set("block1", 2).set("block2", 1).set("block4", 1);
        let d = fitted.engine.diagnose(&obs).unwrap();
        assert!(d.candidates().is_empty(), "{:?}", d.candidates());
    }

    #[test]
    fn closed_loop_population_compares_adaptive_and_fixed() {
        let fitted = fit(
            30,
            7,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 10,
                tolerance: 1e-5,
            }),
        )
        .unwrap();
        let reports =
            closed_loop_population(&fitted.engine, 6, 13, StoppingPolicy::default()).unwrap();
        assert_eq!(reports.len(), 6);
        let summary = crate::adaptive::summarize(&reports);
        assert_eq!(summary.devices, 6);
        assert!(
            summary.adaptive_tests <= summary.fixed_tests,
            "adaptive {} > fixed {}",
            summary.adaptive_tests,
            summary.fixed_tests
        );
        for r in &reports {
            assert!(r.adaptive.tests_used() <= 2);
            assert!(SUITES.contains(&r.suite.as_str()));
        }
    }

    #[test]
    fn lookahead_closed_loop_matches_myopic_on_the_two_test_program() {
        let fitted = fit(
            30,
            7,
            LearnAlgorithm::Em(EmConfig {
                max_iterations: 10,
                tolerance: 1e-5,
            }),
        )
        .unwrap();
        // With only two candidate measurements, a depth-2 plan covers the
        // whole program: the lookahead loop must not spend more than the
        // myopic one.
        let myopic =
            closed_loop_population(&fitted.engine, 4, 13, StoppingPolicy::default()).unwrap();
        let lookahead = closed_loop_population_with(
            &fitted.engine,
            4,
            13,
            StoppingPolicy::default(),
            Strategy::Lookahead { depth: 2 },
        )
        .unwrap();
        let m: usize = myopic.iter().map(|r| r.adaptive.tests_used()).sum();
        let l: usize = lookahead.iter().map(|r| r.adaptive.tests_used()).sum();
        assert!(l <= m, "lookahead {l} > myopic {m}");
        for (a, b) in myopic.iter().zip(&lookahead) {
            assert_eq!(a.device_id, b.device_id);
            assert_eq!(a.fixed.tests_used(), b.fixed.tests_used());
        }
    }

    #[test]
    fn dead_block1_breaks_everything_downstream() {
        let c = circuit();
        let sim = Simulator::new(&c, SimConfig::default());
        let b1 = c.require_block("block1").unwrap();
        let mut dut = Device::golden(&c);
        dut.faults = DeviceFaults::single(Fault::new(b1, FaultMode::Dead));
        let mut stim = Stimulus::new();
        stim.force(c.find_net("in1").unwrap(), 6.0);
        stim.force(c.find_net("in2").unwrap(), 6.0);
        let op = sim.solve(&dut, &stim).unwrap();
        assert!(op.voltage(c.find_net("out2").unwrap()) < 0.2);
        assert!(op.voltage(c.find_net("out4").unwrap()) < 0.2);
    }
}
