//! # abbd-designs — reference designs for block-level Bayesian diagnosis
//!
//! The two circuits of the DATE 2010 paper, modelled end to end:
//!
//! * [`hypothetical`] — the four-block worked example of Fig. 1 and
//!   Tables I–IV;
//! * [`regulator`] — the industrial multiple-output automotive voltage
//!   regulator of Fig. 2/3 and Tables V–VII, including the five
//!   diagnostic case studies (d1–d5) and the paper's reference numbers.
//!
//! Each design bundles a behavioural circuit, the model-variable spec,
//! the BBN structure, the product expert's CPT estimate, a specification
//! test program with its Dlog2BBN mapping, a fault universe, and an
//! end-to-end `fit` pipeline that fabricates failing devices, tests them,
//! generates cases and fine-tunes the model.
//!
//! ## Quick start
//!
//! ```no_run
//! # fn main() -> Result<(), abbd_designs::Error> {
//! use abbd_designs::regulator;
//!
//! // Fabricate 70 failing regulators, learn, and diagnose case d2.
//! let fitted = regulator::fit(70, 2010, regulator::default_algorithm())?;
//! let d2 = &regulator::cases::case_studies()[1];
//! let diagnosis = fitted.engine.diagnose(&d2.observation())?;
//! assert_eq!(diagnosis.top_candidate(), Some("enb13"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod board;
mod error;
pub mod hypothetical;
pub mod regulator;

pub use error::{Error, Result};
