//! End-to-end tests of the `dlog2bbn` command-line tool.

use abbd_dlog2bbn::{
    cases_from_json, CaseMapping, FunctionalType, ModelSpec, StateBand, VariableSpec,
};
use std::process::Command;

fn spec_json() -> String {
    ModelSpec::new([
        VariableSpec {
            name: "vout".into(),
            ftype: FunctionalType::Observe,
            bands: vec![
                StateBand::new("0", -0.05, 4.75, "fail"),
                StateBand::new("1", 4.75, 5.25, "in regulation"),
            ],
            ckt_ref: None,
        },
        VariableSpec {
            name: "vin".into(),
            ftype: FunctionalType::Control,
            bands: vec![
                StateBand::new("0", 0.0, 6.0, "low"),
                StateBand::new("1", 6.0, 20.0, "nominal"),
            ],
            ckt_ref: None,
        },
    ])
    .unwrap()
    .to_json()
    .unwrap()
}

fn mapping_json() -> String {
    let mut m = CaseMapping::new();
    m.map_test(100, "vout");
    m.declare_suite("dc", [("vin", 1usize)]);
    m.to_json().unwrap()
}

fn datalog() -> &'static str {
    "#ABBD-DATALOG v1\n\
     DEVICE 1\n\
     RECORD dc|100|t_vout|vout|4.750000|5.250000|5.010000|P\n\
     END\n\
     DEVICE 2 truth=reg:dead\n\
     RECORD dc|100|t_vout|vout|4.750000|5.250000|0.010000|F\n\
     END\n"
}

fn run(dir: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let spec = dir.join("spec.json");
    let mapping = dir.join("mapping.json");
    let dlog = dir.join("log.dlog");
    let out = dir.join("cases.json");
    std::fs::write(&spec, spec_json()).unwrap();
    std::fs::write(&mapping, mapping_json()).unwrap();
    std::fs::write(&dlog, datalog()).unwrap();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dlog2bbn"));
    cmd.arg(&spec).arg(&mapping).arg(&dlog).arg("-o").arg(&out);
    for e in extra {
        cmd.arg(e);
    }
    cmd.output().expect("binary runs")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dlog2bbn-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn converts_datalog_to_cases() {
    let dir = temp_dir("basic");
    let output = run(&dir, &[]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let cases = cases_from_json(&std::fs::read_to_string(dir.join("cases.json")).unwrap()).unwrap();
    assert_eq!(cases.len(), 2);
    assert_eq!(cases[0].state_of("vout"), Some(1));
    assert_eq!(cases[0].state_of("vin"), Some(1));
    assert_eq!(cases[1].state_of("vout"), Some(0));
    assert_eq!(cases[1].failing, vec!["vout".to_string()]);
    assert_eq!(cases[1].truth, vec!["reg:dead".to_string()]);
}

#[test]
fn failing_only_filters_passing_devices() {
    let dir = temp_dir("failing");
    let output = run(&dir, &["--failing-only"]);
    assert!(output.status.success());
    let cases = cases_from_json(&std::fs::read_to_string(dir.join("cases.json")).unwrap()).unwrap();
    assert_eq!(cases.len(), 1);
    assert_eq!(cases[0].device_id, 2);
}

#[test]
fn missing_arguments_fail_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_dlog2bbn"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn help_flag_succeeds() {
    let output = Command::new(env!("CARGO_BIN_EXE_dlog2bbn"))
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("usage:"));
}

#[test]
fn unreadable_input_reports_error() {
    let dir = temp_dir("unreadable");
    let output = Command::new(env!("CARGO_BIN_EXE_dlog2bbn"))
        .arg(dir.join("nope.json"))
        .arg(dir.join("nope2.json"))
        .arg(dir.join("nope3.dlog"))
        .arg("-o")
        .arg(dir.join("out.json"))
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
}
