//! Property-based tests for the case generator: binning invariants and
//! spec round-trips under random band layouts.

use abbd_ate::{DeviceLog, Record};
use abbd_dlog2bbn::{
    generate_cases, CaseMapping, FunctionalType, ModelSpec, StateBand, VariableSpec,
};
use proptest::prelude::*;

fn bands_strategy() -> impl Strategy<Value = Vec<StateBand>> {
    proptest::collection::vec((0.0f64..10.0, 0.0f64..5.0, "[a-z]{1,8}"), 2..6).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (lo, width, remark))| StateBand::new(i.to_string(), lo, lo + width, remark))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    #[test]
    fn binning_returns_first_containing_band(
        bands in bands_strategy(),
        volts in -1.0f64..16.0,
    ) {
        let spec = ModelSpec::new([VariableSpec {
            name: "v".into(),
            ftype: FunctionalType::Observe,
            bands: bands.clone(),
            ckt_ref: None,
        }])
        .unwrap();
        let var = spec.find("v").unwrap();
        match var.bin(volts) {
            Some(state) => {
                prop_assert!(bands[state].contains(volts));
                for earlier in &bands[..state] {
                    prop_assert!(!earlier.contains(volts), "earlier band should win");
                }
            }
            None => {
                for band in &bands {
                    prop_assert!(!band.contains(volts));
                }
            }
        }
    }

    #[test]
    fn spec_json_roundtrip(bands in bands_strategy()) {
        let spec = ModelSpec::new([
            VariableSpec {
                name: "x".into(),
                ftype: FunctionalType::Control,
                bands: bands.clone(),
                ckt_ref: Some("7".into()),
            },
            VariableSpec {
                name: "y".into(),
                ftype: FunctionalType::Latent,
                bands,
                ckt_ref: None,
            },
        ])
        .unwrap();
        let back = ModelSpec::from_json(&spec.to_json().unwrap()).unwrap();
        prop_assert_eq!(spec.variables(), back.variables());
    }

    #[test]
    fn generated_cases_only_contain_known_states(
        values in proptest::collection::vec(-5.0f64..20.0, 1..10),
    ) {
        let spec = ModelSpec::new([
            VariableSpec {
                name: "out".into(),
                ftype: FunctionalType::Observe,
                bands: vec![
                    StateBand::new("0", 0.0, 5.0, "low"),
                    StateBand::new("1", 5.0, 10.0, "high"),
                ],
                ckt_ref: None,
            },
            VariableSpec {
                name: "pin".into(),
                ftype: FunctionalType::Control,
                bands: vec![
                    StateBand::new("0", 0.0, 1.0, "off"),
                    StateBand::new("1", 1.0, 2.0, "on"),
                ],
                ckt_ref: None,
            },
        ])
        .unwrap();
        let mut mapping = CaseMapping::new();
        mapping.map_test(1, "out");
        mapping.declare_suite("s", [("pin", 1usize)]);

        let logs: Vec<DeviceLog> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| DeviceLog {
                device_id: i as u64,
                truth: vec![],
                records: vec![Record {
                    suite: "s".into(),
                    test_number: 1,
                    test_name: "t".into(),
                    net: "out".into(),
                    lo: 0.0,
                    hi: 10.0,
                    value: v,
                    passed: (0.0..=10.0).contains(&v),
                }],
            })
            .collect();
        let (cases, stats) = generate_cases(&spec, &mapping, &logs).unwrap();
        prop_assert_eq!(cases.len(), logs.len());
        let binnable = values.iter().filter(|v| (0.0..=10.0).contains(*v)).count();
        prop_assert_eq!(stats.unbinnable, values.len() - binnable);
        for case in &cases {
            prop_assert_eq!(case.state_of("pin"), Some(1));
            if let Some(state) = case.state_of("out") {
                prop_assert!(state < 2);
            }
            // Failing marks only on failing records.
            let value = values[case.device_id as usize];
            prop_assert_eq!(
                case.failing.contains(&"out".to_string()),
                !(0.0..=10.0).contains(&value)
            );
        }
    }
}
