//! Model-variable specifications: functional types and voltage state bands.
//!
//! This is the vocabulary shared between the model builder and the case
//! generator — the paper's Tables I/II (hypothetical circuit) and V/VII
//! (voltage regulator) are instances of a [`ModelSpec`].

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's functional type of a model variable (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionalType {
    /// Set by the tester (stimulus pins, supplies).
    Control,
    /// Measured by the tester (circuit outputs).
    Observe,
    /// Both controllable and observable.
    ControlObserve,
    /// Neither — an internal block whose state must be inferred.
    Latent,
}

impl FunctionalType {
    /// `true` for `Control` and `ControlObserve`.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            FunctionalType::Control | FunctionalType::ControlObserve
        )
    }

    /// `true` for `Observe` and `ControlObserve`.
    pub fn is_observable(self) -> bool {
        matches!(
            self,
            FunctionalType::Observe | FunctionalType::ControlObserve
        )
    }

    /// The paper's table rendering (e.g. `NOT CONTROL/OBSERVE`).
    pub fn label(self) -> &'static str {
        match self {
            FunctionalType::Control => "CONTROL",
            FunctionalType::Observe => "OBSERVE",
            FunctionalType::ControlObserve => "CONTROL/OBSERVE",
            FunctionalType::Latent => "NOT CONTROL/OBSERVE",
        }
    }
}

/// One usable state of a model variable: a voltage band with semantics
/// (paper Table II: `States`, `LLimit`, `ULimit`, `Remarks`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateBand {
    /// Short state label (often the state index as text).
    pub label: String,
    /// Lower voltage limit (inclusive).
    pub lo: f64,
    /// Upper voltage limit (inclusive).
    pub hi: f64,
    /// Semantic remark ("non-operational", "in regulation", ...).
    pub remark: String,
}

impl StateBand {
    /// Convenience constructor.
    pub fn new<L: Into<String>, R: Into<String>>(label: L, lo: f64, hi: f64, remark: R) -> Self {
        StateBand {
            label: label.into(),
            lo,
            hi,
            remark: remark.into(),
        }
    }

    /// `true` when `volts` lies inside the band.
    pub fn contains(&self, volts: f64) -> bool {
        volts.is_finite() && volts >= self.lo && volts <= self.hi
    }
}

/// One model variable: name, functional type, usable states and the
/// circuit-reference annotation of paper Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableSpec {
    /// Model variable name (unique within a spec).
    pub name: String,
    /// Functional type.
    pub ftype: FunctionalType,
    /// Usable states, in index order.
    pub bands: Vec<StateBand>,
    /// Reference location in the functional block schematic (`Ckt.Ref`).
    pub ckt_ref: Option<String>,
}

impl VariableSpec {
    /// Bins a measured voltage into a state index. With overlapping bands
    /// (the paper's enable-pin states overlap) the **first declared** match
    /// wins; `None` when no band contains the value.
    pub fn bin(&self, volts: f64) -> Option<usize> {
        self.bands.iter().position(|b| b.contains(volts))
    }

    /// Number of usable states.
    pub fn card(&self) -> usize {
        self.bands.len()
    }
}

/// A complete model-variable specification for one product.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    vars: Vec<VariableSpec>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl ModelSpec {
    /// Builds a spec from variable definitions, validating names and bands.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateVariable`], [`Error::TooFewStates`] or
    /// [`Error::InvalidBand`].
    pub fn new<I: IntoIterator<Item = VariableSpec>>(vars: I) -> Result<Self> {
        let vars: Vec<VariableSpec> = vars.into_iter().collect();
        let mut by_name = HashMap::new();
        for (i, v) in vars.iter().enumerate() {
            if by_name.insert(v.name.clone(), i).is_some() {
                return Err(Error::DuplicateVariable(v.name.clone()));
            }
            if v.bands.len() < 2 {
                return Err(Error::TooFewStates {
                    variable: v.name.clone(),
                    states: v.bands.len(),
                });
            }
            for b in &v.bands {
                if b.lo > b.hi {
                    return Err(Error::InvalidBand {
                        variable: v.name.clone(),
                        state: b.label.clone(),
                    });
                }
            }
        }
        Ok(ModelSpec { vars, by_name })
    }

    /// The variables in declaration order.
    pub fn variables(&self) -> &[VariableSpec] {
        &self.vars
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` for an empty spec.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Looks up a variable by name.
    pub fn find(&self, name: &str) -> Option<&VariableSpec> {
        self.by_name.get(name).map(|&i| &self.vars[i])
    }

    /// Like [`ModelSpec::find`] but returns an error carrying the name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`].
    pub fn require(&self, name: &str) -> Result<&VariableSpec> {
        self.find(name)
            .ok_or_else(|| Error::UnknownVariable(name.into()))
    }

    /// Bins `volts` for the named variable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`].
    pub fn bin(&self, name: &str, volts: f64) -> Result<Option<usize>> {
        Ok(self.require(name)?.bin(volts))
    }

    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on serialisation failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| Error::Io(e.to_string()))
    }

    /// Restores a spec from [`ModelSpec::to_json`] output, re-validating.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on parse failure plus validation errors.
    pub fn from_json(text: &str) -> Result<Self> {
        let raw: ModelSpec = serde_json::from_str(text).map_err(|e| Error::Io(e.to_string()))?;
        ModelSpec::new(raw.vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ModelSpec {
        ModelSpec::new([
            VariableSpec {
                name: "vp1".into(),
                ftype: FunctionalType::Control,
                bands: vec![
                    StateBand::new("0", 0.0, 4.0, "low level"),
                    StateBand::new("1", 4.0, 7.5, "intermediate level"),
                    StateBand::new("2", 7.5, 14.4, "nominal level"),
                ],
                ckt_ref: Some("1".into()),
            },
            VariableSpec {
                name: "reg1".into(),
                ftype: FunctionalType::Observe,
                bands: vec![
                    StateBand::new("0", 0.0, 8.0, "switch off/defect"),
                    StateBand::new("1", 8.0, 9.0, "in regulation"),
                ],
                ckt_ref: Some("7".into()),
            },
            VariableSpec {
                name: "lcbg".into(),
                ftype: FunctionalType::Latent,
                bands: vec![
                    StateBand::new("0", 0.0, 1.1, "non operational"),
                    StateBand::new("1", 1.1, 1.3, "nominal operating"),
                ],
                ckt_ref: Some("12".into()),
            },
        ])
        .unwrap()
    }

    #[test]
    fn functional_type_predicates() {
        assert!(FunctionalType::Control.is_control());
        assert!(!FunctionalType::Control.is_observable());
        assert!(FunctionalType::Observe.is_observable());
        assert!(FunctionalType::ControlObserve.is_control());
        assert!(FunctionalType::ControlObserve.is_observable());
        assert!(!FunctionalType::Latent.is_control());
        assert!(!FunctionalType::Latent.is_observable());
        assert_eq!(FunctionalType::Latent.label(), "NOT CONTROL/OBSERVE");
    }

    #[test]
    fn binning_first_match_wins() {
        let s = spec();
        // 4.0 is in both band 0 (0..4) and band 1 (4..7.5): first wins.
        assert_eq!(s.bin("vp1", 4.0).unwrap(), Some(0));
        assert_eq!(s.bin("vp1", 12.0).unwrap(), Some(2));
        assert_eq!(s.bin("vp1", 99.0).unwrap(), None);
        assert_eq!(s.bin("vp1", f64::NAN).unwrap(), None);
        assert!(s.bin("ghost", 1.0).is_err());
    }

    #[test]
    fn lookups() {
        let s = spec();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.find("reg1").unwrap().card(), 2);
        assert!(s.find("ghost").is_none());
        assert!(s.require("lcbg").is_ok());
        assert_eq!(s.variables()[0].name, "vp1");
    }

    #[test]
    fn rejects_bad_specs() {
        let dup = ModelSpec::new([
            VariableSpec {
                name: "x".into(),
                ftype: FunctionalType::Control,
                bands: vec![
                    StateBand::new("0", 0.0, 1.0, ""),
                    StateBand::new("1", 1.0, 2.0, ""),
                ],
                ckt_ref: None,
            },
            VariableSpec {
                name: "x".into(),
                ftype: FunctionalType::Control,
                bands: vec![
                    StateBand::new("0", 0.0, 1.0, ""),
                    StateBand::new("1", 1.0, 2.0, ""),
                ],
                ckt_ref: None,
            },
        ]);
        assert!(matches!(dup, Err(Error::DuplicateVariable(_))));

        let few = ModelSpec::new([VariableSpec {
            name: "x".into(),
            ftype: FunctionalType::Control,
            bands: vec![StateBand::new("0", 0.0, 1.0, "")],
            ckt_ref: None,
        }]);
        assert!(matches!(few, Err(Error::TooFewStates { .. })));

        let inverted = ModelSpec::new([VariableSpec {
            name: "x".into(),
            ftype: FunctionalType::Control,
            bands: vec![
                StateBand::new("0", 2.0, 1.0, ""),
                StateBand::new("1", 1.0, 2.0, ""),
            ],
            ckt_ref: None,
        }]);
        assert!(matches!(inverted, Err(Error::InvalidBand { .. })));
    }

    #[test]
    fn json_roundtrip() {
        let s = spec();
        let text = s.to_json().unwrap();
        let back = ModelSpec::from_json(&text).unwrap();
        assert_eq!(s.variables(), back.variables());
        assert!(back.find("vp1").is_some(), "lookup table must be rebuilt");
        assert!(ModelSpec::from_json("{oops").is_err());
    }
}
