//! Error type for case generation.

use std::fmt;

/// Result alias used throughout [`crate`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while validating specs, mappings, or generating cases.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A model variable name appears twice.
    DuplicateVariable(String),
    /// The named model variable does not exist in the spec.
    UnknownVariable(String),
    /// A variable was declared with fewer than two state bands.
    TooFewStates {
        /// The offending variable.
        variable: String,
        /// Declared band count.
        states: usize,
    },
    /// A state band is inverted (`lo > hi`).
    InvalidBand {
        /// The offending variable.
        variable: String,
        /// The offending band label.
        state: String,
    },
    /// The mapping references a state index outside the variable's range.
    StateOutOfRange {
        /// The offending variable.
        variable: String,
        /// The out-of-range state index.
        state: usize,
    },
    /// The mapping maps a test to a non-observable variable, or declares a
    /// control state for a non-control variable.
    TypeMismatch {
        /// The offending variable.
        variable: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// (De)serialisation failure.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateVariable(name) => {
                write!(f, "model variable `{name}` is already declared")
            }
            Error::UnknownVariable(name) => write!(f, "unknown model variable `{name}`"),
            Error::TooFewStates { variable, states } => write!(
                f,
                "model variable `{variable}` has {states} state(s); at least 2 required"
            ),
            Error::InvalidBand { variable, state } => {
                write!(f, "state `{state}` of `{variable}` has inverted limits")
            }
            Error::StateOutOfRange { variable, state } => {
                write!(f, "state index {state} out of range for `{variable}`")
            }
            Error::TypeMismatch { variable, reason } => {
                write!(f, "functional-type mismatch on `{variable}`: {reason}")
            }
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let samples = [
            Error::DuplicateVariable("v".into()),
            Error::UnknownVariable("v".into()),
            Error::TooFewStates {
                variable: "v".into(),
                states: 1,
            },
            Error::InvalidBand {
                variable: "v".into(),
                state: "s".into(),
            },
            Error::StateOutOfRange {
                variable: "v".into(),
                state: 9,
            },
            Error::TypeMismatch {
                variable: "v".into(),
                reason: "r".into(),
            },
            Error::Io("x".into()),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
