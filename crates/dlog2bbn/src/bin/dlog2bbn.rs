//! `dlog2bbn` — the file-based case generator CLI.
//!
//! ```text
//! dlog2bbn <spec.json> <mapping.json> <datalog.txt> -o <cases.json> [--failing-only]
//! ```
//!
//! Reads a model-variable spec and a test→variable mapping, converts an
//! ASCII ATE datalog into learning cases, and writes them as JSON.

use abbd_dlog2bbn::{cases_to_json, generate_cases, CaseMapping, ModelSpec};
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: dlog2bbn <spec.json> <mapping.json> <datalog.txt> -o <cases.json> [--failing-only]"
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut output: Option<&str> = None;
    let mut failing_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => {
                output = Some(
                    it.next()
                        .ok_or_else(|| format!("-o needs a path\n{}", usage()))?,
                );
            }
            "--failing-only" => failing_only = true,
            "-h" | "--help" => {
                println!("{}", usage());
                return Ok(());
            }
            other => positional.push(other),
        }
    }
    let [spec_path, mapping_path, datalog_path] = positional.as_slice() else {
        return Err(usage().to_string());
    };
    let output = output.ok_or_else(|| format!("missing -o <cases.json>\n{}", usage()))?;

    let spec_text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let spec = ModelSpec::from_json(&spec_text).map_err(|e| e.to_string())?;
    let mapping_text = std::fs::read_to_string(mapping_path)
        .map_err(|e| format!("cannot read {mapping_path}: {e}"))?;
    let mapping = CaseMapping::from_json(&mapping_text).map_err(|e| e.to_string())?;
    let datalog_text = std::fs::read_to_string(datalog_path)
        .map_err(|e| format!("cannot read {datalog_path}: {e}"))?;
    let logs = abbd_ate::parse_datalog(&datalog_text).map_err(|e| e.to_string())?;
    let logs: Vec<_> = if failing_only {
        logs.into_iter().filter(|l| !l.all_passed()).collect()
    } else {
        logs
    };

    let (cases, stats) = generate_cases(&spec, &mapping, &logs).map_err(|e| e.to_string())?;
    let json = cases_to_json(&cases).map_err(|e| e.to_string())?;
    std::fs::write(output, json).map_err(|e| format!("cannot write {output}: {e}"))?;
    eprintln!(
        "dlog2bbn: {} device log(s) -> {} case(s) ({} unbinnable measurement(s), \
         {} empty suite instance(s))",
        logs.len(),
        stats.cases,
        stats.unbinnable,
        stats.empty_suites
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dlog2bbn: {msg}");
            ExitCode::FAILURE
        }
    }
}
