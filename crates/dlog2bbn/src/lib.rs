//! # abbd-dlog2bbn — ATE datalogs to Bayesian-network learning cases
//!
//! A reimplementation of the paper's **Dlog2BBN** model-builder tool
//! (§III-A.3): "together with the information about model variables,
//! functional types, usable states and test definitions, the model builder
//! Dlog2BBN converts ATE test files into cases for model parameter
//! modeling".
//!
//! * [`ModelSpec`] — model variables, functional types, voltage state bands
//!   (the content of the paper's Tables I/II/V).
//! * [`CaseMapping`] — which ATE test feeds which observable variable, and
//!   which control states each suite declares.
//! * [`generate_cases`] — datalogs in, name-keyed [`NamedCase`]s out;
//!   latent variables stay hidden for EM.
//!
//! A CLI binary (`dlog2bbn`) wraps the same flow for file-based use.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), abbd_dlog2bbn::Error> {
//! use abbd_dlog2bbn::{
//!     generate_cases, CaseMapping, FunctionalType, ModelSpec, StateBand, VariableSpec,
//! };
//!
//! let spec = ModelSpec::new([
//!     VariableSpec {
//!         name: "vout".into(),
//!         ftype: FunctionalType::Observe,
//!         bands: vec![
//!             StateBand::new("0", 0.0, 4.75, "fail"),
//!             StateBand::new("1", 4.75, 5.25, "in regulation"),
//!         ],
//!         ckt_ref: None,
//!     },
//! ])?;
//! let mut mapping = CaseMapping::new();
//! mapping.map_test(100, "vout").declare_suite::<_, String, _>("dc", []);
//! let (cases, stats) = generate_cases(&spec, &mapping, &[])?;
//! assert!(cases.is_empty());
//! assert_eq!(stats.cases, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cases;
mod error;
mod spec;

pub use cases::{
    cases_from_json, cases_to_json, generate_cases, CaseMapping, GenerationStats, NamedCase,
};
pub use error::{Error, Result};
pub use spec::{FunctionalType, ModelSpec, StateBand, VariableSpec};
