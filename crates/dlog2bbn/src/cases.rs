//! Case generation: datalogs + mapping → name-keyed learning cases.

use crate::error::{Error, Result};
use crate::spec::ModelSpec;
use abbd_ate::DeviceLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Declares how datalog content maps onto model variables:
///
/// * observable variables get their state by **binning the measured value**
///   of a specific test number;
/// * controllable variables get their state **declared per suite** (the
///   test conditions are known states, not measurements — paper Table VI).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseMapping {
    /// Test number → observable variable name.
    test_to_var: BTreeMap<u32, String>,
    /// Suite name → declared control states `(variable, state index)`.
    suite_controls: BTreeMap<String, Vec<(String, usize)>>,
}

impl CaseMapping {
    /// An empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a test number to an observable model variable.
    pub fn map_test<N: Into<String>>(&mut self, test_number: u32, variable: N) -> &mut Self {
        self.test_to_var.insert(test_number, variable.into());
        self
    }

    /// Declares the control states in force for a suite.
    pub fn declare_suite<S: Into<String>, N: Into<String>, I>(
        &mut self,
        suite: S,
        controls: I,
    ) -> &mut Self
    where
        I: IntoIterator<Item = (N, usize)>,
    {
        self.suite_controls.insert(
            suite.into(),
            controls.into_iter().map(|(n, s)| (n.into(), s)).collect(),
        );
        self
    }

    /// The observable variable a test feeds, if mapped.
    pub fn variable_of_test(&self, test_number: u32) -> Option<&str> {
        self.test_to_var.get(&test_number).map(String::as_str)
    }

    /// The suites that generate cases.
    pub fn suites(&self) -> impl Iterator<Item = &str> + '_ {
        self.suite_controls.keys().map(String::as_str)
    }

    /// Validates the mapping against a spec: mapped variables exist, have
    /// the right functional type, and declared states are in range.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, spec: &ModelSpec) -> Result<()> {
        for (num, name) in &self.test_to_var {
            let var = spec.require(name)?;
            if !var.ftype.is_observable() {
                return Err(Error::TypeMismatch {
                    variable: name.clone(),
                    reason: format!("test {num} maps to a non-observable variable"),
                });
            }
        }
        for controls in self.suite_controls.values() {
            for (name, state) in controls {
                let var = spec.require(name)?;
                if !var.ftype.is_control() {
                    return Err(Error::TypeMismatch {
                        variable: name.clone(),
                        reason: "declared as a suite control but not controllable".into(),
                    });
                }
                if *state >= var.card() {
                    return Err(Error::StateOutOfRange {
                        variable: name.clone(),
                        state: *state,
                    });
                }
            }
        }
        Ok(())
    }

    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on serialisation failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| Error::Io(e.to_string()))
    }

    /// Parses a mapping from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on parse failure.
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| Error::Io(e.to_string()))
    }
}

/// One generated case: the state-binned observation of one device under one
/// suite, keyed by model-variable **name** (the Bayesian network may not
/// exist yet when cases are generated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedCase {
    /// Source device serial number.
    pub device_id: u64,
    /// Source suite name.
    pub suite: String,
    /// `(variable name, state index)` observations.
    pub assignment: Vec<(String, usize)>,
    /// Observable variables whose source measurement failed its ATE limits.
    #[serde(default)]
    pub failing: Vec<String>,
    /// Ground-truth fault tags copied from the datalog (scoring only).
    pub truth: Vec<String>,
}

impl NamedCase {
    /// The observed state of `variable`, if present.
    pub fn state_of(&self, variable: &str) -> Option<usize> {
        self.assignment
            .iter()
            .find(|(n, _)| n == variable)
            .map(|(_, s)| *s)
    }
}

/// Statistics of one generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenerationStats {
    /// Cases emitted.
    pub cases: usize,
    /// Measurements skipped because no state band contained the value.
    pub unbinnable: usize,
    /// Suites skipped because the log had no mapped records for them.
    pub empty_suites: usize,
}

/// Converts device logs into learning cases: one case per `(device, mapped
/// suite)` pair. Observables are binned through the spec; controls come
/// from the suite declaration; latent variables stay unobserved.
///
/// # Errors
///
/// Returns mapping/spec validation errors.
pub fn generate_cases(
    spec: &ModelSpec,
    mapping: &CaseMapping,
    logs: &[DeviceLog],
) -> Result<(Vec<NamedCase>, GenerationStats)> {
    mapping.validate(spec)?;
    let mut out = Vec::new();
    let mut stats = GenerationStats::default();
    for log in logs {
        for suite in mapping.suites() {
            let mut assignment: Vec<(String, usize)> = Vec::new();
            let mut failing: Vec<String> = Vec::new();
            let mut saw_record = false;
            for record in log.suite_records(suite) {
                let Some(var_name) = mapping.variable_of_test(record.test_number) else {
                    continue;
                };
                saw_record = true;
                let var = spec.require(var_name)?;
                match var.bin(record.value) {
                    Some(state) => assignment.push((var_name.to_string(), state)),
                    None => stats.unbinnable += 1,
                }
                if !record.passed && !failing.iter().any(|f| f == var_name) {
                    failing.push(var_name.to_string());
                }
            }
            if !saw_record {
                stats.empty_suites += 1;
                continue;
            }
            for (name, state) in &mapping.suite_controls[suite] {
                assignment.push((name.clone(), *state));
            }
            assignment.sort();
            failing.sort();
            out.push(NamedCase {
                device_id: log.device_id,
                suite: suite.to_string(),
                assignment,
                failing,
                truth: log.truth.clone(),
            });
            stats.cases += 1;
        }
    }
    Ok((out, stats))
}

/// Serialises cases to JSON (the CLI tool's output format).
///
/// # Errors
///
/// Returns [`Error::Io`] on serialisation failure.
pub fn cases_to_json(cases: &[NamedCase]) -> Result<String> {
    serde_json::to_string_pretty(cases).map_err(|e| Error::Io(e.to_string()))
}

/// Parses cases from JSON.
///
/// # Errors
///
/// Returns [`Error::Io`] on parse failure.
pub fn cases_from_json(text: &str) -> Result<Vec<NamedCase>> {
    serde_json::from_str(text).map_err(|e| Error::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FunctionalType, StateBand, VariableSpec};
    use abbd_ate::Record;

    fn spec() -> ModelSpec {
        ModelSpec::new([
            VariableSpec {
                name: "vp1".into(),
                ftype: FunctionalType::Control,
                bands: vec![
                    StateBand::new("0", 0.0, 4.0, "low"),
                    StateBand::new("1", 4.0, 14.4, "nominal"),
                ],
                ckt_ref: None,
            },
            VariableSpec {
                name: "reg1".into(),
                ftype: FunctionalType::Observe,
                bands: vec![
                    StateBand::new("0", 0.0, 4.75, "fail"),
                    StateBand::new("1", 4.75, 5.25, "in regulation"),
                ],
                ckt_ref: None,
            },
            VariableSpec {
                name: "lcbg".into(),
                ftype: FunctionalType::Latent,
                bands: vec![
                    StateBand::new("0", 0.0, 1.1, "bad"),
                    StateBand::new("1", 1.1, 1.3, "good"),
                ],
                ckt_ref: None,
            },
        ])
        .unwrap()
    }

    fn mapping() -> CaseMapping {
        let mut m = CaseMapping::new();
        m.map_test(100, "reg1");
        m.declare_suite("powerup", [("vp1", 1usize)]);
        m
    }

    fn record(suite: &str, number: u32, value: f64) -> Record {
        Record {
            suite: suite.into(),
            test_number: number,
            test_name: format!("t{number}"),
            net: "vout".into(),
            lo: 4.75,
            hi: 5.25,
            value,
            passed: (4.75..=5.25).contains(&value),
        }
    }

    #[test]
    fn generates_one_case_per_device_suite() {
        let logs = vec![
            DeviceLog {
                device_id: 1,
                truth: vec![],
                records: vec![record("powerup", 100, 5.0)],
            },
            DeviceLog {
                device_id: 2,
                truth: vec!["lcbg:dead".into()],
                records: vec![record("powerup", 100, 0.2)],
            },
        ];
        let (cases, stats) = generate_cases(&spec(), &mapping(), &logs).unwrap();
        assert_eq!(stats.cases, 2);
        assert_eq!(stats.unbinnable, 0);
        assert_eq!(cases[0].state_of("reg1"), Some(1));
        assert_eq!(
            cases[0].state_of("vp1"),
            Some(1),
            "control from suite declaration"
        );
        assert_eq!(cases[0].state_of("lcbg"), None, "latent stays hidden");
        assert_eq!(cases[1].state_of("reg1"), Some(0));
        assert_eq!(cases[1].truth, vec!["lcbg:dead".to_string()]);
    }

    #[test]
    fn unbinnable_and_unmapped_records() {
        let logs = vec![DeviceLog {
            device_id: 3,
            truth: vec![],
            records: vec![
                record("powerup", 100, 400.0), // outside every band
                record("powerup", 999, 5.0),   // unmapped test number
            ],
        }];
        let (cases, stats) = generate_cases(&spec(), &mapping(), &logs).unwrap();
        assert_eq!(stats.cases, 1);
        assert_eq!(stats.unbinnable, 1);
        // Case still carries the declared control state.
        assert_eq!(cases[0].state_of("vp1"), Some(1));
        assert_eq!(cases[0].state_of("reg1"), None);
    }

    #[test]
    fn suites_without_mapped_records_are_skipped() {
        let logs = vec![DeviceLog {
            device_id: 4,
            truth: vec![],
            records: vec![record("other_suite", 100, 5.0)],
        }];
        let (cases, stats) = generate_cases(&spec(), &mapping(), &logs).unwrap();
        assert!(cases.is_empty());
        assert_eq!(stats.empty_suites, 1);
    }

    #[test]
    fn mapping_validation_catches_type_errors() {
        let spec = spec();
        // Test mapped to a control variable.
        let mut m = CaseMapping::new();
        m.map_test(100, "vp1");
        assert!(matches!(m.validate(&spec), Err(Error::TypeMismatch { .. })));
        // Control declared on a latent variable.
        let mut m = CaseMapping::new();
        m.declare_suite("s", [("lcbg", 0usize)]);
        assert!(matches!(m.validate(&spec), Err(Error::TypeMismatch { .. })));
        // State out of range.
        let mut m = CaseMapping::new();
        m.declare_suite("s", [("vp1", 5usize)]);
        assert!(matches!(
            m.validate(&spec),
            Err(Error::StateOutOfRange { .. })
        ));
        // Unknown variable.
        let mut m = CaseMapping::new();
        m.map_test(1, "ghost");
        assert!(matches!(m.validate(&spec), Err(Error::UnknownVariable(_))));
    }

    #[test]
    fn json_roundtrips() {
        let m = mapping();
        let back = CaseMapping::from_json(&m.to_json().unwrap()).unwrap();
        assert_eq!(m, back);

        let cases = vec![NamedCase {
            device_id: 9,
            suite: "s".into(),
            assignment: vec![("a".into(), 1)],
            failing: vec![],
            truth: vec!["b:dead".into()],
        }];
        let back = cases_from_json(&cases_to_json(&cases).unwrap()).unwrap();
        assert_eq!(cases, back);
        assert!(cases_from_json("]").is_err());
        assert!(CaseMapping::from_json("]").is_err());
    }
}
