//! Device-level signatures assembled from per-suite cases.

use abbd_dlog2bbn::NamedCase;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The complete state-binned outcome of one device: a feature per
/// `(suite, variable)`, plus the ground-truth block labels used for
/// training and scoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSignature {
    /// Device serial number.
    pub device_id: u64,
    /// `(suite, variable) -> state` features.
    pub features: BTreeMap<(String, String), usize>,
    /// `true` when any measurement failed its limits.
    pub failing: bool,
    /// Ground-truth faulty block names (empty for good devices).
    pub truth_blocks: Vec<String>,
}

impl DeviceSignature {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` when the signature carries no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Symmetric feature distance: features present in one signature but
    /// not the other, or present in both with different states, each
    /// count one.
    pub fn distance(&self, other: &DeviceSignature) -> usize {
        let mut d = 0usize;
        for (key, state) in &self.features {
            match other.features.get(key) {
                Some(s) if s == state => {}
                _ => d += 1,
            }
        }
        for key in other.features.keys() {
            if !self.features.contains_key(key) {
                d += 1;
            }
        }
        d
    }
}

/// Extracts the block name from a datalog truth tag (`block:mode`).
pub(crate) fn truth_block(tag: &str) -> String {
    tag.split(':').next().unwrap_or(tag).to_string()
}

/// Groups per-suite cases into one signature per device.
pub fn group_by_device(cases: &[NamedCase]) -> Vec<DeviceSignature> {
    let mut by_device: BTreeMap<u64, DeviceSignature> = BTreeMap::new();
    for case in cases {
        let entry = by_device
            .entry(case.device_id)
            .or_insert_with(|| DeviceSignature {
                device_id: case.device_id,
                features: BTreeMap::new(),
                failing: false,
                truth_blocks: case.truth.iter().map(|t| truth_block(t)).collect(),
            });
        for (var, state) in &case.assignment {
            entry
                .features
                .insert((case.suite.clone(), var.clone()), *state);
        }
        if !case.failing.is_empty() {
            entry.failing = true;
        }
    }
    by_device.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(device: u64, suite: &str, pairs: &[(&str, usize)], truth: &[&str]) -> NamedCase {
        NamedCase {
            device_id: device,
            suite: suite.into(),
            assignment: pairs.iter().map(|(n, s)| (n.to_string(), *s)).collect(),
            failing: vec![],
            truth: truth.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn grouping_merges_suites() {
        let cases = vec![
            case(1, "s1", &[("a", 0), ("b", 1)], &["blk:dead"]),
            case(1, "s2", &[("a", 1)], &["blk:dead"]),
            case(2, "s1", &[("a", 1)], &[]),
        ];
        let sigs = group_by_device(&cases);
        assert_eq!(sigs.len(), 2);
        let d1 = &sigs[0];
        assert_eq!(d1.device_id, 1);
        assert_eq!(d1.len(), 3);
        assert_eq!(d1.truth_blocks, vec!["blk".to_string()]);
        assert_eq!(d1.features[&("s1".to_string(), "a".to_string())], 0);
        assert!(!sigs[1].is_empty());
    }

    #[test]
    fn failing_flag_from_cases() {
        let mut failing_case = case(3, "s1", &[("a", 0)], &[]);
        failing_case.failing = vec!["a".into()];
        let sigs = group_by_device(&[failing_case]);
        assert!(sigs[0].failing);
        let sigs = group_by_device(&[case(3, "s1", &[("a", 0)], &[])]);
        assert!(!sigs[0].failing);
    }

    #[test]
    fn distance_is_symmetric_and_counts_mismatches() {
        let cases = vec![
            case(1, "s1", &[("a", 0), ("b", 1)], &[]),
            case(2, "s1", &[("a", 1), ("c", 0)], &[]),
        ];
        let sigs = group_by_device(&cases);
        let (x, y) = (&sigs[0], &sigs[1]);
        // a differs (1), b only in x (1), c only in y (1).
        assert_eq!(x.distance(y), 3);
        assert_eq!(y.distance(x), 3);
        assert_eq!(x.distance(x), 0);
    }

    #[test]
    fn truth_block_strips_mode() {
        assert_eq!(truth_block("lcbg:dead"), "lcbg");
        assert_eq!(truth_block("plain"), "plain");
    }
}
