//! The classic fault dictionary: store labelled fault signatures, diagnose
//! by nearest-neighbour lookup (the approach behind the paper's refs
//! [8]–[15] and the standard industrial practice the BBN method competes
//! with).

use crate::signature::DeviceSignature;
use crate::{Diagnoser, Ranking};
use std::collections::BTreeMap;

/// A nearest-neighbour fault dictionary over device signatures.
///
/// # Examples
///
/// ```
/// use abbd_baselines::{Diagnoser, FaultDictionary, DeviceSignature};
/// use std::collections::BTreeMap;
///
/// let mut features = BTreeMap::new();
/// features.insert(("s1".to_string(), "out".to_string()), 0usize);
/// let train = DeviceSignature {
///     device_id: 1,
///     features: features.clone(),
///     failing: true,
///     truth_blocks: vec!["bias".into()],
/// };
/// let dict = FaultDictionary::train(&[train.clone()]);
/// let ranking = dict.diagnose(&train);
/// assert_eq!(ranking[0].0, "bias");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultDictionary {
    entries: Vec<DeviceSignature>,
}

impl FaultDictionary {
    /// Stores every labelled failing signature. Unlabelled (good) devices
    /// are skipped — a dictionary only contains fault entries.
    pub fn train(signatures: &[DeviceSignature]) -> Self {
        FaultDictionary {
            entries: signatures
                .iter()
                .filter(|s| !s.truth_blocks.is_empty())
                .cloned()
                .collect(),
        }
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Diagnoser for FaultDictionary {
    fn name(&self) -> &str {
        "fault-dictionary"
    }

    /// Ranks blocks by the distance of their closest dictionary entry to
    /// the observed signature (score `1 / (1 + distance)`).
    fn diagnose(&self, signature: &DeviceSignature) -> Ranking {
        let mut best: BTreeMap<&str, usize> = BTreeMap::new();
        for entry in &self.entries {
            let d = entry.distance(signature);
            for block in &entry.truth_blocks {
                let slot = best.entry(block.as_str()).or_insert(usize::MAX);
                if d < *slot {
                    *slot = d;
                }
            }
        }
        let mut ranking: Ranking = best
            .into_iter()
            .map(|(block, d)| (block.to_string(), 1.0 / (1.0 + d as f64)))
            .collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        ranking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sig(id: u64, pairs: &[(&str, usize)], truth: &[&str]) -> DeviceSignature {
        DeviceSignature {
            device_id: id,
            features: pairs
                .iter()
                .map(|(n, s)| (("s".to_string(), n.to_string()), *s))
                .collect::<BTreeMap<_, _>>(),
            failing: !truth.is_empty(),
            truth_blocks: truth.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn exact_match_wins() {
        let dict = FaultDictionary::train(&[
            sig(1, &[("a", 0), ("b", 1)], &["blk_x"]),
            sig(2, &[("a", 1), ("b", 0)], &["blk_y"]),
        ]);
        assert_eq!(dict.len(), 2);
        let probe = sig(9, &[("a", 0), ("b", 1)], &[]);
        let ranking = dict.diagnose(&probe);
        assert_eq!(ranking[0].0, "blk_x");
        assert!((ranking[0].1 - 1.0).abs() < 1e-12, "distance zero");
        assert!(ranking[1].1 < ranking[0].1);
    }

    #[test]
    fn nearest_neighbour_on_partial_match() {
        let dict = FaultDictionary::train(&[
            sig(1, &[("a", 0), ("b", 0), ("c", 0)], &["blk_x"]),
            sig(2, &[("a", 1), ("b", 1), ("c", 1)], &["blk_y"]),
        ]);
        let probe = sig(9, &[("a", 0), ("b", 0), ("c", 1)], &[]);
        let ranking = dict.diagnose(&probe);
        assert_eq!(ranking[0].0, "blk_x", "one mismatch beats two");
    }

    #[test]
    fn good_devices_are_not_stored() {
        let dict = FaultDictionary::train(&[sig(1, &[("a", 0)], &[])]);
        assert!(dict.is_empty());
        assert!(dict.diagnose(&sig(2, &[("a", 0)], &[])).is_empty());
        assert_eq!(dict.name(), "fault-dictionary");
    }

    #[test]
    fn multi_label_entries_score_all_blocks() {
        let dict = FaultDictionary::train(&[sig(1, &[("a", 0)], &["x", "y"])]);
        let ranking = dict.diagnose(&sig(2, &[("a", 0)], &[]));
        assert_eq!(ranking.len(), 2);
    }
}
