//! Random-guess floor: ranks the known blocks in a device-dependent but
//! reproducible pseudo-random order.

use crate::signature::DeviceSignature;
use crate::{Diagnoser, Ranking};

/// Ranks blocks uniformly at random (seeded by the device id, so repeated
/// evaluations are reproducible). Any serious diagnoser must beat this.
#[derive(Debug, Clone)]
pub struct RandomGuess {
    blocks: Vec<String>,
    seed: u64,
}

impl RandomGuess {
    /// Creates a floor over the given candidate blocks.
    pub fn new<I, S>(blocks: I, seed: u64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        RandomGuess {
            blocks: blocks.into_iter().map(Into::into).collect(),
            seed,
        }
    }

    /// The candidate block list.
    pub fn blocks(&self) -> &[String] {
        &self.blocks
    }
}

/// SplitMix64 — tiny deterministic mixer, enough for a shuffling floor.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Diagnoser for RandomGuess {
    fn name(&self) -> &str {
        "random"
    }

    fn diagnose(&self, signature: &DeviceSignature) -> Ranking {
        let mut order: Vec<usize> = (0..self.blocks.len()).collect();
        let mut state = self.seed ^ signature.device_id.wrapping_mul(0x9E37_79B9);
        // Fisher–Yates with the deterministic mixer.
        for i in (1..order.len()).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
            .into_iter()
            .enumerate()
            .map(|(rank, idx)| (self.blocks[idx].clone(), 1.0 / (rank + 1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sig(id: u64) -> DeviceSignature {
        DeviceSignature {
            device_id: id,
            features: BTreeMap::new(),
            failing: true,
            truth_blocks: vec![],
        }
    }

    #[test]
    fn deterministic_per_device() {
        let r = RandomGuess::new(["a", "b", "c", "d"], 7);
        assert_eq!(r.blocks().len(), 4);
        let first = r.diagnose(&sig(1));
        let again = r.diagnose(&sig(1));
        assert_eq!(first, again);
        assert_eq!(first.len(), 4);
        assert_eq!(r.name(), "random");
    }

    #[test]
    fn different_devices_get_different_orders() {
        let r = RandomGuess::new(["a", "b", "c", "d", "e", "f"], 7);
        let orders: std::collections::HashSet<Vec<String>> = (0..20)
            .map(|id| r.diagnose(&sig(id)).into_iter().map(|(b, _)| b).collect())
            .collect();
        assert!(orders.len() > 5, "shuffles must vary across devices");
    }

    #[test]
    fn roughly_uniform_top_choice() {
        let r = RandomGuess::new(["a", "b", "c", "d"], 99);
        let mut counts = BTreeMap::new();
        let n = 8000;
        for id in 0..n {
            let top = r.diagnose(&sig(id))[0].0.clone();
            *counts.entry(top).or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.05, "top-choice frequency {frac}");
        }
    }
}
