//! Naive-Bayes fault classification: every `(suite, variable)` feature is
//! assumed conditionally independent given the faulty block.

use crate::signature::DeviceSignature;
use crate::{Diagnoser, Ranking};
use std::collections::{BTreeMap, BTreeSet};

/// A Laplace-smoothed naive-Bayes classifier over device signatures.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    classes: Vec<String>,
    class_counts: Vec<f64>,
    /// `(class index, feature key) -> state counts`.
    feature_counts: BTreeMap<(usize, (String, String)), BTreeMap<usize, f64>>,
    feature_keys: BTreeSet<(String, String)>,
    /// Largest state index seen per feature (for smoothing denominators).
    feature_cards: BTreeMap<(String, String), usize>,
    alpha: f64,
}

impl NaiveBayes {
    /// Trains on labelled failing signatures with Laplace constant `alpha`.
    pub fn train(signatures: &[DeviceSignature], alpha: f64) -> Self {
        let mut classes: Vec<String> = Vec::new();
        let mut class_counts: Vec<f64> = Vec::new();
        let mut feature_counts: BTreeMap<(usize, (String, String)), BTreeMap<usize, f64>> =
            BTreeMap::new();
        let mut feature_keys = BTreeSet::new();
        let mut feature_cards: BTreeMap<(String, String), usize> = BTreeMap::new();
        for sig in signatures.iter().filter(|s| !s.truth_blocks.is_empty()) {
            for block in &sig.truth_blocks {
                let class = match classes.iter().position(|c| c == block) {
                    Some(i) => i,
                    None => {
                        classes.push(block.clone());
                        class_counts.push(0.0);
                        classes.len() - 1
                    }
                };
                class_counts[class] += 1.0;
                for (key, &state) in &sig.features {
                    feature_keys.insert(key.clone());
                    let card = feature_cards.entry(key.clone()).or_insert(0);
                    *card = (*card).max(state + 1);
                    *feature_counts
                        .entry((class, key.clone()))
                        .or_default()
                        .entry(state)
                        .or_default() += 1.0;
                }
            }
        }
        NaiveBayes {
            classes,
            class_counts,
            feature_counts,
            feature_keys,
            feature_cards,
            alpha: alpha.max(1e-9),
        }
    }

    /// Number of fault classes learned.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    fn log_likelihood(&self, class: usize, key: &(String, String), state: usize) -> f64 {
        let card = self
            .feature_cards
            .get(key)
            .copied()
            .unwrap_or(state + 1)
            .max(state + 1);
        let counts = self.feature_counts.get(&(class, key.clone()));
        let state_count = counts.and_then(|m| m.get(&state)).copied().unwrap_or(0.0);
        let total: f64 = counts.map(|m| m.values().sum()).unwrap_or(0.0);
        ((state_count + self.alpha) / (total + self.alpha * card as f64)).ln()
    }
}

impl Diagnoser for NaiveBayes {
    fn name(&self) -> &str {
        "naive-bayes"
    }

    fn diagnose(&self, signature: &DeviceSignature) -> Ranking {
        if self.classes.is_empty() {
            return Vec::new();
        }
        let total: f64 = self.class_counts.iter().sum();
        let mut log_posts: Vec<f64> = self
            .classes
            .iter()
            .enumerate()
            .map(|(ci, _)| {
                let mut lp = (self.class_counts[ci] / total).ln();
                for (key, &state) in &signature.features {
                    if self.feature_keys.contains(key) {
                        lp += self.log_likelihood(ci, key, state);
                    }
                }
                lp
            })
            .collect();
        // Normalise through softmax for interpretable scores.
        let max = log_posts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut z = 0.0;
        for lp in &mut log_posts {
            *lp = (*lp - max).exp();
            z += *lp;
        }
        let mut ranking: Ranking = self
            .classes
            .iter()
            .zip(&log_posts)
            .map(|(c, p)| (c.clone(), p / z))
            .collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        ranking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sig(id: u64, pairs: &[(&str, usize)], truth: &[&str]) -> DeviceSignature {
        DeviceSignature {
            device_id: id,
            features: pairs
                .iter()
                .map(|(n, s)| (("s".to_string(), n.to_string()), *s))
                .collect::<BTreeMap<_, _>>(),
            failing: !truth.is_empty(),
            truth_blocks: truth.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn learns_separable_classes() {
        let train = vec![
            sig(1, &[("a", 0), ("b", 1)], &["blk_x"]),
            sig(2, &[("a", 0), ("b", 1)], &["blk_x"]),
            sig(3, &[("a", 1), ("b", 0)], &["blk_y"]),
            sig(4, &[("a", 1), ("b", 0)], &["blk_y"]),
        ];
        let nb = NaiveBayes::train(&train, 1.0);
        assert_eq!(nb.class_count(), 2);
        let r = nb.diagnose(&sig(9, &[("a", 0), ("b", 1)], &[]));
        assert_eq!(r[0].0, "blk_x");
        assert!(r[0].1 > r[1].1);
        let total: f64 = r.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "scores form a distribution");
    }

    #[test]
    fn prior_dominates_without_features() {
        let train = vec![
            sig(1, &[("a", 0)], &["common"]),
            sig(2, &[("a", 0)], &["common"]),
            sig(3, &[("a", 0)], &["common"]),
            sig(4, &[("a", 1)], &["rare"]),
        ];
        let nb = NaiveBayes::train(&train, 1.0);
        let empty = DeviceSignature {
            device_id: 9,
            features: BTreeMap::new(),
            failing: true,
            truth_blocks: vec![],
        };
        let r = nb.diagnose(&empty);
        assert_eq!(r[0].0, "common");
    }

    #[test]
    fn unseen_features_are_ignored() {
        let train = vec![sig(1, &[("a", 0)], &["x"]), sig(2, &[("a", 1)], &["y"])];
        let nb = NaiveBayes::train(&train, 1.0);
        let probe = sig(9, &[("zzz", 3)], &[]);
        let r = nb.diagnose(&probe);
        assert_eq!(r.len(), 2, "unknown feature must not crash or skew");
        assert!((r[0].1 - r[1].1).abs() < 1e-9, "equal priors -> tie");
    }

    #[test]
    fn empty_training_yields_empty_ranking() {
        let nb = NaiveBayes::train(&[], 1.0);
        assert_eq!(nb.class_count(), 0);
        assert!(nb.diagnose(&sig(1, &[("a", 0)], &[])).is_empty());
        assert_eq!(nb.name(), "naive-bayes");
    }
}
