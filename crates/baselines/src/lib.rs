//! # abbd-baselines — comparison diagnosers
//!
//! The paper validates its BBN candidates against a human diagnostic
//! expert. To quantify the method against automated alternatives, this
//! crate implements the two classic data-driven diagnosis baselines of the
//! analogue-test literature (the fault-dictionary family of the paper's
//! refs \[8\]–\[15\], and a naive-Bayes classifier) plus a random-guess floor.
//!
//! All diagnosers consume [`DeviceSignature`]s — the state-binned outcome
//! of a whole device across every test suite — and return a ranked list of
//! suspected blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dictionary;
mod naive;
mod random;
mod signature;

pub use dictionary::FaultDictionary;
pub use naive::NaiveBayes;
pub use random::RandomGuess;
pub use signature::{group_by_device, DeviceSignature};

/// A ranked diagnosis: block names with scores, most suspicious first.
pub type Ranking = Vec<(String, f64)>;

/// Common interface over the baseline diagnosers.
pub trait Diagnoser {
    /// A short display name.
    fn name(&self) -> &str;

    /// Ranks suspected blocks for one device signature.
    fn diagnose(&self, signature: &DeviceSignature) -> Ranking;
}

/// `true` when any of the top-`k` ranked blocks matches a truth block.
pub fn hit_at_k(ranking: &Ranking, truth_blocks: &[String], k: usize) -> bool {
    ranking
        .iter()
        .take(k)
        .any(|(block, _)| truth_blocks.iter().any(|t| t == block))
}

/// Fraction of signatures whose top-`k` ranking contains the truth.
pub fn accuracy_at_k<D: Diagnoser + ?Sized>(
    diagnoser: &D,
    signatures: &[DeviceSignature],
    k: usize,
) -> f64 {
    if signatures.is_empty() {
        return 0.0;
    }
    let hits = signatures
        .iter()
        .filter(|s| hit_at_k(&diagnoser.diagnose(s), &s.truth_blocks, k))
        .count();
    hits as f64 / signatures.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(Ranking);
    impl Diagnoser for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn diagnose(&self, _s: &DeviceSignature) -> Ranking {
            self.0.clone()
        }
    }

    fn sig(truth: &str) -> DeviceSignature {
        DeviceSignature {
            device_id: 0,
            features: Default::default(),
            failing: true,
            truth_blocks: vec![truth.to_string()],
        }
    }

    #[test]
    fn hit_at_k_respects_rank() {
        let ranking: Ranking = vec![("a".into(), 0.9), ("b".into(), 0.5), ("c".into(), 0.1)];
        assert!(hit_at_k(&ranking, &["a".into()], 1));
        assert!(!hit_at_k(&ranking, &["b".into()], 1));
        assert!(hit_at_k(&ranking, &["b".into()], 2));
        assert!(!hit_at_k(&ranking, &["z".into()], 3));
        assert!(!hit_at_k(&ranking, &[], 3));
    }

    #[test]
    fn accuracy_counts_hits() {
        let d = Fixed(vec![("a".into(), 1.0), ("b".into(), 0.5)]);
        let sigs = vec![sig("a"), sig("b"), sig("c")];
        assert!((accuracy_at_k(&d, &sigs, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((accuracy_at_k(&d, &sigs, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy_at_k(&d, &[], 1), 0.0);
        assert_eq!(d.name(), "fixed");
    }
}
