//! Property-based tests for the ATE layer: datalog round-trips on random
//! logs and limit semantics.

use abbd_ate::{parse_datalog, write_datalog, DeviceLog, Limits, Record};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        "[a-z][a-z0-9_]{0,10}",
        0u32..10_000,
        "[a-z][a-z0-9_]{0,10}",
        "[a-z][a-z0-9_]{0,10}",
        -100.0f64..100.0,
        -100.0f64..100.0,
        proptest::option::of(-500.0f64..500.0),
        proptest::bool::ANY,
    )
        .prop_map(|(suite, number, name, net, lo, hi, value, passed)| Record {
            suite,
            test_number: number,
            test_name: name,
            net,
            lo,
            hi,
            value: value.unwrap_or(f64::NAN),
            passed,
        })
}

fn log_strategy() -> impl Strategy<Value = DeviceLog> {
    (
        0u64..1_000_000,
        proptest::collection::vec("[a-z]{1,8}:[a-z]{1,8}", 0..3),
        proptest::collection::vec(record_strategy(), 0..12),
    )
        .prop_map(|(device_id, truth, records)| DeviceLog {
            device_id,
            truth,
            records,
        })
}

/// Values survive the %.6f datalog formatting within half an LSB.
fn close(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || (a - b).abs() <= 5e-7
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn datalog_roundtrip(logs in proptest::collection::vec(log_strategy(), 0..6)) {
        let text = write_datalog(&logs);
        let parsed = parse_datalog(&text).unwrap();
        prop_assert_eq!(parsed.len(), logs.len());
        for (a, b) in logs.iter().zip(&parsed) {
            prop_assert_eq!(a.device_id, b.device_id);
            prop_assert_eq!(&a.truth, &b.truth);
            prop_assert_eq!(a.records.len(), b.records.len());
            for (ra, rb) in a.records.iter().zip(&b.records) {
                prop_assert_eq!(&ra.suite, &rb.suite);
                prop_assert_eq!(ra.test_number, rb.test_number);
                prop_assert_eq!(&ra.test_name, &rb.test_name);
                prop_assert_eq!(&ra.net, &rb.net);
                prop_assert_eq!(ra.passed, rb.passed);
                prop_assert!(close(ra.lo, rb.lo), "{} vs {}", ra.lo, rb.lo);
                prop_assert!(close(ra.hi, rb.hi), "{} vs {}", ra.hi, rb.hi);
                prop_assert!(close(ra.value, rb.value), "{} vs {}", ra.value, rb.value);
            }
        }
    }

    #[test]
    fn limits_partition_the_line(lo in -10.0f64..10.0, width in 0.0f64..5.0, v in -20.0f64..20.0) {
        let limits = Limits::new(lo, lo + width);
        let pass = limits.passes(v);
        prop_assert_eq!(pass, v >= lo && v <= lo + width);
        // NaN never passes.
        prop_assert!(!limits.passes(f64::NAN));
    }

    #[test]
    fn fail_counts_are_consistent(logs in proptest::collection::vec(log_strategy(), 1..4)) {
        for log in &logs {
            let failures = log.records.iter().filter(|r| !r.passed).count();
            prop_assert_eq!(log.fail_count(), failures);
            prop_assert_eq!(log.all_passed(), failures == 0);
        }
    }
}
