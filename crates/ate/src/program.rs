//! Specification test programs: limits, test definitions and suites.
//!
//! A [`TestProgram`] mirrors how the paper describes analogue production
//! test: "beginning with the contact and short-circuit tests, the test-set
//! iteratively evaluates each specification" under different stimulus
//! conditions. Each [`TestSuite`] is one stimulus configuration; each
//! [`TestDef`] measures one net against `[lo, hi]` limits.

use crate::error::{Error, Result};
use abbd_blocks::{Circuit, NetId, Stimulus};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Pass limits for one measurement: pass iff `lo <= value <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Limits {
    /// Inclusive lower limit (volts).
    pub lo: f64,
    /// Inclusive upper limit (volts).
    pub hi: f64,
}

impl Limits {
    /// Builds a limit pair; validation happens when the program is built.
    pub fn new(lo: f64, hi: f64) -> Self {
        Limits { lo, hi }
    }

    /// `true` when `value` passes.
    pub fn passes(&self, value: f64) -> bool {
        value.is_finite() && value >= self.lo && value <= self.hi
    }
}

/// One specification test: measure a net, compare against limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestDef {
    /// Unique test number (ATE convention).
    pub number: u32,
    /// Human-readable test name.
    pub name: String,
    /// The net whose voltage is measured.
    pub measured: NetId,
    /// Pass limits.
    pub limits: Limits,
}

/// One stimulus configuration plus the tests executed under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSuite {
    /// Suite name (unique within a program).
    pub name: String,
    /// Forced input-net levels for every test in the suite.
    pub stimulus: Stimulus,
    /// Tests executed under this stimulus, in order.
    pub tests: Vec<TestDef>,
}

/// An ordered collection of suites forming the full-circuit test program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TestProgram {
    suites: Vec<TestSuite>,
}

impl TestProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a suite.
    pub fn push_suite(&mut self, suite: TestSuite) -> &mut Self {
        self.suites.push(suite);
        self
    }

    /// The suites in execution order.
    pub fn suites(&self) -> &[TestSuite] {
        &self.suites
    }

    /// Total number of tests across all suites.
    pub fn test_count(&self) -> usize {
        self.suites.iter().map(|s| s.tests.len()).sum()
    }

    /// Number of suites.
    pub fn suite_count(&self) -> usize {
        self.suites.len()
    }

    /// Finds a test definition by number.
    pub fn find_test(&self, number: u32) -> Option<(&TestSuite, &TestDef)> {
        self.suites
            .iter()
            .find_map(|s| s.tests.iter().find(|t| t.number == number).map(|t| (s, t)))
    }

    /// Validates the program against a circuit: unique suite names and test
    /// numbers, sane limits, nets in range, stimulus only on input nets.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, circuit: &Circuit) -> Result<()> {
        let mut suite_names = HashSet::new();
        let mut numbers = HashSet::new();
        for suite in &self.suites {
            if !suite_names.insert(suite.name.as_str()) {
                return Err(Error::DuplicateSuite(suite.name.clone()));
            }
            for (net, _) in suite.stimulus.iter() {
                if net.index() >= circuit.net_count() {
                    return Err(Error::UnknownNet(format!("{net}")));
                }
                if circuit.driver_of(net).is_some() {
                    return Err(Error::UnknownNet(format!(
                        "{} (driven net used as stimulus)",
                        circuit.net_name(net)
                    )));
                }
            }
            for test in &suite.tests {
                if !numbers.insert(test.number) {
                    return Err(Error::DuplicateTestNumber(test.number));
                }
                if test.limits.lo > test.limits.hi {
                    return Err(Error::InvalidLimits {
                        test: test.number,
                        lo: test.limits.lo,
                        hi: test.limits.hi,
                    });
                }
                if test.measured.index() >= circuit.net_count() {
                    return Err(Error::UnknownNet(format!("{}", test.measured)));
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<TestSuite> for TestProgram {
    fn from_iter<I: IntoIterator<Item = TestSuite>>(iter: I) -> Self {
        TestProgram {
            suites: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_blocks::{Behavior, CircuitBuilder};

    fn circuit() -> Circuit {
        let mut cb = CircuitBuilder::new();
        let a = cb.net("a").unwrap();
        let o = cb.net("o").unwrap();
        cb.block(
            "buf",
            Behavior::LevelShift {
                gain: 1.0,
                offset: 0.0,
                rail: 5.0,
            },
            [a],
            o,
        )
        .unwrap();
        cb.build().unwrap()
    }

    fn suite(circuit: &Circuit, name: &str, first_number: u32) -> TestSuite {
        let a = circuit.find_net("a").unwrap();
        let o = circuit.find_net("o").unwrap();
        let mut stimulus = Stimulus::new();
        stimulus.force(a, 2.0);
        TestSuite {
            name: name.into(),
            stimulus,
            tests: vec![TestDef {
                number: first_number,
                name: format!("{name}_vout"),
                measured: o,
                limits: Limits::new(1.9, 2.1),
            }],
        }
    }

    #[test]
    fn limits_pass_fail() {
        let l = Limits::new(1.0, 2.0);
        assert!(l.passes(1.0));
        assert!(l.passes(2.0));
        assert!(!l.passes(0.99));
        assert!(!l.passes(2.01));
        assert!(!l.passes(f64::NAN));
        assert!(!l.passes(f64::INFINITY));
    }

    #[test]
    fn program_accessors() {
        let c = circuit();
        let program: TestProgram = [suite(&c, "s1", 100), suite(&c, "s2", 200)]
            .into_iter()
            .collect();
        assert_eq!(program.suite_count(), 2);
        assert_eq!(program.test_count(), 2);
        assert!(program.validate(&c).is_ok());
        let (s, t) = program.find_test(200).unwrap();
        assert_eq!(s.name, "s2");
        assert_eq!(t.name, "s2_vout");
        assert!(program.find_test(999).is_none());
    }

    #[test]
    fn rejects_duplicate_suite_and_number() {
        let c = circuit();
        let mut program = TestProgram::new();
        program.push_suite(suite(&c, "s1", 100));
        program.push_suite(suite(&c, "s1", 200));
        assert!(matches!(
            program.validate(&c),
            Err(Error::DuplicateSuite(_))
        ));

        let mut program = TestProgram::new();
        program.push_suite(suite(&c, "s1", 100));
        program.push_suite(suite(&c, "s2", 100));
        assert!(matches!(
            program.validate(&c),
            Err(Error::DuplicateTestNumber(100))
        ));
    }

    #[test]
    fn rejects_bad_limits_and_nets() {
        let c = circuit();
        let mut s = suite(&c, "s1", 100);
        s.tests[0].limits = Limits::new(3.0, 1.0);
        let program: TestProgram = [s].into_iter().collect();
        assert!(matches!(
            program.validate(&c),
            Err(Error::InvalidLimits { .. })
        ));

        let mut s = suite(&c, "s1", 100);
        s.tests[0].measured = NetId::from_index(77);
        let program: TestProgram = [s].into_iter().collect();
        assert!(matches!(program.validate(&c), Err(Error::UnknownNet(_))));
    }

    #[test]
    fn rejects_stimulus_on_driven_net() {
        let c = circuit();
        let o = c.find_net("o").unwrap();
        let mut s = suite(&c, "s1", 100);
        let mut stim = Stimulus::new();
        stim.force(o, 1.0);
        s.stimulus = stim;
        let program: TestProgram = [s].into_iter().collect();
        assert!(matches!(program.validate(&c), Err(Error::UnknownNet(_))));
    }
}
