//! On-demand test execution: run *individual* tests out of program order.
//!
//! The batch harness ([`crate::test_device`]) sweeps a whole program in
//! declaration order — the paper's no-stop-on-fail case-generation flow.
//! Closed-loop sequential diagnosis inverts the control: the diagnoser
//! decides which test to run next, and the tester must answer exactly
//! that one measurement. [`OnDemandTester`] validates a program once and
//! hands out per-device [`DeviceSession`]s; a session solves each suite's
//! operating point lazily and caches it, so re-measuring under the same
//! stimulus costs one voltage read plus a noise draw — the way a real ATE
//! keeps the stimulus applied while the host decides what to measure.

use crate::error::{Error, Result};
use crate::program::{TestDef, TestProgram, TestSuite};
use crate::tester::{NoiseModel, Record};
use abbd_blocks::{standard_normal, Circuit, Device, OperatingPoint, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A validated program bound to a circuit, ready to execute single tests.
#[derive(Debug)]
pub struct OnDemandTester<'a> {
    circuit: &'a Circuit,
    program: &'a TestProgram,
    sim: Simulator<'a>,
}

impl<'a> OnDemandTester<'a> {
    /// Validates `program` against `circuit` and builds the tester.
    ///
    /// # Errors
    ///
    /// Returns program-validation errors.
    pub fn new(circuit: &'a Circuit, program: &'a TestProgram) -> Result<Self> {
        program.validate(circuit)?;
        Ok(OnDemandTester {
            circuit,
            program,
            sim: Simulator::new(circuit, SimConfig::default()),
        })
    }

    /// The program this tester executes from.
    pub fn program(&self) -> &TestProgram {
        self.program
    }

    /// Opens a measurement session on one device. Noise is seeded from
    /// `(seed, device id)` like [`crate::test_population_batch`], so a
    /// re-run reproduces the same readings regardless of execution order
    /// interleaving across devices.
    pub fn session<'d>(
        &'d self,
        device: &'d Device,
        noise: NoiseModel,
        seed: u64,
    ) -> DeviceSession<'d, 'a> {
        DeviceSession {
            tester: self,
            device,
            noise,
            rng: StdRng::seed_from_u64(seed ^ device.id.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ops: vec![None; self.program.suite_count()],
            records: Vec::new(),
            active_suite: None,
            stimulus_switches: 0,
        }
    }

    /// The index of the stimulus suite containing a test — the cost hook
    /// adaptive planners use to price suite switches before choosing
    /// (e.g. feeding `abbd_core::CostModel::assign_suite`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTest`] for a number the program does not
    /// contain.
    pub fn suite_index_of(&self, number: u32) -> Result<usize> {
        self.locate(number).map(|(si, _, _)| si)
    }

    /// Suite index, suite and test definition for a test number.
    fn locate(&self, number: u32) -> Result<(usize, &TestSuite, &TestDef)> {
        self.program
            .suites()
            .iter()
            .enumerate()
            .find_map(|(si, suite)| {
                suite
                    .tests
                    .iter()
                    .find(|t| t.number == number)
                    .map(|t| (si, suite, t))
            })
            .ok_or(Error::UnknownTest(number))
    }
}

/// One device on the bench: executes chosen tests, caching each suite's
/// solved operating point so stimulus changes are only paid when the
/// chosen test actually needs a different configuration.
#[derive(Debug)]
pub struct DeviceSession<'d, 'a> {
    tester: &'d OnDemandTester<'a>,
    device: &'d Device,
    noise: NoiseModel,
    rng: StdRng,
    /// Per-suite cache: `None` = not solved yet, `Some(None)` = the
    /// operating point did not converge (tests under it read NaN/fail,
    /// mirroring [`crate::test_device`]).
    ops: Vec<Option<Option<OperatingPoint>>>,
    records: Vec<Record>,
    /// The suite of the most recently executed test (the stimulus
    /// currently applied on the bench).
    active_suite: Option<usize>,
    /// Times the active stimulus changed between consecutive executions.
    stimulus_switches: usize,
}

impl DeviceSession<'_, '_> {
    /// Executes one test by ATE number — in any order, any number of
    /// times (each execution draws fresh measurement noise).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTest`] for a number the program does not
    /// contain. Non-convergence is *not* an error: the record carries
    /// NaN and a fail verdict, like the batch harness.
    pub fn execute(&mut self, number: u32) -> Result<Record> {
        let (si, suite, test) = self.tester.locate(number)?;
        if self.active_suite.is_some_and(|cur| cur != si) {
            self.stimulus_switches += 1;
        }
        self.active_suite = Some(si);
        if self.ops[si].is_none() {
            self.ops[si] = Some(self.tester.sim.solve(self.device, &suite.stimulus).ok());
        }
        let (value, passed) = match self.ops[si].as_ref().expect("just solved") {
            Some(op) => {
                let raw = op.voltage(test.measured);
                let sigma = self
                    .noise
                    .sigma_for(self.tester.circuit.net_name(test.measured));
                let noisy = if sigma > 0.0 {
                    raw + sigma * standard_normal(&mut self.rng)
                } else {
                    raw
                };
                (noisy, test.limits.passes(noisy))
            }
            None => (f64::NAN, false),
        };
        let record = Record {
            suite: suite.name.clone(),
            test_number: test.number,
            test_name: test.name.clone(),
            net: self.tester.circuit.net_name(test.measured).into(),
            lo: test.limits.lo,
            hi: test.limits.hi,
            value,
            passed,
        };
        self.records.push(record.clone());
        Ok(record)
    }

    /// Reads the voltage of an arbitrary circuit net under the currently
    /// applied stimulus — the paper's *step two* physical probe, answered
    /// by the virtual bench. Unlike [`DeviceSession::execute`] this is
    /// not a specification test: there is no test number, no limits and
    /// no datalog record, just the node voltage an FIB/SEM probe (or a
    /// bench needle) would see. The caller bins and prices it.
    ///
    /// Probing rides the applied stimulus: if no suite has been applied
    /// yet, the first suite's operating point is solved (a probe needs a
    /// powered device), and that suite becomes the active one. Probing
    /// never counts as a stimulus switch. A non-converged operating point
    /// reads `NaN`, mirroring how failed tests read.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`] for a net outside the circuit.
    pub fn probe_net(&mut self, net: abbd_blocks::NetId) -> Result<f64> {
        if net.index() >= self.tester.circuit.net_count() {
            return Err(Error::UnknownNet(format!("{net}")));
        }
        let si = self.active_suite.unwrap_or(0);
        self.active_suite = Some(si);
        if self.ops[si].is_none() {
            let suite = &self.tester.program.suites()[si];
            self.ops[si] = Some(self.tester.sim.solve(self.device, &suite.stimulus).ok());
        }
        Ok(match self.ops[si].as_ref().expect("just solved") {
            Some(op) => op.voltage(net),
            None => f64::NAN,
        })
    }

    /// Every record taken in this session, in execution order (the
    /// out-of-order datalog of an adaptive run).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of distinct stimulus configurations solved so far — the
    /// expensive part of out-of-order execution an adaptive loop tries to
    /// minimise alongside test count.
    pub fn suites_touched(&self) -> usize {
        self.ops.iter().filter(|o| o.is_some()).count()
    }

    /// The suite of the most recently executed test — the stimulus
    /// currently applied on the bench, `None` before the first execution.
    /// Seed `abbd_core::CostModel::set_current_suite` from this so
    /// planner-side switch accounting matches the bench.
    pub fn active_suite(&self) -> Option<usize> {
        self.active_suite
    }

    /// How many times the applied stimulus changed between consecutive
    /// executions. Unlike [`DeviceSession::suites_touched`] this charges
    /// *returning* to an already-solved suite too: the operating point is
    /// cached, but a real ATE still pays the reconfiguration and settling
    /// time every time the stimulus swaps — which is exactly what a
    /// cost-aware test plan minimises.
    pub fn stimulus_switches(&self) -> usize {
        self.stimulus_switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Limits, TestDef, TestSuite};
    use crate::tester::test_device;
    use abbd_blocks::{Behavior, CircuitBuilder, DeviceFaults, Fault, FaultMode, Stimulus, Window};

    fn rig() -> (Circuit, TestProgram) {
        let mut cb = CircuitBuilder::new();
        let vbat = cb.net("vbat").unwrap();
        let en = cb.net("en").unwrap();
        let vref = cb.net("vref").unwrap();
        let vout = cb.net("vout").unwrap();
        cb.block(
            "bandgap",
            Behavior::Reference {
                nominal: 1.2,
                min_supply: 4.0,
            },
            [vbat],
            vref,
        )
        .unwrap();
        cb.block(
            "reg",
            Behavior::Regulator {
                nominal: 5.0,
                dropout: 0.5,
                enable_threshold: 2.0,
                reference: Window::new(1.1, 1.3),
            },
            [vbat, en, vref],
            vout,
        )
        .unwrap();
        let circuit = cb.build().unwrap();

        let mut on = Stimulus::new();
        on.force(vbat, 12.0);
        on.force(en, 3.3);
        let mut off = Stimulus::new();
        off.force(vbat, 12.0);
        off.force(en, 0.0);
        let program: TestProgram = [
            TestSuite {
                name: "enabled".into(),
                stimulus: on,
                tests: vec![
                    TestDef {
                        number: 100,
                        name: "vout_reg".into(),
                        measured: vout,
                        limits: Limits::new(4.75, 5.25),
                    },
                    TestDef {
                        number: 110,
                        name: "vref_nom".into(),
                        measured: vref,
                        limits: Limits::new(1.1, 1.3),
                    },
                ],
            },
            TestSuite {
                name: "disabled".into(),
                stimulus: off,
                tests: vec![TestDef {
                    number: 200,
                    name: "vout_off".into(),
                    measured: vout,
                    limits: Limits::new(-0.1, 0.1),
                }],
            },
        ]
        .into_iter()
        .collect();
        (circuit, program)
    }

    #[test]
    fn out_of_order_execution_matches_program_order_values() {
        let (circuit, program) = rig();
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        let golden = Device::golden(&circuit);
        let mut session = tester.session(&golden, NoiseModel::none(), 5);
        // Reverse program order, crossing a suite boundary both ways.
        for number in [200, 110, 100] {
            let r = session.execute(number).unwrap();
            assert!(r.passed, "golden device fails test {number}: {r:?}");
        }
        assert_eq!(session.records().len(), 3);
        assert_eq!(session.suites_touched(), 2);

        // Noiseless on-demand values equal the batch harness's.
        let mut rng = StdRng::seed_from_u64(9);
        let log = test_device(&circuit, &program, &golden, &NoiseModel::none(), &mut rng).unwrap();
        for record in session.records() {
            let batch = log
                .records
                .iter()
                .find(|r| r.test_number == record.test_number)
                .unwrap();
            assert_eq!(record.value, batch.value);
            assert_eq!(record.suite, batch.suite);
        }
    }

    #[test]
    fn operating_points_are_cached_per_suite() {
        let (circuit, program) = rig();
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        let golden = Device::golden(&circuit);
        let mut session = tester.session(&golden, NoiseModel::none(), 5);
        session.execute(100).unwrap();
        assert_eq!(session.suites_touched(), 1);
        session.execute(110).unwrap();
        assert_eq!(session.suites_touched(), 1, "same suite, cached op");
        session.execute(200).unwrap();
        assert_eq!(session.suites_touched(), 2);
    }

    #[test]
    fn faulty_device_fails_on_demand_too() {
        let (circuit, program) = rig();
        let bandgap = circuit.find_block("bandgap").unwrap();
        let mut dut = Device::golden(&circuit);
        dut.id = 3;
        dut.faults = DeviceFaults::single(Fault::new(bandgap, FaultMode::Dead));
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        let mut session = tester.session(&dut, NoiseModel::none(), 5);
        assert!(!session.execute(110).unwrap().passed, "vref is dead");
        assert!(session.execute(200).unwrap().passed, "off state still 0 V");
    }

    #[test]
    fn suite_hooks_track_switches_and_active_suite() {
        let (circuit, program) = rig();
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        assert_eq!(tester.suite_index_of(100).unwrap(), 0);
        assert_eq!(tester.suite_index_of(200).unwrap(), 1);
        assert!(matches!(
            tester.suite_index_of(999),
            Err(Error::UnknownTest(999))
        ));

        let golden = Device::golden(&circuit);
        let mut session = tester.session(&golden, NoiseModel::none(), 5);
        assert_eq!(session.active_suite(), None);
        assert_eq!(session.stimulus_switches(), 0);
        session.execute(100).unwrap();
        assert_eq!(session.active_suite(), Some(0));
        assert_eq!(session.stimulus_switches(), 0, "first stimulus is setup");
        session.execute(110).unwrap();
        assert_eq!(session.stimulus_switches(), 0, "same suite");
        session.execute(200).unwrap();
        assert_eq!(session.active_suite(), Some(1));
        assert_eq!(session.stimulus_switches(), 1);
        // Returning to a cached suite still swaps the stimulus.
        session.execute(100).unwrap();
        assert_eq!(session.stimulus_switches(), 2);
        assert_eq!(session.suites_touched(), 2, "ops stay cached");
    }

    #[test]
    fn probe_net_reads_internal_nodes_without_datalog_records() {
        let (circuit, program) = rig();
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        let golden = Device::golden(&circuit);
        let vref = circuit.find_net("vref").unwrap();
        let mut session = tester.session(&golden, NoiseModel::none(), 5);
        // Probing before any test powers the first suite and reads the
        // true node voltage, noise-free and record-free.
        let v = session.probe_net(vref).unwrap();
        assert!((v - 1.2).abs() < 1e-9, "bandgap reads {v}");
        assert_eq!(session.active_suite(), Some(0));
        assert!(session.records().is_empty(), "probes leave no datalog");
        assert_eq!(session.stimulus_switches(), 0, "probes ride the stimulus");
        // After switching suites, the probe sees the new stimulus.
        session.execute(200).unwrap();
        let v_off = session.probe_net(vref).unwrap();
        assert!(v_off < 1.3, "vref under the disabled suite reads {v_off}");
        assert_eq!(session.stimulus_switches(), 1, "only the test switched");
        // Nets outside the circuit are rejected.
        let bogus = abbd_blocks::NetId::from_index(circuit.net_count());
        assert!(matches!(
            session.probe_net(bogus),
            Err(Error::UnknownNet(_))
        ));
    }

    #[test]
    fn unknown_test_numbers_are_rejected() {
        let (circuit, program) = rig();
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        let golden = Device::golden(&circuit);
        let mut session = tester.session(&golden, NoiseModel::none(), 5);
        assert!(matches!(session.execute(999), Err(Error::UnknownTest(999))));
    }

    #[test]
    fn repeated_execution_redraws_noise_deterministically() {
        let (circuit, program) = rig();
        let tester = OnDemandTester::new(&circuit, &program).unwrap();
        let golden = Device::golden(&circuit);
        let run = |seed| {
            let mut s = tester.session(&golden, NoiseModel::production(), seed);
            (s.execute(100).unwrap().value, s.execute(100).unwrap().value)
        };
        let (a1, a2) = run(7);
        let (b1, b2) = run(7);
        assert_ne!(a1, a2, "each execution draws fresh noise");
        assert_eq!((a1, a2), (b1, b2), "sessions are seed-deterministic");
    }
}
