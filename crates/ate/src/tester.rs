//! The tester harness: runs a program on a device, no-stop-on-fail, and
//! produces a self-contained datalog.

use crate::error::Result;
use crate::program::TestProgram;
use abbd_blocks::{standard_normal, Circuit, Device, SimConfig, Simulator};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Additive measurement noise applied to every voltage reading.
///
/// The base `sigma` models the rack's default voltmeter; per-instrument
/// overrides (keyed by measured net name) model the fact that a real ATE
/// routes different nets through different meters, relays and contactor
/// pins — and that any one of those paths can degrade independently. The
/// scenario engine's degraded-instrument fault mode is expressed here:
/// same device, same limits, one noisy measurement path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// 1-sigma measurement noise in volts for every net without an
    /// override.
    pub sigma: f64,
    /// Per-net sigma overrides `(net name, sigma)`; the last entry for a
    /// net wins.
    #[serde(default)]
    pub overrides: Vec<(String, f64)>,
}

impl NoiseModel {
    /// A noiseless meter.
    pub fn none() -> Self {
        NoiseModel {
            sigma: 0.0,
            overrides: Vec::new(),
        }
    }

    /// A typical production voltmeter (2 mV sigma).
    pub fn production() -> Self {
        NoiseModel {
            sigma: 0.002,
            overrides: Vec::new(),
        }
    }

    /// A uniform meter with the given sigma on every net.
    pub fn uniform(sigma: f64) -> Self {
        NoiseModel {
            sigma,
            overrides: Vec::new(),
        }
    }

    /// Overrides the instrument on `net` with an absolute sigma
    /// (builder style).
    pub fn with_instrument(mut self, net: impl Into<String>, sigma: f64) -> Self {
        self.overrides.push((net.into(), sigma));
        self
    }

    /// A degraded instrument on `net`: the base sigma scaled by `factor`
    /// (builder style). `factor` 1.0 is a healthy path.
    pub fn degraded(self, net: impl Into<String>, factor: f64) -> Self {
        let sigma = self.sigma * factor;
        self.with_instrument(net, sigma)
    }

    /// The effective 1-sigma noise of the instrument measuring `net`.
    pub fn sigma_for(&self, net: &str) -> f64 {
        self.overrides
            .iter()
            .rev()
            .find(|(n, _)| n == net)
            .map(|&(_, s)| s)
            .unwrap_or(self.sigma)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::production()
    }
}

/// One datalog row: everything needed to re-evaluate the measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// The suite this test ran under.
    pub suite: String,
    /// ATE test number.
    pub test_number: u32,
    /// Test name.
    pub test_name: String,
    /// Measured net name.
    pub net: String,
    /// Lower limit.
    pub lo: f64,
    /// Upper limit.
    pub hi: f64,
    /// Measured value (NaN when the solver failed to converge).
    pub value: f64,
    /// Pass/fail verdict.
    pub passed: bool,
}

/// The full no-stop-on-fail log of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceLog {
    /// Device serial number.
    pub device_id: u64,
    /// Ground-truth fault annotation for synthetic populations
    /// (`block:mode` tags). Diagnosis must never read this; scoring does.
    pub truth: Vec<String>,
    /// Measurement records in program order.
    pub records: Vec<Record>,
}

impl DeviceLog {
    /// `true` when every record passed.
    pub fn all_passed(&self) -> bool {
        self.records.iter().all(|r| r.passed)
    }

    /// Number of failing records.
    pub fn fail_count(&self) -> usize {
        self.records.iter().filter(|r| !r.passed).count()
    }

    /// The records of one suite.
    pub fn suite_records<'a>(&'a self, suite: &'a str) -> impl Iterator<Item = &'a Record> {
        self.records.iter().filter(move |r| r.suite == suite)
    }
}

/// Runs `program` on `device`, measuring every test in every suite
/// (no-stop-on-fail, as the paper's flow requires for case generation).
///
/// A suite whose operating point does not converge logs NaN/fail rows for
/// all its tests rather than aborting the device — mirroring how an ATE
/// keeps testing after a dead measurement.
///
/// # Errors
///
/// Returns program-validation errors; simulation non-convergence is
/// captured in the log, not returned.
pub fn test_device<R: Rng + ?Sized>(
    circuit: &Circuit,
    program: &TestProgram,
    device: &Device,
    noise: &NoiseModel,
    rng: &mut R,
) -> Result<DeviceLog> {
    program.validate(circuit)?;
    let sim = Simulator::new(circuit, SimConfig::default());
    let mut records = Vec::with_capacity(program.test_count());
    for suite in program.suites() {
        let op = sim.solve(device, &suite.stimulus);
        for test in &suite.tests {
            let (value, passed) = match &op {
                Ok(op) => {
                    let raw = op.voltage(test.measured);
                    let sigma = noise.sigma_for(circuit.net_name(test.measured));
                    let noisy = if sigma > 0.0 {
                        raw + sigma * standard_normal(rng)
                    } else {
                        raw
                    };
                    (noisy, test.limits.passes(noisy))
                }
                Err(_) => (f64::NAN, false),
            };
            records.push(Record {
                suite: suite.name.clone(),
                test_number: test.number,
                test_name: test.name.clone(),
                net: circuit.net_name(test.measured).into(),
                lo: test.limits.lo,
                hi: test.limits.hi,
                value,
                passed,
            });
        }
    }
    Ok(DeviceLog {
        device_id: device.id,
        truth: device
            .faults
            .iter()
            .map(|f| format!("{}:{}", circuit.block(f.block).name, f.mode.tag()))
            .collect(),
        records,
    })
}

/// Tests a whole population, returning one log per device.
///
/// # Errors
///
/// Propagates [`test_device`] errors.
pub fn test_population<R: Rng + ?Sized>(
    circuit: &Circuit,
    program: &TestProgram,
    devices: &[Device],
    noise: &NoiseModel,
    rng: &mut R,
) -> Result<Vec<DeviceLog>> {
    devices
        .iter()
        .map(|d| test_device(circuit, program, d, noise, rng))
        .collect()
}

/// Tests a whole population in parallel, one device per task, returning
/// logs in device order.
///
/// Unlike [`test_population`] (which threads one RNG through every
/// device), each device gets its own noise stream seeded from `(seed,
/// device id)`, so the result is deterministic for a fixed `seed`
/// regardless of worker count — the property batch pipelines need when a
/// re-run must reproduce a datalog byte for byte.
///
/// # Errors
///
/// Propagates [`test_device`] errors.
pub fn test_population_batch(
    circuit: &Circuit,
    program: &TestProgram,
    devices: &[Device],
    noise: &NoiseModel,
    seed: u64,
) -> Result<Vec<DeviceLog>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rayon::prelude::*;

    let logs: Vec<Result<DeviceLog>> = devices
        .par_iter()
        .map(|d| {
            // Mix the device id into the seed so streams never collide.
            let mut rng = StdRng::seed_from_u64(seed ^ d.id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            test_device(circuit, program, d, noise, &mut rng)
        })
        .collect();
    logs.into_iter().collect()
}

/// Convenience: the subset of logs with at least one failing record — the
/// paper's "fail information from defective samples".
pub fn failing_logs(logs: &[DeviceLog]) -> Vec<&DeviceLog> {
    logs.iter().filter(|l| !l.all_passed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Limits, TestDef, TestSuite};
    use abbd_blocks::{Behavior, CircuitBuilder, DeviceFaults, Fault, FaultMode, Stimulus, Window};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rig() -> (Circuit, TestProgram) {
        let mut cb = CircuitBuilder::new();
        let vbat = cb.net("vbat").unwrap();
        let en = cb.net("en").unwrap();
        let vref = cb.net("vref").unwrap();
        let vout = cb.net("vout").unwrap();
        cb.block(
            "bandgap",
            Behavior::Reference {
                nominal: 1.2,
                min_supply: 4.0,
            },
            [vbat],
            vref,
        )
        .unwrap();
        cb.block(
            "reg",
            Behavior::Regulator {
                nominal: 5.0,
                dropout: 0.5,
                enable_threshold: 2.0,
                reference: Window::new(1.1, 1.3),
            },
            [vbat, en, vref],
            vout,
        )
        .unwrap();
        let circuit = cb.build().unwrap();

        let mut on = Stimulus::new();
        on.force(vbat, 12.0);
        on.force(en, 3.3);
        let mut off = Stimulus::new();
        off.force(vbat, 12.0);
        off.force(en, 0.0);
        let program: TestProgram = [
            TestSuite {
                name: "enabled".into(),
                stimulus: on,
                tests: vec![
                    TestDef {
                        number: 100,
                        name: "vout_reg".into(),
                        measured: vout,
                        limits: Limits::new(4.75, 5.25),
                    },
                    TestDef {
                        number: 110,
                        name: "vref_nom".into(),
                        measured: vref,
                        limits: Limits::new(1.1, 1.3),
                    },
                ],
            },
            TestSuite {
                name: "disabled".into(),
                stimulus: off,
                tests: vec![TestDef {
                    number: 200,
                    name: "vout_off".into(),
                    measured: vout,
                    limits: Limits::new(-0.1, 0.1),
                }],
            },
        ]
        .into_iter()
        .collect();
        (circuit, program)
    }

    #[test]
    fn golden_device_passes_everything() {
        let (circuit, program) = rig();
        let mut rng = StdRng::seed_from_u64(2);
        let log = test_device(
            &circuit,
            &program,
            &Device::golden(&circuit),
            &NoiseModel::none(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(log.records.len(), 3);
        assert!(log.all_passed());
        assert_eq!(log.fail_count(), 0);
        assert!(log.truth.is_empty());
        assert_eq!(log.suite_records("enabled").count(), 2);
    }

    #[test]
    fn dead_bandgap_fails_but_testing_continues() {
        let (circuit, program) = rig();
        let bandgap = circuit.find_block("bandgap").unwrap();
        let mut dut = Device::golden(&circuit);
        dut.id = 7;
        dut.faults = DeviceFaults::single(Fault::new(bandgap, FaultMode::Dead));
        let mut rng = StdRng::seed_from_u64(2);
        let log = test_device(&circuit, &program, &dut, &NoiseModel::none(), &mut rng).unwrap();
        assert_eq!(log.device_id, 7);
        assert_eq!(log.records.len(), 3, "no-stop-on-fail keeps all records");
        // vout_reg and vref_nom fail; vout_off still passes (0 V expected).
        assert_eq!(log.fail_count(), 2);
        assert_eq!(log.truth, vec!["bandgap:dead".to_string()]);
    }

    #[test]
    fn per_instrument_override_targets_one_net() {
        let (circuit, program) = rig();
        // A noiseless rack with one badly degraded instrument: only the
        // overridden net's readings move, every other net stays exact.
        let noise = NoiseModel::none().with_instrument("vout", 0.05);
        assert_eq!(noise.sigma_for("vout"), 0.05);
        assert_eq!(noise.sigma_for("vmid"), 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let clean = test_device(
            &circuit,
            &program,
            &Device::golden(&circuit),
            &NoiseModel::none(),
            &mut rng,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let degraded = test_device(
            &circuit,
            &program,
            &Device::golden(&circuit),
            &noise,
            &mut rng,
        )
        .unwrap();
        for (a, b) in clean.records.iter().zip(&degraded.records) {
            if a.net == "vout" {
                assert!((a.value - b.value).abs() > 1e-9, "vout must be perturbed");
            } else {
                assert_eq!(a.value, b.value, "net {} must stay exact", a.net);
            }
        }
        // `degraded` scales the base sigma instead of replacing it.
        let scaled = NoiseModel::production().degraded("vout", 10.0);
        assert!((scaled.sigma_for("vout") - 0.02).abs() < 1e-12);
        assert!((scaled.sigma_for("vmid") - 0.002).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs_measurements() {
        let (circuit, program) = rig();
        let mut rng = StdRng::seed_from_u64(3);
        let clean = test_device(
            &circuit,
            &program,
            &Device::golden(&circuit),
            &NoiseModel::none(),
            &mut rng,
        )
        .unwrap();
        let noisy = test_device(
            &circuit,
            &program,
            &Device::golden(&circuit),
            &NoiseModel::uniform(0.01),
            &mut rng,
        )
        .unwrap();
        let moved = clean
            .records
            .iter()
            .zip(&noisy.records)
            .any(|(a, b)| (a.value - b.value).abs() > 1e-6);
        assert!(moved, "noise must perturb at least one reading");
    }

    #[test]
    fn population_batch_is_deterministic_and_ordered() {
        let (circuit, program) = rig();
        let bandgap = circuit.find_block("bandgap").unwrap();
        let mut devices = Vec::new();
        for id in 0..8u64 {
            let mut d = Device::golden(&circuit);
            d.id = id;
            if id % 2 == 1 {
                d.faults = DeviceFaults::single(Fault::new(bandgap, FaultMode::Dead));
            }
            devices.push(d);
        }
        let a = test_population_batch(&circuit, &program, &devices, &NoiseModel::production(), 7)
            .unwrap();
        let b = test_population_batch(&circuit, &program, &devices, &NoiseModel::production(), 7)
            .unwrap();
        assert_eq!(a, b, "same seed must reproduce the logs exactly");
        let ids: Vec<u64> = a.iter().map(|l| l.device_id).collect();
        assert_eq!(
            ids,
            (0..8).collect::<Vec<_>>(),
            "logs come back in device order"
        );
        assert!(a.iter().filter(|l| !l.all_passed()).count() >= 4);
        let c = test_population_batch(&circuit, &program, &devices, &NoiseModel::production(), 8)
            .unwrap();
        assert_ne!(a, c, "a different seed must perturb the noise");
    }

    #[test]
    fn population_and_failing_filter() {
        let (circuit, program) = rig();
        let bandgap = circuit.find_block("bandgap").unwrap();
        let good = Device::golden(&circuit);
        let mut bad = Device::golden(&circuit);
        bad.id = 1;
        bad.faults = DeviceFaults::single(Fault::new(bandgap, FaultMode::Dead));
        let mut rng = StdRng::seed_from_u64(4);
        let logs = test_population(
            &circuit,
            &program,
            &[good, bad],
            &NoiseModel::none(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(logs.len(), 2);
        let failing = failing_logs(&logs);
        assert_eq!(failing.len(), 1);
        assert_eq!(failing[0].device_id, 1);
    }
}
