//! # abbd-ate — automatic test equipment substrate
//!
//! Specification [`TestProgram`]s (stimulus suites with limit-checked
//! measurements), a no-stop-on-fail tester harness producing per-device
//! [`DeviceLog`]s, and a self-contained ASCII datalog format.
//!
//! The paper's block-level diagnosis consumes "no-stop on fail functional
//! (specification) test data from a sufficiently large number of defective
//! samples"; this crate generates exactly that data from the behavioural
//! simulator in [`abbd_blocks`].
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), abbd_ate::Error> {
//! use abbd_ate::{test_device, Limits, NoiseModel, TestDef, TestProgram, TestSuite};
//! use abbd_blocks::{Behavior, CircuitBuilder, Device, Stimulus};
//! use rand::SeedableRng;
//!
//! let mut cb = CircuitBuilder::new();
//! let vin = cb.net("vin")?;
//! let vout = cb.net("vout")?;
//! cb.block("buf", Behavior::LevelShift { gain: 1.0, offset: 0.0, rail: 5.0 }, [vin], vout)?;
//! let circuit = cb.build()?;
//!
//! let mut stim = Stimulus::new();
//! stim.force(vin, 2.0);
//! let program: TestProgram = [TestSuite {
//!     name: "dc".into(),
//!     stimulus: stim,
//!     tests: vec![TestDef {
//!         number: 100,
//!         name: "vout_dc".into(),
//!         measured: vout,
//!         limits: Limits::new(1.9, 2.1),
//!     }],
//! }]
//! .into_iter()
//! .collect();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let log = test_device(&circuit, &program, &Device::golden(&circuit), &NoiseModel::none(), &mut rng)?;
//! assert!(log.all_passed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datalog;
mod error;
mod ondemand;
mod program;
mod tester;

pub use datalog::{parse_datalog, write_datalog};
pub use error::{Error, Result};
pub use ondemand::{DeviceSession, OnDemandTester};
pub use program::{Limits, TestDef, TestProgram, TestSuite};
pub use tester::{
    failing_logs, test_device, test_population, test_population_batch, DeviceLog, NoiseModel,
    Record,
};
