//! ASCII datalog files: the interchange format between the tester and the
//! Dlog2BBN case generator (standing in for the paper's "ATE test files").
//!
//! The format is line-oriented and self-contained:
//!
//! ```text
//! #ABBD-DATALOG v1
//! DEVICE 42 truth=lcbg:dead
//! RECORD enabled|100|vout_reg|vout|4.750000|5.250000|4.998123|P
//! RECORD enabled|110|vref_nom|vref|1.100000|1.300000|1.199871|P
//! END
//! ```

use crate::error::{Error, Result};
use crate::tester::{DeviceLog, Record};
use bytes::{BufMut, BytesMut};

const HEADER: &str = "#ABBD-DATALOG v1";

/// Serialises device logs into the ASCII datalog format.
pub fn write_datalog(logs: &[DeviceLog]) -> String {
    // BytesMut keeps the append loop allocation-friendly for large
    // populations before the final UTF-8 freeze.
    let mut buf = BytesMut::with_capacity(logs.len() * 256 + 64);
    buf.put_slice(HEADER.as_bytes());
    buf.put_u8(b'\n');
    for log in logs {
        if log.truth.is_empty() {
            buf.put_slice(format!("DEVICE {}\n", log.device_id).as_bytes());
        } else {
            buf.put_slice(
                format!("DEVICE {} truth={}\n", log.device_id, log.truth.join(",")).as_bytes(),
            );
        }
        for r in &log.records {
            let verdict = if r.passed { 'P' } else { 'F' };
            buf.put_slice(
                format!(
                    "RECORD {}|{}|{}|{}|{:.6}|{:.6}|{:.6}|{}\n",
                    r.suite, r.test_number, r.test_name, r.net, r.lo, r.hi, r.value, verdict
                )
                .as_bytes(),
            );
        }
        buf.put_slice(b"END\n");
    }
    String::from_utf8(buf.to_vec()).expect("datalog content is always UTF-8")
}

/// Parses a datalog produced by [`write_datalog`] (or a compatible tool).
///
/// # Errors
///
/// Returns [`Error::Parse`] with a line number for any malformed content.
pub fn parse_datalog(text: &str) -> Result<Vec<DeviceLog>> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, line)) if line.trim() == HEADER => {}
        Some((i, line)) => {
            return Err(Error::Parse {
                line: i + 1,
                reason: format!("expected header `{HEADER}`, found `{line}`"),
            })
        }
        None => {
            return Err(Error::Parse {
                line: 1,
                reason: "empty datalog".into(),
            });
        }
    }

    let mut logs: Vec<DeviceLog> = Vec::new();
    let mut current: Option<DeviceLog> = None;
    for (i, raw) in lines {
        let line = raw.trim();
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("DEVICE ") {
            if current.is_some() {
                return Err(Error::Parse {
                    line: lineno,
                    reason: "DEVICE before END of previous device".into(),
                });
            }
            let mut parts = rest.split_whitespace();
            let id: u64 =
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| Error::Parse {
                        line: lineno,
                        reason: "missing or invalid device id".into(),
                    })?;
            let mut truth = Vec::new();
            for extra in parts {
                if let Some(t) = extra.strip_prefix("truth=") {
                    truth = t.split(',').map(str::to_string).collect();
                } else {
                    return Err(Error::Parse {
                        line: lineno,
                        reason: format!("unknown DEVICE attribute `{extra}`"),
                    });
                }
            }
            current = Some(DeviceLog {
                device_id: id,
                truth,
                records: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix("RECORD ") {
            let log = current.as_mut().ok_or_else(|| Error::Parse {
                line: lineno,
                reason: "RECORD outside a DEVICE block".into(),
            })?;
            let fields: Vec<&str> = rest.split('|').collect();
            if fields.len() != 8 {
                return Err(Error::Parse {
                    line: lineno,
                    reason: format!("expected 8 fields, found {}", fields.len()),
                });
            }
            let parse_f = |s: &str, what: &str| -> Result<f64> {
                if s == "NaN" {
                    return Ok(f64::NAN);
                }
                s.parse().map_err(|_| Error::Parse {
                    line: lineno,
                    reason: format!("invalid {what} `{s}`"),
                })
            };
            let passed = match fields[7] {
                "P" => true,
                "F" => false,
                other => {
                    return Err(Error::Parse {
                        line: lineno,
                        reason: format!("invalid verdict `{other}`"),
                    })
                }
            };
            log.records.push(Record {
                suite: fields[0].to_string(),
                test_number: fields[1].parse().map_err(|_| Error::Parse {
                    line: lineno,
                    reason: format!("invalid test number `{}`", fields[1]),
                })?,
                test_name: fields[2].to_string(),
                net: fields[3].to_string(),
                lo: parse_f(fields[4], "lower limit")?,
                hi: parse_f(fields[5], "upper limit")?,
                value: parse_f(fields[6], "value")?,
                passed,
            });
        } else if line == "END" {
            let log = current.take().ok_or_else(|| Error::Parse {
                line: lineno,
                reason: "END without a DEVICE".into(),
            })?;
            logs.push(log);
        } else {
            return Err(Error::Parse {
                line: lineno,
                reason: format!("unrecognised line `{line}`"),
            });
        }
    }
    if current.is_some() {
        return Err(Error::Parse {
            line: text.lines().count(),
            reason: "datalog truncated: missing END".into(),
        });
    }
    Ok(logs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_logs() -> Vec<DeviceLog> {
        vec![
            DeviceLog {
                device_id: 1,
                truth: vec![],
                records: vec![Record {
                    suite: "s1".into(),
                    test_number: 100,
                    test_name: "t_a".into(),
                    net: "vout".into(),
                    lo: 4.75,
                    hi: 5.25,
                    value: 5.0,
                    passed: true,
                }],
            },
            DeviceLog {
                device_id: 2,
                truth: vec!["bandgap:dead".into()],
                records: vec![
                    Record {
                        suite: "s1".into(),
                        test_number: 100,
                        test_name: "t_a".into(),
                        net: "vout".into(),
                        lo: 4.75,
                        hi: 5.25,
                        value: 0.001,
                        passed: false,
                    },
                    Record {
                        suite: "s2".into(),
                        test_number: 200,
                        test_name: "t_b".into(),
                        net: "vref".into(),
                        lo: 1.1,
                        hi: 1.3,
                        value: f64::NAN,
                        passed: false,
                    },
                ],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let logs = sample_logs();
        let text = write_datalog(&logs);
        let parsed = parse_datalog(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].device_id, 1);
        assert_eq!(parsed[1].truth, vec!["bandgap:dead".to_string()]);
        assert_eq!(parsed[1].records.len(), 2);
        assert_eq!(parsed[0].records[0].value, 5.0);
        assert!(parsed[1].records[1].value.is_nan());
        assert!(!parsed[1].records[0].passed);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            parse_datalog(""),
            Err(Error::Parse { line: 1, .. })
        ));
        assert!(parse_datalog("garbage\n").is_err());
    }

    #[test]
    fn rejects_record_outside_device() {
        let text = format!("{HEADER}\nRECORD a|1|t|n|0|1|0.5|P\n");
        assert!(parse_datalog(&text).is_err());
    }

    #[test]
    fn rejects_nested_device() {
        let text = format!("{HEADER}\nDEVICE 1\nDEVICE 2\n");
        assert!(parse_datalog(&text).is_err());
    }

    #[test]
    fn rejects_truncated_log() {
        let text = format!("{HEADER}\nDEVICE 1\n");
        assert!(parse_datalog(&text).is_err());
    }

    #[test]
    fn rejects_malformed_record() {
        for bad in [
            "RECORD a|1|t|n|0|1|0.5",    // 7 fields
            "RECORD a|x|t|n|0|1|0.5|P",  // bad number
            "RECORD a|1|t|n|zz|1|0.5|P", // bad limit
            "RECORD a|1|t|n|0|1|0.5|Q",  // bad verdict
        ] {
            let text = format!("{HEADER}\nDEVICE 1\n{bad}\nEND\n");
            assert!(parse_datalog(&text).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = format!("{HEADER}\n\n# a comment\nDEVICE 1\nEND\n");
        let logs = parse_datalog(&text).unwrap();
        assert_eq!(logs.len(), 1);
        assert!(logs[0].records.is_empty());
    }

    #[test]
    fn rejects_unknown_device_attribute() {
        let text = format!("{HEADER}\nDEVICE 1 color=red\nEND\n");
        assert!(parse_datalog(&text).is_err());
    }
}
