//! Error type for the ATE substrate.

use std::fmt;

/// Result alias used throughout [`crate`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building test programs, testing devices or
/// (de)serialising datalogs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A test number appears twice in a program.
    DuplicateTestNumber(u32),
    /// Limits are inverted (`lo > hi`).
    InvalidLimits {
        /// The offending test number.
        test: u32,
        /// Lower limit.
        lo: f64,
        /// Upper limit.
        hi: f64,
    },
    /// The program references a net missing from the circuit.
    UnknownNet(String),
    /// A suite name appears twice in a program.
    DuplicateSuite(String),
    /// An on-demand execution referenced a test number the program does
    /// not contain.
    UnknownTest(u32),
    /// Simulation failed while testing a device.
    Simulation(abbd_blocks::Error),
    /// A datalog line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateTestNumber(n) => {
                write!(f, "test number {n} is already used")
            }
            Error::InvalidLimits { test, lo, hi } => {
                write!(f, "test {test} has inverted limits [{lo}, {hi}]")
            }
            Error::UnknownNet(name) => write!(f, "unknown net `{name}`"),
            Error::DuplicateSuite(name) => write!(f, "suite `{name}` is already declared"),
            Error::UnknownTest(number) => {
                write!(f, "test number {number} is not in the program")
            }
            Error::Simulation(e) => write!(f, "simulation failed: {e}"),
            Error::Parse { line, reason } => {
                write!(f, "datalog parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<abbd_blocks::Error> for Error {
    fn from(e: abbd_blocks::Error) -> Self {
        Error::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let samples = [
            Error::DuplicateTestNumber(7),
            Error::InvalidLimits {
                test: 1,
                lo: 2.0,
                hi: 1.0,
            },
            Error::UnknownNet("x".into()),
            Error::DuplicateSuite("s".into()),
            Error::UnknownTest(404),
            Error::Simulation(abbd_blocks::Error::UnknownNet("n".into())),
            Error::Parse {
                line: 3,
                reason: "bad".into(),
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn simulation_error_has_source() {
        use std::error::Error as _;
        let e = Error::Simulation(abbd_blocks::Error::UnknownNet("n".into()));
        assert!(e.source().is_some());
        assert!(Error::DuplicateTestNumber(1).source().is_none());
    }

    #[test]
    fn from_blocks_error() {
        let e: Error = abbd_blocks::Error::DuplicateNet("n".into()).into();
        assert!(matches!(e, Error::Simulation(_)));
    }
}
