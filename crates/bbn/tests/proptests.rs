//! Property-based tests: random networks, random factors, random evidence.
//! Every inference engine must agree with brute-force enumeration, and the
//! learning algorithms must respect their monotonicity contracts.

use abbd_bbn::learn::{fit_complete, fit_em, Case, DirichletPrior, EmConfig};
use abbd_bbn::{
    enumerate_posteriors, forward_sample_cases, most_probable_explanation, Evidence, Factor,
    JunctionTree, Network, NetworkBuilder, VarId, VariableElimination,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Recipe for a random small network: per-variable cardinalities, an edge
/// mask over the upper triangle, and raw CPT material.
#[derive(Debug, Clone)]
struct NetRecipe {
    cards: Vec<usize>,
    edges: Vec<bool>,
    raw: Vec<f64>,
}

fn net_recipe(max_vars: usize) -> impl Strategy<Value = NetRecipe> {
    (2..=max_vars)
        .prop_flat_map(|n| {
            let pairs = n * (n - 1) / 2;
            (
                proptest::collection::vec(2usize..=3, n),
                proptest::collection::vec(proptest::bool::weighted(0.45), pairs),
                proptest::collection::vec(0.05f64..1.0, 4096),
            )
        })
        .prop_map(|(cards, edges, raw)| NetRecipe { cards, edges, raw })
}

/// Materialises a recipe into a validated network. Edges always point from
/// lower to higher index, so the result is a DAG by construction. Parent
/// sets are capped at 3 to bound CPT sizes.
fn build_net(recipe: &NetRecipe) -> Network {
    let n = recipe.cards.len();
    let mut b = NetworkBuilder::new();
    let vars: Vec<VarId> = (0..n)
        .map(|i| {
            let labels: Vec<String> = (0..recipe.cards[i]).map(|s| format!("s{s}")).collect();
            b.variable(format!("x{i}"), labels).unwrap()
        })
        .collect();
    let mut raw_iter = recipe.raw.iter().copied().cycle();
    let mut edge_iter = recipe.edges.iter().copied();
    for j in 0..n {
        let mut parents = Vec::new();
        for &candidate in vars.iter().take(j) {
            if edge_iter.next().unwrap_or(false) && parents.len() < 3 {
                parents.push(candidate);
            }
        }
        let configs: usize = parents.iter().map(|p| recipe.cards[p.index()]).product();
        let card = recipe.cards[j];
        let mut flat = Vec::with_capacity(configs * card);
        for _ in 0..configs {
            let mut row: Vec<f64> = (0..card).map(|_| raw_iter.next().unwrap()).collect();
            let z: f64 = row.iter().sum();
            for v in &mut row {
                *v /= z;
            }
            // Compensate accumulated rounding on the last entry.
            let err: f64 = 1.0 - row.iter().sum::<f64>();
            *row.last_mut().unwrap() += err;
            flat.extend(row);
        }
        b.cpt_flat(vars[j], parents, flat).unwrap();
    }
    b.build().unwrap()
}

/// Random hard evidence over roughly a third of the variables.
fn pick_evidence(net: &Network, seed: u64) -> Evidence {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let mut e = Evidence::new();
    for v in net.variables() {
        if rng.gen_bool(0.33) {
            e.observe(v, rng.gen_range(0..net.card(v)));
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn ve_matches_enumeration(recipe in net_recipe(6), seed in 0u64..1000) {
        let net = build_net(&recipe);
        let evidence = pick_evidence(&net, seed);
        let exact = enumerate_posteriors(&net, &evidence);
        let ve = VariableElimination::new(&net).all_posteriors(&evidence);
        match (exact, ve) {
            (Ok(a), Ok(b)) => prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-8),
            (Err(_), Err(_)) => {} // both reject impossible evidence
            (a, b) => prop_assert!(false, "engines disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn jt_matches_enumeration(recipe in net_recipe(6), seed in 0u64..1000) {
        let net = build_net(&recipe);
        let evidence = pick_evidence(&net, seed);
        let exact = enumerate_posteriors(&net, &evidence);
        let jt = JunctionTree::compile(&net).unwrap();
        let got = jt.posteriors(&evidence);
        match (exact, got) {
            (Ok(a), Ok(b)) => prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-8),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "engines disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn jt_and_ve_log_likelihood_agree(recipe in net_recipe(6), seed in 0u64..1000) {
        let net = build_net(&recipe);
        let evidence = pick_evidence(&net, seed);
        let jt = JunctionTree::compile(&net).unwrap();
        let ve = VariableElimination::new(&net);
        match (jt.propagate(&evidence), ve.log_likelihood(&evidence)) {
            (Ok(cal), Ok(ll)) => {
                prop_assert!((cal.log_likelihood() - ll).abs() < 1e-8 * (1.0 + ll.abs()));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn mpe_beats_or_ties_every_enumerated_assignment(
        recipe in net_recipe(5),
        seed in 0u64..1000,
    ) {
        let net = build_net(&recipe);
        let evidence = pick_evidence(&net, seed);
        let Ok(mpe) = most_probable_explanation(&net, &evidence) else { return Ok(()); };
        // The claimed assignment must be consistent with the evidence...
        for (v, s) in evidence.hard_iter() {
            prop_assert_eq!(mpe.assignment[v.index()], s);
        }
        // ...achieve its claimed probability...
        let p = net.joint_probability(&mpe.assignment).unwrap();
        prop_assert!((p.ln() - mpe.log_probability).abs() < 1e-8);
        // ...and dominate every consistent assignment.
        let cards: Vec<usize> = net.variables().map(|v| net.card(v)).collect();
        let total: usize = cards.iter().product();
        let mut a = vec![0usize; cards.len()];
        for _ in 0..total {
            let consistent =
                evidence.hard_iter().all(|(v, s)| a[v.index()] == s);
            if consistent {
                let q = net.joint_probability(&a).unwrap();
                prop_assert!(q <= p + 1e-12, "found better assignment {a:?}");
            }
            for pos in (0..cards.len()).rev() {
                a[pos] += 1;
                if a[pos] == cards[pos] { a[pos] = 0; } else { break; }
            }
        }
    }

    #[test]
    fn forward_samples_have_positive_probability(
        recipe in net_recipe(6),
        seed in 0u64..1000,
    ) {
        let net = build_net(&recipe);
        let mut rng = StdRng::seed_from_u64(seed);
        for s in forward_sample_cases(&net, 16, &mut rng) {
            prop_assert!(net.joint_probability(&s).unwrap() > 0.0);
        }
    }

    #[test]
    fn complete_fit_reproduces_empirical_root_margins(
        recipe in net_recipe(5),
        seed in 0u64..1000,
    ) {
        let net = build_net(&recipe);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = forward_sample_cases(&net, 256, &mut rng);
        let fitted = fit_complete(&net, &samples, &DirichletPrior::zero(&net)).unwrap();
        // For every root variable, the fitted prior equals the sample frequency.
        for v in net.variables() {
            if net.parents(v).is_empty() {
                for s in 0..net.card(v) {
                    let freq = samples.iter().filter(|a| a[v.index()] == s).count()
                        as f64 / samples.len() as f64;
                    prop_assert!((fitted.cpt(v)[s] - freq).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn em_ml_loglik_nondecreasing(recipe in net_recipe(4), seed in 0u64..500) {
        let net = build_net(&recipe);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = forward_sample_cases(&net, 64, &mut rng);
        // Hide variable 0 in every case.
        let hidden = VarId::from_index(0);
        let cases: Vec<Case> = samples
            .iter()
            .map(|s| Case::from_pairs(
                net.variables().filter(|v| *v != hidden).map(|v| (v, s[v.index()])),
            ))
            .collect();
        let out = fit_em(
            &net,
            &cases,
            &DirichletPrior::zero(&net),
            &EmConfig { max_iterations: 12, tolerance: 0.0 },
        )
        .unwrap();
        for w in out.log_likelihood_trace.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "EM decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn compiled_propagation_matches_baseline_and_batch_matches_sequential(
        recipe in net_recipe(6),
        seed in 0u64..1000,
    ) {
        let net = build_net(&recipe);
        let jt = JunctionTree::compile(&net).unwrap();
        let evidences: Vec<Evidence> =
            (0..6).map(|k| pick_evidence(&net, seed.wrapping_add(k))).collect();
        // Compiled-schedule propagation through one reused workspace is
        // bitwise-tolerant equivalent (<= 1e-12) to the allocating
        // clone-and-rebuild reference on every evidence set.
        let mut ws = jt.make_workspace();
        for e in &evidences {
            match (jt.propagate_baseline(e), jt.propagate_in(&mut ws, e)) {
                (Ok(reference), Ok(compiled)) => {
                    prop_assert!(
                        (reference.log_likelihood() - compiled.log_likelihood()).abs()
                            <= 1e-12
                    );
                    let a = reference.all_posteriors().unwrap();
                    let b = compiled.all_posteriors().unwrap();
                    prop_assert!(a.max_abs_diff(&b).unwrap() <= 1e-12);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "paths disagree: {a:?} vs {b:?}"),
            }
        }
        // Batch diagnosis returns exactly the sequential per-board answers.
        let batch = jt.posteriors_batch(&evidences);
        prop_assert_eq!(batch.len(), evidences.len());
        for (e, got) in evidences.iter().zip(batch) {
            match (jt.posteriors(e), got) {
                (Ok(seq), Ok(batched)) => {
                    prop_assert!(seq.max_abs_diff(&batched).unwrap() == 0.0);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "batch diverges: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn in_place_factor_ops_match_allocating(
        vals_a in proptest::collection::vec(0.0f64..1.0, 12),
        vals_b in proptest::collection::vec(0.0f64..1.0, 6),
        vals_c in proptest::collection::vec(0.05f64..1.0, 3),
    ) {
        let a = VarId::from_index(0);
        let b = VarId::from_index(1);
        let c = VarId::from_index(2);
        let f = Factor::new(vec![a, b, c], vec![2, 3, 2], vals_a).unwrap();
        let g = Factor::new(vec![b, c], vec![3, 2], vals_b).unwrap();
        let h = Factor::new(vec![b], vec![3], vals_c).unwrap();

        // product_into == product, through a reused buffer.
        let (scope, cards) = f.union_shape(&g);
        let mut buf = Factor::with_shape(scope, cards).unwrap();
        f.product_into(&g, &mut buf).unwrap();
        let reference = f.product(&g);
        for (x, y) in buf.values().iter().zip(reference.values()) {
            prop_assert!((x - y).abs() <= 1e-12);
        }

        // mul_assign == product when the scope is a subset.
        let mut inplace = f.clone();
        inplace.mul_assign(&g).unwrap();
        let reference = f.product(&g);
        for (x, y) in inplace.values().iter().zip(reference.values()) {
            prop_assert!((x - y).abs() <= 1e-12);
        }

        // div_assign == divide (0/0 = 0 convention).
        let mut inplace = f.clone();
        inplace.div_assign(&h).unwrap();
        let reference = f.divide(&h).unwrap();
        for (x, y) in inplace.values().iter().zip(reference.values()) {
            prop_assert!((x - y).abs() <= 1e-12);
        }

        // Fused product_sum_out == product then sum_out, for every variable.
        for var in [a, b, c] {
            let fused = f.product_sum_out(&g, var).unwrap();
            let two_step = f.product(&g).sum_out(var).unwrap();
            prop_assert_eq!(fused.scope(), two_step.scope());
            for (x, y) in fused.values().iter().zip(two_step.values()) {
                prop_assert!((x - y).abs() <= 1e-12);
            }
        }

        // N-ary fused bucket == sequential products then sum_out.
        let fused = Factor::product_all_sum_out(&[&f, &g, &h], b).unwrap();
        let seq = f.product(&g).product(&h).sum_out(b).unwrap();
        let seq = seq.reorder(fused.scope()).unwrap();
        for (x, y) in fused.values().iter().zip(seq.values()) {
            prop_assert!((x - y).abs() <= 1e-12);
        }

        // marginalize_into == marginalize_to on a permuted keep set.
        let mut out = Factor::with_shape(vec![c, a], vec![2, 2]).unwrap();
        f.marginalize_into(&[c, a], &mut out).unwrap();
        let reference = f.marginalize_to(&[c, a]).unwrap();
        for (x, y) in out.values().iter().zip(reference.values()) {
            prop_assert!((x - y).abs() <= 1e-12);
        }
    }

    #[test]
    fn factor_product_commutes(
        vals_a in proptest::collection::vec(0.0f64..1.0, 6),
        vals_b in proptest::collection::vec(0.0f64..1.0, 6),
    ) {
        let a = VarId::from_index(0);
        let b = VarId::from_index(1);
        let c = VarId::from_index(2);
        let f = Factor::new(vec![a, b], vec![2, 3], vals_a).unwrap();
        let g = Factor::new(vec![b, c], vec![3, 2], vals_b).unwrap();
        let fg = f.product(&g);
        let gf = g.product(&f).reorder(fg.scope()).unwrap();
        for (x, y) in fg.values().iter().zip(gf.values()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn factor_sum_out_order_irrelevant(
        vals in proptest::collection::vec(0.0f64..1.0, 12),
    ) {
        let a = VarId::from_index(0);
        let b = VarId::from_index(1);
        let c = VarId::from_index(2);
        let f = Factor::new(vec![a, b, c], vec![2, 3, 2], vals).unwrap();
        let ab_first = f.sum_out(a).unwrap().sum_out(b).unwrap();
        let ba_first = f.sum_out(b).unwrap().sum_out(a).unwrap();
        for (x, y) in ab_first.values().iter().zip(ba_first.values()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
        // Total mass is preserved by summation.
        prop_assert!((ab_first.total() - f.total()).abs() < 1e-9);
    }

    #[test]
    fn factor_product_distributes_over_sum_out(
        vals_a in proptest::collection::vec(0.05f64..1.0, 4),
        vals_b in proptest::collection::vec(0.05f64..1.0, 6),
    ) {
        // (f(a) * g(b,c)) with b summed out == f(a) * (g with b summed out):
        // summing a variable absent from f commutes with the product.
        let a = VarId::from_index(0);
        let b = VarId::from_index(1);
        let c = VarId::from_index(2);
        let f = Factor::new(vec![a], vec![4], vals_a).unwrap();
        let g = Factor::new(vec![b, c], vec![3, 2], vals_b).unwrap();
        let lhs = f.product(&g).sum_out(b).unwrap();
        let rhs = f.product(&g.sum_out(b).unwrap()).reorder(lhs.scope()).unwrap();
        for (x, y) in lhs.values().iter().zip(rhs.values()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn network_json_roundtrip(recipe in net_recipe(6)) {
        let net = build_net(&recipe);
        let text = net.to_json().unwrap();
        let back = Network::from_json(&text).unwrap();
        prop_assert_eq!(net, back);
    }

    #[test]
    fn d_separation_implies_numerical_independence(
        recipe in net_recipe(5),
        xi in 0usize..5,
        yi in 0usize..5,
        zmask in 0usize..32,
        seed in 0u64..500,
    ) {
        let net = build_net(&recipe);
        let n = net.var_count();
        let x = VarId::from_index(xi % n);
        let y = VarId::from_index(yi % n);
        if x == y { return Ok(()); }
        let z: Vec<VarId> = (0..n)
            .filter(|&i| (zmask >> i) & 1 == 1)
            .map(VarId::from_index)
            .filter(|v| *v != x && *v != y)
            .collect();
        if !abbd_bbn::d_separated(&net, x, y, &z) {
            return Ok(()); // only the implication direction is a theorem
        }
        // Draw a consistent assignment for Z via forward sampling so the
        // conditional is well-defined.
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = abbd_bbn::forward_sample(&net, &mut rng);
        let mut ez = Evidence::new();
        for &v in &z {
            ez.observe(v, sample[v.index()]);
        }
        let ve = VariableElimination::new(&net);
        let p_x = ve.posterior(&ez, x).unwrap();
        // Condition additionally on every state of y and compare.
        for ys in 0..net.card(y) {
            let mut ezy = ez.clone();
            ezy.observe(y, ys);
            let Ok(p_x_given_y) = ve.posterior(&ezy, x) else { continue };
            for (a, b) in p_x.iter().zip(&p_x_given_y) {
                prop_assert!(
                    (a - b).abs() < 1e-8,
                    "d-separated pair is numerically dependent: {a} vs {b}"
                );
            }
        }
    }
}
