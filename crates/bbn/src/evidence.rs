//! Evidence: hard state observations and soft (virtual) likelihood findings.

use crate::error::{Error, Result};
use crate::network::{Network, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of findings to condition a network on.
///
/// *Hard* evidence pins a variable to one state (a measured block voltage
/// binned into a state band, in the paper's flow). *Soft* evidence attaches
/// a per-state likelihood vector (Pearl's virtual evidence), useful when a
/// measurement sits near a band edge.
///
/// # Examples
///
/// ```
/// use abbd_bbn::{Evidence, VarId};
///
/// let v = VarId::from_index(3);
/// let mut e = Evidence::new();
/// e.observe(v, 1);
/// assert_eq!(e.state_of(v), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    hard: BTreeMap<VarId, usize>,
    soft: BTreeMap<VarId, Vec<f64>>,
}

impl Evidence {
    /// Creates an empty evidence set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `var` to `state`, replacing any previous finding on `var`.
    pub fn observe(&mut self, var: VarId, state: usize) -> &mut Self {
        self.soft.remove(&var);
        self.hard.insert(var, state);
        self
    }

    /// Attaches a likelihood vector to `var`, replacing previous findings.
    pub fn observe_likelihood(&mut self, var: VarId, weights: Vec<f64>) -> &mut Self {
        self.hard.remove(&var);
        self.soft.insert(var, weights);
        self
    }

    /// Removes any finding on `var`.
    pub fn retract(&mut self, var: VarId) -> &mut Self {
        self.hard.remove(&var);
        self.soft.remove(&var);
        self
    }

    /// The hard-observed state of `var`, if any.
    pub fn state_of(&self, var: VarId) -> Option<usize> {
        self.hard.get(&var).copied()
    }

    /// The soft likelihood on `var`, if any.
    pub fn likelihood_of(&self, var: VarId) -> Option<&[f64]> {
        self.soft.get(&var).map(|w| w.as_slice())
    }

    /// `true` when no findings are present.
    pub fn is_empty(&self) -> bool {
        self.hard.is_empty() && self.soft.is_empty()
    }

    /// Number of findings (hard + soft).
    pub fn len(&self) -> usize {
        self.hard.len() + self.soft.len()
    }

    /// Iterator over hard findings.
    pub fn hard_iter(&self) -> impl Iterator<Item = (VarId, usize)> + '_ {
        self.hard.iter().map(|(v, s)| (*v, *s))
    }

    /// Iterator over soft findings.
    pub fn soft_iter(&self) -> impl Iterator<Item = (VarId, &[f64])> + '_ {
        self.soft.iter().map(|(v, w)| (*v, w.as_slice()))
    }

    /// `true` when `var` carries any finding.
    pub fn mentions(&self, var: VarId) -> bool {
        self.hard.contains_key(&var) || self.soft.contains_key(&var)
    }

    /// Checks all findings against a network's cardinalities.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEvidence`] for out-of-range states, wrong
    /// likelihood lengths, negative weights, or findings on variables the
    /// network does not contain.
    pub fn validate(&self, net: &Network) -> Result<()> {
        for (&var, &state) in &self.hard {
            if var.index() >= net.var_count() {
                return Err(Error::InvalidEvidence {
                    variable: format!("{var}"),
                    reason: "not in network".into(),
                });
            }
            if state >= net.card(var) {
                return Err(Error::InvalidEvidence {
                    variable: net.name(var).into(),
                    reason: format!("state {state} out of range {}", net.card(var)),
                });
            }
        }
        for (&var, weights) in &self.soft {
            if var.index() >= net.var_count() {
                return Err(Error::InvalidEvidence {
                    variable: format!("{var}"),
                    reason: "not in network".into(),
                });
            }
            if weights.len() != net.card(var) {
                return Err(Error::InvalidEvidence {
                    variable: net.name(var).into(),
                    reason: format!(
                        "likelihood length {} does not match cardinality {}",
                        weights.len(),
                        net.card(var)
                    ),
                });
            }
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(Error::InvalidEvidence {
                    variable: net.name(var).into(),
                    reason: "likelihood has negative or non-finite weight".into(),
                });
            }
            if weights.iter().all(|w| *w == 0.0) {
                return Err(Error::InvalidEvidence {
                    variable: net.name(var).into(),
                    reason: "likelihood is all zero".into(),
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<(VarId, usize)> for Evidence {
    fn from_iter<I: IntoIterator<Item = (VarId, usize)>>(iter: I) -> Self {
        let mut e = Evidence::new();
        for (v, s) in iter {
            e.observe(v, s);
        }
        e
    }
}

impl Extend<(VarId, usize)> for Evidence {
    fn extend<I: IntoIterator<Item = (VarId, usize)>>(&mut self, iter: I) {
        for (v, s) in iter {
            self.observe(v, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn observe_and_retract() {
        let mut e = Evidence::new();
        assert!(e.is_empty());
        e.observe(v(0), 2).observe(v(1), 0);
        assert_eq!(e.len(), 2);
        assert_eq!(e.state_of(v(0)), Some(2));
        assert!(e.mentions(v(1)));
        e.retract(v(0));
        assert_eq!(e.state_of(v(0)), None);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn soft_replaces_hard_and_vice_versa() {
        let mut e = Evidence::new();
        e.observe(v(0), 1);
        e.observe_likelihood(v(0), vec![0.2, 0.8]);
        assert_eq!(e.state_of(v(0)), None);
        assert_eq!(e.likelihood_of(v(0)), Some(&[0.2, 0.8][..]));
        e.observe(v(0), 0);
        assert_eq!(e.likelihood_of(v(0)), None);
        assert_eq!(e.state_of(v(0)), Some(0));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let e: Evidence = vec![(v(0), 1), (v(2), 0)].into_iter().collect();
        assert_eq!(e.len(), 2);
        let mut e2 = Evidence::new();
        e2.extend([(v(1), 1)]);
        assert!(e2.mentions(v(1)));
    }

    #[test]
    fn validate_against_network() {
        let mut b = NetworkBuilder::new();
        let x = b.variable("x", ["a", "b"]).unwrap();
        b.prior(x, [0.5, 0.5]).unwrap();
        let net = b.build().unwrap();

        let mut ok = Evidence::new();
        ok.observe(x, 1);
        assert!(ok.validate(&net).is_ok());

        let mut bad_state = Evidence::new();
        bad_state.observe(x, 7);
        assert!(bad_state.validate(&net).is_err());

        let mut bad_var = Evidence::new();
        bad_var.observe(v(9), 0);
        assert!(bad_var.validate(&net).is_err());

        let mut bad_soft_len = Evidence::new();
        bad_soft_len.observe_likelihood(x, vec![1.0]);
        assert!(bad_soft_len.validate(&net).is_err());

        let mut bad_soft_neg = Evidence::new();
        bad_soft_neg.observe_likelihood(x, vec![-1.0, 1.0]);
        assert!(bad_soft_neg.validate(&net).is_err());

        let mut bad_soft_zero = Evidence::new();
        bad_soft_zero.observe_likelihood(x, vec![0.0, 0.0]);
        assert!(bad_soft_zero.validate(&net).is_err());

        let mut ok_soft = Evidence::new();
        ok_soft.observe_likelihood(x, vec![0.5, 2.0]);
        assert!(ok_soft.validate(&net).is_ok());
    }
}
