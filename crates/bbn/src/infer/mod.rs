//! Inference engines: exact (variable elimination, junction tree) and
//! approximate (forward sampling, likelihood weighting, Gibbs).
//!
//! All engines answer the same question the paper's diagnostic mode asks of
//! Netica: *given the observed states of controllable and observable blocks,
//! what are the posterior state distributions of every other block?*

mod elimination;
mod jointree;
mod sampling;

pub use elimination::VariableElimination;
pub use jointree::{
    compile_count as jointree_compile_count, CalibratedTree, CalibratedView, JunctionTree,
    JunctionTreeStats, PropagationWorkspace,
};
pub use sampling::{forward_sample, forward_sample_cases, likelihood_weighting, GibbsSampler};

use crate::error::{Error, Result};
use crate::network::{Network, VarId};

/// Posterior marginal distributions for every variable of a network.
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    marginals: Vec<Vec<f64>>,
}

impl Posteriors {
    pub(crate) fn new(marginals: Vec<Vec<f64>>) -> Self {
        Posteriors { marginals }
    }

    /// The posterior distribution of `var`.
    pub fn of(&self, var: VarId) -> &[f64] {
        &self.marginals[var.index()]
    }

    /// The most probable state of `var` under the posterior.
    pub fn argmax(&self, var: VarId) -> usize {
        let dist = self.of(var);
        dist.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("posterior has no NaN"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Probability mass of `var` over a set of state indices.
    pub fn mass(&self, var: VarId, states: &[usize]) -> f64 {
        let dist = self.of(var);
        states.iter().filter_map(|&s| dist.get(s)).sum()
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.marginals.len()
    }

    /// `true` when no marginals are held.
    pub fn is_empty(&self) -> bool {
        self.marginals.is_empty()
    }

    /// Iterates `(variable, distribution)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &[f64])> + '_ {
        self.marginals
            .iter()
            .enumerate()
            .map(|(i, d)| (VarId::from_index(i), d.as_slice()))
    }

    /// Largest absolute difference against another posterior set; useful for
    /// comparing engines in tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when the sets cover different
    /// variables or cardinalities.
    pub fn max_abs_diff(&self, other: &Posteriors) -> Result<f64> {
        if self.marginals.len() != other.marginals.len() {
            return Err(Error::ShapeMismatch {
                expected: self.marginals.len(),
                actual: other.marginals.len(),
            });
        }
        let mut worst = 0.0f64;
        for (a, b) in self.marginals.iter().zip(&other.marginals) {
            if a.len() != b.len() {
                return Err(Error::ShapeMismatch {
                    expected: a.len(),
                    actual: b.len(),
                });
            }
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
        }
        Ok(worst)
    }
}

/// Exhaustive-enumeration posterior computation. Exponential in the number
/// of variables; used as the ground-truth oracle in tests and property
/// tests, never in production paths.
pub fn enumerate_posteriors(net: &Network, evidence: &crate::Evidence) -> Result<Posteriors> {
    evidence.validate(net)?;
    let n = net.var_count();
    let cards: Vec<usize> = net.variables().map(|v| net.card(v)).collect();
    let total: usize = cards.iter().product();
    let mut marginals: Vec<Vec<f64>> = cards.iter().map(|&c| vec![0.0; c]).collect();
    let mut assignment = vec![0usize; n];
    let mut z = 0.0;
    for _ in 0..total {
        let mut weight = net.joint_probability(&assignment)?;
        for (var, state) in evidence.hard_iter() {
            if assignment[var.index()] != state {
                weight = 0.0;
                break;
            }
        }
        if weight > 0.0 {
            for (var, lik) in evidence.soft_iter() {
                weight *= lik[assignment[var.index()]];
            }
        }
        if weight > 0.0 {
            z += weight;
            for (i, &s) in assignment.iter().enumerate() {
                marginals[i][s] += weight;
            }
        }
        // odometer
        for pos in (0..n).rev() {
            assignment[pos] += 1;
            if assignment[pos] == cards[pos] {
                assignment[pos] = 0;
            } else {
                break;
            }
        }
    }
    if z <= 0.0 {
        return Err(Error::ImpossibleEvidence);
    }
    for dist in &mut marginals {
        for p in dist.iter_mut() {
            *p /= z;
        }
    }
    Ok(Posteriors::new(marginals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::Evidence;

    fn chain() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [0.3, 0.7]).unwrap();
        b.cpt(c, [a], [[0.9, 0.1], [0.4, 0.6]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn enumeration_prior_marginals() {
        let net = chain();
        let post = enumerate_posteriors(&net, &Evidence::new()).unwrap();
        let a = net.var("a").unwrap();
        let c = net.var("c").unwrap();
        assert!((post.of(a)[1] - 0.7).abs() < 1e-12);
        // P(c=1) = .3*.1 + .7*.6 = .45
        assert!((post.of(c)[1] - 0.45).abs() < 1e-12);
        assert_eq!(post.argmax(a), 1);
        assert_eq!(post.len(), 2);
    }

    #[test]
    fn enumeration_with_evidence_bayes_rule() {
        let net = chain();
        let a = net.var("a").unwrap();
        let c = net.var("c").unwrap();
        let mut e = Evidence::new();
        e.observe(c, 1);
        let post = enumerate_posteriors(&net, &e).unwrap();
        // P(a=1 | c=1) = .7*.6 / .45
        assert!((post.of(a)[1] - 0.42 / 0.45).abs() < 1e-12);
        // Observed variable collapses to a point mass.
        assert!((post.of(c)[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_soft_evidence() {
        let net = chain();
        let a = net.var("a").unwrap();
        let c = net.var("c").unwrap();
        let mut e = Evidence::new();
        e.observe_likelihood(c, vec![1.0, 3.0]);
        let post = enumerate_posteriors(&net, &e).unwrap();
        // weight(a=1) = .7*(.4*1 + .6*3) = .7*2.2; weight(a=0)=.3*(.9+.3)=.3*1.2
        let w1 = 0.7 * 2.2;
        let w0 = 0.3 * 1.2;
        assert!((post.of(a)[1] - w1 / (w0 + w1)).abs() < 1e-12);
    }

    #[test]
    fn impossible_evidence_is_reported() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [1.0, 0.0]).unwrap();
        b.cpt(c, [a], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let mut e = Evidence::new();
        e.observe(c, 1); // requires a=1 which has zero prior
        assert_eq!(
            enumerate_posteriors(&net, &e),
            Err(Error::ImpossibleEvidence)
        );
    }

    #[test]
    fn posterior_helpers() {
        let p = Posteriors::new(vec![vec![0.2, 0.8], vec![0.5, 0.25, 0.25]]);
        let v0 = VarId::from_index(0);
        let v1 = VarId::from_index(1);
        assert_eq!(p.argmax(v0), 1);
        assert!((p.mass(v1, &[1, 2]) - 0.5).abs() < 1e-12);
        assert!(!p.is_empty());
        assert_eq!(p.iter().count(), 2);
        let q = Posteriors::new(vec![vec![0.2, 0.8], vec![0.4, 0.35, 0.25]]);
        assert!((p.max_abs_diff(&q).unwrap() - 0.1).abs() < 1e-12);
        let r = Posteriors::new(vec![vec![0.2, 0.8]]);
        assert!(p.max_abs_diff(&r).is_err());
    }
}
