//! Exact inference by variable elimination (sum-product message passing on
//! the factor list), with configurable elimination-ordering heuristics.

use crate::error::{Error, Result};
use crate::evidence::Evidence;
use crate::factor::Factor;
use crate::graph::{elimination_order, OrderingHeuristic, UndirectedGraph};
use crate::infer::Posteriors;
use crate::network::{Network, VarId};

/// Exact single-query inference engine.
///
/// Variable elimination answers one query per pass; for repeated queries on
/// the same evidence prefer [`crate::JunctionTree`]. It is nevertheless the
/// backbone for arbitrary joint marginals that do not fit inside one clique.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::{Evidence, NetworkBuilder, VariableElimination};
///
/// let mut b = NetworkBuilder::new();
/// let burglary = b.variable("burglary", ["no", "yes"])?;
/// let alarm = b.variable("alarm", ["off", "on"])?;
/// b.prior(burglary, [0.99, 0.01])?;
/// b.cpt(alarm, [burglary], [[0.999, 0.001], [0.05, 0.95]])?;
/// let net = b.build()?;
///
/// let mut seen = Evidence::new();
/// seen.observe(alarm, 1);
/// let posterior = VariableElimination::new(&net).posterior(&seen, burglary)?;
/// assert!(posterior[1] > 0.9 * 0.01); // alarm raises the burglary belief
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VariableElimination<'a> {
    net: &'a Network,
    heuristic: OrderingHeuristic,
}

impl<'a> VariableElimination<'a> {
    /// Creates an engine with the default min-fill ordering heuristic.
    pub fn new(net: &'a Network) -> Self {
        VariableElimination {
            net,
            heuristic: OrderingHeuristic::MinFill,
        }
    }

    /// Creates an engine with an explicit ordering heuristic.
    pub fn with_heuristic(net: &'a Network, heuristic: OrderingHeuristic) -> Self {
        VariableElimination { net, heuristic }
    }

    /// The posterior distribution of `var` given `evidence`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] when the evidence has zero
    /// probability, plus any evidence-validation error.
    pub fn posterior(&self, evidence: &Evidence, var: VarId) -> Result<Vec<f64>> {
        let joint = self.joint_marginal(evidence, &[var])?;
        Ok(joint.into_values())
    }

    /// Posterior marginals for every variable (one elimination pass per
    /// variable; prefer a junction tree when this is hot).
    ///
    /// # Errors
    ///
    /// Same as [`VariableElimination::posterior`].
    pub fn all_posteriors(&self, evidence: &Evidence) -> Result<Posteriors> {
        let mut marginals = Vec::with_capacity(self.net.var_count());
        for var in self.net.variables() {
            marginals.push(self.posterior(evidence, var)?);
        }
        Ok(Posteriors::new(marginals))
    }

    /// The normalised joint marginal over `targets` given `evidence`, with
    /// the result scope ordered exactly as `targets`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] for zero-probability evidence
    /// and validation errors for malformed targets or evidence.
    pub fn joint_marginal(&self, evidence: &Evidence, targets: &[VarId]) -> Result<Factor> {
        let mut f = self.eliminate_to(evidence, targets)?;
        f.normalize()?;
        f.reorder(targets)
    }

    /// The probability of the evidence, `P(e)`.
    ///
    /// # Errors
    ///
    /// Returns evidence-validation errors.
    pub fn evidence_probability(&self, evidence: &Evidence) -> Result<f64> {
        let f = self.eliminate_to(evidence, &[])?;
        Ok(f.total())
    }

    /// Natural log of [`VariableElimination::evidence_probability`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] when `P(e) = 0`.
    pub fn log_likelihood(&self, evidence: &Evidence) -> Result<f64> {
        let p = self.evidence_probability(evidence)?;
        if p <= 0.0 {
            return Err(Error::ImpossibleEvidence);
        }
        Ok(p.ln())
    }

    /// Core routine: multiplies all family factors, absorbs evidence and
    /// sums out everything except `targets`, returning an **unnormalised**
    /// factor whose total is `P(targets-compatible evidence)`.
    fn eliminate_to(&self, evidence: &Evidence, targets: &[VarId]) -> Result<Factor> {
        evidence.validate(self.net)?;
        for t in targets {
            if t.index() >= self.net.var_count() {
                return Err(Error::UnknownVariable(format!("{t}")));
            }
        }

        // Assemble the factor list. Hard evidence on a *target* variable is
        // converted to a one-hot likelihood so that the variable stays in
        // scope and the query still returns a full distribution.
        let mut factors: Vec<Factor> = Vec::with_capacity(self.net.var_count());
        for var in self.net.variables() {
            let mut f = self.net.family_factor(var);
            // Soft evidence is applied exactly once: to the variable's own
            // family factor (applying it to every mentioning factor would
            // square the likelihood).
            if let Some(lik) = evidence.likelihood_of(var) {
                f.scale_axis(var, lik)?;
            }
            if let Some(state) = evidence.state_of(var) {
                if targets.contains(&var) {
                    let mut onehot = vec![0.0; self.net.card(var)];
                    onehot[state] = 1.0;
                    f.scale_axis(var, &onehot)?;
                }
            }
            factors.push(f);
        }
        // Condition every factor on non-target hard evidence.
        for (var, state) in evidence.hard_iter() {
            if targets.contains(&var) {
                continue;
            }
            for f in &mut factors {
                if f.contains(var) {
                    *f = f.condition(var, state)?;
                }
            }
        }

        // Variables still present in scopes that must be eliminated.
        let mut present = vec![false; self.net.var_count()];
        for f in &factors {
            for v in f.scope() {
                present[v.index()] = true;
            }
        }
        let to_eliminate: Vec<usize> = (0..self.net.var_count())
            .filter(|&i| present[i] && !targets.iter().any(|t| t.index() == i))
            .collect();

        // Interaction graph over current scopes.
        let mut graph = UndirectedGraph::empty(self.net.var_count());
        for f in &factors {
            let scope = f.scope();
            for (i, a) in scope.iter().enumerate() {
                for b in &scope[i + 1..] {
                    graph.add_edge(a.index(), b.index());
                }
            }
        }
        let topo: Vec<usize> = self
            .net
            .topological_order()
            .iter()
            .map(|v| v.index())
            .collect();
        let order = elimination_order(&graph, &to_eliminate, self.heuristic, &topo);

        for idx in order {
            let var = VarId::from_index(idx);
            let (touching, rest): (Vec<Factor>, Vec<Factor>) =
                factors.into_iter().partition(|f| f.contains(var));
            factors = rest;
            if touching.is_empty() {
                continue;
            }
            // Multiply the whole bucket and sum the variable out in one
            // fused pass — no intermediate joint tables.
            let refs: Vec<&Factor> = touching.iter().collect();
            factors.push(Factor::product_all_sum_out(&refs, var)?);
        }

        let mut result = Factor::unit();
        for f in &factors {
            result = result.product(f);
        }
        if result.total() <= 0.0 {
            return Err(Error::ImpossibleEvidence);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::enumerate_posteriors;
    use crate::network::NetworkBuilder;

    fn sprinkler() -> Network {
        let mut b = NetworkBuilder::new();
        let cloudy = b.variable("cloudy", ["n", "y"]).unwrap();
        let sprinkler = b.variable("sprinkler", ["n", "y"]).unwrap();
        let rain = b.variable("rain", ["n", "y"]).unwrap();
        let wet = b.variable("wet", ["n", "y"]).unwrap();
        b.prior(cloudy, [0.5, 0.5]).unwrap();
        b.cpt(sprinkler, [cloudy], [[0.5, 0.5], [0.9, 0.1]])
            .unwrap();
        b.cpt(rain, [cloudy], [[0.8, 0.2], [0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            [sprinkler, rain],
            [[1.0, 0.0], [0.1, 0.9], [0.1, 0.9], [0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_enumeration_no_evidence() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let exact = enumerate_posteriors(&net, &Evidence::new()).unwrap();
        let got = ve.all_posteriors(&Evidence::new()).unwrap();
        assert!(got.max_abs_diff(&exact).unwrap() < 1e-10);
    }

    #[test]
    fn matches_enumeration_with_evidence() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let wet = net.var("wet").unwrap();
        let cloudy = net.var("cloudy").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1).observe(cloudy, 0);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        let got = ve.all_posteriors(&e).unwrap();
        assert!(got.max_abs_diff(&exact).unwrap() < 1e-10);
    }

    #[test]
    fn soft_evidence_matches_enumeration() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let rain = net.var("rain").unwrap();
        let mut e = Evidence::new();
        e.observe_likelihood(rain, vec![0.25, 1.75]);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        let got = ve.all_posteriors(&e).unwrap();
        assert!(got.max_abs_diff(&exact).unwrap() < 1e-10);
    }

    #[test]
    fn posterior_of_observed_variable_is_point_mass() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let wet = net.var("wet").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 0);
        let p = ve.posterior(&e, wet).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joint_marginal_scope_order() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let s = net.var("sprinkler").unwrap();
        let r = net.var("rain").unwrap();
        let j = ve.joint_marginal(&Evidence::new(), &[r, s]).unwrap();
        assert_eq!(j.scope(), &[r, s]);
        assert!((j.total() - 1.0).abs() < 1e-10);
        // P(s=1, r=1) = sum_c P(c) P(s=1|c) P(r=1|c) = .5*.5*.2 + .5*.1*.8
        let p11 = j.values()[j.index_of(&[1, 1]).unwrap()];
        assert!((p11 - (0.5 * 0.5 * 0.2 + 0.5 * 0.1 * 0.8)).abs() < 1e-10);
    }

    #[test]
    fn evidence_probability_and_log_likelihood() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let wet = net.var("wet").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1);
        let p = ve.evidence_probability(&e).unwrap();
        // P(wet=1) from full enumeration: computed once by hand = 0.5985... let
        // the chain rule verify instead.
        let mut expect = 0.0;
        for idx in 0..16usize {
            let a = [(idx >> 3) & 1, (idx >> 2) & 1, (idx >> 1) & 1, idx & 1];
            if a[3] == 1 {
                expect += net.joint_probability(&a).unwrap();
            }
        }
        assert!((p - expect).abs() < 1e-10);
        assert!((ve.log_likelihood(&e).unwrap() - expect.ln()).abs() < 1e-10);
    }

    #[test]
    fn all_heuristics_agree() {
        let net = sprinkler();
        let wet = net.var("wet").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        for h in [
            OrderingHeuristic::MinFill,
            OrderingHeuristic::MinDegree,
            OrderingHeuristic::ReverseTopological,
        ] {
            let ve = VariableElimination::with_heuristic(&net, h);
            let got = ve.all_posteriors(&e).unwrap();
            assert!(got.max_abs_diff(&exact).unwrap() < 1e-10, "heuristic {h:?}");
        }
    }

    #[test]
    fn impossible_evidence_errors() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [1.0, 0.0]).unwrap();
        b.cpt(c, [a], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let ve = VariableElimination::new(&net);
        let mut e = Evidence::new();
        e.observe(c, 1);
        assert!(matches!(
            ve.posterior(&e, a),
            Err(Error::ImpossibleEvidence)
        ));
    }

    #[test]
    fn hub_with_many_children_does_not_overflow_bucket() {
        // Eliminating `hub` puts one factor per child in a single bucket;
        // with 70 children the bucket exceeds the 64-axis stack budget of
        // the kernels, which must spill per-source indices to the heap
        // rather than panic (regression test for the fixed assert).
        let mut b = NetworkBuilder::new();
        let hub = b.variable("hub", ["0", "1"]).unwrap();
        b.prior(hub, [0.5, 0.5]).unwrap();
        let kids: Vec<_> = (0..70)
            .map(|i| {
                let k = b.variable(format!("k{i}"), ["0", "1"]).unwrap();
                b.cpt(k, [hub], [[0.9, 0.1], [0.2, 0.8]]).unwrap();
                k
            })
            .collect();
        let net = b.build().unwrap();
        let ve = VariableElimination::new(&net);
        let p = ve.posterior(&Evidence::new(), kids[0]).unwrap();
        // P(k0=1) = 0.5*0.1 + 0.5*0.8
        assert!((p[1] - 0.45).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_evidence_and_targets() {
        let net = sprinkler();
        let ve = VariableElimination::new(&net);
        let mut e = Evidence::new();
        e.observe(VarId::from_index(99), 0);
        assert!(ve.evidence_probability(&e).is_err());
        assert!(ve
            .joint_marginal(&Evidence::new(), &[VarId::from_index(99)])
            .is_err());
    }
}
