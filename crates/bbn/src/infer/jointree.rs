//! Junction-tree (clique-tree) compilation and Hugin belief propagation.
//!
//! This is the crate's replacement for the commercial Netica engine used in
//! the paper: compile once, then answer *all* block-state posteriors for a
//! failing device with two sweeps over the tree.
//!
//! # Compiled schedules and buffer reuse
//!
//! Compilation does all structural work up front: triangulation, clique
//! extraction, the spanning tree, **and** a flat message-passing schedule —
//! per-edge separator shapes, broadcast stride maps between cliques and
//! separators, per-variable evidence-entry slots, and the evidence-free
//! clique potentials (the product of every assigned CPT, stored once).
//!
//! [`JunctionTree::propagate`] is then a flat loop over that schedule. With
//! a reusable [`PropagationWorkspace`] (see
//! [`JunctionTree::propagate_in`]) a query performs **zero heap
//! allocations**: clique beliefs are `memcpy`-restored from the compiled
//! base tables, evidence is entered by scaling axes in place, and every
//! message lands in a preallocated separator buffer. Evidence changes
//! therefore re-propagate incrementally — nothing structural is rebuilt,
//! only the affected table contents are recomputed.
//!
//! For many independent evidence sets (one per board under test) use
//! [`JunctionTree::posteriors_batch`], which fans the boards out across
//! threads with one workspace per worker.

use crate::error::{Error, Result};
use crate::evidence::Evidence;
use crate::factor::strides::{
    aligned_strides, axis_marginal_kernel, axis_stride, marginalize_kernel, mul_broadcast_kernel,
    retain_state_kernel, scale_axis_kernel, table_len,
};
use crate::factor::Factor;
use crate::graph::{elimination_order, moral_graph, OrderingHeuristic};
use crate::infer::Posteriors;
use crate::network::{Network, VarId};
use rayon::prelude::*;
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    /// Per-thread count of [`JunctionTree::compile_with`] invocations.
    ///
    /// Compilation is the expensive structural step (triangulation, clique
    /// extraction, schedule building) that serving paths must do exactly
    /// once per model. Tests and benchmarks read this counter around a hot
    /// loop to *prove* no stray recompilation hides inside it — see
    /// [`compile_count`].
    static COMPILE_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// The number of junction-tree compilations performed *by the calling
/// thread* so far. Take a snapshot before a steady-state loop and assert
/// the counter is unchanged after it; a delta means some path is
/// recompiling per query instead of reusing a compiled tree.
///
/// The counter is thread-local on purpose: regression assertions stay
/// exact even when unrelated tests compile trees concurrently in the same
/// process.
pub fn compile_count() -> u64 {
    COMPILE_CALLS.with(Cell::get)
}

/// Size statistics of a compiled junction tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JunctionTreeStats {
    /// Number of cliques.
    pub cliques: usize,
    /// Largest clique width (variable count).
    pub max_clique_width: usize,
    /// Sum of clique table sizes (cells).
    pub total_table_size: usize,
}

#[derive(Debug, Clone)]
struct Clique {
    scope: Vec<VarId>,
    cards: Vec<usize>,
    len: usize,
}

/// One tree edge with its compiled message geometry: the separator shape
/// plus broadcast strides aligning the separator to both endpoint cliques
/// (used for marginalizing out of one clique and multiplying into the
/// other, in both directions).
#[derive(Debug, Clone)]
struct TreeEdge {
    a: usize,
    b: usize,
    sepset: Vec<VarId>,
    sep_len: usize,
    /// Separator strides aligned to clique `a`'s axes (0 for absent vars).
    a_str: Vec<usize>,
    /// Separator strides aligned to clique `b`'s axes.
    b_str: Vec<usize>,
}

impl TreeEdge {
    /// The separator strides aligned to the given endpoint clique.
    fn strides_for(&self, clique: usize) -> &[usize] {
        if clique == self.a {
            &self.a_str
        } else {
            debug_assert_eq!(clique, self.b);
            &self.b_str
        }
    }
}

/// Where and how a variable's evidence enters: its home clique plus the
/// axis geometry of the variable inside that clique's table.
#[derive(Debug, Clone, Copy)]
struct EvidenceSlot {
    clique: usize,
    stride: usize,
    card: usize,
}

/// A compiled junction tree over a network.
///
/// Compilation moralises and triangulates the structure, extracts maximal
/// cliques, connects them by a maximum-spanning tree over sepset sizes, and
/// compiles the flat propagation schedule (see the module docs). The tree
/// owns a clone of the network plus the evidence-free clique potentials;
/// [`JunctionTree::propagate`] only touches preallocated tables.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::{Evidence, JunctionTree, NetworkBuilder};
///
/// let mut b = NetworkBuilder::new();
/// let x = b.variable("x", ["0", "1"])?;
/// let y = b.variable("y", ["0", "1"])?;
/// b.prior(x, [0.6, 0.4])?;
/// b.cpt(y, [x], [[0.9, 0.1], [0.2, 0.8]])?;
/// let jt = JunctionTree::compile(&b.build()?)?;
///
/// let mut e = Evidence::new();
/// e.observe(y, 1);
/// let calibrated = jt.propagate(&e)?;
/// let px = calibrated.posterior(x)?;
/// assert!(px[1] > 0.8); // y=1 strongly suggests x=1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JunctionTree {
    net: Arc<Network>,
    sched: Arc<Schedule>,
}

/// The immutable compiled state of a junction tree: everything
/// [`JunctionTree::compile`] produces that queries only ever *read*.
///
/// Factoring this out of [`JunctionTree`] behind an [`Arc`] is what makes
/// the tree a shareable artifact: cloning a compiled tree is two
/// reference-count bumps (no clique table is copied), every clone
/// propagates through the *same* schedule and base tables, and the whole
/// structure is `Send + Sync`, so one compiled model can serve any number
/// of concurrent query loops (each owning only its
/// [`PropagationWorkspace`]). `abbd_core`'s `CompiledModel` builds its
/// share-once/serve-many session story directly on this property.
#[derive(Debug, Clone)]
struct Schedule {
    cliques: Vec<Clique>,
    edges: Vec<TreeEdge>,
    /// For each clique, its tree neighbours as `(clique index, edge index)`.
    neighbors: Vec<Vec<(usize, usize)>>,
    /// For each variable, the clique containing its whole family.
    family_clique: Vec<usize>,
    /// For each variable, the smallest clique containing it.
    home_clique: Vec<usize>,
    /// For each variable, its evidence-entry / posterior-readout geometry.
    slots: Vec<EvidenceSlot>,
    /// Collect order: edges as `(child clique, parent clique, edge index)`
    /// from the leaves towards clique 0.
    collect_schedule: Vec<(usize, usize, usize)>,
    /// Evidence-free clique potentials: the product of every CPT assigned
    /// to the clique, compiled once and `memcpy`-restored per query.
    base: Vec<Vec<f64>>,
}

impl JunctionTree {
    /// Compiles a junction tree for `net` using min-fill triangulation.
    ///
    /// # Errors
    ///
    /// Propagates factor-shape errors; compilation itself cannot fail on a
    /// validated [`Network`].
    pub fn compile(net: &Network) -> Result<Self> {
        Self::compile_with(net, OrderingHeuristic::MinFill)
    }

    /// Compiles with an explicit triangulation heuristic.
    ///
    /// # Errors
    ///
    /// See [`JunctionTree::compile`].
    pub fn compile_with(net: &Network, heuristic: OrderingHeuristic) -> Result<Self> {
        COMPILE_CALLS.with(|c| c.set(c.get() + 1));
        let n = net.var_count();
        let moral = moral_graph(net);
        let all: Vec<usize> = (0..n).collect();
        let topo: Vec<usize> = net.topological_order().iter().map(|v| v.index()).collect();
        let order = elimination_order(&moral, &all, heuristic, &topo);

        // Elimination cliques: {v} ∪ current neighbours at elimination time.
        let mut work = moral.clone();
        let mut raw_cliques: Vec<Vec<usize>> = Vec::new();
        for &v in &order {
            let mut clique: Vec<usize> = work.neighbors(v).iter().copied().collect();
            clique.push(v);
            clique.sort_unstable();
            raw_cliques.push(clique);
            work.eliminate(v);
        }
        // Keep only maximal cliques (dedup + subset removal).
        raw_cliques.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut maximal: Vec<Vec<usize>> = Vec::new();
        for c in raw_cliques {
            if !maximal.iter().any(|m| c.iter().all(|v| m.contains(v))) {
                maximal.push(c);
            }
        }

        let cliques: Vec<Clique> = maximal
            .iter()
            .map(|scope| {
                let scope_vars: Vec<VarId> = scope.iter().map(|&i| VarId::from_index(i)).collect();
                let cards: Vec<usize> = scope_vars.iter().map(|v| net.card(*v)).collect();
                let len = table_len(&cards);
                Clique {
                    scope: scope_vars,
                    cards,
                    len,
                }
            })
            .collect();

        // Maximum-spanning tree over sepset cardinality (Kruskal). Edges
        // with empty sepsets are allowed so disconnected components still
        // form a single tree; propagation handles scalar messages.
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new(); // (weight, a, b)
        for i in 0..cliques.len() {
            for j in i + 1..cliques.len() {
                let w = cliques[i]
                    .scope
                    .iter()
                    .filter(|v| cliques[j].scope.contains(v))
                    .count();
                candidates.push((w, i, j));
            }
        }
        candidates.sort_by_key(|&(w, _, _)| std::cmp::Reverse(w));
        let mut dsu: Vec<usize> = (0..cliques.len()).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let root = find(dsu, dsu[x]);
                dsu[x] = root;
            }
            dsu[x]
        }
        let mut edges: Vec<TreeEdge> = Vec::new();
        let mut neighbors: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cliques.len()];
        for (_, a, b) in candidates {
            let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, b));
            if ra != rb {
                dsu[ra] = rb;
                let sepset: Vec<VarId> = cliques[a]
                    .scope
                    .iter()
                    .copied()
                    .filter(|v| cliques[b].scope.contains(v))
                    .collect();
                let sep_cards: Vec<usize> = sepset.iter().map(|v| net.card(*v)).collect();
                let a_str = aligned_strides(&sepset, &sep_cards, &cliques[a].scope);
                let b_str = aligned_strides(&sepset, &sep_cards, &cliques[b].scope);
                let idx = edges.len();
                neighbors[a].push((b, idx));
                neighbors[b].push((a, idx));
                edges.push(TreeEdge {
                    a,
                    b,
                    sep_len: table_len(&sep_cards),
                    sepset,
                    a_str,
                    b_str,
                });
            }
        }

        // Family and home cliques, plus per-variable axis geometry.
        let mut family_clique = vec![0usize; n];
        let mut home_clique = vec![0usize; n];
        for var in net.variables() {
            let family = net.family(var);
            let fam_idx = cliques
                .iter()
                .position(|c| family.iter().all(|v| c.scope.contains(v)))
                .ok_or_else(|| Error::InvalidCpt {
                    variable: net.name(var).into(),
                    reason: "triangulation lost the family clique".into(),
                })?;
            family_clique[var.index()] = fam_idx;
            let home_idx = cliques
                .iter()
                .enumerate()
                .filter(|(_, c)| c.scope.contains(&var))
                .min_by_key(|(_, c)| c.scope.len())
                .map(|(i, _)| i)
                .expect("family clique contains the variable");
            home_clique[var.index()] = home_idx;
        }
        let slots: Vec<EvidenceSlot> = net
            .variables()
            .map(|var| {
                let clique = home_clique[var.index()];
                let c = &cliques[clique];
                let pos = c
                    .scope
                    .iter()
                    .position(|&v| v == var)
                    .expect("home holds var");
                EvidenceSlot {
                    clique,
                    stride: axis_stride(&c.cards, pos),
                    card: c.cards[pos],
                }
            })
            .collect();

        // Collect schedule: BFS tree rooted at clique 0, emitted leaves-first.
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; cliques.len()];
        let mut visited = vec![false; cliques.len()];
        let mut bfs = std::collections::VecDeque::from([0usize]);
        visited[0] = true;
        let mut bfs_order = Vec::new();
        while let Some(c) = bfs.pop_front() {
            bfs_order.push(c);
            for &(nb, eidx) in &neighbors[c] {
                if !visited[nb] {
                    visited[nb] = true;
                    parent[nb] = Some((c, eidx));
                    bfs.push_back(nb);
                }
            }
        }
        let collect_schedule: Vec<(usize, usize, usize)> = bfs_order
            .iter()
            .rev()
            .filter_map(|&c| parent[c].map(|(p, e)| (c, p, e)))
            .collect();

        let base = compile_base(net, &cliques, &family_clique);

        Ok(JunctionTree {
            net: Arc::new(net.clone()),
            sched: Arc::new(Schedule {
                cliques,
                edges,
                neighbors,
                family_clique,
                home_clique,
                slots,
                collect_schedule,
                base,
            }),
        })
    }

    /// `true` when both trees share the *same* compiled schedule and base
    /// tables (they are clones of one compilation, not merely equivalent
    /// recompilations). Cloning a compiled tree never copies clique
    /// tables — it bumps two reference counts — which is what lets many
    /// concurrent sessions serve off one compilation; this predicate is
    /// how tests pin that property.
    pub fn shares_compiled_state_with(&self, other: &JunctionTree) -> bool {
        Arc::ptr_eq(&self.sched, &other.sched)
    }

    /// The network this tree was compiled from.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Replaces the CPTs with those of `net`, which must share the exact
    /// structure (names, states, parents) of the compiled network, and
    /// recompiles the clique base tables. Used by EM so re-triangulation is
    /// not needed every iteration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when structures differ.
    pub fn update_parameters(&mut self, net: &Network) -> Result<()> {
        if net.var_count() != self.net.var_count() {
            return Err(Error::ShapeMismatch {
                expected: self.net.var_count(),
                actual: net.var_count(),
            });
        }
        for var in self.net.variables() {
            if net.parents(var) != self.net.parents(var) || net.card(var) != self.net.card(var) {
                return Err(Error::ShapeMismatch {
                    expected: self.net.card(var),
                    actual: net.card(var),
                });
            }
        }
        self.net = Arc::new(net.clone());
        // EM owns its tree exclusively, so `make_mut` recompiles the base
        // tables in place; a tree whose schedule is shared with live
        // sessions gets a private copy instead of mutating under them.
        let sched = Arc::make_mut(&mut self.sched);
        sched.base = compile_base(&self.net, &sched.cliques, &sched.family_clique);
        Ok(())
    }

    /// The clique scopes, in compilation order.
    pub fn clique_scopes(&self) -> Vec<Vec<VarId>> {
        self.sched.cliques.iter().map(|c| c.scope.clone()).collect()
    }

    /// Renders the clique tree in Graphviz DOT syntax (cliques as nodes,
    /// sepsets as edge labels); handy when documenting a compiled model.
    pub fn to_dot(&self) -> String {
        let label = |c: &Clique| {
            c.scope
                .iter()
                .map(|v| self.net.name(*v))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("graph jointree {\n");
        for (i, c) in self.sched.cliques.iter().enumerate() {
            out.push_str(&format!("  c{i} [label=\"{{{}}}\"];\n", label(c)));
        }
        for e in &self.sched.edges {
            let sep = e
                .sepset
                .iter()
                .map(|v| self.net.name(*v))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("  c{} -- c{} [label=\"{sep}\"];\n", e.a, e.b));
        }
        out.push_str("}\n");
        out
    }

    /// Tree degree of clique `i` (number of neighbours).
    pub fn clique_degree(&self, i: usize) -> usize {
        self.sched.neighbors.get(i).map_or(0, |n| n.len())
    }

    /// Size statistics of the compiled tree.
    pub fn stats(&self) -> JunctionTreeStats {
        JunctionTreeStats {
            cliques: self.sched.cliques.len(),
            max_clique_width: self
                .sched
                .cliques
                .iter()
                .map(|c| c.scope.len())
                .max()
                .unwrap_or(0),
            total_table_size: self.sched.cliques.iter().map(|c| c.len).sum(),
        }
    }

    /// Allocates a propagation workspace sized for this tree. Create one
    /// per thread (or per long-lived query loop) and feed it to
    /// [`JunctionTree::propagate_in`]; after the first call every
    /// propagation through it is allocation-free.
    pub fn make_workspace(&self) -> PropagationWorkspace {
        PropagationWorkspace {
            beliefs: self
                .sched
                .cliques
                .iter()
                .map(|c| vec![0.0; c.len])
                .collect(),
            messages: self
                .sched
                .edges
                .iter()
                .map(|e| vec![0.0; e.sep_len])
                .collect(),
            scratch: self
                .sched
                .edges
                .iter()
                .map(|e| vec![0.0; e.sep_len])
                .collect(),
            log_likelihood: 0.0,
            calibrated: false,
        }
    }

    /// Runs a full Hugin propagation (collect + distribute) inside the
    /// reusable workspace: no allocation, no structural work — just table
    /// arithmetic over the compiled schedule. Returns a read view over the
    /// calibrated beliefs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] when `P(e) = 0`, plus evidence
    /// validation errors. On error the workspace stays usable (the next
    /// propagation re-initialises every buffer it touches).
    pub fn propagate_in<'t, 'w>(
        &'t self,
        ws: &'w mut PropagationWorkspace,
        evidence: &Evidence,
    ) -> Result<CalibratedView<'t, 'w>> {
        self.propagate_ws(ws, evidence, &[])?;
        Ok(CalibratedView { tree: self, ws })
    }

    /// [`JunctionTree::propagate_in`] with one extra *hypothetical* hard
    /// finding `var = state` layered on top of `evidence`, without touching
    /// the evidence set. This is the inner query of value-of-information
    /// scoring ("what would the posteriors look like if this unmeasured
    /// block read state `s`?"), which issues dozens of propagations per
    /// decision — mutating and restoring an [`Evidence`] per query would
    /// churn its tree map, while this path stays allocation-free.
    ///
    /// `var` must not already carry a finding in `evidence`: stacking a
    /// second hard state on an observed variable either zeroes the belief
    /// (different states) or silently duplicates (same state), so it is
    /// rejected up front.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEvidence`] for an out-of-range hypothetical
    /// or one on an already-observed variable, plus all
    /// [`JunctionTree::propagate_in`] errors.
    pub fn propagate_hypothetical_in<'t, 'w>(
        &'t self,
        ws: &'w mut PropagationWorkspace,
        evidence: &Evidence,
        var: VarId,
        state: usize,
    ) -> Result<CalibratedView<'t, 'w>> {
        self.propagate_hypotheticals_in(ws, evidence, &[(var, state)])
    }

    /// [`JunctionTree::propagate_hypothetical_in`] generalised to a whole
    /// *stack* of hypothetical hard findings layered on top of `evidence`.
    /// Depth-`d` lookahead planning conditions on the `d − 1` measurements
    /// already taken along the expectimax path plus the candidate being
    /// scored, so it needs several simultaneous hypotheticals without
    /// mutating the evidence set between the dozens of propagations a
    /// single decision issues.
    ///
    /// The findings must name distinct variables, none of which `evidence`
    /// already pins (the same no-stacking rule as the single-finding
    /// path). An empty slice is exactly [`JunctionTree::propagate_in`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEvidence`] for an out-of-range finding, a
    /// finding on an already-observed variable, or two findings on the
    /// same variable, plus all [`JunctionTree::propagate_in`] errors.
    pub fn propagate_hypotheticals_in<'t, 'w>(
        &'t self,
        ws: &'w mut PropagationWorkspace,
        evidence: &Evidence,
        hypotheticals: &[(VarId, usize)],
    ) -> Result<CalibratedView<'t, 'w>> {
        for (i, &(var, state)) in hypotheticals.iter().enumerate() {
            if var.index() >= self.net.var_count() {
                return Err(Error::InvalidEvidence {
                    variable: format!("{var}"),
                    reason: "not in network".into(),
                });
            }
            if state >= self.net.card(var) {
                return Err(Error::InvalidEvidence {
                    variable: self.net.name(var).into(),
                    reason: format!("state {state} out of range {}", self.net.card(var)),
                });
            }
            if evidence.mentions(var) {
                return Err(Error::InvalidEvidence {
                    variable: self.net.name(var).into(),
                    reason: "hypothetical finding on an already-observed variable".into(),
                });
            }
            if hypotheticals[..i].iter().any(|&(v, _)| v == var) {
                return Err(Error::InvalidEvidence {
                    variable: self.net.name(var).into(),
                    reason: "duplicate hypothetical finding".into(),
                });
            }
        }
        self.propagate_ws(ws, evidence, hypotheticals)?;
        Ok(CalibratedView { tree: self, ws })
    }

    /// Rejects a workspace shaped for a different tree before any buffer
    /// is written (cheap: length comparisons only).
    fn check_workspace(&self, ws: &PropagationWorkspace) -> Result<()> {
        let beliefs_fit = ws.beliefs.len() == self.sched.cliques.len()
            && ws
                .beliefs
                .iter()
                .zip(&self.sched.cliques)
                .all(|(b, c)| b.len() == c.len);
        let messages_fit = ws.messages.len() == self.sched.edges.len()
            && ws.scratch.len() == self.sched.edges.len()
            && ws
                .messages
                .iter()
                .zip(&self.sched.edges)
                .all(|(m, e)| m.len() == e.sep_len);
        if !beliefs_fit || !messages_fit {
            return Err(Error::ShapeMismatch {
                expected: self.sched.cliques.iter().map(|c| c.len).sum(),
                actual: ws.beliefs.iter().map(Vec::len).sum(),
            });
        }
        Ok(())
    }

    /// The propagation body shared by [`JunctionTree::propagate_in`] and
    /// [`JunctionTree::propagate`].
    fn propagate_ws(
        &self,
        ws: &mut PropagationWorkspace,
        evidence: &Evidence,
        hypotheticals: &[(VarId, usize)],
    ) -> Result<()> {
        evidence.validate(&self.net)?;
        self.check_workspace(ws)?;
        ws.calibrated = false;

        // Restore the evidence-free potentials (pure memcpy) and absorb the
        // findings in each variable's home clique. Hard evidence keeps the
        // variable in scope with a one-hot axis, so its posterior collapses
        // to a point mass.
        for (belief, base) in ws.beliefs.iter_mut().zip(&self.sched.base) {
            belief.copy_from_slice(base);
        }
        for (var, state) in evidence.hard_iter().chain(hypotheticals.iter().copied()) {
            let slot = self.sched.slots[var.index()];
            retain_state_kernel(&mut ws.beliefs[slot.clique], slot.stride, slot.card, state);
        }
        for (var, lik) in evidence.soft_iter() {
            let slot = self.sched.slots[var.index()];
            scale_axis_kernel(&mut ws.beliefs[slot.clique], slot.stride, slot.card, lik);
        }

        // Collect: leaves towards clique 0. Messages are normalised and the
        // normaliser accumulated so deep trees cannot underflow.
        let mut log_scale = 0.0f64;
        for &(child, par, eidx) in &self.sched.collect_schedule {
            let edge = &self.sched.edges[eidx];
            let msg = &mut ws.messages[eidx];
            msg.fill(0.0);
            marginalize_kernel(
                &self.sched.cliques[child].cards,
                &ws.beliefs[child],
                edge.strides_for(child),
                msg,
            );
            let z: f64 = msg.iter().sum();
            if z <= 0.0 {
                return Err(Error::ImpossibleEvidence);
            }
            for v in msg.iter_mut() {
                *v /= z;
            }
            log_scale += z.ln();
            mul_broadcast_kernel(
                &self.sched.cliques[par].cards,
                &mut ws.beliefs[par],
                &ws.messages[eidx],
                edge.strides_for(par),
            );
        }

        let root_total: f64 = ws.beliefs[0].iter().sum();
        if root_total <= 0.0 {
            return Err(Error::ImpossibleEvidence);
        }
        ws.log_likelihood = root_total.ln() + log_scale;

        // Distribute: root towards leaves, dividing out the stored message.
        for &(child, par, eidx) in self.sched.collect_schedule.iter().rev() {
            let edge = &self.sched.edges[eidx];
            let new_msg = &mut ws.scratch[eidx];
            new_msg.fill(0.0);
            marginalize_kernel(
                &self.sched.cliques[par].cards,
                &ws.beliefs[par],
                edge.strides_for(par),
                new_msg,
            );
            let z: f64 = new_msg.iter().sum();
            if z <= 0.0 {
                return Err(Error::ImpossibleEvidence);
            }
            for v in new_msg.iter_mut() {
                *v /= z;
            }
            // update := new / old (0/0 = 0), stored message := new.
            let old_msg = &mut ws.messages[eidx];
            for (u, old) in new_msg.iter_mut().zip(old_msg.iter_mut()) {
                let new_val = *u;
                *u = if *old == 0.0 { 0.0 } else { new_val / *old };
                *old = new_val;
            }
            mul_broadcast_kernel(
                &self.sched.cliques[child].cards,
                &mut ws.beliefs[child],
                &ws.scratch[eidx],
                edge.strides_for(child),
            );
        }

        // Normalise beliefs to clique posteriors P(C | e).
        for belief in &mut ws.beliefs {
            let z: f64 = belief.iter().sum();
            if z <= 0.0 || !z.is_finite() {
                return Err(Error::ImpossibleEvidence);
            }
            for v in belief.iter_mut() {
                *v /= z;
            }
        }
        ws.calibrated = true;
        Ok(())
    }

    /// Runs a full Hugin propagation under the given evidence, returning
    /// calibrated clique beliefs that own their tables. This is the
    /// convenience wrapper over [`JunctionTree::propagate_in`]; it
    /// allocates one fresh workspace per call, so prefer `propagate_in`
    /// (or [`JunctionTree::posteriors_batch`]) in query loops.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] when `P(e) = 0`, plus evidence
    /// validation errors.
    pub fn propagate(&self, evidence: &Evidence) -> Result<CalibratedTree<'_>> {
        let mut ws = self.make_workspace();
        self.propagate_ws(&mut ws, evidence, &[])?;
        let beliefs = ws
            .beliefs
            .into_iter()
            .zip(&self.sched.cliques)
            .map(|(values, c)| {
                Factor::from_parts_unchecked(c.scope.clone(), c.cards.clone(), values)
            })
            .collect();
        Ok(CalibratedTree {
            tree: self,
            beliefs,
            log_likelihood: ws.log_likelihood,
        })
    }

    /// Convenience wrapper: propagate and extract all posterior marginals.
    ///
    /// # Errors
    ///
    /// Same as [`JunctionTree::propagate`].
    pub fn posteriors(&self, evidence: &Evidence) -> Result<Posteriors> {
        let mut ws = self.make_workspace();
        self.propagate_in(&mut ws, evidence)?.all_posteriors()
    }

    /// Diagnoses a whole batch of independent evidence sets (one per board
    /// under test) against this one compiled tree, in parallel, with one
    /// reused workspace per worker thread. Results come back in input
    /// order; each board fails or succeeds independently, so one
    /// impossible-evidence board does not poison the batch.
    pub fn posteriors_batch(&self, evidences: &[Evidence]) -> Vec<Result<Posteriors>> {
        evidences
            .par_iter()
            .map_init(
                || self.make_workspace(),
                |ws, evidence| self.propagate_in(ws, evidence)?.all_posteriors(),
            )
            .collect()
    }

    /// The reference (pre-compilation) propagation: rebuilds every clique
    /// potential from the network's CPTs with allocating factor products on
    /// every call, exactly like the original implementation. Kept for
    /// equivalence tests and as the benchmark baseline the compiled path is
    /// measured against; never use it in a hot loop.
    ///
    /// # Errors
    ///
    /// Same as [`JunctionTree::propagate`].
    pub fn propagate_baseline(&self, evidence: &Evidence) -> Result<CalibratedTree<'_>> {
        evidence.validate(&self.net)?;

        // Initialise clique potentials: unit tables times assigned families.
        let mut beliefs: Vec<Factor> = self
            .sched
            .cliques
            .iter()
            .map(|c| {
                Factor::new(c.scope.clone(), c.cards.clone(), vec![1.0; c.len])
                    .expect("clique shapes are consistent")
            })
            .collect();
        for var in self.net.variables() {
            let fam = self.net.family_factor(var);
            let idx = self.sched.family_clique[var.index()];
            beliefs[idx] = beliefs[idx].product(&fam);
        }
        for (var, state) in evidence.hard_iter() {
            let mut onehot = vec![0.0; self.net.card(var)];
            onehot[state] = 1.0;
            beliefs[self.sched.home_clique[var.index()]].scale_axis(var, &onehot)?;
        }
        for (var, lik) in evidence.soft_iter() {
            beliefs[self.sched.home_clique[var.index()]]
                .scale_axis(var, lik.to_vec().as_slice())?;
        }

        let mut sepset_msgs: Vec<Option<Factor>> = vec![None; self.sched.edges.len()];
        let mut log_scale = 0.0f64;

        for &(child, par, eidx) in &self.sched.collect_schedule {
            let sep = &self.sched.edges[eidx].sepset;
            let mut msg = beliefs[child].marginalize_to(sep)?;
            let z = msg.total();
            if z <= 0.0 {
                return Err(Error::ImpossibleEvidence);
            }
            for v in msg.values_mut() {
                *v /= z;
            }
            log_scale += z.ln();
            beliefs[par] = beliefs[par].product(&msg);
            sepset_msgs[eidx] = Some(msg);
        }

        let root_total = beliefs[0].total();
        if root_total <= 0.0 {
            return Err(Error::ImpossibleEvidence);
        }
        let log_likelihood = root_total.ln() + log_scale;

        for &(child, par, eidx) in self.sched.collect_schedule.iter().rev() {
            let sep = &self.sched.edges[eidx].sepset;
            let mut new_msg = beliefs[par].marginalize_to(sep)?;
            let z = new_msg.total();
            if z <= 0.0 {
                return Err(Error::ImpossibleEvidence);
            }
            for v in new_msg.values_mut() {
                *v /= z;
            }
            let old = sepset_msgs[eidx]
                .take()
                .expect("collect filled every sepset");
            let update = new_msg.divide(&old)?;
            beliefs[child] = beliefs[child].product(&update);
            sepset_msgs[eidx] = Some(new_msg);
        }

        for b in &mut beliefs {
            b.normalize()?;
        }

        Ok(CalibratedTree {
            tree: self,
            beliefs,
            log_likelihood,
        })
    }
}

/// Shannon entropy of a normalised distribution, in nats. Zero-probability
/// states contribute zero (the `p ln p → 0` limit).
fn entropy_nats(dist: &[f64]) -> f64 {
    dist.iter().filter(|p| **p > 0.0).map(|p| -p * p.ln()).sum()
}

/// Compiles the evidence-free clique potentials: for every variable, its
/// flat CPT is broadcast-multiplied into its family clique's table. The
/// CPT's row-major layout over `parents ++ [var]` is used as factor
/// storage directly — nothing is copied or materialised per family.
fn compile_base(net: &Network, cliques: &[Clique], family_clique: &[usize]) -> Vec<Vec<f64>> {
    let mut base: Vec<Vec<f64>> = cliques.iter().map(|c| vec![1.0; c.len]).collect();
    for var in net.variables() {
        let ci = family_clique[var.index()];
        let clique = &cliques[ci];
        let fam = net.family(var);
        let fam_cards: Vec<usize> = fam.iter().map(|v| net.card(*v)).collect();
        let m_str = aligned_strides(&fam, &fam_cards, &clique.scope);
        mul_broadcast_kernel(&clique.cards, &mut base[ci], net.cpt(var), &m_str);
    }
    base
}

/// Reusable propagation buffers: clique beliefs, per-edge separator
/// messages and separator scratch. Shaped for one specific
/// [`JunctionTree`] by [`JunctionTree::make_workspace`]; feeding it to a
/// differently shaped tree (e.g. one kept across a model refit that
/// re-triangulated) is rejected with [`Error::ShapeMismatch`] before any
/// buffer is touched.
#[derive(Debug, Clone)]
pub struct PropagationWorkspace {
    beliefs: Vec<Vec<f64>>,
    messages: Vec<Vec<f64>>,
    scratch: Vec<Vec<f64>>,
    log_likelihood: f64,
    calibrated: bool,
}

impl PropagationWorkspace {
    /// `true` after a successful propagation (reset on the next attempt).
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }
}

/// A read view over calibrated beliefs living in a reused workspace:
/// the zero-allocation counterpart of [`CalibratedTree`].
#[derive(Debug)]
pub struct CalibratedView<'t, 'w> {
    tree: &'t JunctionTree,
    ws: &'w PropagationWorkspace,
}

impl CalibratedView<'_, '_> {
    /// Natural log of the evidence probability `ln P(e)`.
    pub fn log_likelihood(&self) -> f64 {
        self.ws.log_likelihood
    }

    /// Writes the posterior distribution of `var` into `out` (length must
    /// equal the variable's cardinality) without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] for out-of-range handles and
    /// [`Error::ShapeMismatch`] for a wrong-length buffer.
    pub fn posterior_into(&self, var: VarId, out: &mut [f64]) -> Result<()> {
        if var.index() >= self.tree.net.var_count() {
            return Err(Error::UnknownVariable(format!("{var}")));
        }
        let slot = self.tree.sched.slots[var.index()];
        if out.len() != slot.card {
            return Err(Error::ShapeMismatch {
                expected: slot.card,
                actual: out.len(),
            });
        }
        out.fill(0.0);
        axis_marginal_kernel(&self.ws.beliefs[slot.clique], slot.stride, slot.card, out);
        let z: f64 = out.iter().sum();
        if z <= 0.0 || !z.is_finite() {
            return Err(Error::ImpossibleEvidence);
        }
        for v in out.iter_mut() {
            *v /= z;
        }
        Ok(())
    }

    /// Posterior distribution of one variable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] for out-of-range handles.
    pub fn posterior(&self, var: VarId) -> Result<Vec<f64>> {
        if var.index() >= self.tree.net.var_count() {
            return Err(Error::UnknownVariable(format!("{var}")));
        }
        let mut out = vec![0.0; self.tree.sched.slots[var.index()].card];
        self.posterior_into(var, &mut out)?;
        Ok(out)
    }

    /// Writes the posterior `P(var | e)` into `out` and returns its
    /// Shannon entropy `H(var | e)` in nats — the single-pass
    /// outcome-distribution read of value-of-information and lookahead
    /// planning, which needs both the distribution (to weight hypothetical
    /// outcomes) and the entropy (to score the candidate itself) without
    /// extracting the marginal twice.
    ///
    /// # Errors
    ///
    /// Same as [`CalibratedView::posterior_into`].
    pub fn outcome_distribution_into(&self, var: VarId, out: &mut [f64]) -> Result<f64> {
        self.posterior_into(var, out)?;
        Ok(entropy_nats(out))
    }

    /// Shannon entropy `H(var | e)` of one posterior marginal, in nats.
    ///
    /// This is the restricted-posterior scoring primitive: reading the
    /// uncertainty of a handful of latent blocks must not pay for
    /// extracting every marginal in the network. For cardinalities up to
    /// 32 (every model in this workspace) the marginal lives in a stack
    /// buffer, so the call performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Same as [`CalibratedView::posterior_into`].
    pub fn posterior_entropy(&self, var: VarId) -> Result<f64> {
        if var.index() >= self.tree.net.var_count() {
            return Err(Error::UnknownVariable(format!("{var}")));
        }
        let card = self.tree.sched.slots[var.index()].card;
        let mut stack = [0.0f64; 32];
        if card <= stack.len() {
            self.posterior_into(var, &mut stack[..card])?;
            Ok(entropy_nats(&stack[..card]))
        } else {
            let mut heap = vec![0.0; card];
            self.posterior_into(var, &mut heap)?;
            Ok(entropy_nats(&heap))
        }
    }

    /// Posterior marginals for every variable.
    ///
    /// # Errors
    ///
    /// Propagates [`CalibratedView::posterior`] errors.
    pub fn all_posteriors(&self) -> Result<Posteriors> {
        let mut out = Vec::with_capacity(self.tree.net.var_count());
        for var in self.tree.net.variables() {
            out.push(self.posterior(var)?);
        }
        Ok(Posteriors::new(out))
    }

    /// The posterior family marginal `P(parents(var), var | e)` with scope
    /// ordered `parents ++ [var]` — exactly the shape of the CPT, which is
    /// what EM's expected counts need.
    ///
    /// # Errors
    ///
    /// Returns factor-shape errors (the family always fits one clique).
    pub fn family_marginal(&self, var: VarId) -> Result<Factor> {
        let ci = self.tree.sched.family_clique[var.index()];
        let clique = &self.tree.sched.cliques[ci];
        let fam = self.tree.net.family(var);
        let fam_cards: Vec<usize> = fam.iter().map(|v| self.tree.net.card(*v)).collect();
        let mut out = Factor::with_shape(fam, fam_cards)?;
        let out_str = out.strides_aligned_to(&clique.scope);
        marginalize_kernel(
            &clique.cards,
            &self.ws.beliefs[ci],
            &out_str,
            out.values_mut(),
        );
        out.normalize()?;
        Ok(out)
    }
}

/// The result of a Hugin propagation: calibrated clique beliefs plus the
/// evidence log-likelihood. Borrowed from the compiled tree; the beliefs
/// own their tables (unlike [`CalibratedView`], which reads them out of a
/// reusable workspace).
#[derive(Debug, Clone)]
pub struct CalibratedTree<'jt> {
    tree: &'jt JunctionTree,
    beliefs: Vec<Factor>,
    log_likelihood: f64,
}

impl CalibratedTree<'_> {
    /// Natural log of the evidence probability `ln P(e)`.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Posterior distribution of one variable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`] for out-of-range handles.
    pub fn posterior(&self, var: VarId) -> Result<Vec<f64>> {
        if var.index() >= self.tree.net.var_count() {
            return Err(Error::UnknownVariable(format!("{var}")));
        }
        let clique = self.tree.sched.home_clique[var.index()];
        let marg = self.beliefs[clique].marginalize_to(&[var])?;
        Ok(marg.normalized()?.into_values())
    }

    /// Posterior marginals for every variable.
    ///
    /// # Errors
    ///
    /// Propagates [`CalibratedTree::posterior`] errors.
    pub fn all_posteriors(&self) -> Result<Posteriors> {
        let mut out = Vec::with_capacity(self.tree.net.var_count());
        for var in self.tree.net.variables() {
            out.push(self.posterior(var)?);
        }
        Ok(Posteriors::new(out))
    }

    /// The posterior family marginal `P(parents(var), var | e)` with scope
    /// ordered `parents ++ [var]` — exactly the shape of the CPT, which is
    /// what EM's expected counts need.
    ///
    /// # Errors
    ///
    /// Returns factor-shape errors (the family always fits one clique).
    pub fn family_marginal(&self, var: VarId) -> Result<Factor> {
        let clique = self.tree.sched.family_clique[var.index()];
        let family = self.tree.net.family(var);
        let marg = self.beliefs[clique].marginalize_to(&family)?;
        marg.normalized()
    }

    /// Joint posterior over a set of variables, provided some clique
    /// contains them all.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] when no single clique covers `vars`
    /// (fall back to [`crate::VariableElimination::joint_marginal`]).
    pub fn joint_marginal(&self, vars: &[VarId]) -> Result<Factor> {
        let clique = self
            .tree
            .sched
            .cliques
            .iter()
            .position(|c| vars.iter().all(|v| c.scope.contains(v)))
            .ok_or_else(|| Error::NotInScope(format!("no clique covers all of {vars:?}")))?;
        let marg = self.beliefs[clique].marginalize_to(vars)?;
        marg.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::enumerate_posteriors;
    use crate::network::NetworkBuilder;

    fn sprinkler() -> Network {
        let mut b = NetworkBuilder::new();
        let cloudy = b.variable("cloudy", ["n", "y"]).unwrap();
        let sprinkler = b.variable("sprinkler", ["n", "y"]).unwrap();
        let rain = b.variable("rain", ["n", "y"]).unwrap();
        let wet = b.variable("wet", ["n", "y"]).unwrap();
        b.prior(cloudy, [0.5, 0.5]).unwrap();
        b.cpt(sprinkler, [cloudy], [[0.5, 0.5], [0.9, 0.1]])
            .unwrap();
        b.cpt(rain, [cloudy], [[0.8, 0.2], [0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            [sprinkler, rain],
            [[1.0, 0.0], [0.1, 0.9], [0.1, 0.9], [0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn compile_stats_are_sane() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let stats = jt.stats();
        assert!(stats.cliques >= 1);
        assert!(stats.max_clique_width >= 3, "wet's family has width 3");
        assert!(stats.total_table_size >= 8);
        assert_eq!(jt.network().var_count(), 4);
        assert_eq!(jt.clique_scopes().len(), stats.cliques);
        let dot = jt.to_dot();
        assert!(dot.contains("graph jointree"));
        assert!(dot.contains("wet"));
        let degrees: usize = (0..stats.cliques).map(|i| jt.clique_degree(i)).sum();
        assert_eq!(degrees, (stats.cliques - 1) * 2, "tree has n-1 edges");
        assert_eq!(jt.clique_degree(usize::MAX), 0);
    }

    #[test]
    fn matches_enumeration_without_evidence() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let exact = enumerate_posteriors(&net, &Evidence::new()).unwrap();
        let got = jt.posteriors(&Evidence::new()).unwrap();
        assert!(got.max_abs_diff(&exact).unwrap() < 1e-10);
    }

    #[test]
    fn matches_enumeration_with_hard_evidence() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let wet = net.var("wet").unwrap();
        let sprinkler_v = net.var("sprinkler").unwrap();
        for (wv, sv) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let mut e = Evidence::new();
            e.observe(wet, wv).observe(sprinkler_v, sv);
            let exact = enumerate_posteriors(&net, &e).unwrap();
            let got = jt.posteriors(&e).unwrap();
            assert!(
                got.max_abs_diff(&exact).unwrap() < 1e-10,
                "wet={wv} spr={sv}"
            );
        }
    }

    #[test]
    fn matches_enumeration_with_soft_evidence() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let rain = net.var("rain").unwrap();
        let wet = net.var("wet").unwrap();
        let mut e = Evidence::new();
        e.observe_likelihood(rain, vec![0.3, 1.2]);
        e.observe(wet, 1);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        let got = jt.posteriors(&e).unwrap();
        assert!(got.max_abs_diff(&exact).unwrap() < 1e-10);
    }

    #[test]
    fn log_likelihood_matches_ve() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let ve = crate::VariableElimination::new(&net);
        let wet = net.var("wet").unwrap();
        let cloudy = net.var("cloudy").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1).observe(cloudy, 0);
        let cal = jt.propagate(&e).unwrap();
        let expect = ve.log_likelihood(&e).unwrap();
        assert!((cal.log_likelihood() - expect).abs() < 1e-10);
    }

    #[test]
    fn family_marginal_shape_and_consistency() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let wet = net.var("wet").unwrap();
        let cal = jt.propagate(&Evidence::new()).unwrap();
        let fam = cal.family_marginal(wet).unwrap();
        assert_eq!(fam.scope().len(), 3);
        assert_eq!(*fam.scope().last().unwrap(), wet);
        assert!((fam.total() - 1.0).abs() < 1e-10);
        // Marginalising the family onto wet equals the posterior of wet.
        let from_family = fam.marginalize_to(&[wet]).unwrap();
        let direct = cal.posterior(wet).unwrap();
        for (a, b) in from_family.values().iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        // The workspace view agrees.
        let mut ws = jt.make_workspace();
        let view = jt.propagate_in(&mut ws, &Evidence::new()).unwrap();
        let fam_view = view.family_marginal(wet).unwrap();
        assert_eq!(fam_view.scope(), fam.scope());
        for (a, b) in fam_view.values().iter().zip(fam.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn joint_marginal_within_clique() {
        let net = sprinkler();
        let jt = JunctionTree::compile(&net).unwrap();
        let s = net.var("sprinkler").unwrap();
        let r = net.var("rain").unwrap();
        let cal = jt.propagate(&Evidence::new()).unwrap();
        // sprinkler and rain are married in the moral graph, so some clique
        // holds both.
        let j = cal.joint_marginal(&[s, r]).unwrap();
        assert_eq!(j.scope(), &[s, r]);
        let ve = crate::VariableElimination::new(&net);
        let expect = ve.joint_marginal(&Evidence::new(), &[s, r]).unwrap();
        for (a, b) in j.values().iter().zip(expect.values()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn impossible_evidence_is_detected() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [1.0, 0.0]).unwrap();
        b.cpt(c, [a], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let jt = JunctionTree::compile(&net).unwrap();
        let mut e = Evidence::new();
        e.observe(c, 1);
        assert!(matches!(jt.propagate(&e), Err(Error::ImpossibleEvidence)));
        // A workspace survives a failed propagation and can be reused.
        let mut ws = jt.make_workspace();
        assert!(jt.propagate_in(&mut ws, &e).is_err());
        assert!(!ws.is_calibrated());
        let ok = jt.propagate_in(&mut ws, &Evidence::new()).unwrap();
        assert!((ok.posterior(a).unwrap()[0] - 1.0).abs() < 1e-12);
        assert!(ws.is_calibrated());
    }

    #[test]
    fn disconnected_networks_propagate() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [0.25, 0.75]).unwrap();
        b.prior(c, [0.9, 0.1]).unwrap();
        let net = b.build().unwrap();
        let jt = JunctionTree::compile(&net).unwrap();
        let mut e = Evidence::new();
        e.observe(c, 1);
        let cal = jt.propagate(&e).unwrap();
        let pa = cal.posterior(a).unwrap();
        assert!(
            (pa[1] - 0.75).abs() < 1e-10,
            "independent evidence must not leak"
        );
        assert!((cal.log_likelihood() - 0.1f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn update_parameters_requires_same_structure() {
        let net = sprinkler();
        let mut jt = JunctionTree::compile(&net).unwrap();
        let mut altered = net.clone();
        let rain = altered.var("rain").unwrap();
        altered
            .set_cpt_values(rain, vec![0.5, 0.5, 0.5, 0.5])
            .unwrap();
        assert!(jt.update_parameters(&altered).is_ok());
        let got = jt.posteriors(&Evidence::new()).unwrap();
        let exact = enumerate_posteriors(&altered, &Evidence::new()).unwrap();
        assert!(got.max_abs_diff(&exact).unwrap() < 1e-10);

        let mut b = NetworkBuilder::new();
        let x = b.variable("x", ["0", "1"]).unwrap();
        b.prior(x, [0.5, 0.5]).unwrap();
        let other = b.build().unwrap();
        assert!(jt.update_parameters(&other).is_err());
    }

    fn seven_var_net() -> Network {
        // A 7-variable layered DAG exercises multi-clique trees.
        let mut b = NetworkBuilder::new();
        let v0 = b.variable("v0", ["0", "1"]).unwrap();
        let v1 = b.variable("v1", ["0", "1", "2"]).unwrap();
        let v2 = b.variable("v2", ["0", "1"]).unwrap();
        let v3 = b.variable("v3", ["0", "1"]).unwrap();
        let v4 = b.variable("v4", ["0", "1"]).unwrap();
        let v5 = b.variable("v5", ["0", "1", "2"]).unwrap();
        let v6 = b.variable("v6", ["0", "1"]).unwrap();
        b.prior(v0, [0.4, 0.6]).unwrap();
        b.prior(v1, [0.2, 0.5, 0.3]).unwrap();
        b.cpt(v2, [v0], [[0.7, 0.3], [0.1, 0.9]]).unwrap();
        b.cpt(
            v3,
            [v0, v1],
            [
                [0.5, 0.5],
                [0.4, 0.6],
                [0.3, 0.7],
                [0.2, 0.8],
                [0.6, 0.4],
                [0.9, 0.1],
            ],
        )
        .unwrap();
        b.cpt(v4, [v2], [[0.25, 0.75], [0.85, 0.15]]).unwrap();
        b.cpt(v5, [v3], [[0.1, 0.6, 0.3], [0.5, 0.25, 0.25]])
            .unwrap();
        b.cpt(
            v6,
            [v4, v5],
            [
                [0.9, 0.1],
                [0.8, 0.2],
                [0.7, 0.3],
                [0.4, 0.6],
                [0.3, 0.7],
                [0.05, 0.95],
            ],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bigger_random_network_agrees_with_ve() {
        let net = seven_var_net();
        let v1 = net.var("v1").unwrap();
        let v6 = net.var("v6").unwrap();
        let jt = JunctionTree::compile(&net).unwrap();
        let ve = crate::VariableElimination::new(&net);
        let mut e = Evidence::new();
        e.observe(v6, 1).observe(v1, 2);
        let got = jt.posteriors(&e).unwrap();
        let expect = ve.all_posteriors(&e).unwrap();
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-9);
        let cal = jt.propagate(&e).unwrap();
        assert!((cal.log_likelihood() - ve.log_likelihood(&e).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn compiled_propagation_matches_baseline() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v0 = net.var("v0").unwrap();
        let v5 = net.var("v5").unwrap();
        let v6 = net.var("v6").unwrap();
        let mut evidences = vec![Evidence::new()];
        for s6 in 0..2 {
            let mut e = Evidence::new();
            e.observe(v6, s6);
            evidences.push(e.clone());
            e.observe(v0, 1);
            evidences.push(e);
        }
        let mut soft = Evidence::new();
        soft.observe_likelihood(v5, vec![0.2, 1.0, 0.5]);
        evidences.push(soft);
        let mut ws = jt.make_workspace();
        for e in &evidences {
            let baseline = jt.propagate_baseline(e).unwrap();
            let compiled = jt.propagate_in(&mut ws, e).unwrap();
            assert!(
                (baseline.log_likelihood() - compiled.log_likelihood()).abs() < 1e-12,
                "log-likelihood drift"
            );
            let a = baseline.all_posteriors().unwrap();
            let b = compiled.all_posteriors().unwrap();
            assert!(a.max_abs_diff(&b).unwrap() < 1e-12, "posterior drift");
        }
    }

    #[test]
    fn workspace_reuse_is_stable_across_evidence_changes() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v6 = net.var("v6").unwrap();
        let mut ws = jt.make_workspace();
        // Interleave different evidence sets through one workspace and
        // compare against fresh-workspace answers.
        for round in 0..3 {
            for s in 0..2 {
                let mut e = Evidence::new();
                e.observe(v6, s);
                let reused = jt
                    .propagate_in(&mut ws, &e)
                    .unwrap()
                    .all_posteriors()
                    .unwrap();
                let fresh = jt.posteriors(&e).unwrap();
                assert!(
                    reused.max_abs_diff(&fresh).unwrap() == 0.0,
                    "round {round}: reused workspace must be bitwise identical"
                );
            }
        }
    }

    #[test]
    fn batch_equals_sequential() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v0 = net.var("v0").unwrap();
        let v6 = net.var("v6").unwrap();
        let mut evidences = Vec::new();
        for i in 0..32 {
            let mut e = Evidence::new();
            e.observe(v6, i % 2);
            if i % 3 == 0 {
                e.observe(v0, (i / 3) % 2);
            }
            evidences.push(e);
        }
        let batch = jt.posteriors_batch(&evidences);
        assert_eq!(batch.len(), evidences.len());
        for (e, got) in evidences.iter().zip(&batch) {
            let sequential = jt.posteriors(e).unwrap();
            let got = got.as_ref().expect("evidence is satisfiable");
            assert!(
                got.max_abs_diff(&sequential).unwrap() == 0.0,
                "batch must be exact"
            );
        }
    }

    #[test]
    fn cloned_trees_share_compiled_state_without_recompiling() {
        let net = seven_var_net();
        let compiles_before = compile_count();
        let jt = JunctionTree::compile(&net).unwrap();
        assert_eq!(compile_count() - compiles_before, 1);
        // Cloning is two refcount bumps: no recompilation, shared schedule
        // and base tables, independent workspaces, identical answers.
        let clone = jt.clone();
        assert_eq!(
            compile_count() - compiles_before,
            1,
            "clone must not compile"
        );
        assert!(jt.shares_compiled_state_with(&clone));
        let other = JunctionTree::compile(&net).unwrap();
        assert!(
            !jt.shares_compiled_state_with(&other),
            "a fresh compilation is equivalent but not shared"
        );
        let v6 = net.var("v6").unwrap();
        let mut e = Evidence::new();
        e.observe(v6, 1);
        let a = jt.posteriors(&e).unwrap();
        let b = clone.posteriors(&e).unwrap();
        assert!(
            a.max_abs_diff(&b).unwrap() == 0.0,
            "clones answer identically"
        );
        // Parameter updates on one clone never leak into the other.
        let mut tuned = clone;
        let rain_like = net.var("v2").unwrap();
        let mut altered = net.clone();
        altered
            .set_cpt_values(rain_like, vec![0.5, 0.5, 0.5, 0.5])
            .unwrap();
        tuned.update_parameters(&altered).unwrap();
        assert!(
            !jt.shares_compiled_state_with(&tuned),
            "update_parameters must unshare the schedule"
        );
        let untouched = jt.posteriors(&e).unwrap();
        assert!(a.max_abs_diff(&untouched).unwrap() == 0.0);
    }

    #[test]
    fn foreign_workspace_is_rejected_not_panicking() {
        let jt_small = JunctionTree::compile(&sprinkler()).unwrap();
        let jt_big = JunctionTree::compile(&seven_var_net()).unwrap();
        let mut ws_small = jt_small.make_workspace();
        let err = jt_big.propagate_in(&mut ws_small, &Evidence::new());
        assert!(
            matches!(err, Err(Error::ShapeMismatch { .. })),
            "foreign workspace must be rejected cleanly, got {err:?}"
        );
        // The workspace still works with its own tree afterwards.
        assert!(jt_small
            .propagate_in(&mut ws_small, &Evidence::new())
            .is_ok());
    }

    #[test]
    fn stacked_hypotheticals_match_real_evidence() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v0 = net.var("v0").unwrap();
        let v2 = net.var("v2").unwrap();
        let v6 = net.var("v6").unwrap();
        let mut base = Evidence::new();
        base.observe(v6, 1);
        let mut ws = jt.make_workspace();
        for s0 in 0..2 {
            for s2 in 0..2 {
                let hyp = jt
                    .propagate_hypotheticals_in(&mut ws, &base, &[(v0, s0), (v2, s2)])
                    .unwrap()
                    .all_posteriors()
                    .unwrap();
                let mut merged = base.clone();
                merged.observe(v0, s0);
                merged.observe(v2, s2);
                let real = jt.posteriors(&merged).unwrap();
                assert!(
                    hyp.max_abs_diff(&real).unwrap() == 0.0,
                    "stacked hypotheticals must equal the merged-evidence answer bitwise"
                );
            }
        }
        // Empty stack == plain propagation; the evidence set is untouched.
        let empty = jt
            .propagate_hypotheticals_in(&mut ws, &base, &[])
            .unwrap()
            .all_posteriors()
            .unwrap();
        let plain = jt.posteriors(&base).unwrap();
        assert!(empty.max_abs_diff(&plain).unwrap() == 0.0);
        assert_eq!(base.state_of(v0), None);

        // Duplicate findings and evidence collisions are rejected.
        assert!(matches!(
            jt.propagate_hypotheticals_in(&mut ws, &base, &[(v0, 0), (v0, 1)]),
            Err(Error::InvalidEvidence { .. })
        ));
        assert!(matches!(
            jt.propagate_hypotheticals_in(&mut ws, &base, &[(v0, 0), (v6, 0)]),
            Err(Error::InvalidEvidence { .. })
        ));
    }

    #[test]
    fn outcome_distribution_returns_posterior_and_entropy_together() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v0 = net.var("v0").unwrap();
        let v6 = net.var("v6").unwrap();
        let mut e = Evidence::new();
        e.observe(v6, 1);
        let mut ws = jt.make_workspace();
        let view = jt.propagate_in(&mut ws, &e).unwrap();
        let mut dist = [0.0f64; 2];
        let h = view.outcome_distribution_into(v0, &mut dist).unwrap();
        assert_eq!(dist.to_vec(), view.posterior(v0).unwrap());
        assert_eq!(h, view.posterior_entropy(v0).unwrap());
        // Observed variables: point mass, zero entropy.
        let h6 = view.outcome_distribution_into(v6, &mut dist).unwrap();
        assert_eq!(h6, 0.0);
        assert_eq!(dist[1], 1.0);
        // Wrong-length buffers are rejected like posterior_into.
        assert!(view
            .outcome_distribution_into(v0, &mut [0.0f64; 3])
            .is_err());
    }

    #[test]
    fn hypothetical_propagation_matches_real_evidence() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v0 = net.var("v0").unwrap();
        let v6 = net.var("v6").unwrap();
        let mut base = Evidence::new();
        base.observe(v6, 1);
        let mut ws = jt.make_workspace();
        for state in 0..2 {
            let hyp = jt
                .propagate_hypothetical_in(&mut ws, &base, v0, state)
                .unwrap()
                .all_posteriors()
                .unwrap();
            let mut merged = base.clone();
            merged.observe(v0, state);
            let real = jt.posteriors(&merged).unwrap();
            assert!(
                hyp.max_abs_diff(&real).unwrap() == 0.0,
                "hypothetical must equal the merged-evidence answer bitwise"
            );
        }
        // The base evidence set is untouched.
        assert_eq!(base.state_of(v0), None);
        // Hypotheticals on observed or bogus variables are rejected.
        assert!(matches!(
            jt.propagate_hypothetical_in(&mut ws, &base, v6, 0),
            Err(Error::InvalidEvidence { .. })
        ));
        assert!(matches!(
            jt.propagate_hypothetical_in(&mut ws, &base, VarId::from_index(99), 0),
            Err(Error::InvalidEvidence { .. })
        ));
        assert!(matches!(
            jt.propagate_hypothetical_in(&mut ws, &base, v0, 7),
            Err(Error::InvalidEvidence { .. })
        ));
    }

    #[test]
    fn entropy_helpers_match_direct_computation() {
        let net = seven_var_net();
        let jt = JunctionTree::compile(&net).unwrap();
        let v1 = net.var("v1").unwrap();
        let v5 = net.var("v5").unwrap();
        let v6 = net.var("v6").unwrap();
        let mut e = Evidence::new();
        e.observe(v6, 0);
        let mut ws = jt.make_workspace();
        let view = jt.propagate_in(&mut ws, &e).unwrap();
        let direct = |var| {
            view.posterior(var)
                .unwrap()
                .iter()
                .filter(|p| **p > 0.0)
                .map(|p| -p * p.ln())
                .sum::<f64>()
        };
        for var in [v1, v5] {
            assert!((view.posterior_entropy(var).unwrap() - direct(var)).abs() < 1e-15);
        }
        // Observed variables carry zero entropy.
        assert_eq!(view.posterior_entropy(v6).unwrap(), 0.0);
        assert!(view.posterior_entropy(VarId::from_index(99)).is_err());
    }

    #[test]
    fn compile_counter_increments_per_compile_only() {
        let net = sprinkler();
        let before = compile_count();
        let jt = JunctionTree::compile(&net).unwrap();
        assert_eq!(compile_count(), before + 1);
        let mut ws = jt.make_workspace();
        for _ in 0..5 {
            jt.propagate_in(&mut ws, &Evidence::new()).unwrap();
        }
        assert_eq!(compile_count(), before + 1, "propagation must not compile");
    }

    #[test]
    fn batch_isolates_impossible_boards() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [1.0, 0.0]).unwrap();
        b.cpt(c, [a], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let jt = JunctionTree::compile(&net).unwrap();
        let mut bad = Evidence::new();
        bad.observe(c, 1);
        let mut good = Evidence::new();
        good.observe(c, 0);
        let results = jt.posteriors_batch(&[good, bad]);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(Error::ImpossibleEvidence));
    }
}
