//! Approximate inference by stochastic sampling: forward (ancestral)
//! sampling, likelihood weighting and Gibbs sampling.
//!
//! Sampling serves two purposes here: it cross-checks the exact engines in
//! property tests, and forward sampling synthesises device populations when
//! a ground-truth network is available.

use crate::error::{Error, Result};
use crate::evidence::Evidence;
use crate::infer::Posteriors;
use crate::network::{Network, VarId};
use rand::Rng;

/// Draws one complete assignment by ancestral sampling (parents first).
pub fn forward_sample<R: Rng + ?Sized>(net: &Network, rng: &mut R) -> Vec<usize> {
    let mut assignment = vec![usize::MAX; net.var_count()];
    for &var in net.topological_order() {
        let parent_states: Vec<usize> = net
            .parents(var)
            .iter()
            .map(|p| assignment[p.index()])
            .collect();
        let row = net
            .cpt_row(var, &parent_states)
            .expect("topological order guarantees sampled parents");
        assignment[var.index()] = sample_categorical(row, rng);
    }
    assignment
}

/// Draws `n` complete assignments.
pub fn forward_sample_cases<R: Rng + ?Sized>(
    net: &Network,
    n: usize,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    (0..n).map(|_| forward_sample(net, rng)).collect()
}

/// Estimates all posterior marginals by likelihood weighting with `n`
/// samples. Hard-evidence variables are clamped and their CPT likelihood
/// folded into the sample weight; soft evidence multiplies the weight by the
/// likelihood of the sampled state.
///
/// # Errors
///
/// Returns [`Error::ImpossibleEvidence`] when every sample has zero weight,
/// plus evidence-validation errors.
pub fn likelihood_weighting<R: Rng + ?Sized>(
    net: &Network,
    evidence: &Evidence,
    n: usize,
    rng: &mut R,
) -> Result<Posteriors> {
    evidence.validate(net)?;
    let cards: Vec<usize> = net.variables().map(|v| net.card(v)).collect();
    let mut acc: Vec<Vec<f64>> = cards.iter().map(|&c| vec![0.0; c]).collect();
    let mut total_weight = 0.0;
    let mut assignment = vec![usize::MAX; net.var_count()];
    for _ in 0..n {
        let mut weight = 1.0f64;
        for &var in net.topological_order() {
            let parent_states: Vec<usize> = net
                .parents(var)
                .iter()
                .map(|p| assignment[p.index()])
                .collect();
            let row = net.cpt_row(var, &parent_states)?;
            if let Some(state) = evidence.state_of(var) {
                assignment[var.index()] = state;
                weight *= row[state];
            } else {
                let s = sample_categorical(row, rng);
                assignment[var.index()] = s;
                if let Some(lik) = evidence.likelihood_of(var) {
                    weight *= lik[s];
                }
            }
            if weight == 0.0 {
                break;
            }
        }
        if weight > 0.0 {
            total_weight += weight;
            for (i, &s) in assignment.iter().enumerate() {
                acc[i][s] += weight;
            }
        }
    }
    if total_weight <= 0.0 {
        return Err(Error::ImpossibleEvidence);
    }
    for dist in &mut acc {
        for p in dist.iter_mut() {
            *p /= total_weight;
        }
    }
    Ok(Posteriors::new(acc))
}

/// Markov-chain Monte-Carlo inference by single-site Gibbs sampling.
///
/// Only hard evidence is supported: each unobserved variable is resampled
/// from its full conditional given its Markov blanket.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::{Evidence, GibbsSampler, NetworkBuilder};
/// use rand::SeedableRng;
///
/// let mut b = NetworkBuilder::new();
/// let x = b.variable("x", ["0", "1"])?;
/// let y = b.variable("y", ["0", "1"])?;
/// b.prior(x, [0.5, 0.5])?;
/// b.cpt(y, [x], [[0.9, 0.1], [0.2, 0.8]])?;
/// let net = b.build()?;
///
/// let mut e = Evidence::new();
/// e.observe(y, 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut gibbs = GibbsSampler::new(&net, &e, &mut rng)?;
/// let post = gibbs.posteriors(500, 5_000, &mut rng)?;
/// assert!(post.of(x)[1] > 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GibbsSampler<'a> {
    net: &'a Network,
    evidence: Evidence,
    state: Vec<usize>,
    free: Vec<VarId>,
}

impl<'a> GibbsSampler<'a> {
    /// Initialises the chain with a likelihood-weighted forward sample that
    /// respects the hard evidence.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEvidence`] when soft evidence is supplied
    /// (unsupported), plus validation errors.
    pub fn new<R: Rng + ?Sized>(
        net: &'a Network,
        evidence: &Evidence,
        rng: &mut R,
    ) -> Result<Self> {
        evidence.validate(net)?;
        if evidence.soft_iter().next().is_some() {
            return Err(Error::InvalidEvidence {
                variable: "<soft>".into(),
                reason: "Gibbs sampling supports hard evidence only".into(),
            });
        }
        let mut state = vec![usize::MAX; net.var_count()];
        for &var in net.topological_order() {
            if let Some(s) = evidence.state_of(var) {
                state[var.index()] = s;
            } else {
                let parent_states: Vec<usize> =
                    net.parents(var).iter().map(|p| state[p.index()]).collect();
                let row = net.cpt_row(var, &parent_states)?;
                state[var.index()] = sample_categorical(row, rng);
            }
        }
        let free: Vec<VarId> = net
            .variables()
            .filter(|v| evidence.state_of(*v).is_none())
            .collect();
        Ok(GibbsSampler {
            net,
            evidence: evidence.clone(),
            state,
            free,
        })
    }

    /// One full sweep: resample every unobserved variable once.
    pub fn sweep<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.free.len() {
            let var = self.free[i];
            self.resample(var, rng);
        }
    }

    fn resample<R: Rng + ?Sized>(&mut self, var: VarId, rng: &mut R) {
        let card = self.net.card(var);
        let mut logits = vec![0.0f64; card];
        for s in 0..card {
            self.state[var.index()] = s;
            // P(var = s | blanket) ∝ P(var | parents) Π_children P(child | parents)
            let parent_states: Vec<usize> = self
                .net
                .parents(var)
                .iter()
                .map(|p| self.state[p.index()])
                .collect();
            let row = self
                .net
                .cpt_row(var, &parent_states)
                .expect("chain state is always complete");
            let mut p = row[s];
            for &child in self.net.children(var) {
                let cps: Vec<usize> = self
                    .net
                    .parents(child)
                    .iter()
                    .map(|p| self.state[p.index()])
                    .collect();
                let crow = self
                    .net
                    .cpt_row(child, &cps)
                    .expect("chain state is always complete");
                p *= crow[self.state[child.index()]];
            }
            logits[s] = p;
        }
        let total: f64 = logits.iter().sum();
        let s = if total > 0.0 {
            for l in &mut logits {
                *l /= total;
            }
            sample_categorical(&logits, rng)
        } else {
            // The blanket forbids every state (deterministic CPTs); keep a
            // uniform restart to stay ergodic.
            rng.gen_range(0..card)
        };
        self.state[var.index()] = s;
    }

    /// Runs `burn_in` sweeps, then `samples` recorded sweeps, and returns
    /// the empirical posterior marginals.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoCases`] when `samples` is zero.
    pub fn posteriors<R: Rng + ?Sized>(
        &mut self,
        burn_in: usize,
        samples: usize,
        rng: &mut R,
    ) -> Result<Posteriors> {
        if samples == 0 {
            return Err(Error::NoCases);
        }
        for _ in 0..burn_in {
            self.sweep(rng);
        }
        let cards: Vec<usize> = self.net.variables().map(|v| self.net.card(v)).collect();
        let mut acc: Vec<Vec<f64>> = cards.iter().map(|&c| vec![0.0; c]).collect();
        for _ in 0..samples {
            self.sweep(rng);
            for (i, &s) in self.state.iter().enumerate() {
                acc[i][s] += 1.0;
            }
        }
        for dist in &mut acc {
            for p in dist.iter_mut() {
                *p /= samples as f64;
            }
        }
        // Observed variables are pinned by construction.
        for (var, state) in self.evidence.hard_iter() {
            let dist = &mut acc[var.index()];
            for (i, p) in dist.iter_mut().enumerate() {
                *p = if i == state { 1.0 } else { 0.0 };
            }
        }
        Ok(Posteriors::new(acc))
    }

    /// The chain's current complete assignment.
    pub fn state(&self) -> &[usize] {
        &self.state
    }
}

fn sample_categorical<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> usize {
    let total: f64 = dist.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &p) in dist.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::enumerate_posteriors;
    use crate::network::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sprinkler() -> Network {
        let mut b = NetworkBuilder::new();
        let cloudy = b.variable("cloudy", ["n", "y"]).unwrap();
        let sprinkler = b.variable("sprinkler", ["n", "y"]).unwrap();
        let rain = b.variable("rain", ["n", "y"]).unwrap();
        let wet = b.variable("wet", ["n", "y"]).unwrap();
        b.prior(cloudy, [0.5, 0.5]).unwrap();
        b.cpt(sprinkler, [cloudy], [[0.5, 0.5], [0.9, 0.1]])
            .unwrap();
        b.cpt(rain, [cloudy], [[0.8, 0.2], [0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            [sprinkler, rain],
            [[1.0, 0.0], [0.1, 0.9], [0.1, 0.9], [0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forward_samples_match_prior() {
        let net = sprinkler();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 40_000;
        let samples = forward_sample_cases(&net, n, &mut rng);
        assert_eq!(samples.len(), n);
        let cloudy = net.var("cloudy").unwrap().index();
        let frac = samples.iter().filter(|s| s[cloudy] == 1).count() as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
        let wet = net.var("wet").unwrap().index();
        let exact = enumerate_posteriors(&net, &Evidence::new()).unwrap();
        let frac_wet = samples.iter().filter(|s| s[wet] == 1).count() as f64 / n as f64;
        assert!((frac_wet - exact.of(net.var("wet").unwrap())[1]).abs() < 0.02);
    }

    #[test]
    fn likelihood_weighting_converges() {
        let net = sprinkler();
        let wet = net.var("wet").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let approx = likelihood_weighting(&net, &e, 60_000, &mut rng).unwrap();
        assert!(approx.max_abs_diff(&exact).unwrap() < 0.02);
    }

    #[test]
    fn likelihood_weighting_soft_evidence() {
        let net = sprinkler();
        let rain = net.var("rain").unwrap();
        let mut e = Evidence::new();
        e.observe_likelihood(rain, vec![0.25, 1.0]);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let approx = likelihood_weighting(&net, &e, 60_000, &mut rng).unwrap();
        assert!(approx.max_abs_diff(&exact).unwrap() < 0.02);
    }

    #[test]
    fn likelihood_weighting_impossible_evidence() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [1.0, 0.0]).unwrap();
        b.cpt(c, [a], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let mut e = Evidence::new();
        e.observe(c, 1);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            likelihood_weighting(&net, &e, 100, &mut rng),
            Err(Error::ImpossibleEvidence)
        ));
    }

    #[test]
    fn gibbs_converges() {
        let net = sprinkler();
        let wet = net.var("wet").unwrap();
        let cloudy = net.var("cloudy").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1);
        let exact = enumerate_posteriors(&net, &e).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut gibbs = GibbsSampler::new(&net, &e, &mut rng).unwrap();
        let approx = gibbs.posteriors(1_000, 30_000, &mut rng).unwrap();
        assert!(
            (approx.of(cloudy)[1] - exact.of(cloudy)[1]).abs() < 0.03,
            "gibbs {} vs exact {}",
            approx.of(cloudy)[1],
            exact.of(cloudy)[1]
        );
        // Observed variable is pinned.
        assert!((approx.of(wet)[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gibbs_rejects_soft_evidence_and_zero_samples() {
        let net = sprinkler();
        let rain = net.var("rain").unwrap();
        let mut soft = Evidence::new();
        soft.observe_likelihood(rain, vec![0.5, 0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(GibbsSampler::new(&net, &soft, &mut rng).is_err());

        let mut gibbs = GibbsSampler::new(&net, &Evidence::new(), &mut rng).unwrap();
        assert!(gibbs.posteriors(0, 0, &mut rng).is_err());
        assert_eq!(gibbs.state().len(), 4);
    }

    #[test]
    fn categorical_sampler_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let s = sample_categorical(&[0.0, 0.0, 1.0], &mut rng);
            assert_eq!(s, 2);
        }
        let s = sample_categorical(&[1.0], &mut rng);
        assert_eq!(s, 0);
    }
}
