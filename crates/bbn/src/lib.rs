//! # abbd-bbn — Bayesian belief networks for analogue-circuit diagnosis
//!
//! A self-contained discrete Bayesian-network engine: structure building,
//! exact inference (variable elimination and junction trees), approximate
//! inference (forward sampling, likelihood weighting, Gibbs), MPE/MAP
//! queries, and parameter learning (complete-data counting, EM and
//! conjugate gradient, all with Dirichlet priors).
//!
//! The crate replaces the commercial Netica engine used by *Block-Level
//! Bayesian Diagnosis of Analogue Electronic Circuits* (DATE 2010): the
//! diagnosis core compiles a circuit model into a [`Network`], enters the
//! measured block states as [`Evidence`], and reads back posteriors from a
//! [`JunctionTree`].
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), abbd_bbn::Error> {
//! use abbd_bbn::{Evidence, JunctionTree, NetworkBuilder};
//!
//! // A two-block toy circuit: a bias block drives an output block.
//! let mut b = NetworkBuilder::new();
//! let bias = b.variable("bias", ["dead", "ok"])?;
//! let output = b.variable("output", ["fail", "pass"])?;
//! b.prior(bias, [0.1, 0.9])?;
//! b.cpt(output, [bias], [[0.95, 0.05], [0.2, 0.8]])?;
//! let net = b.build()?;
//!
//! // The tester saw the output failing — how is the bias block doing?
//! let mut seen = Evidence::new();
//! seen.observe(output, 0);
//! let jt = JunctionTree::compile(&net)?;
//! let posterior = jt.propagate(&seen)?.posterior(bias)?;
//! assert!(posterior[0] > 0.3); // the failure implicates the bias block
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpt;
mod error;
mod evidence;
mod factor;
pub mod graph;
mod infer;
pub mod learn;
mod network;
mod query;
mod submodel;

pub use error::{Error, Result};
pub use evidence::Evidence;
pub use factor::{Factor, MaxOut};
pub use graph::{d_separated, moral_graph, OrderingHeuristic, UndirectedGraph};
pub use infer::{
    enumerate_posteriors, forward_sample, forward_sample_cases, jointree_compile_count,
    likelihood_weighting, CalibratedTree, CalibratedView, GibbsSampler, JunctionTree,
    JunctionTreeStats, Posteriors, PropagationWorkspace, VariableElimination,
};
pub use network::{Network, NetworkBuilder, VarId};
pub use query::{map_query, most_probable_explanation, query_batch, Explanation};
pub use submodel::{extract_submodel, Submodel};
