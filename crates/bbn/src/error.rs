//! Error type shared by all Bayesian-network operations.

use std::fmt;

/// Result alias used throughout [`crate`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building, querying or learning a Bayesian network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A variable with this name was already declared.
    DuplicateVariable(String),
    /// The named variable does not exist in the network.
    UnknownVariable(String),
    /// A variable was declared with fewer than two states.
    TooFewStates {
        /// The offending variable name.
        variable: String,
        /// How many states were declared.
        states: usize,
    },
    /// The dependency graph contains a directed cycle through this variable.
    CycleDetected(String),
    /// A conditional probability table is missing or malformed.
    InvalidCpt {
        /// The variable whose CPT is malformed.
        variable: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// Evidence refers to an out-of-range state or malformed likelihood.
    InvalidEvidence {
        /// The variable the finding refers to.
        variable: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// A factor operation was given incompatible shapes.
    ShapeMismatch {
        /// Expected element or dimension count.
        expected: usize,
        /// Actual element or dimension count.
        actual: usize,
    },
    /// A factor operation referenced a variable outside the factor scope.
    NotInScope(String),
    /// The same variable appears twice in a factor scope.
    DuplicateInScope(String),
    /// The evidence has zero probability under the model.
    ImpossibleEvidence,
    /// An iterative algorithm failed to converge.
    NotConverged {
        /// The algorithm that gave up.
        what: String,
        /// The iteration budget it exhausted.
        iterations: usize,
    },
    /// Learning was invoked with no cases.
    NoCases,
    /// Learning was invoked with cases that cannot inform a fit: every case
    /// was impossible under the starting model, or a case carried a
    /// non-finite or negative weight.
    UnusableCases {
        /// Human-readable explanation of why the datalog is unusable.
        reason: String,
    },
    /// (De)serialisation failure.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateVariable(name) => {
                write!(f, "variable `{name}` is already declared")
            }
            Error::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            Error::TooFewStates { variable, states } => write!(
                f,
                "variable `{variable}` declared with {states} state(s); at least 2 required"
            ),
            Error::CycleDetected(name) => {
                write!(f, "dependency graph has a cycle through `{name}`")
            }
            Error::InvalidCpt { variable, reason } => {
                write!(f, "invalid CPT for `{variable}`: {reason}")
            }
            Error::InvalidEvidence { variable, reason } => {
                write!(f, "invalid evidence on `{variable}`: {reason}")
            }
            Error::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected {expected} values, got {actual}"
                )
            }
            Error::NotInScope(name) => write!(f, "variable `{name}` is not in the factor scope"),
            Error::DuplicateInScope(name) => {
                write!(f, "variable `{name}` appears twice in the factor scope")
            }
            Error::ImpossibleEvidence => {
                write!(f, "evidence has zero probability under the model")
            }
            Error::NotConverged { what, iterations } => {
                write!(f, "{what} did not converge within {iterations} iterations")
            }
            Error::NoCases => write!(f, "no cases supplied for learning"),
            Error::UnusableCases { reason } => {
                write!(f, "cases cannot inform a fit: {reason}")
            }
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples = [
            Error::DuplicateVariable("x".into()),
            Error::UnknownVariable("y".into()),
            Error::TooFewStates {
                variable: "z".into(),
                states: 1,
            },
            Error::CycleDetected("w".into()),
            Error::InvalidCpt {
                variable: "v".into(),
                reason: "row 0 sums to 0".into(),
            },
            Error::InvalidEvidence {
                variable: "u".into(),
                reason: "state 9".into(),
            },
            Error::ShapeMismatch {
                expected: 4,
                actual: 3,
            },
            Error::NotInScope("t".into()),
            Error::DuplicateInScope("s".into()),
            Error::ImpossibleEvidence,
            Error::NotConverged {
                what: "EM".into(),
                iterations: 10,
            },
            Error::NoCases,
            Error::UnusableCases {
                reason: "every case was impossible".into(),
            },
            Error::Io("disk on fire".into()),
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::other("boom");
        let err: Error = io.into();
        assert_eq!(err, Error::Io("boom".into()));
    }
}
