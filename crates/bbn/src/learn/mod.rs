//! Parameter learning: sufficient statistics with Dirichlet priors,
//! complete-data fitting, expectation–maximisation for hidden variables,
//! and a conjugate-gradient alternative (the two algorithms the paper names
//! in §III-A.2).

mod counts;
mod em;
mod gradient;

pub use counts::{fit_complete, Case, DirichletPrior, SuffStats};
pub use em::{expected_statistics, fit_em, EmConfig, EmOutcome};
pub use gradient::{fit_conjugate_gradient, CgConfig, CgOutcome};
