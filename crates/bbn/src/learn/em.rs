//! Expectation–maximisation for CPT learning with hidden variables.
//!
//! The paper's cases observe only controllable and observable blocks; the
//! internal block states are never seen, so maximum-likelihood counting is
//! not available. EM alternates junction-tree inference (expected family
//! counts) with posterior-mean re-estimation, starting from the product
//! expert's CPTs.

use crate::error::{Error, Result};
use crate::infer::JunctionTree;
use crate::learn::counts::{Case, DirichletPrior, SuffStats};
use crate::network::Network;

/// Knobs for [`fit_em`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Relative tolerance on the MAP objective for convergence.
    pub tolerance: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iterations: 100,
            tolerance: 1e-5,
        }
    }
}

/// The result of an EM run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmOutcome {
    /// Network with the fitted CPTs (structure unchanged).
    pub network: Network,
    /// Observed-data log-likelihood after each iteration.
    pub log_likelihood_trace: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// `true` when the objective change fell below tolerance.
    pub converged: bool,
    /// Cases skipped because they had zero probability under the model.
    pub skipped_cases: usize,
}

/// One E-step: expected sufficient statistics and the observed-data
/// log-likelihood of `cases` under the network held by `jt`.
///
/// Cases that are impossible under the current parameters are skipped and
/// counted, mirroring how an industrial flow must tolerate datalog rows
/// that disagree with a coarse model.
///
/// # Errors
///
/// Propagates propagation and shape errors other than
/// [`Error::ImpossibleEvidence`], which is converted into a skip.
pub fn expected_statistics(jt: &JunctionTree, cases: &[Case]) -> Result<(SuffStats, f64, usize)> {
    let net = jt.network();
    let mut stats = SuffStats::new(net);
    let mut log_likelihood = 0.0;
    let mut skipped = 0usize;
    // One workspace reused across every case: the per-case cost is pure
    // table arithmetic over the compiled schedule, no allocation.
    let mut ws = jt.make_workspace();
    for case in cases {
        let evidence = case.to_evidence();
        let calibrated = match jt.propagate_in(&mut ws, &evidence) {
            Ok(c) => c,
            Err(Error::ImpossibleEvidence) => {
                skipped += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        log_likelihood += case.weight() * calibrated.log_likelihood();
        for var in net.variables() {
            let fam = calibrated.family_marginal(var)?;
            stats.add_family_marginal(var, &fam, case.weight())?;
        }
    }
    Ok((stats, log_likelihood, skipped))
}

/// Fits CPTs by MAP expectation–maximisation.
///
/// `net` provides both the structure and the starting point (typically the
/// expert estimate); `prior` regularises every M-step. The observed-data
/// log-likelihood plus the log-prior is non-decreasing across iterations up
/// to numerical noise — the property tests rely on this.
///
/// # Errors
///
/// Returns [`Error::NoCases`] for an empty case list and
/// [`Error::UnusableCases`] when a case carries a non-finite or negative
/// weight or when every case is impossible under the starting model (a fit
/// from such a datalog would silently return the prior, or worse, NaN
/// rows), plus shape errors.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::learn::{fit_em, Case, DirichletPrior, EmConfig};
/// use abbd_bbn::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new();
/// let hidden = b.variable("hidden", ["ok", "bad"])?;
/// let seen = b.variable("seen", ["pass", "fail"])?;
/// b.prior(hidden, [0.7, 0.3])?;
/// b.cpt(seen, [hidden], [[0.9, 0.1], [0.2, 0.8]])?;
/// let net = b.build()?;
///
/// // Observe only `seen`; EM re-estimates all CPTs.
/// let cases: Vec<Case> = (0..10)
///     .map(|i| Case::from_pairs([(seen, (i % 3 == 0) as usize)]))
///     .collect();
/// let out = fit_em(&net, &cases, &DirichletPrior::uniform(&net, 0.5), &EmConfig::default())?;
/// assert!(out.iterations >= 1);
/// # Ok(())
/// # }
/// ```
pub fn fit_em(
    net: &Network,
    cases: &[Case],
    prior: &DirichletPrior,
    config: &EmConfig,
) -> Result<EmOutcome> {
    if cases.is_empty() {
        return Err(Error::NoCases);
    }
    for (i, case) in cases.iter().enumerate() {
        let w = case.weight();
        if !w.is_finite() || w < 0.0 {
            return Err(Error::UnusableCases {
                reason: format!("case {i} has weight {w}; weights must be finite and >= 0"),
            });
        }
    }
    prior.validate(net)?;
    let mut current = net.clone();
    let mut jt = JunctionTree::compile(&current)?;
    let mut trace = Vec::new();
    let mut prev_objective = f64::NEG_INFINITY;
    let mut converged = false;
    let mut iterations = 0usize;
    let mut skipped_total = 0usize;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let (stats, log_likelihood, skipped) = expected_statistics(&jt, cases)?;
        if skipped == cases.len() {
            // Without this check the M-step would quietly return the prior
            // (or NaN rows under a zero prior) as if it were a fit.
            return Err(Error::UnusableCases {
                reason: format!(
                    "all {} cases are impossible under the starting model",
                    cases.len()
                ),
            });
        }
        skipped_total = skipped;
        trace.push(log_likelihood);

        // M-step: posterior-mean update.
        let new_cpts = stats.to_cpts(prior);
        for (i, cpt) in new_cpts.into_iter().enumerate() {
            current.set_cpt_values(crate::network::VarId::from_index(i), cpt)?;
        }
        jt.update_parameters(&current)?;

        let objective = log_likelihood + prior.log_density(&current);
        if (objective - prev_objective).abs() <= config.tolerance * (1.0 + objective.abs()) {
            converged = true;
            break;
        }
        prev_objective = objective;
    }

    Ok(EmOutcome {
        network: current,
        log_likelihood_trace: trace,
        iterations,
        converged,
        skipped_cases: skipped_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{forward_sample_cases, JunctionTree};
    use crate::network::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hidden_chain() -> Network {
        // hidden -> obs1, hidden -> obs2
        let mut b = NetworkBuilder::new();
        let hidden = b.variable("hidden", ["0", "1"]).unwrap();
        let obs1 = b.variable("obs1", ["0", "1"]).unwrap();
        let obs2 = b.variable("obs2", ["0", "1"]).unwrap();
        b.prior(hidden, [0.6, 0.4]).unwrap();
        b.cpt(obs1, [hidden], [[0.9, 0.1], [0.2, 0.8]]).unwrap();
        b.cpt(obs2, [hidden], [[0.8, 0.2], [0.3, 0.7]]).unwrap();
        b.build().unwrap()
    }

    /// Mildly perturbed starting parameters.
    fn perturbed(net: &Network) -> Network {
        let mut start = net.clone();
        for v in net.variables() {
            let card = net.card(v);
            let cpt: Vec<f64> = net
                .cpt(v)
                .chunks(card)
                .flat_map(|row| {
                    let mixed: Vec<f64> = row.iter().map(|p| 0.5 * p + 0.5 / card as f64).collect();
                    mixed
                })
                .collect();
            start.set_cpt_values(v, cpt).unwrap();
        }
        start
    }

    #[test]
    fn em_increases_likelihood_monotonically() {
        let truth = hidden_chain();
        let mut rng = StdRng::seed_from_u64(21);
        let samples = forward_sample_cases(&truth, 400, &mut rng);
        let hidden = truth.var("hidden").unwrap();
        // Hide the `hidden` column.
        let cases: Vec<Case> = samples
            .iter()
            .map(|s| {
                Case::from_pairs(
                    truth
                        .variables()
                        .filter(|v| *v != hidden)
                        .map(|v| (v, s[v.index()])),
                )
            })
            .collect();
        let start = perturbed(&truth);
        let out = fit_em(
            &start,
            &cases,
            &DirichletPrior::zero(&start),
            &EmConfig {
                max_iterations: 40,
                tolerance: 1e-9,
            },
        )
        .unwrap();
        for pair in out.log_likelihood_trace.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-7,
                "ML-EM log-likelihood decreased: {} -> {}",
                pair[0],
                pair[1]
            );
        }
        assert_eq!(out.skipped_cases, 0);
    }

    #[test]
    fn em_with_complete_data_matches_counting() {
        let truth = hidden_chain();
        let mut rng = StdRng::seed_from_u64(33);
        let samples = forward_sample_cases(&truth, 300, &mut rng);
        let cases: Vec<Case> = samples.iter().map(|s| Case::from_complete(s)).collect();
        let prior = DirichletPrior::uniform(&truth, 1.0);
        let em = fit_em(
            &truth,
            &cases,
            &prior,
            &EmConfig {
                max_iterations: 3,
                tolerance: 1e-12,
            },
        )
        .unwrap();
        let counted = crate::learn::fit_complete(&truth, &samples, &prior).unwrap();
        for v in truth.variables() {
            for (a, b) in em.network.cpt(v).iter().zip(counted.cpt(v)) {
                assert!((a - b).abs() < 1e-9, "var {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn em_recovers_observable_margins() {
        // Even if hidden-state semantics are unidentifiable, the fitted
        // model must reproduce the observable joint distribution.
        let truth = hidden_chain();
        let mut rng = StdRng::seed_from_u64(55);
        let samples = forward_sample_cases(&truth, 4000, &mut rng);
        let hidden = truth.var("hidden").unwrap();
        let obs1 = truth.var("obs1").unwrap();
        let obs2 = truth.var("obs2").unwrap();
        let cases: Vec<Case> = samples
            .iter()
            .map(|s| Case::from_pairs([(obs1, s[obs1.index()]), (obs2, s[obs2.index()])]))
            .collect();
        let start = perturbed(&truth);
        let out = fit_em(
            &start,
            &cases,
            &DirichletPrior::uniform(&start, 0.1),
            &EmConfig {
                max_iterations: 200,
                tolerance: 1e-10,
            },
        )
        .unwrap();
        // Compare fitted P(obs1, obs2) with the empirical joint.
        let jt = JunctionTree::compile(&out.network).unwrap();
        let cal = jt.propagate(&crate::Evidence::new()).unwrap();
        let ve = crate::VariableElimination::new(&out.network);
        let joint = ve
            .joint_marginal(&crate::Evidence::new(), &[obs1, obs2])
            .unwrap();
        let _ = cal;
        let mut empirical = [[0.0f64; 2]; 2];
        for s in &samples {
            empirical[s[obs1.index()]][s[obs2.index()]] += 1.0 / samples.len() as f64;
        }
        for (i, row) in empirical.iter().enumerate() {
            for (j, expect) in row.iter().enumerate() {
                let fitted = joint.values()[joint.index_of(&[i, j]).unwrap()];
                assert!(
                    (fitted - expect).abs() < 0.02,
                    "P(obs1={i}, obs2={j}): fitted {fitted} vs empirical {expect}"
                );
            }
        }
        let _ = hidden;
    }

    #[test]
    fn em_rejects_empty_cases() {
        let net = hidden_chain();
        assert!(matches!(
            fit_em(&net, &[], &DirichletPrior::zero(&net), &EmConfig::default()),
            Err(Error::NoCases)
        ));
    }

    #[test]
    fn em_skips_impossible_cases() {
        // Deterministic CPT makes obs1=1 impossible when hidden=0 is forced
        // by another deterministic observation path.
        let mut b = NetworkBuilder::new();
        let h = b.variable("h", ["0", "1"]).unwrap();
        let o = b.variable("o", ["0", "1"]).unwrap();
        b.prior(h, [1.0, 0.0]).unwrap();
        b.cpt(o, [h], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let cases = vec![
            Case::from_pairs([(o, 0)]),
            Case::from_pairs([(o, 1)]), // impossible: P(o=1) = 0
        ];
        let out = fit_em(
            &net,
            &cases,
            &DirichletPrior::zero(&net),
            &EmConfig {
                max_iterations: 2,
                tolerance: 1e-9,
            },
        )
        .unwrap();
        assert_eq!(out.skipped_cases, 1);
    }

    #[test]
    fn em_rejects_nonfinite_and_negative_weights() {
        let net = hidden_chain();
        let o1 = net.var("obs1").unwrap();
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut case = Case::from_pairs([(o1, 0)]);
            case.set_weight(bad);
            let cases = vec![case];
            let err = fit_em(
                &net,
                &cases,
                &DirichletPrior::zero(&net),
                &EmConfig::default(),
            )
            .unwrap_err();
            assert!(
                matches!(err, Error::UnusableCases { .. }),
                "weight {bad}: expected UnusableCases, got {err:?}"
            );
        }
    }

    #[test]
    fn em_rejects_all_impossible_datalog() {
        // Same deterministic net as `em_skips_impossible_cases`, but every
        // case contradicts the model; the fit must fail structurally
        // instead of returning the prior as if it were learned.
        let mut b = NetworkBuilder::new();
        let h = b.variable("h", ["0", "1"]).unwrap();
        let o = b.variable("o", ["0", "1"]).unwrap();
        b.prior(h, [1.0, 0.0]).unwrap();
        b.cpt(o, [h], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let cases = vec![Case::from_pairs([(o, 1)]), Case::from_pairs([(o, 1)])];
        let err = fit_em(
            &net,
            &cases,
            &DirichletPrior::zero(&net),
            &EmConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, Error::UnusableCases { .. }), "got {err:?}");
    }

    #[test]
    fn em_single_outcome_datalog_yields_finite_rows() {
        // A datalog where every row reports the same single outcome must
        // still produce normalised, finite CPTs (prior fallback on unseen
        // rows), never NaN.
        let net = hidden_chain();
        let o1 = net.var("obs1").unwrap();
        let o2 = net.var("obs2").unwrap();
        let cases: Vec<Case> = (0..20)
            .map(|_| Case::from_pairs([(o1, 0), (o2, 0)]))
            .collect();
        let out = fit_em(
            &net,
            &cases,
            &DirichletPrior::uniform(&net, 0.5),
            &EmConfig {
                max_iterations: 10,
                tolerance: 1e-8,
            },
        )
        .unwrap();
        for v in out.network.variables() {
            let card = out.network.card(v);
            for row in out.network.cpt(v).chunks(card) {
                let total: f64 = row.iter().sum();
                assert!(
                    row.iter().all(|p| p.is_finite() && *p >= 0.0),
                    "var {v}: non-finite CPT row {row:?}"
                );
                assert!((total - 1.0).abs() < 1e-9, "var {v}: row sums to {total}");
            }
        }
    }
}
