//! Conjugate-gradient parameter learning — the alternative algorithm the
//! paper names next to EM (§III-A.2, citing Hastie et al.).
//!
//! CPT rows are reparameterised through a softmax so the ascent is
//! unconstrained; the objective is the MAP log-posterior (observed-data
//! log-likelihood plus Dirichlet log-prior). Search directions follow
//! Polak–Ribière with automatic restarts, and steps are chosen by a
//! backtracking Armijo line search.

use crate::error::{Error, Result};
use crate::infer::JunctionTree;
use crate::learn::counts::{Case, DirichletPrior};
use crate::learn::em::expected_statistics;
use crate::network::Network;

/// Knobs for [`fit_conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Hard iteration cap (one line search per iteration).
    pub max_iterations: usize,
    /// Relative tolerance on the objective for convergence.
    pub tolerance: f64,
    /// Initial step length tried by the line search.
    pub initial_step: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Armijo sufficient-decrease constant.
    pub armijo: f64,
    /// Maximum backtracking attempts per line search.
    pub max_backtracks: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iterations: 60,
            tolerance: 1e-6,
            initial_step: 1.0,
            backtrack: 0.5,
            armijo: 1e-4,
            max_backtracks: 30,
        }
    }
}

/// The result of a conjugate-gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOutcome {
    /// Network with the fitted CPTs.
    pub network: Network,
    /// MAP objective after each accepted step.
    pub objective_trace: Vec<f64>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// `true` when the objective change fell below tolerance.
    pub converged: bool,
}

/// Flattened softmax parameters: one entry per CPT cell, grouped per row.
#[derive(Debug, Clone)]
struct Params {
    /// Per variable: flat table of logits, CPT layout.
    eta: Vec<Vec<f64>>,
}

impl Params {
    fn from_network(net: &Network) -> Self {
        Params {
            eta: net
                .variables()
                .map(|v| net.cpt(v).iter().map(|p| p.max(1e-12).ln()).collect())
                .collect(),
        }
    }

    /// Writes softmaxed CPTs into `net`.
    fn install(&self, net: &mut Network) -> Result<()> {
        for (i, table) in self.eta.iter().enumerate() {
            let var = crate::network::VarId::from_index(i);
            let card = net.card(var);
            let mut cpt = vec![0.0; table.len()];
            for (r, row) in table.chunks(card).enumerate() {
                let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                for (k, &l) in row.iter().enumerate() {
                    let e = (l - m).exp();
                    cpt[r * card + k] = e;
                    z += e;
                }
                for k in 0..card {
                    cpt[r * card + k] /= z;
                }
            }
            net.set_cpt_values(var, cpt)?;
        }
        Ok(())
    }

    fn axpy(&mut self, alpha: f64, dir: &[Vec<f64>]) {
        for (table, d) in self.eta.iter_mut().zip(dir) {
            for (x, g) in table.iter_mut().zip(d) {
                *x += alpha * g;
            }
        }
    }
}

fn dot(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p * q).sum::<f64>())
        .sum()
}

/// Objective and gradient at the current parameters.
///
/// The gradient of the MAP objective w.r.t. a row's logits is
/// `(EC + α) − Σ(EC + α) · softmax(η)`, where `EC` are the expected family
/// counts produced by one junction-tree E-step.
fn objective_and_gradient(
    net: &Network,
    cases: &[Case],
    prior: &DirichletPrior,
) -> Result<(f64, Vec<Vec<f64>>)> {
    let jt = JunctionTree::compile(net)?;
    let (stats, log_likelihood, _skipped) = expected_statistics(&jt, cases)?;
    let objective = log_likelihood + prior.log_density(net);
    let mut grad: Vec<Vec<f64>> = Vec::with_capacity(net.var_count());
    for var in net.variables() {
        let card = net.card(var);
        let counts = stats.counts(var);
        let pseudo = prior.pseudo(var);
        let theta = net.cpt(var);
        let mut g = vec![0.0; counts.len()];
        for r in 0..counts.len() / card {
            let lo = r * card;
            let hi = lo + card;
            let total: f64 = counts[lo..hi]
                .iter()
                .zip(&pseudo[lo..hi])
                .map(|(c, a)| c + a)
                .sum();
            for k in lo..hi {
                g[k] = (counts[k] + pseudo[k]) - total * theta[k];
            }
        }
        grad.push(g);
    }
    Ok((objective, grad))
}

/// Fits CPTs by conjugate-gradient ascent on the MAP objective.
///
/// # Errors
///
/// Returns [`Error::NoCases`] for an empty case list and propagates shape
/// errors. A line search that cannot make progress terminates the run with
/// `converged = true` at the best point found (the gradient is numerically
/// zero there).
pub fn fit_conjugate_gradient(
    net: &Network,
    cases: &[Case],
    prior: &DirichletPrior,
    config: &CgConfig,
) -> Result<CgOutcome> {
    if cases.is_empty() {
        return Err(Error::NoCases);
    }
    prior.validate(net)?;
    let mut current = net.clone();
    let mut params = Params::from_network(&current);
    params.install(&mut current)?;

    let (mut objective, mut grad) = objective_and_gradient(&current, cases, prior)?;
    let mut direction = grad.clone();
    let mut trace = vec![objective];
    let mut converged = false;
    let mut iterations = 0usize;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let g_dot_d = dot(&grad, &direction);
        // Restart on a non-ascent direction.
        let (g_dot_d, used_dir) = if g_dot_d <= 0.0 {
            direction = grad.clone();
            (dot(&grad, &grad), &direction)
        } else {
            (g_dot_d, &direction)
        };
        if g_dot_d.sqrt() < 1e-12 {
            converged = true;
            break;
        }

        // Backtracking Armijo line search.
        let mut step = config.initial_step;
        let mut accepted = None;
        for _ in 0..config.max_backtracks {
            let mut trial_params = params.clone();
            trial_params.axpy(step, used_dir);
            let mut trial_net = current.clone();
            trial_params.install(&mut trial_net)?;
            let (trial_obj, trial_grad) = objective_and_gradient(&trial_net, cases, prior)?;
            if trial_obj >= objective + config.armijo * step * g_dot_d {
                accepted = Some((trial_params, trial_net, trial_obj, trial_grad));
                break;
            }
            step *= config.backtrack;
        }
        let Some((new_params, new_net, new_obj, new_grad)) = accepted else {
            converged = true; // no ascent possible — stationary point
            break;
        };

        // Polak–Ribière coefficient.
        let gg = dot(&grad, &grad);
        let mut beta = if gg > 0.0 {
            (dot(&new_grad, &new_grad) - dot(&new_grad, &grad)) / gg
        } else {
            0.0
        };
        if !beta.is_finite() || beta < 0.0 {
            beta = 0.0;
        }
        for (d, g) in direction.iter_mut().zip(&new_grad) {
            for (dv, gv) in d.iter_mut().zip(g) {
                *dv = gv + beta * *dv;
            }
        }

        let improvement = new_obj - objective;
        params = new_params;
        current = new_net;
        grad = new_grad;
        objective = new_obj;
        trace.push(objective);

        if improvement.abs() <= config.tolerance * (1.0 + objective.abs()) {
            converged = true;
            break;
        }
    }

    Ok(CgOutcome {
        network: current,
        objective_trace: trace,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::forward_sample_cases;
    use crate::learn::{fit_em, EmConfig};
    use crate::network::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hidden_chain() -> Network {
        let mut b = NetworkBuilder::new();
        let hidden = b.variable("hidden", ["0", "1"]).unwrap();
        let obs1 = b.variable("obs1", ["0", "1"]).unwrap();
        let obs2 = b.variable("obs2", ["0", "1"]).unwrap();
        b.prior(hidden, [0.6, 0.4]).unwrap();
        b.cpt(obs1, [hidden], [[0.9, 0.1], [0.2, 0.8]]).unwrap();
        b.cpt(obs2, [hidden], [[0.8, 0.2], [0.3, 0.7]]).unwrap();
        b.build().unwrap()
    }

    fn observed_cases(net: &Network, n: usize, seed: u64) -> Vec<Case> {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = forward_sample_cases(net, n, &mut rng);
        let hidden = net.var("hidden").unwrap();
        samples
            .iter()
            .map(|s| {
                Case::from_pairs(
                    net.variables()
                        .filter(|v| *v != hidden)
                        .map(|v| (v, s[v.index()])),
                )
            })
            .collect()
    }

    #[test]
    fn cg_objective_is_nondecreasing() {
        let net = hidden_chain();
        let cases = observed_cases(&net, 200, 9);
        let out = fit_conjugate_gradient(
            &net,
            &cases,
            &DirichletPrior::uniform(&net, 0.5),
            &CgConfig {
                max_iterations: 25,
                ..CgConfig::default()
            },
        )
        .unwrap();
        for pair in out.objective_trace.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "objective fell: {pair:?}");
        }
        assert!(out.iterations >= 1);
    }

    #[test]
    fn cg_and_em_reach_similar_likelihood() {
        let net = hidden_chain();
        let cases = observed_cases(&net, 300, 17);
        let prior = DirichletPrior::uniform(&net, 0.5);
        let em = fit_em(
            &net,
            &cases,
            &prior,
            &EmConfig {
                max_iterations: 200,
                tolerance: 1e-10,
            },
        )
        .unwrap();
        let cg = fit_conjugate_gradient(
            &net,
            &cases,
            &prior,
            &CgConfig {
                max_iterations: 200,
                tolerance: 1e-10,
                ..CgConfig::default()
            },
        )
        .unwrap();
        let jt_em = JunctionTree::compile(&em.network).unwrap();
        let jt_cg = JunctionTree::compile(&cg.network).unwrap();
        let (_, ll_em, _) = expected_statistics(&jt_em, &cases).unwrap();
        let (_, ll_cg, _) = expected_statistics(&jt_cg, &cases).unwrap();
        // Both optimise the same bowl; they should agree within a hair.
        assert!(
            (ll_em - ll_cg).abs() < 0.05 * (1.0 + ll_em.abs()) * 0.05 + 2.0,
            "EM ll {ll_em} vs CG ll {ll_cg}"
        );
    }

    #[test]
    fn cg_rejects_empty_cases() {
        let net = hidden_chain();
        assert!(matches!(
            fit_conjugate_gradient(&net, &[], &DirichletPrior::zero(&net), &CgConfig::default()),
            Err(Error::NoCases)
        ));
    }

    #[test]
    fn cg_fitted_cpts_are_valid() {
        let net = hidden_chain();
        let cases = observed_cases(&net, 100, 3);
        let out = fit_conjugate_gradient(
            &net,
            &cases,
            &DirichletPrior::uniform(&net, 1.0),
            &CgConfig {
                max_iterations: 10,
                ..CgConfig::default()
            },
        )
        .unwrap();
        for v in out.network.variables() {
            let card = out.network.card(v);
            for row in out.network.cpt(v).chunks(card) {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6);
                assert!(row.iter().all(|&p| p >= 0.0));
            }
        }
    }
}
