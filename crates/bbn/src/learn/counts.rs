//! Cases, Dirichlet priors and sufficient statistics for CPT estimation.

use crate::error::{Error, Result};
use crate::evidence::Evidence;
use crate::factor::Factor;
use crate::network::{Network, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One learning case: a (possibly partial) assignment of states to network
/// variables, with an importance weight.
///
/// In the paper's flow a case is the state-binned outcome of one device
/// under one ATE test configuration: controllable and observable blocks are
/// assigned, the internal blocks stay hidden.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Case {
    assignment: BTreeMap<VarId, usize>,
    weight: f64,
}

impl Default for Case {
    fn default() -> Self {
        Case {
            assignment: BTreeMap::new(),
            weight: 1.0,
        }
    }
}

impl Case {
    /// An empty case with unit weight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a case from `(variable, state)` pairs with unit weight.
    pub fn from_pairs<I: IntoIterator<Item = (VarId, usize)>>(pairs: I) -> Self {
        Case {
            assignment: pairs.into_iter().collect(),
            weight: 1.0,
        }
    }

    /// Builds a complete case from a full assignment vector.
    pub fn from_complete(states: &[usize]) -> Self {
        Case {
            assignment: states
                .iter()
                .enumerate()
                .map(|(i, &s)| (VarId::from_index(i), s))
                .collect(),
            weight: 1.0,
        }
    }

    /// Records an observation, replacing any previous state for `var`.
    pub fn observe(&mut self, var: VarId, state: usize) -> &mut Self {
        self.assignment.insert(var, state);
        self
    }

    /// Sets the case weight (e.g. for deduplicated repeated cases).
    pub fn set_weight(&mut self, weight: f64) -> &mut Self {
        self.weight = weight;
        self
    }

    /// The case weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The observed state of `var`, if recorded.
    pub fn state_of(&self, var: VarId) -> Option<usize> {
        self.assignment.get(&var).copied()
    }

    /// Number of observed variables.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Iterates `(variable, state)` observations.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, usize)> + '_ {
        self.assignment.iter().map(|(v, s)| (*v, *s))
    }

    /// Converts to hard [`Evidence`] for inference-based learning.
    pub fn to_evidence(&self) -> Evidence {
        self.iter().collect()
    }

    /// `true` when every network variable is observed.
    pub fn is_complete(&self, net: &Network) -> bool {
        net.variables().all(|v| self.assignment.contains_key(&v))
    }
}

impl FromIterator<(VarId, usize)> for Case {
    fn from_iter<I: IntoIterator<Item = (VarId, usize)>>(iter: I) -> Self {
        Case::from_pairs(iter)
    }
}

/// Dirichlet pseudo-counts, one table per variable with the CPT's shape.
///
/// The paper seeds CPTs from a product designer's estimate and fine-tunes
/// them on ATE cases; [`DirichletPrior::from_network`] encodes exactly that:
/// the expert's table scaled by an *equivalent sample size*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirichletPrior {
    pseudo: Vec<Vec<f64>>,
}

impl DirichletPrior {
    /// No prior at all (maximum-likelihood estimation).
    pub fn zero(net: &Network) -> Self {
        DirichletPrior {
            pseudo: net
                .variables()
                .map(|v| vec![0.0; net.cpt(v).len()])
                .collect(),
        }
    }

    /// Symmetric prior: `alpha` pseudo-counts in every cell (Laplace for
    /// `alpha = 1`).
    pub fn uniform(net: &Network, alpha: f64) -> Self {
        DirichletPrior {
            pseudo: net
                .variables()
                .map(|v| vec![alpha; net.cpt(v).len()])
                .collect(),
        }
    }

    /// Expert-knowledge prior: every CPT row of `net` scaled by
    /// `equivalent_sample_size` (each row then carries that many
    /// pseudo-observations distributed as the expert believes).
    pub fn from_network(net: &Network, equivalent_sample_size: f64) -> Self {
        DirichletPrior {
            pseudo: net
                .variables()
                .map(|v| {
                    net.cpt(v)
                        .iter()
                        .map(|p| p * equivalent_sample_size)
                        .collect()
                })
                .collect(),
        }
    }

    /// The pseudo-count table for `var` (same layout as the CPT).
    pub fn pseudo(&self, var: VarId) -> &[f64] {
        &self.pseudo[var.index()]
    }

    /// Checks the prior's shape against a network.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on any size difference.
    pub fn validate(&self, net: &Network) -> Result<()> {
        if self.pseudo.len() != net.var_count() {
            return Err(Error::ShapeMismatch {
                expected: net.var_count(),
                actual: self.pseudo.len(),
            });
        }
        for v in net.variables() {
            if self.pseudo[v.index()].len() != net.cpt(v).len() {
                return Err(Error::ShapeMismatch {
                    expected: net.cpt(v).len(),
                    actual: self.pseudo[v.index()].len(),
                });
            }
        }
        Ok(())
    }

    /// Log prior density term `Σ pseudo · ln θ` (up to the normalising
    /// constant), used as the MAP objective's penalty.
    pub fn log_density(&self, net: &Network) -> f64 {
        let mut acc = 0.0;
        for v in net.variables() {
            for (a, t) in self.pseudo[v.index()].iter().zip(net.cpt(v)) {
                if *a > 0.0 {
                    acc += a * t.max(1e-300).ln();
                }
            }
        }
        acc
    }
}

/// Accumulated (possibly fractional) co-occurrence counts, one table per
/// variable with the CPT's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct SuffStats {
    counts: Vec<Vec<f64>>,
    cards: Vec<usize>,
}

impl SuffStats {
    /// Zeroed statistics shaped like `net`'s CPTs.
    pub fn new(net: &Network) -> Self {
        SuffStats {
            counts: net
                .variables()
                .map(|v| vec![0.0; net.cpt(v).len()])
                .collect(),
            cards: net.variables().map(|v| net.card(v)).collect(),
        }
    }

    /// Adds one complete assignment with the given weight.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on a wrong-length assignment and
    /// [`Error::InvalidEvidence`] on an out-of-range state or a non-finite
    /// or negative weight (either would corrupt the count tables and
    /// surface later as NaN CPT rows).
    pub fn add_complete(&mut self, net: &Network, assignment: &[usize], weight: f64) -> Result<()> {
        if assignment.len() != net.var_count() {
            return Err(Error::ShapeMismatch {
                expected: net.var_count(),
                actual: assignment.len(),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(Error::InvalidEvidence {
                variable: String::new(),
                reason: format!("case weight {weight} must be finite and >= 0"),
            });
        }
        for var in net.variables() {
            if assignment[var.index()] >= net.card(var) {
                return Err(Error::InvalidEvidence {
                    variable: net.name(var).to_string(),
                    reason: format!(
                        "state {} out of range for cardinality {}",
                        assignment[var.index()],
                        net.card(var)
                    ),
                });
            }
        }
        for var in net.variables() {
            let mut config = 0usize;
            for p in net.parents(var) {
                config = config * net.card(*p) + assignment[p.index()];
            }
            let card = self.cards[var.index()];
            self.counts[var.index()][config * card + assignment[var.index()]] += weight;
        }
        Ok(())
    }

    /// Adds an expected-count contribution: a normalised family marginal
    /// `P(parents, var | e)` (scope `parents ++ [var]`, the layout produced
    /// by [`crate::CalibratedTree::family_marginal`]) scaled by `weight`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when the factor does not match the
    /// CPT shape of `var`.
    pub fn add_family_marginal(
        &mut self,
        var: VarId,
        family_marginal: &Factor,
        weight: f64,
    ) -> Result<()> {
        let table = &mut self.counts[var.index()];
        if family_marginal.len() != table.len() {
            return Err(Error::ShapeMismatch {
                expected: table.len(),
                actual: family_marginal.len(),
            });
        }
        for (slot, p) in table.iter_mut().zip(family_marginal.values()) {
            *slot += weight * p;
        }
        Ok(())
    }

    /// Merges another statistics table (e.g. from a parallel worker).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] on differing shapes.
    pub fn merge(&mut self, other: &SuffStats) -> Result<()> {
        if self.counts.len() != other.counts.len() {
            return Err(Error::ShapeMismatch {
                expected: self.counts.len(),
                actual: other.counts.len(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            if a.len() != b.len() {
                return Err(Error::ShapeMismatch {
                    expected: a.len(),
                    actual: b.len(),
                });
            }
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        Ok(())
    }

    /// The raw count table for `var`.
    pub fn counts(&self, var: VarId) -> &[f64] {
        &self.counts[var.index()]
    }

    /// Turns counts + prior into normalised CPTs (posterior-mean estimate).
    /// Rows with zero total mass fall back to the uniform distribution.
    pub fn to_cpts(&self, prior: &DirichletPrior) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, table)| {
                let card = self.cards[i];
                let pseudo = &prior.pseudo[i];
                let mut out = vec![0.0; table.len()];
                for r in 0..table.len() / card {
                    let lo = r * card;
                    let hi = lo + card;
                    let total: f64 = table[lo..hi]
                        .iter()
                        .zip(&pseudo[lo..hi])
                        .map(|(c, a)| c + a)
                        .sum();
                    if total > 0.0 {
                        for (k, slot) in out[lo..hi].iter_mut().enumerate() {
                            *slot = (table[lo + k] + pseudo[lo + k]) / total;
                        }
                    } else {
                        for slot in out[lo..hi].iter_mut() {
                            *slot = 1.0 / card as f64;
                        }
                    }
                }
                out
            })
            .collect()
    }
}

/// Fits CPTs from fully observed assignments (posterior mean under the
/// prior), leaving the structure untouched.
///
/// # Errors
///
/// Returns [`Error::NoCases`] when `assignments` is empty, plus shape and
/// CPT-validation errors.
pub fn fit_complete(
    net: &Network,
    assignments: &[Vec<usize>],
    prior: &DirichletPrior,
) -> Result<Network> {
    if assignments.is_empty() {
        return Err(Error::NoCases);
    }
    prior.validate(net)?;
    let mut stats = SuffStats::new(net);
    for a in assignments {
        stats.add_complete(net, a, 1.0)?;
    }
    let mut fitted = net.clone();
    for (var, cpt) in net.variables().zip(stats.to_cpts(prior)) {
        fitted.set_cpt_values(var, cpt)?;
    }
    Ok(fitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn two_node() -> Network {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [0.5, 0.5]).unwrap();
        b.cpt(c, [a], [[0.5, 0.5], [0.5, 0.5]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn case_builders() {
        let mut c = Case::new();
        assert!(c.is_empty());
        c.observe(VarId::from_index(0), 1).set_weight(2.5);
        assert_eq!(c.weight(), 2.5);
        assert_eq!(c.state_of(VarId::from_index(0)), Some(1));
        assert_eq!(c.len(), 1);

        let full = Case::from_complete(&[1, 0]);
        let net = two_node();
        assert!(full.is_complete(&net));
        let partial: Case = [(VarId::from_index(0), 1)].into_iter().collect();
        assert!(!partial.is_complete(&net));
        let ev = partial.to_evidence();
        assert_eq!(ev.state_of(VarId::from_index(0)), Some(1));
    }

    #[test]
    fn priors_shapes_and_values() {
        let net = two_node();
        let a = net.var("a").unwrap();
        let zero = DirichletPrior::zero(&net);
        assert!(zero.pseudo(a).iter().all(|&x| x == 0.0));
        let unif = DirichletPrior::uniform(&net, 2.0);
        assert!(unif.pseudo(a).iter().all(|&x| x == 2.0));
        let expert = DirichletPrior::from_network(&net, 10.0);
        assert_eq!(expert.pseudo(a), &[5.0, 5.0]);
        assert!(expert.validate(&net).is_ok());

        let other = {
            let mut b = NetworkBuilder::new();
            let x = b.variable("x", ["0", "1", "2"]).unwrap();
            b.prior(x, [0.2, 0.3, 0.5]).unwrap();
            b.build().unwrap()
        };
        assert!(expert.validate(&other).is_err());
        assert!(expert.log_density(&net).is_finite());
    }

    #[test]
    fn complete_counting_maximum_likelihood() {
        let net = two_node();
        let a = net.var("a").unwrap();
        let c = net.var("c").unwrap();
        // 3 of 4 cases have a=1; given a=1, c=1 twice of three.
        let cases = vec![vec![1, 1], vec![1, 1], vec![1, 0], vec![0, 0]];
        let fitted = fit_complete(&net, &cases, &DirichletPrior::zero(&net)).unwrap();
        assert!((fitted.cpt(a)[1] - 0.75).abs() < 1e-12);
        let row_a1 = fitted.cpt_row(c, &[1]).unwrap();
        assert!((row_a1[1] - 2.0 / 3.0).abs() < 1e-12);
        // a=0 row observed once with c=0.
        let row_a0 = fitted.cpt_row(c, &[0]).unwrap();
        assert!((row_a0[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laplace_prior_smooths() {
        let net = two_node();
        let a = net.var("a").unwrap();
        let cases = vec![vec![1, 1]];
        let fitted = fit_complete(&net, &cases, &DirichletPrior::uniform(&net, 1.0)).unwrap();
        // (1 + 1) / (1 + 2) for a=1.
        assert!((fitted.cpt(a)[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_rows_fall_back_to_uniform() {
        let net = two_node();
        let c = net.var("c").unwrap();
        let cases = vec![vec![1, 1]]; // a=0 row of c never observed
        let fitted = fit_complete(&net, &cases, &DirichletPrior::zero(&net)).unwrap();
        let row = fitted.cpt_row(c, &[0]).unwrap();
        assert_eq!(row, &[0.5, 0.5]);
    }

    #[test]
    fn no_cases_is_an_error() {
        let net = two_node();
        assert!(matches!(
            fit_complete(&net, &[], &DirichletPrior::zero(&net)),
            Err(Error::NoCases)
        ));
    }

    #[test]
    fn family_marginal_accumulation() {
        let net = two_node();
        let c = net.var("c").unwrap();
        let mut stats = SuffStats::new(&net);
        let fam = net.family_factor(c); // scope [a, c], values = cpt
        stats.add_family_marginal(c, &fam, 2.0).unwrap();
        assert_eq!(stats.counts(c), &[1.0, 1.0, 1.0, 1.0]);
        // Shape mismatch is rejected.
        let wrong = Factor::unit();
        assert!(stats.add_family_marginal(c, &wrong, 1.0).is_err());
    }

    #[test]
    fn single_outcome_datalog_never_yields_nan() {
        // Every row reports the same outcome; unseen rows must fall back to
        // the uniform distribution (zero prior) or the prior mean, and no
        // cell may be NaN.
        let net = two_node();
        let cases = vec![vec![0, 0]; 8];
        for prior in [
            DirichletPrior::zero(&net),
            DirichletPrior::uniform(&net, 0.5),
            DirichletPrior::from_network(&net, 10.0),
        ] {
            let fitted = fit_complete(&net, &cases, &prior).unwrap();
            for v in fitted.variables() {
                let card = fitted.card(v);
                for row in fitted.cpt(v).chunks(card) {
                    assert!(row.iter().all(|p| p.is_finite()), "NaN row {row:?}");
                    let total: f64 = row.iter().sum();
                    assert!((total - 1.0).abs() < 1e-12, "row sums to {total}");
                }
            }
        }
    }

    #[test]
    fn out_of_range_state_is_rejected_not_corrupted() {
        let net = two_node();
        let mut stats = SuffStats::new(&net);
        let err = stats.add_complete(&net, &[2, 0], 1.0).unwrap_err();
        assert!(matches!(err, Error::InvalidEvidence { .. }), "got {err:?}");
        let err = stats.add_complete(&net, &[0, 0], f64::NAN).unwrap_err();
        assert!(matches!(err, Error::InvalidEvidence { .. }), "got {err:?}");
    }

    #[test]
    fn merge_adds_counts() {
        let net = two_node();
        let a = net.var("a").unwrap();
        let mut s1 = SuffStats::new(&net);
        let mut s2 = SuffStats::new(&net);
        s1.add_complete(&net, &[1, 0], 1.0).unwrap();
        s2.add_complete(&net, &[1, 1], 3.0).unwrap();
        s1.merge(&s2).unwrap();
        assert_eq!(s1.counts(a), &[0.0, 4.0]);
    }
}
