//! Discrete factors (potentials) over sets of network variables.
//!
//! A [`Factor`] is a non-negative table indexed by the joint states of its
//! *scope*. Factors are the workhorse of every exact-inference routine in
//! this crate: conditional probability tables are factors, variable
//! elimination multiplies and sums them, and junction-tree propagation
//! divides them.
//!
//! # Memory layout
//!
//! Values are stored row-major with the **last** scope variable varying
//! fastest: the cell for assignment `(s_0, .., s_{k-1})` over cardinalities
//! `(c_0, .., c_{k-1})` lives at index `((s_0 * c_1 + s_1) * c_2 + ..) +
//! s_{k-1}`, so axis `i` has stride `c_{i+1} * .. * c_{k-1}`. A CPT flat
//! table over `parents ++ [child]` (last parent fastest, child distribution
//! innermost) is exactly this layout and can be used as factor storage
//! without copying.
//!
//! # Allocation discipline
//!
//! The classic methods ([`Factor::product`], [`Factor::divide`],
//! [`Factor::marginalize_to`], ..) allocate their result; they are thin
//! wrappers over shared stride-map kernels ([`self::strides`]). The hot
//! paths use the in-place layer in [`self::ops`] instead —
//! [`Factor::product_into`], [`Factor::mul_assign`], [`Factor::div_assign`],
//! [`Factor::marginalize_into`] and the fused [`Factor::product_sum_out`] /
//! [`Factor::product_all_sum_out`] — which write into caller-provided
//! buffers and never touch the heap. See `ops` for the buffer-reuse
//! contract.

mod ops;
pub(crate) mod strides;

use crate::error::{Error, Result};
use crate::network::VarId;
use serde::{Deserialize, Serialize};

/// A non-negative real-valued table over the joint states of a variable set.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::{Factor, VarId};
///
/// let a = VarId::from_index(0);
/// let b = VarId::from_index(1);
/// // P(B | A) for binary A, ternary B, flattened with B fastest.
/// let f = Factor::new(vec![a, b], vec![2, 3], vec![0.2, 0.3, 0.5, 0.6, 0.3, 0.1])?;
/// let marginal = f.sum_out(b)?;
/// assert_eq!(marginal.scope(), &[a]);
/// assert!((marginal.values()[0] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    scope: Vec<VarId>,
    cards: Vec<usize>,
    values: Vec<f64>,
}

/// Result of maximising a variable out of a factor; keeps the argmax table
/// needed for most-probable-explanation traceback.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxOut {
    /// The reduced factor over the remaining scope.
    pub factor: Factor,
    /// For every cell of `factor`, the state of the eliminated variable that
    /// achieved the maximum.
    pub argmax: Vec<usize>,
}

impl Factor {
    /// Creates a factor over `scope` with per-variable cardinalities `cards`
    /// and a flat `values` table (last scope variable fastest).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCpt`] naming the offending variable for a
    /// zero cardinality, [`Error::ShapeMismatch`] if `values.len()` is not
    /// the product of the cardinalities, [`Error::DuplicateInScope`] if a
    /// variable repeats, and [`Error::InvalidCpt`] if any value is negative
    /// or not finite.
    pub fn new(scope: Vec<VarId>, cards: Vec<usize>, values: Vec<f64>) -> Result<Self> {
        if scope.len() != cards.len() {
            return Err(Error::ShapeMismatch {
                expected: scope.len(),
                actual: cards.len(),
            });
        }
        for (i, v) in scope.iter().enumerate() {
            if scope[i + 1..].contains(v) {
                return Err(Error::DuplicateInScope(format!("{v:?}")));
            }
        }
        // Cardinalities are validated before the shape: a zero cardinality
        // would make the expected cell count 0, letting an empty `values`
        // pass the shape check vacuously and producing a misleading
        // `ShapeMismatch` afterwards.
        for (pos, &c) in cards.iter().enumerate() {
            if c == 0 {
                return Err(Error::InvalidCpt {
                    variable: format!("{}", scope[pos]),
                    reason: "zero cardinality in factor scope".into(),
                });
            }
        }
        let expected: usize = cards.iter().product::<usize>().max(1);
        if values.len() != expected {
            return Err(Error::ShapeMismatch {
                expected,
                actual: values.len(),
            });
        }
        if let Some(bad) = values.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(Error::InvalidCpt {
                variable: "factor".into(),
                reason: format!("non-finite or negative value {bad}"),
            });
        }
        Ok(Factor {
            scope,
            cards,
            values,
        })
    }

    /// Crate-internal constructor for tables whose invariants are upheld by
    /// construction (e.g. calibrated clique beliefs moved out of a
    /// propagation workspace); skips re-validation.
    pub(crate) fn from_parts_unchecked(
        scope: Vec<VarId>,
        cards: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(values.len(), cards.iter().product::<usize>().max(1));
        Factor {
            scope,
            cards,
            values,
        }
    }

    /// The multiplicative identity: an empty-scope factor holding `1.0`.
    pub fn unit() -> Self {
        Factor {
            scope: Vec::new(),
            cards: Vec::new(),
            values: vec![1.0],
        }
    }

    /// A scalar factor holding `value`.
    pub fn scalar(value: f64) -> Self {
        Factor {
            scope: Vec::new(),
            cards: Vec::new(),
            values: vec![value],
        }
    }

    /// The ordered variable scope.
    pub fn scope(&self) -> &[VarId] {
        &self.scope
    }

    /// Cardinalities aligned with [`Factor::scope`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The flat value table (last scope variable fastest).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the flat value table.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of cells in the table.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the factor is a scalar (empty scope).
    pub fn is_empty(&self) -> bool {
        self.scope.is_empty()
    }

    /// Position of `var` within the scope, if present.
    pub fn position(&self, var: VarId) -> Option<usize> {
        self.scope.iter().position(|&v| v == var)
    }

    /// `true` when `var` participates in this factor.
    pub fn contains(&self, var: VarId) -> bool {
        self.position(var).is_some()
    }

    /// Row-major stride of the scope variable at `pos`.
    fn stride_at(&self, pos: usize) -> usize {
        strides::axis_stride(&self.cards, pos)
    }

    /// Row-major stride of `var`, or `None` if not in scope.
    pub fn stride_of(&self, var: VarId) -> Option<usize> {
        self.position(var).map(|p| self.stride_at(p))
    }

    /// Linear index of a full assignment (one state per scope variable).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `assignment` does not match the
    /// scope arity, or [`Error::InvalidEvidence`] on an out-of-range state.
    pub fn index_of(&self, assignment: &[usize]) -> Result<usize> {
        if assignment.len() != self.scope.len() {
            return Err(Error::ShapeMismatch {
                expected: self.scope.len(),
                actual: assignment.len(),
            });
        }
        let mut idx = 0usize;
        for (pos, &state) in assignment.iter().enumerate() {
            if state >= self.cards[pos] {
                return Err(Error::InvalidEvidence {
                    variable: format!("{:?}", self.scope[pos]),
                    reason: format!("state {state} out of range {}", self.cards[pos]),
                });
            }
            idx = idx * self.cards[pos] + state;
        }
        Ok(idx)
    }

    /// The assignment (one state per scope variable) at linear index `idx`.
    pub fn assignment_of(&self, mut idx: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.scope.len()];
        for pos in (0..self.scope.len()).rev() {
            out[pos] = idx % self.cards[pos];
            idx /= self.cards[pos];
        }
        out
    }

    /// Pointwise product; the result scope is this factor's scope followed by
    /// the other factor's new variables. Allocates the result; the in-place
    /// variant is [`Factor::product_into`].
    pub fn product(&self, other: &Factor) -> Factor {
        let (scope, cards) = self.union_shape(other);
        let mut out =
            Factor::with_shape(scope, cards).expect("union of two valid factors is a valid shape");
        self.product_into(other, &mut out)
            .expect("freshly shaped buffer always fits");
        out
    }

    /// Pointwise division by a factor whose scope is a subset of this one.
    /// Division by zero yields zero (the junction-tree convention: `0/0 = 0`).
    /// Allocates the result; the in-place variant is [`Factor::div_assign`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if `other` mentions a variable absent
    /// from this factor.
    pub fn divide(&self, other: &Factor) -> Result<Factor> {
        for v in other.scope() {
            if !self.contains(*v) {
                return Err(Error::NotInScope(format!("{v:?}")));
            }
        }
        let mut out = self.clone();
        out.div_assign(other)?;
        Ok(out)
    }

    /// Sums `var` out of the factor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if `var` is not in the scope.
    pub fn sum_out(&self, var: VarId) -> Result<Factor> {
        let pos = self
            .position(var)
            .ok_or_else(|| Error::NotInScope(format!("{var:?}")))?;
        let card = self.cards[pos];
        let suffix = self.stride_at(pos);
        let prefix_count = self.values.len() / (card * suffix);

        let mut scope = self.scope.clone();
        let mut cards = self.cards.clone();
        scope.remove(pos);
        cards.remove(pos);
        let mut values = vec![0.0; prefix_count * suffix];
        for p in 0..prefix_count {
            let in_base = p * card * suffix;
            let out_base = p * suffix;
            for s in 0..suffix {
                let mut acc = 0.0;
                for k in 0..card {
                    acc += self.values[in_base + k * suffix + s];
                }
                values[out_base + s] = acc;
            }
        }
        Ok(Factor {
            scope,
            cards,
            values,
        })
    }

    /// Maximises `var` out of the factor, recording per-cell argmax states.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if `var` is not in the scope.
    pub fn max_out(&self, var: VarId) -> Result<MaxOut> {
        let pos = self
            .position(var)
            .ok_or_else(|| Error::NotInScope(format!("{var:?}")))?;
        let card = self.cards[pos];
        let suffix = self.stride_at(pos);
        let prefix_count = self.values.len() / (card * suffix);

        let mut scope = self.scope.clone();
        let mut cards = self.cards.clone();
        scope.remove(pos);
        cards.remove(pos);
        let mut values = vec![0.0; prefix_count * suffix];
        let mut argmax = vec![0usize; prefix_count * suffix];
        for p in 0..prefix_count {
            let in_base = p * card * suffix;
            let out_base = p * suffix;
            for s in 0..suffix {
                let mut best = f64::NEG_INFINITY;
                let mut best_k = 0usize;
                for k in 0..card {
                    let v = self.values[in_base + k * suffix + s];
                    if v > best {
                        best = v;
                        best_k = k;
                    }
                }
                values[out_base + s] = best;
                argmax[out_base + s] = best_k;
            }
        }
        Ok(MaxOut {
            factor: Factor {
                scope,
                cards,
                values,
            },
            argmax,
        })
    }

    /// Restricts the factor to `var = state` and drops `var` from the scope.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if absent, or [`Error::InvalidEvidence`]
    /// for an out-of-range state.
    pub fn condition(&self, var: VarId, state: usize) -> Result<Factor> {
        let pos = self
            .position(var)
            .ok_or_else(|| Error::NotInScope(format!("{var:?}")))?;
        let card = self.cards[pos];
        if state >= card {
            return Err(Error::InvalidEvidence {
                variable: format!("{var:?}"),
                reason: format!("state {state} out of range {card}"),
            });
        }
        let suffix = self.stride_at(pos);
        let prefix_count = self.values.len() / (card * suffix);
        let mut scope = self.scope.clone();
        let mut cards = self.cards.clone();
        scope.remove(pos);
        cards.remove(pos);
        let mut values = vec![0.0; prefix_count * suffix];
        for p in 0..prefix_count {
            let in_base = p * card * suffix + state * suffix;
            values[p * suffix..(p + 1) * suffix]
                .copy_from_slice(&self.values[in_base..in_base + suffix]);
        }
        Ok(Factor {
            scope,
            cards,
            values,
        })
    }

    /// Multiplies a per-state likelihood vector into the axis of `var`
    /// (soft/virtual evidence in the sense of Pearl).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] or [`Error::ShapeMismatch`] on a
    /// wrong-length likelihood vector.
    pub fn scale_axis(&mut self, var: VarId, weights: &[f64]) -> Result<()> {
        let pos = self
            .position(var)
            .ok_or_else(|| Error::NotInScope(format!("{var:?}")))?;
        let card = self.cards[pos];
        if weights.len() != card {
            return Err(Error::ShapeMismatch {
                expected: card,
                actual: weights.len(),
            });
        }
        let suffix = self.stride_at(pos);
        strides::scale_axis_kernel(&mut self.values, suffix, card, weights);
        Ok(())
    }

    /// Sums out every scope variable not in `keep` in a single pass; the
    /// result scope is ordered exactly as `keep` (any permutation works).
    /// Allocates the result; the in-place variant is
    /// [`Factor::marginalize_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if `keep` mentions a variable absent
    /// from the factor, [`Error::DuplicateInScope`] on a repeated variable.
    pub fn marginalize_to(&self, keep: &[VarId]) -> Result<Factor> {
        for (i, v) in keep.iter().enumerate() {
            if !self.contains(*v) {
                return Err(Error::NotInScope(format!("{v:?}")));
            }
            if keep[i + 1..].contains(v) {
                return Err(Error::DuplicateInScope(format!("{v:?}")));
            }
        }
        let cards: Vec<usize> = keep
            .iter()
            .map(|&v| self.cards[self.position(v).expect("checked above")])
            .collect();
        let mut out = Factor::with_shape(keep.to_vec(), cards)?;
        self.marginalize_into(keep, &mut out)?;
        Ok(out)
    }

    /// Returns a copy whose scope is permuted to `new_scope` (which must be a
    /// permutation of the current scope).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] or [`Error::NotInScope`] when
    /// `new_scope` is not a permutation of the scope.
    pub fn reorder(&self, new_scope: &[VarId]) -> Result<Factor> {
        if new_scope.len() != self.scope.len() {
            return Err(Error::ShapeMismatch {
                expected: self.scope.len(),
                actual: new_scope.len(),
            });
        }
        if new_scope == self.scope {
            return Ok(self.clone());
        }
        let positions: Vec<usize> = new_scope
            .iter()
            .map(|&v| {
                self.position(v)
                    .ok_or_else(|| Error::NotInScope(format!("{v:?}")))
            })
            .collect::<Result<_>>()?;
        let cards: Vec<usize> = positions.iter().map(|&p| self.cards[p]).collect();
        let strides: Vec<usize> = positions.iter().map(|&p| self.stride_at(p)).collect();
        let total = self.values.len();
        let mut values = vec![0.0; total];
        let mut assign = vec![0usize; cards.len()];
        let mut src = 0usize;
        for slot in values.iter_mut() {
            *slot = self.values[src];
            for pos in (0..cards.len()).rev() {
                assign[pos] += 1;
                src += strides[pos];
                if assign[pos] == cards[pos] {
                    assign[pos] = 0;
                    src -= strides[pos] * cards[pos];
                } else {
                    break;
                }
            }
        }
        Ok(Factor {
            scope: new_scope.to_vec(),
            cards,
            values,
        })
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Normalises in place so the cells sum to one; returns the former total.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] when the factor sums to zero.
    pub fn normalize(&mut self) -> Result<f64> {
        let z = self.total();
        if z <= 0.0 || !z.is_finite() {
            return Err(Error::ImpossibleEvidence);
        }
        for v in &mut self.values {
            *v /= z;
        }
        Ok(z)
    }

    /// Normalised copy; see [`Factor::normalize`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::ImpossibleEvidence`] when the factor sums to zero.
    pub fn normalized(&self) -> Result<Factor> {
        let mut f = self.clone();
        f.normalize()?;
        Ok(f)
    }

    /// Consumes the factor, returning its flat value table.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl Default for Factor {
    fn default() -> Self {
        Factor::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    fn fab() -> Factor {
        // f(A,B), A binary, B ternary, B fastest.
        Factor::new(
            vec![v(0), v(1)],
            vec![2, 3],
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        )
        .unwrap()
    }

    #[test]
    fn new_rejects_bad_shapes() {
        assert!(Factor::new(vec![v(0)], vec![2], vec![0.5]).is_err());
        assert!(Factor::new(vec![v(0)], vec![2, 3], vec![0.5, 0.5]).is_err());
        assert!(Factor::new(vec![v(0), v(0)], vec![2, 2], vec![0.0; 4]).is_err());
        assert!(Factor::new(vec![v(0)], vec![2], vec![-0.5, 1.5]).is_err());
        assert!(Factor::new(vec![v(0)], vec![2], vec![f64::NAN, 1.0]).is_err());
        assert!(Factor::new(vec![v(0)], vec![0], vec![]).is_err());
    }

    #[test]
    fn unit_is_multiplicative_identity() {
        let f = fab();
        let g = f.product(&Factor::unit());
        assert_eq!(f, g);
        let h = Factor::unit().product(&f);
        assert_eq!(h.marginalize_to(f.scope()).unwrap(), f);
    }

    #[test]
    fn index_assignment_roundtrip() {
        let f = fab();
        for idx in 0..f.len() {
            let a = f.assignment_of(idx);
            assert_eq!(f.index_of(&a).unwrap(), idx);
        }
        assert!(f.index_of(&[0]).is_err());
        assert!(f.index_of(&[0, 3]).is_err());
    }

    #[test]
    fn product_matches_manual() {
        // f(A) * g(B) = outer product.
        let f = Factor::new(vec![v(0)], vec![2], vec![0.3, 0.7]).unwrap();
        let g = Factor::new(vec![v(1)], vec![2], vec![0.9, 0.1]).unwrap();
        let p = f.product(&g);
        assert_eq!(p.scope(), &[v(0), v(1)]);
        let expect = [0.27, 0.03, 0.63, 0.07];
        for (a, b) in p.values().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn product_shared_variable() {
        // f(A,B) * g(B) scales along B.
        let f = fab();
        let g = Factor::new(vec![v(1)], vec![3], vec![2.0, 0.0, 1.0]).unwrap();
        let p = f.product(&g);
        assert_eq!(p.scope(), &[v(0), v(1)]);
        let expect = [0.2, 0.0, 0.3, 0.8, 0.0, 0.6];
        for (a, b) in p.values().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn product_is_commutative_up_to_reorder() {
        let f = fab();
        let g = Factor::new(
            vec![v(1), v(2)],
            vec![3, 2],
            vec![0.5, 0.5, 0.1, 0.9, 0.3, 0.7],
        )
        .unwrap();
        let fg = f.product(&g);
        let gf = g.product(&f).reorder(fg.scope()).unwrap();
        for (a, b) in fg.values().iter().zip(gf.values().iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sum_out_first_and_last() {
        let f = fab();
        let no_b = f.sum_out(v(1)).unwrap();
        assert_eq!(no_b.scope(), &[v(0)]);
        assert!((no_b.values()[0] - 0.6).abs() < 1e-12);
        assert!((no_b.values()[1] - 1.5).abs() < 1e-12);

        let no_a = f.sum_out(v(0)).unwrap();
        assert_eq!(no_a.scope(), &[v(1)]);
        let expect = [0.5, 0.7, 0.9];
        for (a, b) in no_a.values().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(f.sum_out(v(9)).is_err());
    }

    #[test]
    fn condition_slices() {
        let f = fab();
        let a1 = f.condition(v(0), 1).unwrap();
        assert_eq!(a1.scope(), &[v(1)]);
        assert_eq!(a1.values(), &[0.4, 0.5, 0.6]);
        let b2 = f.condition(v(1), 2).unwrap();
        assert_eq!(b2.scope(), &[v(0)]);
        assert_eq!(b2.values(), &[0.3, 0.6]);
        assert!(f.condition(v(1), 3).is_err());
        assert!(f.condition(v(7), 0).is_err());
    }

    #[test]
    fn max_out_tracks_argmax() {
        let f = fab();
        let m = f.max_out(v(0)).unwrap();
        assert_eq!(m.factor.scope(), &[v(1)]);
        assert_eq!(m.factor.values(), &[0.4, 0.5, 0.6]);
        assert_eq!(m.argmax, vec![1, 1, 1]);
    }

    #[test]
    fn divide_handles_zero() {
        let f = Factor::new(vec![v(0)], vec![2], vec![0.4, 0.0]).unwrap();
        let g = Factor::new(vec![v(0)], vec![2], vec![0.8, 0.0]).unwrap();
        let d = f.divide(&g).unwrap();
        assert_eq!(d.values(), &[0.5, 0.0]);
        // subset-scope division
        let fab = fab();
        let gb = Factor::new(vec![v(1)], vec![3], vec![0.5, 1.0, 2.0]).unwrap();
        let d2 = fab.divide(&gb).unwrap();
        let expect = [0.2, 0.2, 0.15, 0.8, 0.5, 0.3];
        for (a, b) in d2.values().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(gb.divide(&fab).is_err());
    }

    #[test]
    fn scale_axis_applies_likelihood() {
        let mut f = fab();
        f.scale_axis(v(1), &[1.0, 0.0, 2.0]).unwrap();
        let expect = [0.1, 0.0, 0.6, 0.4, 0.0, 1.2];
        for (a, b) in f.values().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(f.scale_axis(v(1), &[1.0]).is_err());
        assert!(f.scale_axis(v(5), &[1.0]).is_err());
    }

    #[test]
    fn marginalize_to_reorders() {
        let f = fab();
        let m = f.marginalize_to(&[v(1)]).unwrap();
        assert_eq!(m.scope(), &[v(1)]);
        let swapped = f.marginalize_to(&[v(1), v(0)]).unwrap();
        assert_eq!(swapped.scope(), &[v(1), v(0)]);
        assert!((swapped.values()[0] - 0.1).abs() < 1e-12); // B=0, A=0
        assert!((swapped.values()[1] - 0.4).abs() < 1e-12); // B=0, A=1
        assert!(f.marginalize_to(&[v(9)]).is_err());
    }

    #[test]
    fn reorder_roundtrip() {
        let f = fab();
        let r = f.reorder(&[v(1), v(0)]).unwrap();
        let back = r.reorder(&[v(0), v(1)]).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn normalize_and_total() {
        let mut f = fab();
        let total = f.total();
        assert!((total - 2.1).abs() < 1e-12);
        let z = f.normalize().unwrap();
        assert!((z - 2.1).abs() < 1e-12);
        assert!((f.total() - 1.0).abs() < 1e-12);
        let mut zero = Factor::new(vec![v(0)], vec![2], vec![0.0, 0.0]).unwrap();
        assert_eq!(zero.normalize(), Err(Error::ImpossibleEvidence));
    }
}
