//! Stride-map kernels: the shared inner loops of every factor operation.
//!
//! # Memory layout
//!
//! Factor tables are row-major with the **last** scope variable varying
//! fastest: the cell for assignment `(s_0, .., s_{k-1})` over cards
//! `(c_0, .., c_{k-1})` lives at `((s_0 * c_1 + s_1) * c_2 + ..) + s_{k-1}`.
//! The stride of axis `i` is therefore `c_{i+1} * .. * c_{k-1}`.
//!
//! # Broadcast strides
//!
//! Every kernel walks a *target* index space (a clique table, a product
//! scope, a separator) linearly while maintaining one or more *secondary*
//! linear indices incrementally. A secondary table (a message, an operand
//! factor, a marginal) is described by its **broadcast strides**: for each
//! target axis, the secondary table's own stride when it contains that
//! variable, `0` when it does not. Absent axes then naturally broadcast
//! (multiply) or accumulate (marginalize) without any per-cell index
//! arithmetic beyond a handful of adds.
//!
//! The odometer state lives in a fixed stack array, so kernels never
//! allocate: a factor with more than [`MAX_AXES`] axes would need a table
//! of at least 2^64 cells and cannot exist.

/// Upper bound on scope width (tables have at least 2^width cells).
pub(crate) const MAX_AXES: usize = 64;

/// Total number of cells of a card vector (1 for an empty scope).
#[inline]
pub(crate) fn table_len(cards: &[usize]) -> usize {
    cards.iter().product::<usize>().max(1)
}

/// Row-major stride of the axis at `pos` in a table over `cards` (the
/// product of all later cardinalities). The one place the last-variable-
/// fastest layout is spelled out as a formula.
#[inline]
pub(crate) fn axis_stride(cards: &[usize], pos: usize) -> usize {
    cards[pos + 1..].iter().product()
}

/// Broadcast strides of the table over `(sub_scope, sub_cards)` aligned to
/// `target_scope`: for each target axis, the sub-table's own row-major
/// stride of that variable, or 0 when absent. This is the single source of
/// truth for aligning one scope to another — every marginalize/broadcast
/// site (factor ops, separators, evidence slots, family tables) derives
/// its stride maps here so a layout change has exactly one home.
pub(crate) fn aligned_strides<V: PartialEq + Copy>(
    sub_scope: &[V],
    sub_cards: &[usize],
    target_scope: &[V],
) -> Vec<usize> {
    debug_assert_eq!(sub_scope.len(), sub_cards.len());
    target_scope
        .iter()
        .map(|&v| {
            sub_scope
                .iter()
                .position(|&s| s == v)
                .map(|p| axis_stride(sub_cards, p))
                .unwrap_or(0)
        })
        .collect()
}

/// Steps a row-major odometer over `cards`, keeping the secondary linear
/// indices in `idx` in sync with their `strides`. `strides[k]` must have
/// one entry per axis. All kernels below share this inner loop.
#[inline(always)]
fn step<const N: usize>(
    cards: &[usize],
    assign: &mut [usize; MAX_AXES],
    strides: [&[usize]; N],
    idx: &mut [usize; N],
) {
    for pos in (0..cards.len()).rev() {
        assign[pos] += 1;
        for k in 0..N {
            idx[k] += strides[k][pos];
        }
        if assign[pos] == cards[pos] {
            assign[pos] = 0;
            for k in 0..N {
                idx[k] -= strides[k][pos] * cards[pos];
            }
        } else {
            break;
        }
    }
}

#[inline]
fn check_axes(cards: &[usize]) {
    assert!(
        cards.len() <= MAX_AXES,
        "factor scope wider than {MAX_AXES} axes"
    );
}

/// `out[i_out] += a[i_a] * b[i_b]` over the full joint space described by
/// `cards`. With `out_str` covering every axis this is a pointwise product;
/// with some axes absent from `out_str` it is a fused product-marginalize
/// that never materialises the joint table. `out` must be pre-zeroed.
pub(crate) fn product_accumulate_kernel(
    cards: &[usize],
    a: &[f64],
    a_str: &[usize],
    b: &[f64],
    b_str: &[usize],
    out_str: &[usize],
    out: &mut [f64],
) {
    check_axes(cards);
    let total = table_len(cards);
    let mut assign = [0usize; MAX_AXES];
    let mut idx = [0usize; 3];
    for _ in 0..total {
        out[idx[2]] += a[idx[0]] * b[idx[1]];
        step(cards, &mut assign, [a_str, b_str, out_str], &mut idx);
    }
}

/// `out[i_out] += prod_k sources[k][i_k]` over the joint space: the N-ary
/// generalisation used by variable elimination to multiply a whole bucket
/// of factors and marginalize in one pass, without intermediate joint
/// tables. `strides[k]` are the broadcast strides of source `k`; `out`
/// must be pre-zeroed.
pub(crate) fn product_all_accumulate_kernel(
    cards: &[usize],
    sources: &[&[f64]],
    strides: &[Vec<usize>],
    out_str: &[usize],
    out: &mut [f64],
) {
    debug_assert_eq!(sources.len(), strides.len());
    check_axes(cards);
    let total = table_len(cards);
    let n = sources.len();
    // Unlike the scope width (bounded by MAX_AXES), the bucket size is
    // unbounded — a hub variable can touch arbitrarily many factors — so
    // the per-source indices live on the heap. This kernel runs once per
    // elimination step; the setup already allocates the stride vectors.
    let mut assign = [0usize; MAX_AXES];
    let mut idx = vec![0usize; n];
    let mut io = 0usize;
    for _ in 0..total {
        let mut acc = 1.0f64;
        for (k, src) in sources.iter().enumerate() {
            acc *= src[idx[k]];
        }
        out[io] += acc;
        for pos in (0..cards.len()).rev() {
            assign[pos] += 1;
            io += out_str[pos];
            for (k, st) in strides.iter().enumerate() {
                idx[k] += st[pos];
            }
            if assign[pos] == cards[pos] {
                assign[pos] = 0;
                io -= out_str[pos] * cards[pos];
                for (k, st) in strides.iter().enumerate() {
                    idx[k] -= st[pos] * cards[pos];
                }
            } else {
                break;
            }
        }
    }
}

/// `buf[i] *= m[i_m]` where `m`'s scope is a subset of the buffer's scope.
pub(crate) fn mul_broadcast_kernel(cards: &[usize], buf: &mut [f64], m: &[f64], m_str: &[usize]) {
    check_axes(cards);
    let total = table_len(cards);
    let mut assign = [0usize; MAX_AXES];
    let mut idx = [0usize; 1];
    for slot in buf.iter_mut().take(total) {
        *slot *= m[idx[0]];
        step(cards, &mut assign, [m_str], &mut idx);
    }
}

/// `buf[i] /= m[i_m]` with the junction-tree convention `x / 0 = 0`.
pub(crate) fn div_broadcast_kernel(cards: &[usize], buf: &mut [f64], m: &[f64], m_str: &[usize]) {
    check_axes(cards);
    let total = table_len(cards);
    let mut assign = [0usize; MAX_AXES];
    let mut idx = [0usize; 1];
    for slot in buf.iter_mut().take(total) {
        let denom = m[idx[0]];
        *slot = if denom == 0.0 { 0.0 } else { *slot / denom };
        step(cards, &mut assign, [m_str], &mut idx);
    }
}

/// `out[i_out] += src[i]` — marginalizes a table onto a sub-scope described
/// by `out_str` broadcast strides. `out` must be pre-zeroed.
pub(crate) fn marginalize_kernel(cards: &[usize], src: &[f64], out_str: &[usize], out: &mut [f64]) {
    check_axes(cards);
    let total = table_len(cards);
    let mut assign = [0usize; MAX_AXES];
    let mut idx = [0usize; 1];
    for &v in src.iter().take(total) {
        out[idx[0]] += v;
        step(cards, &mut assign, [out_str], &mut idx);
    }
}

/// Scales the states of one axis of a table by per-state `weights`
/// (`stride` = the axis stride, `card` = the axis cardinality).
pub(crate) fn scale_axis_kernel(buf: &mut [f64], stride: usize, card: usize, weights: &[f64]) {
    debug_assert_eq!(weights.len(), card);
    let block = stride * card;
    for chunk in buf.chunks_mut(block) {
        for (state, w) in weights.iter().enumerate() {
            if *w == 1.0 {
                continue;
            }
            for slot in chunk[state * stride..(state + 1) * stride].iter_mut() {
                *slot *= w;
            }
        }
    }
}

/// Zeroes every state of one axis except `keep` (hard-evidence entry,
/// equivalent to multiplying by a one-hot likelihood).
pub(crate) fn retain_state_kernel(buf: &mut [f64], stride: usize, card: usize, keep: usize) {
    let block = stride * card;
    for chunk in buf.chunks_mut(block) {
        for state in 0..card {
            if state != keep {
                for slot in chunk[state * stride..(state + 1) * stride].iter_mut() {
                    *slot = 0.0;
                }
            }
        }
    }
}

/// Accumulates the marginal of one axis: `out[state] += sum of cells with
/// that axis state`. `out` must be pre-zeroed and have length `card`.
pub(crate) fn axis_marginal_kernel(buf: &[f64], stride: usize, card: usize, out: &mut [f64]) {
    debug_assert_eq!(out.len(), card);
    let block = stride * card;
    for chunk in buf.chunks(block) {
        for (state, slot) in out.iter_mut().enumerate() {
            let base = state * stride;
            let mut acc = 0.0;
            for &v in &chunk[base..base + stride] {
                acc += v;
            }
            *slot += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_kernel_matches_outer_product() {
        // a over axis0 (card 2), b over axis1 (card 3), out over both.
        let cards = [2usize, 3];
        let a = [10.0, 100.0];
        let b = [1.0, 2.0, 3.0];
        let mut out = vec![0.0; 6];
        product_accumulate_kernel(&cards, &a, &[1, 0], &b, &[0, 1], &[3, 1], &mut out);
        assert_eq!(out, vec![10.0, 20.0, 30.0, 100.0, 200.0, 300.0]);
    }

    #[test]
    fn fused_marginalize_drops_axis() {
        // Same product, but marginalize axis1 away on the fly.
        let cards = [2usize, 3];
        let a = [10.0, 100.0];
        let b = [1.0, 2.0, 3.0];
        let mut out = vec![0.0; 2];
        product_accumulate_kernel(&cards, &a, &[1, 0], &b, &[0, 1], &[1, 0], &mut out);
        assert_eq!(out, vec![60.0, 600.0]);
    }

    #[test]
    fn broadcast_mul_and_div_roundtrip() {
        let cards = [2usize, 2];
        let mut buf = vec![1.0, 2.0, 3.0, 4.0];
        let m = [2.0, 0.0];
        mul_broadcast_kernel(&cards, &mut buf, &m, &[0, 1]);
        assert_eq!(buf, vec![2.0, 0.0, 6.0, 0.0]);
        div_broadcast_kernel(&cards, &mut buf, &m, &[0, 1]);
        assert_eq!(buf, vec![1.0, 0.0, 3.0, 0.0], "0/0 collapses to 0");
    }

    #[test]
    fn marginalize_kernel_sums_dropped_axes() {
        // Table over (2, 3); marginalize onto axis0.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![0.0; 2];
        marginalize_kernel(&[2, 3], &src, &[1, 0], &mut out);
        assert_eq!(out, vec![6.0, 15.0]);
        // Onto axis1.
        let mut out = vec![0.0; 3];
        marginalize_kernel(&[2, 3], &src, &[0, 1], &mut out);
        assert_eq!(out, vec![5.0, 7.0, 9.0]);
        // Scalar marginal = total.
        let mut out = vec![0.0; 1];
        marginalize_kernel(&[2, 3], &src, &[0, 0], &mut out);
        assert_eq!(out, vec![21.0]);
    }

    #[test]
    fn axis_kernels_agree() {
        // Table over (2, 3), axis1 has stride 1, card 3.
        let buf = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut marg = vec![0.0; 3];
        axis_marginal_kernel(&buf, 1, 3, &mut marg);
        assert_eq!(marg, vec![5.0, 7.0, 9.0]);

        let mut kept = buf;
        retain_state_kernel(&mut kept, 1, 3, 1);
        assert_eq!(kept, [0.0, 2.0, 0.0, 0.0, 5.0, 0.0]);

        let mut scaled = buf;
        scale_axis_kernel(&mut scaled, 1, 3, &[1.0, 0.5, 2.0]);
        assert_eq!(scaled, [1.0, 1.0, 6.0, 4.0, 2.5, 12.0]);
    }

    #[test]
    fn n_ary_kernel_matches_pairwise() {
        let cards = [2usize, 2, 2];
        let f0 = [0.25, 0.5];
        let f1 = [0.1, 0.9, 0.3, 0.7];
        let f2 = [0.6, 0.4, 0.2, 0.8];
        // scopes: f0 over axis0; f1 over (axis0, axis1); f2 over (axis1, axis2).
        let strides = vec![vec![1, 0, 0], vec![2, 1, 0], vec![0, 2, 1]];
        let mut out = vec![0.0; 4];
        // Marginalize axis1 away: out over (axis0, axis2).
        product_all_accumulate_kernel(&cards, &[&f0, &f1, &f2], &strides, &[2, 0, 1], &mut out);
        for (i0, i2) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let mut expect = 0.0;
            for i1 in 0..2 {
                expect += f0[i0] * f1[i0 * 2 + i1] * f2[i1 * 2 + i2];
            }
            assert!((out[i0 * 2 + i2] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_scope_is_a_scalar() {
        let mut out = vec![0.0];
        product_accumulate_kernel(&[], &[3.0], &[], &[4.0], &[], &[], &mut out);
        assert_eq!(out, vec![12.0]);
    }
}
