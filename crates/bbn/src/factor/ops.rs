//! In-place and fused factor operations.
//!
//! # Buffer-reuse contract
//!
//! The `*_into` / `*_assign` methods write into caller-provided [`Factor`]
//! buffers instead of allocating: build the destination once with
//! [`Factor::with_shape`] (typically from [`Factor::union_shape`]), then
//! reuse it across calls. A destination's scope and cardinalities must
//! match what the operation produces — they are validated on every call
//! (cheap, O(scope)) and never silently reshaped. Values are always fully
//! overwritten, so a reused buffer needs no clearing between calls.

use super::strides::{
    div_broadcast_kernel, marginalize_kernel, mul_broadcast_kernel, product_accumulate_kernel,
    product_all_accumulate_kernel, table_len,
};
use super::Factor;
use crate::error::{Error, Result};
use crate::network::VarId;

impl Factor {
    /// A zeroed factor with the given shape, for use as a reusable
    /// destination buffer of the `*_into` operations.
    ///
    /// # Errors
    ///
    /// Same validation as [`Factor::new`] minus the value checks.
    pub fn with_shape(scope: Vec<VarId>, cards: Vec<usize>) -> Result<Self> {
        let total = table_len(&cards);
        Factor::new(scope, cards, vec![0.0; total])
    }

    /// The scope and cardinalities of `self.product(other)`: this factor's
    /// scope followed by the other factor's new variables.
    pub fn union_shape(&self, other: &Factor) -> (Vec<VarId>, Vec<usize>) {
        let mut scope = self.scope.clone();
        let mut cards = self.cards.clone();
        for (pos, &v) in other.scope.iter().enumerate() {
            if !scope.contains(&v) {
                scope.push(v);
                cards.push(other.cards[pos]);
            }
        }
        (scope, cards)
    }

    /// Broadcast strides of this factor aligned to `target_scope`: for each
    /// target axis, this factor's stride of that variable (0 when absent).
    pub(crate) fn strides_aligned_to(&self, target_scope: &[VarId]) -> Vec<usize> {
        super::strides::aligned_strides(self.scope(), self.cards(), target_scope)
    }

    /// Checks that `out` has exactly the given shape.
    fn check_shape(out: &Factor, scope: &[VarId], cards: &[usize]) -> Result<()> {
        if out.scope != scope {
            if out.scope.len() != scope.len() {
                return Err(Error::ShapeMismatch {
                    expected: scope.len(),
                    actual: out.scope.len(),
                });
            }
            // Same arity, different variables: name the first mismatch so
            // the error is actionable (a bare count-vs-count would read
            // "expected 3 values, got 3").
            let (want, got) = scope
                .iter()
                .zip(&out.scope)
                .find(|(w, g)| w != g)
                .expect("scopes differ");
            return Err(Error::NotInScope(format!(
                "destination scope has `{got}` where `{want}` is required"
            )));
        }
        if out.cards != cards {
            return Err(Error::ShapeMismatch {
                expected: table_len(cards),
                actual: table_len(&out.cards),
            });
        }
        Ok(())
    }

    /// Pointwise product written into `out`, which must have been shaped
    /// with [`Factor::union_shape`] — no allocation happens here.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] when `out` has the wrong shape.
    pub fn product_into(&self, other: &Factor, out: &mut Factor) -> Result<()> {
        let (scope, cards) = self.union_shape(other);
        Self::check_shape(out, &scope, &cards)?;
        let a_str = self.strides_aligned_to(&scope);
        let b_str = other.strides_aligned_to(&scope);
        let out_str: Vec<usize> = (0..scope.len())
            .map(|i| cards[i + 1..].iter().product())
            .collect();
        out.values.fill(0.0);
        product_accumulate_kernel(
            &cards,
            &self.values,
            &a_str,
            &other.values,
            &b_str,
            &out_str,
            &mut out.values,
        );
        Ok(())
    }

    /// Multiplies `other` into this factor in place. `other`'s scope must
    /// be a subset of this factor's scope (it broadcasts over the rest);
    /// the scope does not change and nothing is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if `other` mentions a variable absent
    /// from this factor.
    pub fn mul_assign(&mut self, other: &Factor) -> Result<()> {
        for v in &other.scope {
            if !self.contains(*v) {
                return Err(Error::NotInScope(format!("{v:?}")));
            }
        }
        let m_str = other.strides_aligned_to(&self.scope);
        mul_broadcast_kernel(&self.cards, &mut self.values, &other.values, &m_str);
        Ok(())
    }

    /// Divides this factor by `other` in place (`0 / 0 = 0`, the junction
    /// tree convention). `other`'s scope must be a subset of this factor's
    /// scope; nothing is allocated.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] if `other` mentions a variable absent
    /// from this factor.
    pub fn div_assign(&mut self, other: &Factor) -> Result<()> {
        for v in &other.scope {
            if !self.contains(*v) {
                return Err(Error::NotInScope(format!("{v:?}")));
            }
        }
        let m_str = other.strides_aligned_to(&self.scope);
        div_broadcast_kernel(&self.cards, &mut self.values, &other.values, &m_str);
        Ok(())
    }

    /// Fused `self.product(other).sum_out(var)` that never materialises the
    /// joint table: one pass over the joint index space accumulating
    /// directly into the reduced result.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] when `var` is in neither scope.
    pub fn product_sum_out(&self, other: &Factor, var: VarId) -> Result<Factor> {
        if !self.contains(var) && !other.contains(var) {
            return Err(Error::NotInScope(format!("{var:?}")));
        }
        let (scope, cards) = self.union_shape(other);
        let mut out_scope = Vec::with_capacity(scope.len() - 1);
        let mut out_cards = Vec::with_capacity(scope.len() - 1);
        for (pos, &v) in scope.iter().enumerate() {
            if v != var {
                out_scope.push(v);
                out_cards.push(cards[pos]);
            }
        }
        let mut out = Factor::with_shape(out_scope, out_cards)?;
        let a_str = self.strides_aligned_to(&scope);
        let b_str = other.strides_aligned_to(&scope);
        let out_str = out.strides_aligned_to(&scope);
        product_accumulate_kernel(
            &cards,
            &self.values,
            &a_str,
            &other.values,
            &b_str,
            &out_str,
            &mut out.values,
        );
        Ok(out)
    }

    /// Multiplies a whole bucket of factors and sums `var` out in a single
    /// pass over the joint index space — the variable-elimination inner
    /// step, with no intermediate joint tables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] when `var` is in no factor's scope.
    pub fn product_all_sum_out(factors: &[&Factor], var: VarId) -> Result<Factor> {
        if !factors.iter().any(|f| f.contains(var)) {
            return Err(Error::NotInScope(format!("{var:?}")));
        }
        // Union scope in scan order.
        let mut scope: Vec<VarId> = Vec::new();
        let mut cards: Vec<usize> = Vec::new();
        for f in factors {
            for (pos, &v) in f.scope.iter().enumerate() {
                if !scope.contains(&v) {
                    scope.push(v);
                    cards.push(f.cards[pos]);
                }
            }
        }
        let mut out_scope = Vec::with_capacity(scope.len() - 1);
        let mut out_cards = Vec::with_capacity(scope.len() - 1);
        for (pos, &v) in scope.iter().enumerate() {
            if v != var {
                out_scope.push(v);
                out_cards.push(cards[pos]);
            }
        }
        let mut out = Factor::with_shape(out_scope, out_cards)?;
        let strides: Vec<Vec<usize>> = factors
            .iter()
            .map(|f| f.strides_aligned_to(&scope))
            .collect();
        let sources: Vec<&[f64]> = factors.iter().map(|f| f.values()).collect();
        let out_str = out.strides_aligned_to(&scope);
        product_all_accumulate_kernel(&cards, &sources, &strides, &out_str, &mut out.values);
        Ok(out)
    }

    /// Single-pass marginalization onto `keep` (any subset of the scope, in
    /// any order) written into `out`, which must have scope exactly `keep`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInScope`] for unknown variables and
    /// [`Error::ShapeMismatch`] for a misshaped `out`.
    pub fn marginalize_into(&self, keep: &[VarId], out: &mut Factor) -> Result<()> {
        for v in keep {
            if !self.contains(*v) {
                return Err(Error::NotInScope(format!("{v:?}")));
            }
        }
        let cards: Vec<usize> = keep
            .iter()
            .map(|&v| self.cards[self.position(v).expect("checked above")])
            .collect();
        Self::check_shape(out, keep, &cards)?;
        let out_str = out.strides_aligned_to(&self.scope);
        out.values.fill(0.0);
        marginalize_kernel(&self.cards, &self.values, &out_str, &mut out.values);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    fn fab() -> Factor {
        Factor::new(
            vec![v(0), v(1)],
            vec![2, 3],
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        )
        .unwrap()
    }

    fn assert_close(a: &Factor, b: &Factor) {
        assert_eq!(a.scope(), b.scope());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn product_into_matches_product() {
        let f = fab();
        let g = Factor::new(
            vec![v(1), v(2)],
            vec![3, 2],
            vec![0.5, 0.5, 0.1, 0.9, 0.3, 0.7],
        )
        .unwrap();
        let (scope, cards) = f.union_shape(&g);
        let mut out = Factor::with_shape(scope, cards).unwrap();
        f.product_into(&g, &mut out).unwrap();
        assert_close(&out, &f.product(&g));
        // Buffer reuse: a second call fully overwrites.
        f.product_into(&g, &mut out).unwrap();
        assert_close(&out, &f.product(&g));
        // Wrong shape is rejected.
        let mut bad = Factor::with_shape(vec![v(0)], vec![2]).unwrap();
        assert!(f.product_into(&g, &mut bad).is_err());
    }

    #[test]
    fn mul_assign_matches_product_on_subset() {
        let mut f = fab();
        let g = Factor::new(vec![v(1)], vec![3], vec![2.0, 0.0, 1.0]).unwrap();
        let expect = f.product(&g);
        f.mul_assign(&g).unwrap();
        assert_close(&f, &expect);
        // Superset scope is rejected.
        let h = Factor::new(vec![v(7)], vec![2], vec![1.0, 1.0]).unwrap();
        assert!(f.mul_assign(&h).is_err());
    }

    #[test]
    fn div_assign_matches_divide() {
        let f = fab();
        let g = Factor::new(vec![v(1)], vec![3], vec![0.5, 0.0, 2.0]).unwrap();
        let expect = f.divide(&g).unwrap();
        let mut h = f.clone();
        h.div_assign(&g).unwrap();
        assert_close(&h, &expect);
    }

    #[test]
    fn product_sum_out_matches_two_step() {
        let f = fab();
        let g = Factor::new(
            vec![v(1), v(2)],
            vec![3, 2],
            vec![0.5, 0.5, 0.1, 0.9, 0.3, 0.7],
        )
        .unwrap();
        let fused = f.product_sum_out(&g, v(1)).unwrap();
        let two_step = f.product(&g).sum_out(v(1)).unwrap();
        assert_close(&fused, &two_step);
        assert!(f.product_sum_out(&g, v(9)).is_err());
    }

    #[test]
    fn product_all_sum_out_matches_sequential() {
        let f0 = Factor::new(vec![v(0)], vec![2], vec![0.25, 0.75]).unwrap();
        let f1 = fab();
        let f2 = Factor::new(
            vec![v(1), v(2)],
            vec![3, 2],
            vec![0.5, 0.5, 0.1, 0.9, 0.3, 0.7],
        )
        .unwrap();
        let fused = Factor::product_all_sum_out(&[&f0, &f1, &f2], v(1)).unwrap();
        let seq = f0.product(&f1).product(&f2).sum_out(v(1)).unwrap();
        assert_close(&fused, &seq.reorder(fused.scope()).unwrap());
        assert!(Factor::product_all_sum_out(&[&f0], v(9)).is_err());
    }

    #[test]
    fn marginalize_into_matches_marginalize_to() {
        let f = fab();
        let mut out = Factor::with_shape(vec![v(1), v(0)], vec![3, 2]).unwrap();
        f.marginalize_into(&[v(1), v(0)], &mut out).unwrap();
        assert_close(&out, &f.marginalize_to(&[v(1), v(0)]).unwrap());
        let mut scalar = Factor::with_shape(vec![], vec![]).unwrap();
        f.marginalize_into(&[], &mut scalar).unwrap();
        assert!((scalar.values()[0] - f.total()).abs() < 1e-12);
        assert!(f.marginalize_into(&[v(9)], &mut out).is_err());
    }
}
