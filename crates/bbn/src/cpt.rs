//! CPT authoring helpers: canonical parameterised tables (noisy-OR /
//! noisy-AND) that let a domain expert specify large conditional tables
//! with a handful of numbers — the standard entry format for
//! expert-seeded networks like the paper's.

use crate::error::{Error, Result};

/// Builds the rows of a **noisy-OR** CPT for a binary child (state 1 =
/// "effect present") with binary parents (state 1 = "cause present").
///
/// `leak` is the probability of the effect with no cause present;
/// `strengths[i]` is the probability that cause `i` *alone* produces the
/// effect. Rows are returned over parent configurations with the last
/// parent varying fastest, each row `[P(child=0 | pa), P(child=1 | pa)]`.
///
/// # Errors
///
/// Returns [`Error::InvalidCpt`] when `leak` or any strength is outside
/// `[0, 1)` / `[0, 1]`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::cpt::noisy_or_rows;
///
/// let rows = noisy_or_rows(0.01, &[0.9, 0.7])?;
/// assert_eq!(rows.len(), 4);
/// // Both causes absent: only the leak fires.
/// assert!((rows[0][1] - 0.01).abs() < 1e-12);
/// // Both causes present: 1 - (1-λ)(1-0.9)(1-0.7).
/// assert!((rows[3][1] - (1.0 - 0.99 * 0.1 * 0.3)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn noisy_or_rows(leak: f64, strengths: &[f64]) -> Result<Vec<Vec<f64>>> {
    if !(0.0..1.0).contains(&leak) {
        return Err(Error::InvalidCpt {
            variable: "noisy-or".into(),
            reason: format!("leak {leak} outside [0, 1)"),
        });
    }
    for (i, s) in strengths.iter().enumerate() {
        if !(0.0..=1.0).contains(s) {
            return Err(Error::InvalidCpt {
                variable: "noisy-or".into(),
                reason: format!("strength {i} = {s} outside [0, 1]"),
            });
        }
    }
    let configs = 1usize << strengths.len();
    let mut rows = Vec::with_capacity(configs);
    for config in 0..configs {
        // Last parent fastest: bit 0 of `config` is the last parent.
        let mut p_none = 1.0 - leak;
        for (i, s) in strengths.iter().enumerate() {
            let bit = strengths.len() - 1 - i;
            if (config >> bit) & 1 == 1 {
                p_none *= 1.0 - s;
            }
        }
        rows.push(vec![p_none, 1.0 - p_none]);
    }
    Ok(rows)
}

/// Builds the rows of a **noisy-AND** CPT for a binary child (state 1 =
/// "output present") with binary parents (state 1 = "input present"):
/// every absent input independently disables the output except with
/// probability `slip[i]`; `inhibit` is the probability the output fails
/// even with all inputs present.
///
/// # Errors
///
/// Returns [`Error::InvalidCpt`] for out-of-range parameters.
pub fn noisy_and_rows(inhibit: f64, slips: &[f64]) -> Result<Vec<Vec<f64>>> {
    if !(0.0..1.0).contains(&inhibit) {
        return Err(Error::InvalidCpt {
            variable: "noisy-and".into(),
            reason: format!("inhibit {inhibit} outside [0, 1)"),
        });
    }
    for (i, s) in slips.iter().enumerate() {
        if !(0.0..=1.0).contains(s) {
            return Err(Error::InvalidCpt {
                variable: "noisy-and".into(),
                reason: format!("slip {i} = {s} outside [0, 1]"),
            });
        }
    }
    let configs = 1usize << slips.len();
    let mut rows = Vec::with_capacity(configs);
    for config in 0..configs {
        let mut p_on = 1.0 - inhibit;
        for (i, s) in slips.iter().enumerate() {
            let bit = slips.len() - 1 - i;
            if (config >> bit) & 1 == 0 {
                p_on *= s;
            }
        }
        rows.push(vec![1.0 - p_on, p_on]);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    #[test]
    fn noisy_or_limits() {
        let rows = noisy_or_rows(0.0, &[1.0]).unwrap();
        assert_eq!(rows[0], vec![1.0, 0.0], "no cause, no leak: never fires");
        assert_eq!(rows[1], vec![0.0, 1.0], "sure cause always fires");
        assert!(noisy_or_rows(1.0, &[0.5]).is_err());
        assert!(noisy_or_rows(0.1, &[1.5]).is_err());
        assert!(noisy_or_rows(-0.1, &[0.5]).is_err());
    }

    #[test]
    fn noisy_or_is_monotone_in_causes() {
        let rows = noisy_or_rows(0.05, &[0.8, 0.6, 0.4]).unwrap();
        assert_eq!(rows.len(), 8);
        // Adding a cause can only increase the firing probability.
        for config in 0..8usize {
            for bit in 0..3 {
                if (config >> bit) & 1 == 0 {
                    let with = config | (1 << bit);
                    assert!(
                        rows[with][1] >= rows[config][1] - 1e-12,
                        "config {config:03b} -> {with:03b}"
                    );
                }
            }
        }
    }

    #[test]
    fn noisy_and_limits() {
        let rows = noisy_and_rows(0.0, &[0.0, 0.0]).unwrap();
        assert_eq!(rows[3], vec![0.0, 1.0], "all inputs present: output on");
        assert_eq!(
            rows[0],
            vec![1.0, 0.0],
            "no slip: any missing input kills it"
        );
        assert!(noisy_and_rows(1.0, &[0.0]).is_err());
        assert!(noisy_and_rows(0.0, &[2.0]).is_err());
    }

    #[test]
    fn rows_install_into_a_network() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        let e = b.variable("e", ["0", "1"]).unwrap();
        b.prior(a, [0.7, 0.3]).unwrap();
        b.prior(c, [0.6, 0.4]).unwrap();
        b.cpt(e, [a, c], noisy_or_rows(0.02, &[0.9, 0.5]).unwrap())
            .unwrap();
        let net = b.build().unwrap();
        // P(e=1 | a=1, c=0) = 1 - 0.98*0.1
        let row = net.cpt_row(net.var("e").unwrap(), &[1, 0]).unwrap();
        assert!((row[1] - (1.0 - 0.98 * 0.1)).abs() < 1e-12);
    }
}
