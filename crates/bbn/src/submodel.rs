//! Sub-model extraction: project a fitted network onto a block plus its
//! boundary interface, producing a standalone [`Network`] whose interface
//! CPTs summarise the rest of the board.
//!
//! This is the bbn-layer kernel behind hierarchical block-level diagnosis
//! (Srinivas's probabilistic hierarchical model-based diagnosis; Siddiqi &
//! Huang's sequential diagnosis by abstraction): a board-level abstraction
//! isolates a suspect block, then diagnosis descends into that block's
//! extracted sub-model — paying propagation cost only for the handful of
//! variables under suspicion instead of the whole board.
//!
//! ## Extraction contract
//!
//! Let `B` be the block variables and `I` the interface. The extraction is
//! valid when:
//!
//! 1. `B` and `I` are disjoint and `B` is non-empty;
//! 2. every parent of a `B`-variable lies in `B ∪ I` (the interface really
//!    is the block's whole Markov boundary on the parent side);
//! 3. no `I`-variable is a descendant of a `B`-variable (the interface
//!    feeds the block, never the reverse).
//!
//! Under the contract the sub-model's joint is *exactly* the flat model's
//! marginal over `B ∪ I`: interface variables carry a chain factorisation
//! of the flat marginal `P(I)` (computed once by variable elimination),
//! and block variables keep their original CPTs verbatim. Consequently any
//! evidence restricted to `B ∪ I` yields posteriors over `B ∪ I` that are
//! bit-for-bit the flat model's answers — and with *hard evidence on all
//! of `I`*, external evidence elsewhere on the board cannot reach `B`
//! except through `I` (condition 3 rules out observed-collider paths), so
//! the sub-model's block posteriors match the flat model's exactly.

use crate::error::{Error, Result};
use crate::evidence::Evidence;
use crate::infer::VariableElimination;
use crate::network::{Network, NetworkBuilder, VarId};
use std::collections::BTreeSet;

/// The result of [`extract_submodel`]: the standalone network plus the
/// variable correspondence back to the flat model.
#[derive(Debug, Clone)]
pub struct Submodel {
    /// The extracted network over `interface ∪ block` (interface first,
    /// in the given order; block next, in flat declaration order).
    pub network: Network,
    /// For each sub-model variable (by index), the flat-model [`VarId`]
    /// it projects.
    pub flat_ids: Vec<VarId>,
    /// How many leading sub-model variables form the interface chain.
    pub interface_len: usize,
}

impl Submodel {
    /// The sub-model [`VarId`] of a flat-model variable, if retained.
    pub fn project(&self, flat: VarId) -> Option<VarId> {
        self.flat_ids
            .iter()
            .position(|&f| f == flat)
            .map(VarId::from_index)
    }

    /// Whether the sub-model variable at `sub` belongs to the interface.
    pub fn is_interface(&self, sub: VarId) -> bool {
        sub.index() < self.interface_len
    }
}

/// Every descendant of `roots` in `net` (excluding the roots themselves
/// unless reachable again through a child).
fn descendants(net: &Network, roots: &[VarId]) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<VarId> = roots.to_vec();
    while let Some(v) = stack.pop() {
        for &c in net.children(v) {
            if seen.insert(c.index()) {
                stack.push(c);
            }
        }
    }
    seen
}

/// Validates the extraction contract (see the module docs) and returns the
/// block in flat declaration order.
fn validate(net: &Network, block: &[VarId], interface: &[VarId]) -> Result<Vec<VarId>> {
    if block.is_empty() {
        return Err(Error::InvalidCpt {
            variable: "<submodel>".into(),
            reason: "block must retain at least one variable".into(),
        });
    }
    let block_set: BTreeSet<usize> = block.iter().map(|v| v.index()).collect();
    let iface_set: BTreeSet<usize> = interface.iter().map(|v| v.index()).collect();
    if block_set.len() != block.len() || iface_set.len() != interface.len() {
        return Err(Error::DuplicateInScope("<submodel>".into()));
    }
    if let Some(both) = block_set.intersection(&iface_set).next() {
        return Err(Error::DuplicateInScope(
            net.name(VarId::from_index(*both)).to_string(),
        ));
    }
    for &b in block {
        for &p in net.parents(b) {
            if !block_set.contains(&p.index()) && !iface_set.contains(&p.index()) {
                return Err(Error::InvalidCpt {
                    variable: net.name(b).to_string(),
                    reason: format!(
                        "parent `{}` is outside the block and its interface",
                        net.name(p)
                    ),
                });
            }
        }
    }
    let downstream = descendants(net, block);
    for &i in interface {
        if downstream.contains(&i.index()) {
            return Err(Error::InvalidCpt {
                variable: net.name(i).to_string(),
                reason: "interface variable is a descendant of the block".into(),
            });
        }
    }
    let mut ordered: Vec<VarId> = block.to_vec();
    ordered.sort_by_key(|v| v.index());
    Ok(ordered)
}

/// Projects `net` onto `block ∪ interface`, returning a standalone
/// sub-model (see the module docs for the contract and the exactness
/// guarantee). The interface chain keeps the order of `interface`; block
/// variables follow in flat declaration order.
///
/// The flat marginal `P(interface)` is computed once by
/// [`VariableElimination::joint_marginal`]; extraction is therefore a
/// build-time operation, not a per-decision one.
///
/// # Errors
///
/// Returns [`Error::InvalidCpt`] / [`Error::DuplicateInScope`] when the
/// contract is violated, and propagates inference errors from the
/// marginalisation.
pub fn extract_submodel(net: &Network, block: &[VarId], interface: &[VarId]) -> Result<Submodel> {
    let block = validate(net, block, interface)?;
    let mut b = NetworkBuilder::new();
    let mut flat_ids: Vec<VarId> = Vec::with_capacity(interface.len() + block.len());
    let mut sub_of = vec![None::<VarId>; net.var_count()];
    for &flat in interface.iter().chain(block.iter()) {
        let states: Vec<String> = net.states(flat).to_vec();
        let sub = b.variable(net.name(flat).to_string(), states)?;
        sub_of[flat.index()] = Some(sub);
        flat_ids.push(flat);
    }

    // Interface chain: P(i_j | i_1..i_{j-1}) from the flat joint P(I).
    if !interface.is_empty() {
        let joint = VariableElimination::new(net)
            .joint_marginal(&Evidence::new(), interface)?
            .reorder(interface)?;
        for (j, &flat) in interface.iter().enumerate() {
            let prefix = &interface[..=j];
            let num = joint.marginalize_to(prefix)?.reorder(prefix)?;
            let card = net.card(flat);
            let rows = num.len() / card;
            let mut table = Vec::with_capacity(num.len());
            for row in 0..rows {
                let slice = &num.values()[row * card..(row + 1) * card];
                let denom: f64 = slice.iter().sum();
                if denom > 0.0 {
                    table.extend(slice.iter().map(|v| v / denom));
                } else {
                    // Impossible interface prefix: any conditional works;
                    // uniform keeps the CPT well-formed.
                    table.extend(std::iter::repeat_n(1.0 / card as f64, card));
                }
            }
            let parents: Vec<VarId> = interface[..j]
                .iter()
                .map(|p| sub_of[p.index()].expect("interface declared above"))
                .collect();
            b.cpt_flat(sub_of[flat.index()].expect("declared"), parents, table)?;
        }
    }

    // Block variables keep their flat CPTs verbatim (parents remapped).
    for &flat in &block {
        let parents: Vec<VarId> = net
            .parents(flat)
            .iter()
            .map(|p| sub_of[p.index()].expect("contract: parent retained"))
            .collect();
        b.cpt_flat(
            sub_of[flat.index()].expect("declared"),
            parents,
            net.cpt(flat).to_vec(),
        )?;
    }

    Ok(Submodel {
        network: b.build()?,
        flat_ids,
        interface_len: interface.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::JunctionTree;

    /// vin → bias → out, plus a sibling branch vin → other that the
    /// sub-model must summarise away.
    fn chain_net() -> (Network, VarId, VarId, VarId, VarId) {
        let mut b = NetworkBuilder::new();
        let vin = b.variable("vin", ["low", "nom"]).unwrap();
        let bias = b.variable("bias", ["dead", "ok"]).unwrap();
        let out = b.variable("out", ["fail", "pass"]).unwrap();
        let other = b.variable("other", ["fail", "pass"]).unwrap();
        b.prior(vin, [0.3, 0.7]).unwrap();
        b.cpt(bias, [vin], [[0.4, 0.6], [0.05, 0.95]]).unwrap();
        b.cpt(out, [bias], [[0.9, 0.1], [0.1, 0.9]]).unwrap();
        b.cpt(other, [vin], [[0.8, 0.2], [0.15, 0.85]]).unwrap();
        let net = b.build().unwrap();
        (net, vin, bias, out, other)
    }

    #[test]
    fn submodel_matches_flat_marginals() {
        let (net, vin, bias, out, _) = chain_net();
        let sub = extract_submodel(&net, &[bias, out], &[vin]).unwrap();
        assert_eq!(sub.network.var_count(), 3);
        assert_eq!(sub.interface_len, 1);
        // With evidence inside B ∪ I, posteriors must match the flat net.
        let s_vin = sub.project(vin).unwrap();
        let s_bias = sub.project(bias).unwrap();
        let s_out = sub.project(out).unwrap();
        assert!(sub.is_interface(s_vin));
        assert!(!sub.is_interface(s_bias));
        let mut flat_ev = Evidence::new();
        flat_ev.observe(vin, 0);
        flat_ev.observe(out, 0);
        let mut sub_ev = Evidence::new();
        sub_ev.observe(s_vin, 0);
        sub_ev.observe(s_out, 0);
        let flat_post = JunctionTree::compile(&net)
            .unwrap()
            .propagate(&flat_ev)
            .unwrap()
            .posterior(bias)
            .unwrap();
        let sub_post = JunctionTree::compile(&sub.network)
            .unwrap()
            .propagate(&sub_ev)
            .unwrap()
            .posterior(s_bias)
            .unwrap();
        for (a, b) in flat_post.iter().zip(&sub_post) {
            assert!((a - b).abs() < 1e-12, "flat {a} vs sub {b}");
        }
    }

    #[test]
    fn interface_chain_reproduces_flat_joint() {
        let (net, vin, bias, out, other) = chain_net();
        // Two-variable interface exercises the chain factorisation.
        let sub = extract_submodel(&net, &[bias, out], &[vin, other]).unwrap();
        let flat = VariableElimination::new(&net)
            .joint_marginal(&Evidence::new(), &[vin, other])
            .unwrap()
            .reorder(&[vin, other])
            .unwrap();
        let s_vin = sub.project(vin).unwrap();
        let s_other = sub.project(other).unwrap();
        let got = VariableElimination::new(&sub.network)
            .joint_marginal(&Evidence::new(), &[s_vin, s_other])
            .unwrap()
            .reorder(&[s_vin, s_other])
            .unwrap();
        for (a, b) in flat.values().iter().zip(got.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn contract_violations_are_rejected() {
        let (net, vin, bias, out, other) = chain_net();
        // Missing parent: `out` kept without `bias` or an interface entry.
        assert!(extract_submodel(&net, &[out], &[vin]).is_err());
        // Interface var descends from the block.
        assert!(extract_submodel(&net, &[vin, bias], &[other, out]).is_err());
        // Overlap between block and interface.
        assert!(extract_submodel(&net, &[bias, out], &[vin, bias]).is_err());
        // Empty block.
        assert!(extract_submodel(&net, &[], &[vin]).is_err());
    }
}
