//! Most-probable-explanation (MPE) and maximum-a-posteriori (MAP) queries,
//! plus the batch posterior entry point used by the serving layers.

use crate::error::{Error, Result};
use crate::evidence::Evidence;
use crate::factor::Factor;
use crate::graph::{elimination_order, OrderingHeuristic, UndirectedGraph};
use crate::infer::{JunctionTree, Posteriors, VariableElimination};
use crate::network::{Network, VarId};

/// Runs many independent evidence sets (one per board under test) against
/// one compiled junction tree, in parallel, with per-thread reusable
/// buffers. Results come back in input order and each board fails or
/// succeeds independently — exactly the semantics of
/// [`JunctionTree::posteriors_batch`], re-exported here as the query-layer
/// entry point the diagnosis stack (`abbd-core`, `abbd-designs`) builds on.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::{query_batch, Evidence, JunctionTree, NetworkBuilder};
///
/// let mut b = NetworkBuilder::new();
/// let x = b.variable("x", ["0", "1"])?;
/// let y = b.variable("y", ["0", "1"])?;
/// b.prior(x, [0.6, 0.4])?;
/// b.cpt(y, [x], [[0.9, 0.1], [0.2, 0.8]])?;
/// let jt = JunctionTree::compile(&b.build()?)?;
///
/// let boards: Vec<Evidence> = (0..2)
///     .map(|s| { let mut e = Evidence::new(); e.observe(y, s); e })
///     .collect();
/// let posteriors = query_batch(&jt, &boards);
/// assert_eq!(posteriors.len(), 2);
/// assert!(posteriors.iter().all(Result::is_ok));
/// # Ok(())
/// # }
/// ```
pub fn query_batch(tree: &JunctionTree, evidences: &[Evidence]) -> Vec<Result<Posteriors>> {
    tree.posteriors_batch(evidences)
}

/// The outcome of an MPE query: a complete assignment plus its log joint
/// probability together with the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// One state per network variable, in declaration order.
    pub assignment: Vec<usize>,
    /// `ln max_x P(x, e)`.
    pub log_probability: f64,
}

/// Computes the most probable explanation: the single complete assignment
/// maximising `P(x, e)`, via max-product variable elimination with argmax
/// traceback.
///
/// # Errors
///
/// Returns [`Error::ImpossibleEvidence`] when `P(e) = 0`, plus evidence
/// validation errors.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::{most_probable_explanation, Evidence, NetworkBuilder};
///
/// let mut b = NetworkBuilder::new();
/// let x = b.variable("x", ["0", "1"])?;
/// let y = b.variable("y", ["0", "1"])?;
/// b.prior(x, [0.7, 0.3])?;
/// b.cpt(y, [x], [[0.9, 0.1], [0.2, 0.8]])?;
/// let net = b.build()?;
/// let mut e = Evidence::new();
/// e.observe(y, 1);
/// let mpe = most_probable_explanation(&net, &e)?;
/// assert_eq!(mpe.assignment, vec![1, 1]); // x=1 best explains y=1
/// # Ok(())
/// # }
/// ```
pub fn most_probable_explanation(net: &Network, evidence: &Evidence) -> Result<Explanation> {
    evidence.validate(net)?;

    let mut factors: Vec<Factor> = Vec::with_capacity(net.var_count());
    for var in net.variables() {
        let mut f = net.family_factor(var);
        if let Some(lik) = evidence.likelihood_of(var) {
            f.scale_axis(var, lik)?;
        }
        factors.push(f);
    }
    for (var, state) in evidence.hard_iter() {
        for f in &mut factors {
            if f.contains(var) {
                *f = f.condition(var, state)?;
            }
        }
    }

    let mut present = vec![false; net.var_count()];
    for f in &factors {
        for v in f.scope() {
            present[v.index()] = true;
        }
    }
    let targets: Vec<usize> = (0..net.var_count()).filter(|&i| present[i]).collect();
    let mut graph = UndirectedGraph::empty(net.var_count());
    for f in &factors {
        let scope = f.scope();
        for (i, a) in scope.iter().enumerate() {
            for b in &scope[i + 1..] {
                graph.add_edge(a.index(), b.index());
            }
        }
    }
    let topo: Vec<usize> = net.topological_order().iter().map(|v| v.index()).collect();
    let order = elimination_order(&graph, &targets, OrderingHeuristic::MinFill, &topo);

    // Eliminate with max-product, recording traceback tables.
    struct Step {
        var: VarId,
        scope: Vec<VarId>,
        cards: Vec<usize>,
        argmax: Vec<usize>,
    }
    let mut steps: Vec<Step> = Vec::with_capacity(order.len());
    for idx in &order {
        let var = VarId::from_index(*idx);
        let (touching, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.contains(var));
        factors = rest;
        let mut product = Factor::unit();
        for f in &touching {
            product = product.product(f);
        }
        let maxed = product.max_out(var)?;
        steps.push(Step {
            var,
            scope: maxed.factor.scope().to_vec(),
            cards: maxed.factor.cards().to_vec(),
            argmax: maxed.argmax,
        });
        factors.push(maxed.factor);
    }

    let mut remaining = Factor::unit();
    for f in &factors {
        remaining = remaining.product(f);
    }
    let best = remaining
        .values()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    if best <= 0.0 {
        return Err(Error::ImpossibleEvidence);
    }

    // Traceback in reverse elimination order.
    let mut assignment = vec![usize::MAX; net.var_count()];
    for (var, state) in evidence.hard_iter() {
        assignment[var.index()] = state;
    }
    for step in steps.iter().rev() {
        let mut idx = 0usize;
        for (pos, v) in step.scope.iter().enumerate() {
            let s = assignment[v.index()];
            debug_assert_ne!(s, usize::MAX, "traceback scope must already be assigned");
            idx = idx * step.cards[pos] + s;
        }
        assignment[step.var.index()] = step.argmax[idx];
    }
    // Variables absent from every factor (fully conditioned singletons) get
    // their CPT argmax given already-assigned parents.
    for &var in net.topological_order() {
        if assignment[var.index()] == usize::MAX {
            let parent_states: Vec<usize> = net
                .parents(var)
                .iter()
                .map(|p| assignment[p.index()])
                .collect();
            let row = net.cpt_row(var, &parent_states)?;
            let s = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("CPT has no NaN"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            assignment[var.index()] = s;
        }
    }

    Ok(Explanation {
        assignment,
        log_probability: best.ln(),
    })
}

/// Exact MAP over a small set of `targets`: marginalises everything else
/// out (sum-product) and maximises over the joint of the targets.
///
/// The runtime is exponential in `targets.len()`; intended for candidate
/// short-lists, not whole networks.
///
/// # Errors
///
/// Propagates [`VariableElimination::joint_marginal`] errors.
pub fn map_query(
    net: &Network,
    evidence: &Evidence,
    targets: &[VarId],
) -> Result<(Vec<usize>, f64)> {
    let ve = VariableElimination::new(net);
    let joint = ve.joint_marginal(evidence, targets)?;
    let (best_idx, best_p) = joint
        .values()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("marginal has no NaN"))
        .map(|(i, p)| (i, *p))
        .ok_or(Error::ImpossibleEvidence)?;
    Ok((joint.assignment_of(best_idx), best_p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn sprinkler() -> Network {
        let mut b = NetworkBuilder::new();
        let cloudy = b.variable("cloudy", ["n", "y"]).unwrap();
        let sprinkler = b.variable("sprinkler", ["n", "y"]).unwrap();
        let rain = b.variable("rain", ["n", "y"]).unwrap();
        let wet = b.variable("wet", ["n", "y"]).unwrap();
        b.prior(cloudy, [0.5, 0.5]).unwrap();
        b.cpt(sprinkler, [cloudy], [[0.5, 0.5], [0.9, 0.1]])
            .unwrap();
        b.cpt(rain, [cloudy], [[0.8, 0.2], [0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            [sprinkler, rain],
            [[1.0, 0.0], [0.1, 0.9], [0.1, 0.9], [0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    /// Brute-force MPE oracle.
    fn brute_mpe(net: &Network, evidence: &Evidence) -> (Vec<usize>, f64) {
        let cards: Vec<usize> = net.variables().map(|v| net.card(v)).collect();
        let total: usize = cards.iter().product();
        let mut best = (vec![], f64::NEG_INFINITY);
        let mut a = vec![0usize; cards.len()];
        for _ in 0..total {
            let mut ok = true;
            for (var, s) in evidence.hard_iter() {
                if a[var.index()] != s {
                    ok = false;
                    break;
                }
            }
            if ok {
                let mut p = net.joint_probability(&a).unwrap();
                for (var, lik) in evidence.soft_iter() {
                    p *= lik[a[var.index()]];
                }
                if p > best.1 {
                    best = (a.clone(), p);
                }
            }
            for pos in (0..cards.len()).rev() {
                a[pos] += 1;
                if a[pos] == cards[pos] {
                    a[pos] = 0;
                } else {
                    break;
                }
            }
        }
        best
    }

    #[test]
    fn mpe_matches_brute_force() {
        let net = sprinkler();
        let wet = net.var("wet").unwrap();
        for state in [0usize, 1] {
            let mut e = Evidence::new();
            e.observe(wet, state);
            let got = most_probable_explanation(&net, &e).unwrap();
            let (expect_a, expect_p) = brute_mpe(&net, &e);
            assert_eq!(got.assignment, expect_a, "wet={state}");
            assert!((got.log_probability - expect_p.ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn mpe_no_evidence() {
        let net = sprinkler();
        let got = most_probable_explanation(&net, &Evidence::new()).unwrap();
        let (expect_a, expect_p) = brute_mpe(&net, &Evidence::new());
        assert_eq!(got.assignment, expect_a);
        assert!((got.log_probability - expect_p.ln()).abs() < 1e-10);
    }

    #[test]
    fn mpe_with_soft_evidence() {
        let net = sprinkler();
        let rain = net.var("rain").unwrap();
        let mut e = Evidence::new();
        e.observe_likelihood(rain, vec![0.1, 5.0]);
        let got = most_probable_explanation(&net, &e).unwrap();
        let (expect_a, _) = brute_mpe(&net, &e);
        assert_eq!(got.assignment, expect_a);
    }

    #[test]
    fn mpe_fully_observed() {
        let net = sprinkler();
        let mut e = Evidence::new();
        for v in net.variables() {
            e.observe(v, 1);
        }
        let got = most_probable_explanation(&net, &e).unwrap();
        assert_eq!(got.assignment, vec![1, 1, 1, 1]);
        let expect = net.joint_probability(&[1, 1, 1, 1]).unwrap();
        assert!((got.log_probability - expect.ln()).abs() < 1e-10);
    }

    #[test]
    fn mpe_impossible_evidence() {
        let mut b = NetworkBuilder::new();
        let a = b.variable("a", ["0", "1"]).unwrap();
        let c = b.variable("c", ["0", "1"]).unwrap();
        b.prior(a, [1.0, 0.0]).unwrap();
        b.cpt(c, [a], [[1.0, 0.0], [0.0, 1.0]]).unwrap();
        let net = b.build().unwrap();
        let mut e = Evidence::new();
        e.observe(c, 1);
        assert!(matches!(
            most_probable_explanation(&net, &e),
            Err(Error::ImpossibleEvidence)
        ));
    }

    #[test]
    fn map_query_over_pair() {
        let net = sprinkler();
        let s = net.var("sprinkler").unwrap();
        let r = net.var("rain").unwrap();
        let wet = net.var("wet").unwrap();
        let mut e = Evidence::new();
        e.observe(wet, 1);
        let (states, p) = map_query(&net, &e, &[s, r]).unwrap();
        assert_eq!(states.len(), 2);
        assert!(p > 0.0 && p <= 1.0);
        // MAP of a single variable equals the posterior argmax.
        let ve = VariableElimination::new(&net);
        let post = ve.posterior(&e, r).unwrap();
        let (single, _) = map_query(&net, &e, &[r]).unwrap();
        let argmax = if post[1] > post[0] { 1 } else { 0 };
        assert_eq!(single[0], argmax);
    }
}
