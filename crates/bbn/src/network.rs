//! Bayesian-network structure and conditional probability tables.

use crate::error::{Error, Result};
use crate::factor::Factor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a network variable (a *model variable* in the paper's
/// terminology — one per functional block or stimulus pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(u32);

impl VarId {
    /// Builds a `VarId` from a raw index. Chiefly useful in tests and when
    /// constructing free-standing [`Factor`]s.
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }

    /// The underlying index into the network's variable list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One variable: name, state labels, parent set and CPT.
///
/// The CPT is stored flat: for each parent configuration (mixed-radix index
/// over the parents in declared order, **last parent fastest**), a
/// probability distribution over the variable's own states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    name: String,
    states: Vec<String>,
    parents: Vec<VarId>,
    cpt: Vec<f64>,
}

/// Incremental constructor for [`Network`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_bbn::Error> {
/// use abbd_bbn::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new();
/// let rain = b.variable("rain", ["no", "yes"])?;
/// let grass = b.variable("wet_grass", ["dry", "wet"])?;
/// b.prior(rain, [0.8, 0.2])?;
/// b.cpt(grass, [rain], [[0.9, 0.1], [0.2, 0.8]])?;
/// let net = b.build()?;
/// assert_eq!(net.var_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    nodes: Vec<Node>,
    by_name: HashMap<String, VarId>,
    cpt_set: Vec<bool>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable with the given state labels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateVariable`] for a repeated name and
    /// [`Error::TooFewStates`] when fewer than two states are given.
    pub fn variable<N, S, I>(&mut self, name: N, states: I) -> Result<VarId>
    where
        N: Into<String>,
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(Error::DuplicateVariable(name));
        }
        let states: Vec<String> = states.into_iter().map(Into::into).collect();
        if states.len() < 2 {
            return Err(Error::TooFewStates {
                variable: name,
                states: states.len(),
            });
        }
        let id = VarId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            states,
            parents: Vec::new(),
            cpt: Vec::new(),
        });
        self.cpt_set.push(false);
        Ok(id)
    }

    /// Sets a root (parentless) variable's prior distribution.
    ///
    /// # Errors
    ///
    /// Propagates the same validation as [`NetworkBuilder::cpt`].
    pub fn prior<I>(&mut self, var: VarId, dist: I) -> Result<()>
    where
        I: IntoIterator<Item = f64>,
    {
        let values: Vec<f64> = dist.into_iter().collect();
        self.cpt_flat(var, [], values)
    }

    /// Sets the CPT of `var` given `parents`, one row per parent
    /// configuration (last parent fastest).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCpt`] when the row count or row lengths do not
    /// match, rows do not sum to one, or entries are negative.
    pub fn cpt<P, R, V>(&mut self, var: VarId, parents: P, rows: R) -> Result<()>
    where
        P: IntoIterator<Item = VarId>,
        R: IntoIterator<Item = V>,
        V: IntoIterator<Item = f64>,
    {
        let flat: Vec<f64> = rows.into_iter().flat_map(|r| r.into_iter()).collect();
        self.cpt_flat(var, parents, flat)
    }

    /// Sets the CPT of `var` from an already-flat table.
    ///
    /// # Errors
    ///
    /// Same as [`NetworkBuilder::cpt`].
    pub fn cpt_flat<P>(&mut self, var: VarId, parents: P, values: Vec<f64>) -> Result<()>
    where
        P: IntoIterator<Item = VarId>,
    {
        let parents: Vec<VarId> = parents.into_iter().collect();
        let n = self.nodes.len();
        if var.index() >= n {
            return Err(Error::UnknownVariable(format!("{var}")));
        }
        for p in &parents {
            if p.index() >= n {
                return Err(Error::UnknownVariable(format!("{p}")));
            }
            if *p == var {
                return Err(Error::CycleDetected(self.nodes[var.index()].name.clone()));
            }
        }
        for (i, p) in parents.iter().enumerate() {
            if parents[i + 1..].contains(p) {
                return Err(Error::InvalidCpt {
                    variable: self.nodes[var.index()].name.clone(),
                    reason: format!("parent `{}` repeated", self.nodes[p.index()].name),
                });
            }
        }
        let card = self.nodes[var.index()].states.len();
        let configs: usize = parents
            .iter()
            .map(|p| self.nodes[p.index()].states.len())
            .product();
        validate_cpt(&self.nodes[var.index()].name, card, configs, &values)?;
        let node = &mut self.nodes[var.index()];
        node.parents = parents;
        node.cpt = values;
        self.cpt_set[var.index()] = true;
        Ok(())
    }

    /// Looks up a previously declared variable by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Finalises the network, verifying that every variable has a CPT and
    /// that the dependency graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCpt`] for missing CPTs and
    /// [`Error::CycleDetected`] for cyclic structures.
    pub fn build(self) -> Result<Network> {
        for (i, set) in self.cpt_set.iter().enumerate() {
            if !set {
                return Err(Error::InvalidCpt {
                    variable: self.nodes[i].name.clone(),
                    reason: "no CPT was set".into(),
                });
            }
        }
        let net = Network::from_nodes(self.nodes, self.by_name)?;
        Ok(net)
    }
}

/// A validated discrete Bayesian network: an acyclic directed graph of
/// variables, each with a conditional probability table.
///
/// `Network` is immutable except for [`Network::set_cpt_values`], which
/// parameter-learning algorithms use to install refreshed tables without
/// touching the structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    nodes: Vec<Node>,
    by_name: HashMap<String, VarId>,
    children: Vec<Vec<VarId>>,
    topo: Vec<VarId>,
}

impl Network {
    fn from_nodes(nodes: Vec<Node>, by_name: HashMap<String, VarId>) -> Result<Self> {
        let n = nodes.len();
        let mut children: Vec<Vec<VarId>> = vec![Vec::new(); n];
        for (i, node) in nodes.iter().enumerate() {
            for p in &node.parents {
                children[p.index()].push(VarId(i as u32));
            }
        }
        // Kahn's algorithm for a topological order; also detects cycles.
        let mut indegree: Vec<usize> = nodes.iter().map(|nd| nd.parents.len()).collect();
        let mut queue: Vec<VarId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| VarId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            topo.push(v);
            for &c in &children[v.index()] {
                indegree[c.index()] -= 1;
                if indegree[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            let stuck = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| nodes[i].name.clone())
                .unwrap_or_default();
            return Err(Error::CycleDetected(stuck));
        }
        Ok(Network {
            nodes,
            by_name,
            children,
            topo,
        })
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over all variable handles in declaration order.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.nodes.len()).map(|i| VarId(i as u32))
    }

    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Like [`Network::var`] but returns an error mentioning the name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownVariable`].
    pub fn require_var(&self, name: &str) -> Result<VarId> {
        self.var(name)
            .ok_or_else(|| Error::UnknownVariable(name.into()))
    }

    fn node(&self, var: VarId) -> &Node {
        &self.nodes[var.index()]
    }

    /// The variable's name.
    pub fn name(&self, var: VarId) -> &str {
        &self.node(var).name
    }

    /// The variable's state labels.
    pub fn states(&self, var: VarId) -> &[String] {
        &self.node(var).states
    }

    /// Number of states (cardinality).
    pub fn card(&self, var: VarId) -> usize {
        self.node(var).states.len()
    }

    /// Index of the named state of `var`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidEvidence`] when the label is unknown.
    pub fn state_index(&self, var: VarId, label: &str) -> Result<usize> {
        self.node(var)
            .states
            .iter()
            .position(|s| s == label)
            .ok_or_else(|| Error::InvalidEvidence {
                variable: self.name(var).into(),
                reason: format!("unknown state label `{label}`"),
            })
    }

    /// The declared parents of `var`.
    pub fn parents(&self, var: VarId) -> &[VarId] {
        &self.node(var).parents
    }

    /// The children of `var` (derived at build time).
    pub fn children(&self, var: VarId) -> &[VarId] {
        &self.children[var.index()]
    }

    /// The family of `var`: its parents followed by the variable itself.
    pub fn family(&self, var: VarId) -> Vec<VarId> {
        let mut fam = self.node(var).parents.clone();
        fam.push(var);
        fam
    }

    /// The flat CPT of `var`: one row per parent configuration (last
    /// parent fastest), each row a distribution over the variable's states.
    pub fn cpt(&self, var: VarId) -> &[f64] {
        &self.node(var).cpt
    }

    /// Number of parent configurations of `var`.
    pub fn parent_configs(&self, var: VarId) -> usize {
        self.node(var)
            .parents
            .iter()
            .map(|p| self.card(*p))
            .product()
    }

    /// The CPT row (distribution over `var`'s states) for a parent
    /// configuration given as one state per parent, in parent order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] or [`Error::InvalidEvidence`] on a
    /// malformed configuration.
    pub fn cpt_row(&self, var: VarId, parent_states: &[usize]) -> Result<&[f64]> {
        let node = self.node(var);
        if parent_states.len() != node.parents.len() {
            return Err(Error::ShapeMismatch {
                expected: node.parents.len(),
                actual: parent_states.len(),
            });
        }
        let mut config = 0usize;
        for (p, &s) in node.parents.iter().zip(parent_states) {
            let c = self.card(*p);
            if s >= c {
                return Err(Error::InvalidEvidence {
                    variable: self.name(*p).into(),
                    reason: format!("state {s} out of range {c}"),
                });
            }
            config = config * c + s;
        }
        let card = node.states.len();
        Ok(&node.cpt[config * card..(config + 1) * card])
    }

    /// Replaces the CPT values of `var` without changing structure; used by
    /// the learning algorithms.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidCpt`] when shape or normalisation is wrong.
    pub fn set_cpt_values(&mut self, var: VarId, values: Vec<f64>) -> Result<()> {
        let card = self.card(var);
        let configs = self.parent_configs(var);
        validate_cpt(&self.node(var).name.clone(), card, configs, &values)?;
        self.nodes[var.index()].cpt = values;
        Ok(())
    }

    /// The family factor of `var`: a [`Factor`] over `parents(var) ++ [var]`
    /// holding `P(var | parents)`.
    pub fn family_factor(&self, var: VarId) -> Factor {
        let node = self.node(var);
        let mut scope = node.parents.clone();
        scope.push(var);
        let cards: Vec<usize> = scope.iter().map(|v| self.card(*v)).collect();
        // CPT layout (parent configs outer, child fastest) is exactly
        // row-major over `parents ++ [var]`, so the values can be reused.
        Factor::new(scope, cards, node.cpt.clone())
            .expect("validated CPT always forms a well-shaped factor")
    }

    /// A topological order of the variables (parents before children).
    pub fn topological_order(&self) -> &[VarId] {
        &self.topo
    }

    /// Joint probability of a complete assignment (one state per variable,
    /// in declaration order).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] or [`Error::InvalidEvidence`] on a
    /// malformed assignment.
    pub fn joint_probability(&self, assignment: &[usize]) -> Result<f64> {
        if assignment.len() != self.nodes.len() {
            return Err(Error::ShapeMismatch {
                expected: self.nodes.len(),
                actual: assignment.len(),
            });
        }
        let mut p = 1.0;
        for v in self.variables() {
            let parent_states: Vec<usize> = self
                .parents(v)
                .iter()
                .map(|p| assignment[p.index()])
                .collect();
            let row = self.cpt_row(v, &parent_states)?;
            let s = assignment[v.index()];
            if s >= row.len() {
                return Err(Error::InvalidEvidence {
                    variable: self.name(v).into(),
                    reason: format!("state {s} out of range {}", row.len()),
                });
            }
            p *= row[s];
        }
        Ok(p)
    }

    /// Renders the structure in Graphviz DOT syntax.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph bbn {\n  rankdir=TB;\n");
        for v in self.variables() {
            out.push_str(&format!("  \"{}\";\n", self.name(v)));
        }
        for v in self.variables() {
            for p in self.parents(v) {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\";\n",
                    self.name(*p),
                    self.name(v)
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Serialises the network to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on serialisation failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| Error::Io(e.to_string()))
    }

    /// Restores a network from [`Network::to_json`] output, re-validating
    /// structure and CPTs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on parse failure or the usual validation errors.
    pub fn from_json(text: &str) -> Result<Self> {
        let raw: Network = serde_json::from_str(text).map_err(|e| Error::Io(e.to_string()))?;
        // Re-validate: rebuild derived fields instead of trusting the file.
        let mut by_name = HashMap::new();
        for (i, node) in raw.nodes.iter().enumerate() {
            if by_name.insert(node.name.clone(), VarId(i as u32)).is_some() {
                return Err(Error::DuplicateVariable(node.name.clone()));
            }
            let configs: usize = node
                .parents
                .iter()
                .map(|p| raw.nodes[p.index()].states.len())
                .product();
            validate_cpt(&node.name, node.states.len(), configs, &node.cpt)?;
        }
        Network::from_nodes(raw.nodes, by_name)
    }
}

/// Checks that `values` is a well-formed CPT: `configs` rows of `card`
/// non-negative entries, each row summing to one (within tolerance).
fn validate_cpt(name: &str, card: usize, configs: usize, values: &[f64]) -> Result<()> {
    let expected = card * configs;
    if values.len() != expected {
        return Err(Error::InvalidCpt {
            variable: name.into(),
            reason: format!("expected {expected} values, got {}", values.len()),
        });
    }
    for (r, row) in values.chunks(card).enumerate() {
        let mut sum = 0.0;
        for &v in row {
            if !v.is_finite() || v < 0.0 {
                return Err(Error::InvalidCpt {
                    variable: name.into(),
                    reason: format!("row {r} has non-finite or negative entry {v}"),
                });
            }
            sum += v;
        }
        if (sum - 1.0).abs() > 1e-6 {
            return Err(Error::InvalidCpt {
                variable: name.into(),
                reason: format!("row {r} sums to {sum}, expected 1"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic sprinkler network used across this crate's tests.
    pub(crate) fn sprinkler() -> Network {
        let mut b = NetworkBuilder::new();
        let cloudy = b.variable("cloudy", ["no", "yes"]).unwrap();
        let sprinkler = b.variable("sprinkler", ["off", "on"]).unwrap();
        let rain = b.variable("rain", ["no", "yes"]).unwrap();
        let wet = b.variable("wet", ["dry", "wet"]).unwrap();
        b.prior(cloudy, [0.5, 0.5]).unwrap();
        b.cpt(sprinkler, [cloudy], [[0.5, 0.5], [0.9, 0.1]])
            .unwrap();
        b.cpt(rain, [cloudy], [[0.8, 0.2], [0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            [sprinkler, rain],
            [[1.0, 0.0], [0.1, 0.9], [0.1, 0.9], [0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let net = sprinkler();
        assert_eq!(net.var_count(), 4);
        let wet = net.var("wet").unwrap();
        assert_eq!(net.name(wet), "wet");
        assert_eq!(net.states(wet), &["dry".to_string(), "wet".to_string()]);
        assert_eq!(net.card(wet), 2);
        assert_eq!(net.parents(wet).len(), 2);
        assert!(net.var("nope").is_none());
        assert!(net.require_var("nope").is_err());
        assert_eq!(net.state_index(wet, "wet").unwrap(), 1);
        assert!(net.state_index(wet, "soggy").is_err());
    }

    #[test]
    fn children_are_derived() {
        let net = sprinkler();
        let cloudy = net.var("cloudy").unwrap();
        let mut kids: Vec<&str> = net.children(cloudy).iter().map(|v| net.name(*v)).collect();
        kids.sort_unstable();
        assert_eq!(kids, vec!["rain", "sprinkler"]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let net = sprinkler();
        let order = net.topological_order();
        let pos = |name: &str| order.iter().position(|v| net.name(*v) == name).unwrap();
        assert!(pos("cloudy") < pos("sprinkler"));
        assert!(pos("cloudy") < pos("rain"));
        assert!(pos("sprinkler") < pos("wet"));
        assert!(pos("rain") < pos("wet"));
    }

    #[test]
    fn rejects_duplicate_and_single_state() {
        let mut b = NetworkBuilder::new();
        b.variable("x", ["a", "b"]).unwrap();
        assert!(matches!(
            b.variable("x", ["a", "b"]),
            Err(Error::DuplicateVariable(_))
        ));
        assert!(matches!(
            b.variable("y", ["only"]),
            Err(Error::TooFewStates { .. })
        ));
    }

    #[test]
    fn rejects_unnormalised_cpt() {
        let mut b = NetworkBuilder::new();
        let x = b.variable("x", ["a", "b"]).unwrap();
        assert!(b.prior(x, [0.5, 0.6]).is_err());
        assert!(b.prior(x, [0.5]).is_err());
        assert!(b.prior(x, [-0.5, 1.5]).is_err());
        b.prior(x, [0.25, 0.75]).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_missing_cpt() {
        let mut b = NetworkBuilder::new();
        b.variable("x", ["a", "b"]).unwrap();
        assert!(matches!(b.build(), Err(Error::InvalidCpt { .. })));
    }

    #[test]
    fn rejects_self_loop_and_cycle() {
        let mut b = NetworkBuilder::new();
        let x = b.variable("x", ["a", "b"]).unwrap();
        assert!(b.cpt(x, [x], [[0.5, 0.5], [0.5, 0.5]]).is_err());

        let mut b = NetworkBuilder::new();
        let x = b.variable("x", ["a", "b"]).unwrap();
        let y = b.variable("y", ["a", "b"]).unwrap();
        b.cpt(x, [y], [[0.5, 0.5], [0.5, 0.5]]).unwrap();
        b.cpt(y, [x], [[0.5, 0.5], [0.5, 0.5]]).unwrap();
        assert!(matches!(b.build(), Err(Error::CycleDetected(_))));
    }

    #[test]
    fn cpt_row_indexing() {
        let net = sprinkler();
        let wet = net.var("wet").unwrap();
        // parents: sprinkler, rain; last parent fastest.
        assert_eq!(net.cpt_row(wet, &[0, 0]).unwrap(), &[1.0, 0.0]);
        assert_eq!(net.cpt_row(wet, &[0, 1]).unwrap(), &[0.1, 0.9]);
        assert_eq!(net.cpt_row(wet, &[1, 0]).unwrap(), &[0.1, 0.9]);
        assert_eq!(net.cpt_row(wet, &[1, 1]).unwrap(), &[0.01, 0.99]);
        assert!(net.cpt_row(wet, &[0]).is_err());
        assert!(net.cpt_row(wet, &[0, 5]).is_err());
    }

    #[test]
    fn family_factor_matches_cpt() {
        let net = sprinkler();
        let wet = net.var("wet").unwrap();
        let f = net.family_factor(wet);
        assert_eq!(f.scope().len(), 3);
        assert_eq!(f.values(), net.cpt(wet));
        // Summing the child out of a CPT factor yields all-ones.
        let ones = f.sum_out(wet).unwrap();
        for v in ones.values() {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn joint_probability_chain_rule() {
        let net = sprinkler();
        // P(cloudy=1, sprinkler=0, rain=1, wet=1) = .5 * .9 * .8 * .9
        let p = net.joint_probability(&[1, 0, 1, 1]).unwrap();
        assert!((p - 0.5 * 0.9 * 0.8 * 0.9).abs() < 1e-12);
        // All assignments sum to 1.
        let mut total = 0.0;
        for idx in 0..16 {
            let a = [(idx >> 3) & 1, (idx >> 2) & 1, (idx >> 1) & 1, idx & 1];
            total += net.joint_probability(&a).unwrap();
        }
        assert!((total - 1.0).abs() < 1e-9);
        assert!(net.joint_probability(&[0, 0]).is_err());
    }

    #[test]
    fn set_cpt_values_validates() {
        let mut net = sprinkler();
        let rain = net.var("rain").unwrap();
        assert!(net.set_cpt_values(rain, vec![0.3, 0.7, 0.6, 0.4]).is_ok());
        assert_eq!(net.cpt(rain), &[0.3, 0.7, 0.6, 0.4]);
        assert!(net.set_cpt_values(rain, vec![0.3, 0.7]).is_err());
        assert!(net.set_cpt_values(rain, vec![0.3, 0.8, 0.6, 0.4]).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let net = sprinkler();
        let text = net.to_json().unwrap();
        let back = Network::from_json(&text).unwrap();
        assert_eq!(net, back);
        assert!(Network::from_json("{not json").is_err());
    }

    #[test]
    fn dot_mentions_every_edge() {
        let net = sprinkler();
        let dot = net.to_dot();
        assert!(dot.contains("\"cloudy\" -> \"rain\""));
        assert!(dot.contains("\"sprinkler\" -> \"wet\""));
    }
}
