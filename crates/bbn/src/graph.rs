//! Graph algorithms over network structure: moralisation, elimination
//! orderings, ancestor queries and d-separation.

use crate::network::{Network, VarId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// An undirected graph over the network's variables, as adjacency sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedGraph {
    adj: Vec<BTreeSet<usize>>,
}

impl UndirectedGraph {
    /// An edgeless graph over `n` vertices.
    pub fn empty(n: usize) -> Self {
        UndirectedGraph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge (self-loops are ignored).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a != b {
            self.adj[a].insert(b);
            self.adj[b].insert(a);
        }
    }

    /// `true` when `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// The neighbour set of `a`.
    pub fn neighbors(&self, a: usize) -> &BTreeSet<usize> {
        &self.adj[a]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Eliminates vertex `v`: marries all of its neighbours pairwise
    /// (fill-in), then removes `v` and its incident edges. This is the core
    /// step of triangulation; the fill-in edges make the final graph chordal.
    pub fn eliminate(&mut self, v: usize) {
        let nbrs: Vec<usize> = self.adj[v].iter().copied().collect();
        for (i, a) in nbrs.iter().enumerate() {
            for b in &nbrs[i + 1..] {
                self.add_edge(*a, *b);
            }
        }
        for n in nbrs {
            self.adj[n].remove(&v);
        }
        self.adj[v].clear();
    }
}

/// The moral graph: parents of a common child are married, directions
/// dropped. This is the first step of junction-tree compilation.
pub fn moral_graph(net: &Network) -> UndirectedGraph {
    let n = net.var_count();
    let mut g = UndirectedGraph::empty(n);
    for v in net.variables() {
        let parents = net.parents(v);
        for p in parents {
            g.add_edge(p.index(), v.index());
        }
        for (i, a) in parents.iter().enumerate() {
            for b in &parents[i + 1..] {
                g.add_edge(a.index(), b.index());
            }
        }
    }
    g
}

/// Heuristics for choosing an elimination ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingHeuristic {
    /// Eliminate the vertex introducing the fewest fill-in edges (ties by
    /// smaller resulting clique). Usually the best choice.
    #[default]
    MinFill,
    /// Eliminate the vertex with the fewest neighbours.
    MinDegree,
    /// Reverse topological order (children first); cheap but often poor.
    ReverseTopological,
}

/// Computes an elimination ordering of `targets` (vertex indices) on an
/// undirected graph, using the given heuristic. The graph is not modified;
/// fill-in is simulated internally.
pub fn elimination_order(
    graph: &UndirectedGraph,
    targets: &[usize],
    heuristic: OrderingHeuristic,
    topo_hint: &[usize],
) -> Vec<usize> {
    match heuristic {
        OrderingHeuristic::ReverseTopological => {
            let set: HashSet<usize> = targets.iter().copied().collect();
            let mut order: Vec<usize> = topo_hint
                .iter()
                .copied()
                .filter(|i| set.contains(i))
                .collect();
            order.reverse();
            // Any targets missing from the hint go last, in index order.
            for &t in targets {
                if !order.contains(&t) {
                    order.push(t);
                }
            }
            order
        }
        OrderingHeuristic::MinFill | OrderingHeuristic::MinDegree => {
            let mut work = graph.clone();
            let mut remaining: BTreeSet<usize> = targets.iter().copied().collect();
            let mut order = Vec::with_capacity(remaining.len());
            while !remaining.is_empty() {
                let best = *remaining
                    .iter()
                    .min_by_key(|&&v| match heuristic {
                        OrderingHeuristic::MinFill => {
                            (fill_in_count(&work, v), work.neighbors(v).len(), v)
                        }
                        OrderingHeuristic::MinDegree => {
                            (work.neighbors(v).len(), fill_in_count(&work, v), v)
                        }
                        OrderingHeuristic::ReverseTopological => unreachable!(),
                    })
                    .expect("remaining is non-empty");
                eliminate_vertex(&mut work, best);
                remaining.remove(&best);
                order.push(best);
            }
            order
        }
    }
}

/// Number of fill-in edges that eliminating `v` would introduce.
fn fill_in_count(g: &UndirectedGraph, v: usize) -> usize {
    let nbrs: Vec<usize> = g.neighbors(v).iter().copied().collect();
    let mut count = 0;
    for (i, a) in nbrs.iter().enumerate() {
        for b in &nbrs[i + 1..] {
            if !g.has_edge(*a, *b) {
                count += 1;
            }
        }
    }
    count
}

/// Connects all neighbours of `v` pairwise, then removes `v` from the graph.
fn eliminate_vertex(g: &mut UndirectedGraph, v: usize) {
    g.eliminate(v);
}

/// All ancestors of `vars` (excluding the variables themselves unless they
/// are ancestors of one another).
pub fn ancestors(net: &Network, vars: &[VarId]) -> HashSet<VarId> {
    let mut out = HashSet::new();
    let mut stack: Vec<VarId> = vars.to_vec();
    while let Some(v) = stack.pop() {
        for &p in net.parents(v) {
            if out.insert(p) {
                stack.push(p);
            }
        }
    }
    out
}

/// All descendants of `var` (excluding `var` itself).
pub fn descendants(net: &Network, var: VarId) -> HashSet<VarId> {
    let mut out = HashSet::new();
    let mut stack = vec![var];
    while let Some(v) = stack.pop() {
        for &c in net.children(v) {
            if out.insert(c) {
                stack.push(c);
            }
        }
    }
    out
}

/// Tests whether `x` and `y` are d-separated given conditioning set `z`,
/// using the reachability ("Bayes ball") algorithm of Koller & Friedman
/// (Alg. 3.1): `true` means every active trail is blocked, i.e.
/// `X ⟂ Y | Z` holds in *every* distribution that factorises over the DAG.
pub fn d_separated(net: &Network, x: VarId, y: VarId, z: &[VarId]) -> bool {
    if x == y {
        return false;
    }
    let zset: HashSet<VarId> = z.iter().copied().collect();
    if zset.contains(&x) || zset.contains(&y) {
        // Conditioning on an endpoint blocks everything by convention.
        return true;
    }
    // Phase 1: ancestors of Z (needed for v-structure activation).
    let mut z_ancestors = ancestors(net, z);
    for &v in z {
        z_ancestors.insert(v);
    }
    // Phase 2: BFS over (node, direction) states. Direction `Up` means we
    // arrived from a child (travelling towards parents), `Down` from a
    // parent (travelling towards children).
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Dir {
        Up,
        Down,
    }
    let mut visited: HashSet<(VarId, Dir)> = HashSet::new();
    let mut queue: VecDeque<(VarId, Dir)> = VecDeque::new();
    queue.push_back((x, Dir::Up));
    while let Some((v, dir)) = queue.pop_front() {
        if !visited.insert((v, dir)) {
            continue;
        }
        if v == y {
            return false; // reached Y via an active trail
        }
        let in_z = zset.contains(&v);
        match dir {
            Dir::Up => {
                if !in_z {
                    for &p in net.parents(v) {
                        queue.push_back((p, Dir::Up));
                    }
                    for &c in net.children(v) {
                        queue.push_back((c, Dir::Down));
                    }
                }
            }
            Dir::Down => {
                if !in_z {
                    for &c in net.children(v) {
                        queue.push_back((c, Dir::Down));
                    }
                }
                if z_ancestors.contains(&v) {
                    // v-structure: observed descendant activates the trail.
                    for &p in net.parents(v) {
                        queue.push_back((p, Dir::Up));
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    /// cloudy -> sprinkler, cloudy -> rain, {sprinkler, rain} -> wet
    fn sprinkler() -> Network {
        let mut b = NetworkBuilder::new();
        let cloudy = b.variable("cloudy", ["n", "y"]).unwrap();
        let sprinkler = b.variable("sprinkler", ["n", "y"]).unwrap();
        let rain = b.variable("rain", ["n", "y"]).unwrap();
        let wet = b.variable("wet", ["n", "y"]).unwrap();
        b.prior(cloudy, [0.5, 0.5]).unwrap();
        b.cpt(sprinkler, [cloudy], [[0.5, 0.5], [0.9, 0.1]])
            .unwrap();
        b.cpt(rain, [cloudy], [[0.8, 0.2], [0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            [sprinkler, rain],
            [[1.0, 0.0], [0.1, 0.9], [0.1, 0.9], [0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn moral_graph_marries_parents() {
        let net = sprinkler();
        let g = moral_graph(&net);
        let s = net.var("sprinkler").unwrap().index();
        let r = net.var("rain").unwrap().index();
        let w = net.var("wet").unwrap().index();
        let c = net.var("cloudy").unwrap().index();
        assert!(g.has_edge(s, r), "co-parents must be married");
        assert!(g.has_edge(s, w));
        assert!(g.has_edge(r, w));
        assert!(g.has_edge(c, s));
        assert!(g.has_edge(c, r));
        assert!(!g.has_edge(c, w));
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn elimination_orders_cover_targets() {
        let net = sprinkler();
        let g = moral_graph(&net);
        let targets: Vec<usize> = (0..net.var_count()).collect();
        let topo: Vec<usize> = net.topological_order().iter().map(|v| v.index()).collect();
        for h in [
            OrderingHeuristic::MinFill,
            OrderingHeuristic::MinDegree,
            OrderingHeuristic::ReverseTopological,
        ] {
            let order = elimination_order(&g, &targets, h, &topo);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, targets, "{h:?} must be a permutation of targets");
        }
    }

    #[test]
    fn min_fill_prefers_simplicial_vertices() {
        // A path a - b - c: endpoints have zero fill-in, the middle has one.
        let mut g = UndirectedGraph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let order = elimination_order(&g, &[0, 1, 2], OrderingHeuristic::MinFill, &[]);
        assert_ne!(order[0], 1, "middle vertex has fill-in, must not go first");
    }

    #[test]
    fn ancestors_and_descendants() {
        let net = sprinkler();
        let c = net.var("cloudy").unwrap();
        let w = net.var("wet").unwrap();
        let anc = ancestors(&net, &[w]);
        assert_eq!(anc.len(), 3);
        assert!(anc.contains(&c));
        let desc = descendants(&net, c);
        assert_eq!(desc.len(), 3);
        assert!(desc.contains(&w));
        assert!(descendants(&net, w).is_empty());
    }

    #[test]
    fn d_separation_sprinkler_facts() {
        let net = sprinkler();
        let c = net.var("cloudy").unwrap();
        let s = net.var("sprinkler").unwrap();
        let r = net.var("rain").unwrap();
        let w = net.var("wet").unwrap();

        // Marginally, sprinkler and rain are dependent through cloudy.
        assert!(!d_separated(&net, s, r, &[]));
        // Conditioning on cloudy separates them (no common effect observed).
        assert!(d_separated(&net, s, r, &[c]));
        // Observing the common effect re-activates the v-structure.
        assert!(!d_separated(&net, s, r, &[c, w]));
        // Cloudy and wet are dependent, but blocked by both middle nodes.
        assert!(!d_separated(&net, c, w, &[]));
        assert!(!d_separated(&net, c, w, &[s]));
        assert!(d_separated(&net, c, w, &[s, r]));
        // Self and endpoint conventions.
        assert!(!d_separated(&net, c, c, &[]));
        assert!(d_separated(&net, c, w, &[w]));
    }

    #[test]
    fn undirected_graph_basics() {
        let mut g = UndirectedGraph::empty(3);
        assert!(g.is_empty() || g.len() == 3);
        g.add_edge(0, 0); // ignored
        assert_eq!(g.edge_count(), 0);
        g.add_edge(0, 2);
        g.add_edge(0, 2); // idempotent
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0).len(), 1);
    }
}
