//! Population samplers: labelled scenarios for *any* model through one
//! API, plus the circuit-backed failing-population pipeline.
//!
//! Two sampling levels, one library:
//!
//! * **Model-level** ([`sample_model_population`]) works for every
//!   fitted model — regulator, 100-variable board, or a served bundle —
//!   by forcing a library-sampled latent into its fault state and
//!   ancestral-sampling the rest of the network. Each draw is a
//!   [`ModelScenario`]: a full ground-truth assignment, the fault label,
//!   and the observation a no-stop-on-fail datalog would produce.
//! * **Device-level** ([`synthesize_failing`]) drives the behavioural
//!   circuit and virtual ATE: sample a defective device from the
//!   library's universe, test it, keep it if it fails, convert datalogs
//!   to cases — the paper's "customer returns" flow, generalised out of
//!   the regulator module so any circuit-backed design can use it.
//!
//! Every sampler takes an explicit seed and mixes indices with the
//! crate's golden-ratio constant (`SEED_MIX`); outputs are
//! byte-reproducible across runs and across debug/release builds.

use crate::error::{Error, Result};
use crate::faults::FaultLibrary;
use crate::SEED_MIX;
use abbd_ate::{test_population, DeviceLog, NoiseModel, TestProgram};
use abbd_bbn::Network;
use abbd_blocks::{sample_defective_devices, Circuit, Device, FaultUniverse};
use abbd_core::{Action, CircuitModel, DiagnosticModel, Observation, Outcome};
use abbd_dlog2bbn::{generate_cases, CaseMapping, GenerationStats, ModelSpec, NamedCase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The seeded fault of a model-level scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultLabel {
    /// The faulted latent block.
    pub block: String,
    /// The library tag (`"block:mode"`).
    pub tag: String,
    /// The latent state the fault manifests as.
    pub state: usize,
}

/// One labelled scenario over a model: ground truth for every variable,
/// the seeded fault, and a deterministic name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelScenario {
    /// Deterministic scenario name (`"s{index}_{block}"`).
    pub name: String,
    /// The seeded fault (`None` for healthy draws).
    pub fault: Option<FaultLabel>,
    /// Ground-truth state of every model variable.
    pub truth: BTreeMap<String, usize>,
}

impl ModelScenario {
    /// The observation a full no-stop-on-fail pass over this scenario
    /// produces: every control and observable pinned to its ground-truth
    /// state, with observables in a fault state marked failing.
    pub fn observation(&self, model: &CircuitModel) -> Observation {
        let mut obs = Observation::new();
        for var in model.spec().variables() {
            if !(var.ftype.is_control() || var.ftype.is_observable()) {
                continue;
            }
            let Some(&state) = self.truth.get(&var.name) else {
                continue;
            };
            obs.set(var.name.clone(), state);
            if var.ftype.is_observable() && model.fault_states(&var.name).contains(&state) {
                obs.mark_failing(var.name.clone());
            }
        }
        obs
    }
}

/// Resolves each variable's state in network topological order: forced
/// variables keep their state, everything else takes `pick`'s choice
/// from its CPT row given the already-resolved parents.
fn propagate_truth<F>(
    network: &Network,
    forced: &[(String, usize)],
    mut pick: F,
) -> Result<BTreeMap<String, usize>>
where
    F: FnMut(&[f64]) -> usize,
{
    let mut states: Vec<Option<usize>> = vec![None; network.var_count()];
    let mut forced_by_var: Vec<Option<usize>> = vec![None; network.var_count()];
    for (name, state) in forced {
        let var = network.require_var(name)?;
        forced_by_var[var.index()] = Some(*state);
    }
    let mut parent_states: Vec<usize> = Vec::new();
    for &var in network.topological_order() {
        let state = if let Some(state) = forced_by_var[var.index()] {
            state
        } else {
            parent_states.clear();
            for &p in network.parents(var) {
                parent_states
                    .push(states[p.index()].expect("topological order resolves parents first"));
            }
            let row = network.cpt_row(var, &parent_states)?;
            pick(row)
        };
        states[var.index()] = Some(state);
    }
    Ok(network
        .variables()
        .map(|v| {
            (
                network.name(v).to_string(),
                states[v.index()].expect("all variables resolved"),
            )
        })
        .collect())
}

/// The *most likely* ground-truth assignment given forced variables:
/// every unforced variable takes the argmax of its CPT row given its
/// (already resolved) parents. Deterministic — this is how archetype
/// scenarios (the board's "d1", golden-trace seeds) are built from a
/// fault injection instead of by hand.
///
/// # Errors
///
/// Returns [`Error::Core`]/[`Error::Scenario`] for unknown forced
/// variables or out-of-range states.
pub fn most_likely_truth(
    network: &Network,
    forced: &[(String, usize)],
) -> Result<BTreeMap<String, usize>> {
    propagate_truth(network, forced, |row| {
        let mut best = 0usize;
        for (s, &p) in row.iter().enumerate() {
            if p > row[best] {
                best = s;
            }
        }
        best
    })
}

/// One *sampled* ground-truth assignment given forced variables:
/// ancestral sampling from each CPT row. Deterministic for a fixed RNG —
/// this is how labelled fleets acquire natural per-device variation.
///
/// # Errors
///
/// Returns [`Error::Core`]/[`Error::Scenario`] for unknown forced
/// variables or out-of-range states.
pub fn sample_truth<R: Rng + ?Sized>(
    network: &Network,
    forced: &[(String, usize)],
    rng: &mut R,
) -> Result<BTreeMap<String, usize>> {
    propagate_truth(network, forced, |row| {
        let draw = rng.gen::<f64>();
        let mut acc = 0.0;
        for (s, &p) in row.iter().enumerate() {
            acc += p;
            if draw < acc {
                return s;
            }
        }
        row.len().saturating_sub(1)
    })
}

/// Samples `n` labelled scenarios over any fitted model: each draw picks
/// a weighted fault entry from the library, forces the target latent
/// into its fault state on top of the supplied control assignment, and
/// ancestral-samples the remaining variables. Works identically for the
/// regulator and the 100-variable board — the model is the only input
/// that changes.
///
/// Deterministic for a fixed `seed`: scenario `i` draws from a stream
/// seeded with `seed ^ (i · SEED_MIX)`, so populations are stable under
/// re-ordering and across builds.
///
/// # Errors
///
/// Returns [`Error::Scenario`] when the library has no device entries,
/// and propagates model/spec lookup failures.
pub fn sample_model_population(
    model: &DiagnosticModel,
    library: &FaultLibrary,
    controls: &[(String, usize)],
    n: usize,
    seed: u64,
) -> Result<Vec<ModelScenario>> {
    let circuit_model = model.circuit_model();
    let mut scenarios = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(SEED_MIX));
        let entry = library
            .sample_model_entry(&mut rng)
            .ok_or_else(|| Error::Scenario("fault library has no device entries".into()))?;
        let state = library.model_state_of(circuit_model, entry);
        circuit_model.spec().require(&entry.target)?;
        let mut forced: Vec<(String, usize)> = controls.to_vec();
        forced.push((entry.target.clone(), state));
        let truth = sample_truth(model.network(), &forced, &mut rng)?;
        scenarios.push(ModelScenario {
            name: format!("s{i:03}_{}", entry.target),
            fault: Some(FaultLabel {
                block: entry.target.clone(),
                tag: entry.tag(),
                state,
            }),
            truth,
        });
    }
    Ok(scenarios)
}

/// A measurement oracle answering from a scenario's ground truth: tests
/// and probes read the truth map, and the failing flag follows the
/// model's fault states. The generic replacement for hand-written
/// per-design executors in closed-loop (`DiagnosisSession::run`) tests.
pub fn scenario_executor(
    model: &CircuitModel,
    scenario: &ModelScenario,
) -> impl FnMut(&Action) -> abbd_core::Result<Outcome> {
    let truth = scenario.truth.clone();
    let fault_states: BTreeMap<String, Vec<usize>> = truth
        .keys()
        .map(|name| (name.clone(), model.fault_states(name)))
        .collect();
    move |action: &Action| {
        let target = action.target();
        let Some(&state) = truth.get(target) else {
            return Err(abbd_core::Error::Oracle {
                variable: target.to_string(),
                reason: "not on this scenario's bench".into(),
            });
        };
        let failing = fault_states
            .get(target)
            .is_some_and(|fs| fs.contains(&state));
        Ok(Outcome { state, failing })
    }
}

/// A synthetic failing population from the circuit-backed pipeline:
/// devices, datalogs, and the Dlog2BBN cases fitted models learn from.
#[derive(Debug, Clone)]
pub struct CircuitPopulation {
    /// The defective devices, in fabrication order.
    pub devices: Vec<Device>,
    /// Their no-stop-on-fail datalogs (ground truth in
    /// [`DeviceLog::truth`]).
    pub logs: Vec<DeviceLog>,
    /// The generated learning cases, one per `(device, suite)`.
    pub cases: Vec<NamedCase>,
    /// Case-generation statistics.
    pub stats: GenerationStats,
}

/// Fabricates `n_failing` defective devices (the paper's "customer
/// returns"): sample a fault from the universe, fabricate, run the full
/// test program, keep the device only if it fails at least one limit,
/// then convert the surviving datalogs to cases. Deterministic for a
/// fixed `seed`; `first_id` offsets device serial numbers so separate
/// populations never collide.
///
/// This is the scenario engine's device-level sampler: the regulator's
/// `synthesize`/`synthesize_with` delegate here, and any circuit-backed
/// design gets the same flow by supplying its own program, mapping and
/// universe (e.g. from [`FaultLibrary::universe`]).
///
/// # Errors
///
/// Returns [`Error::Scenario`] when the universe cannot produce enough
/// failing devices, and propagates simulation and case-generation
/// errors.
#[allow(clippy::too_many_arguments)]
pub fn synthesize_failing(
    circuit: &Circuit,
    program: &TestProgram,
    mapping: &CaseMapping,
    spec: &ModelSpec,
    universe: &FaultUniverse,
    n_failing: usize,
    seed: u64,
    first_id: u64,
    noise: &NoiseModel,
) -> Result<CircuitPopulation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut devices: Vec<Device> = Vec::with_capacity(n_failing);
    let mut logs: Vec<DeviceLog> = Vec::with_capacity(n_failing);
    let mut next_id = first_id;
    let mut guard = 0usize;
    while logs.len() < n_failing {
        guard += 1;
        if guard > n_failing * 20 + 100 {
            return Err(Error::Scenario(
                "fault universe cannot produce enough failing devices".into(),
            ));
        }
        let batch = sample_defective_devices(circuit, universe, 1, next_id, &mut rng);
        let Some(device) = batch.into_iter().next() else {
            return Err(Error::Scenario("empty fault universe".into()));
        };
        next_id += 1;
        let mut batch_logs = test_population(
            circuit,
            program,
            std::slice::from_ref(&device),
            noise,
            &mut rng,
        )?;
        let log = batch_logs.pop().expect("one device in, one log out");
        if !log.all_passed() {
            devices.push(device);
            logs.push(log);
        }
    }
    let (cases, stats) = generate_cases(spec, mapping, &logs)?;
    Ok(CircuitPopulation {
        devices,
        logs,
        cases,
        stats,
    })
}
