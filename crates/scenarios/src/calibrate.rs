//! Noise-calibrated likelihoods: measurement error propagated into the
//! observable CPTs at fit time.
//!
//! The paper's models threshold a measurement into a state band as if
//! instruments were exact; with a real rack, a reading near a band edge
//! is a coin flip and the network's likelihoods should say so. Two fit
//! paths:
//!
//! * [`fit_fault_hypotheses`] — circuit-backed: Monte-Carlo-simulate
//!   every fault hypothesis of a [`FaultLibrary`] through a discretised
//!   [`FamilyProgram`] under a per-instrument [`NoiseModel`], and tally
//!   the noisy readings into a single-latent hypothesis model whose
//!   observable CPTs *are* the noise-calibrated likelihoods.
//! * [`calibrate_observables`] — model-only: fold a per-state noise
//!   confusion matrix into an existing [`ExpertKnowledge`] table, for
//!   models (like the synthetic board) that never touch a circuit.
//!
//! Both emit a [`CalibrationReport`] comparing *modelled*
//! misclassification (what the calibrated CPTs claim) against
//! *empirical* misclassification (a fresh, independently seeded
//! Monte-Carlo batch), so a fit that distorts the likelihoods instead of
//! calibrating them is caught by inspection — or by a test asserting
//! [`CalibrationReport::max_gap`] stays small.

use crate::error::{Error, Result};
use crate::family::FamilyProgram;
use crate::faults::{FaultKind, FaultLibrary};
use crate::SEED_MIX;
use abbd_ate::{test_device, NoiseModel};
use abbd_blocks::{standard_normal, Circuit, Device, DeviceFaults, Fault, Variation};
use abbd_core::{CircuitModel, DiagnosticModel, ExpertKnowledge, ModelBuilder};
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Monte-Carlo fit configuration for [`fit_fault_hypotheses`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McFitConfig {
    /// Simulated devices per hypothesis state (fit batch; the empirical
    /// check draws the same number again with fresh seeds).
    pub samples: usize,
    /// Base seed; every simulated device derives its stream from
    /// `(seed, state, sample)`.
    pub seed: u64,
    /// Equivalent sample size of the resulting expert tables.
    pub ess: f64,
    /// Prior weight of the trailing "healthy" hypothesis, on the same
    /// scale as the library entry weights.
    pub healthy_weight: f64,
}

impl Default for McFitConfig {
    fn default() -> Self {
        McFitConfig {
            samples: 48,
            seed: 0xCA11_B07E,
            ess: 8.0,
            healthy_weight: 4.0,
        }
    }
}

/// Sampling configuration for [`calibrate_observables`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseCalibration {
    /// Noise draws per observable state.
    pub samples: usize,
    /// Base seed; each observable derives its stream from its spec
    /// index.
    pub seed: u64,
}

impl Default for NoiseCalibration {
    fn default() -> Self {
        NoiseCalibration {
            samples: 256,
            seed: 0x0b5e_70e5,
        }
    }
}

/// Per-observable calibration outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservableCalibration {
    /// The observable variable.
    pub variable: String,
    /// The instrument sigma applied to it.
    pub sigma: f64,
    /// Misclassification probability the calibrated CPTs model.
    pub modelled: f64,
    /// Misclassification frequency of a fresh, independently seeded
    /// Monte-Carlo batch.
    pub empirical: f64,
}

impl ObservableCalibration {
    /// `|modelled − empirical|`.
    pub fn gap(&self) -> f64 {
        (self.modelled - self.empirical).abs()
    }
}

/// The fit-time calibration report: per-observable modelled vs empirical
/// misclassification.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// One entry per calibrated observable, in spec order.
    pub entries: Vec<ObservableCalibration>,
}

impl CalibrationReport {
    /// The largest modelled-vs-empirical gap across observables (`0.0`
    /// when nothing was calibrated) — the bound a regression test pins.
    pub fn max_gap(&self) -> f64 {
        self.entries.iter().map(|e| e.gap()).fold(0.0, f64::max)
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::from("observable                 sigma   modelled  empirical  gap\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:<26} {:>6.4}  {:>8.4}  {:>9.4}  {:>6.4}\n",
                e.variable,
                e.sigma,
                e.modelled,
                e.empirical,
                e.gap()
            ));
        }
        out
    }
}

/// A fitted single-latent hypothesis model over a fault library and a
/// discretised test family.
#[derive(Debug, Clone)]
pub struct HypothesisFit {
    /// The fitted model: latent [`HypothesisFit::fault_var`] →
    /// every family observable, CPTs Monte-Carlo-calibrated under the
    /// noise model.
    pub model: DiagnosticModel,
    /// The latent hypothesis variable's name (`"fault"`).
    pub fault_var: String,
    /// Hypothesis state tags, in state order — library entry tags
    /// followed by `"healthy"`.
    pub tags: Vec<String>,
    /// Modelled vs empirical misclassification per observable.
    pub report: CalibrationReport,
}

impl HypothesisFit {
    /// The state index of a hypothesis tag, if present.
    pub fn state_of(&self, tag: &str) -> Option<usize> {
        self.tags.iter().position(|t| t == tag)
    }
}

/// Laplace-smoothed probability row from a tally.
fn smoothed_row(tally: &[usize], samples: usize) -> Vec<f64> {
    let card = tally.len();
    let denom = samples as f64 + 0.5 * card as f64;
    tally.iter().map(|&c| (c as f64 + 0.5) / denom).collect()
}

/// Bins a reading with a spec variable, clamping out-of-band readings to
/// the nearest band (non-finite readings land in band 0).
fn bin_clamped(var: &VariableSpec, value: f64) -> usize {
    if let Some(s) = var.bin(value) {
        return s;
    }
    if !value.is_finite() {
        return 0;
    }
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (s, band) in var.bands.iter().enumerate() {
        let d = if value < band.lo {
            band.lo - value
        } else if value > band.hi {
            value - band.hi
        } else {
            0.0
        };
        if d < best_d {
            best_d = d;
            best = s;
        }
    }
    best
}

/// Fits a noise-calibrated hypothesis model: one latent `"fault"`
/// variable whose states are the library's entries (plus a trailing
/// `"healthy"` state) driving every observable of the discretised
/// family, with CPTs tallied from seeded Monte-Carlo simulation of each
/// hypothesis through the family's test program under `noise`.
///
/// Device-fault entries simulate a faulted device;
/// [`FaultKind::DegradedInstrument`] entries simulate a *healthy* device
/// measured through the degraded instrument — the hypothesis space spans
/// both "the part is bad" and "the rack is lying".
///
/// Deterministic for a fixed config: device `(state s, sample k)` draws
/// from a stream seeded with `seed ^ ((s·samples + k) · SEED_MIX)`.
///
/// # Errors
///
/// Returns [`Error::Scenario`] for an empty library or a zero-sample
/// config, and propagates circuit, simulation and model-build failures.
pub fn fit_fault_hypotheses(
    circuit: &Circuit,
    library: &FaultLibrary,
    fam: &FamilyProgram,
    noise: &NoiseModel,
    cfg: &McFitConfig,
) -> Result<HypothesisFit> {
    if library.is_empty() {
        return Err(Error::Scenario(
            "cannot fit hypotheses over an empty fault library".into(),
        ));
    }
    if cfg.samples == 0 {
        return Err(Error::Scenario(
            "McFitConfig.samples must be positive".into(),
        ));
    }
    let entries = library.entries();
    let n_states = entries.len() + 1;
    let healthy = n_states - 1;
    let mut tags: Vec<String> = entries.iter().map(|e| e.tag()).collect();
    tags.push("healthy".into());

    // Per-state injection: the device fault to fabricate with, and the
    // noise model the readings pass through.
    let mut state_faults: Vec<Option<Fault>> = Vec::with_capacity(n_states);
    let mut state_noise: Vec<NoiseModel> = Vec::with_capacity(n_states);
    for entry in entries {
        match entry.kind {
            FaultKind::DegradedInstrument(factor) => {
                state_faults.push(None);
                state_noise.push(noise.clone().degraded(entry.target.clone(), factor));
            }
            _ => {
                let block = circuit.require_block(&entry.target)?;
                let mode = entry
                    .kind
                    .device_mode()
                    .expect("non-instrument kinds map to device modes");
                state_faults.push(Some(Fault::new(block, mode)));
                state_noise.push(noise.clone());
            }
        }
    }
    state_faults.push(None);
    state_noise.push(noise.clone());

    // Hypothesis spec: the latent followed by the family observables.
    let fault_var = "fault".to_string();
    let mut vars = Vec::with_capacity(1 + fam.variables.len());
    vars.push(VariableSpec {
        name: fault_var.clone(),
        ftype: FunctionalType::Latent,
        bands: tags
            .iter()
            .enumerate()
            .map(|(i, tag)| StateBand::new(tag.clone(), i as f64, i as f64 + 0.5, tag.clone()))
            .collect(),
        ckt_ref: None,
    });
    vars.extend(fam.variables.iter().cloned());
    let spec = ModelSpec::new(vars)?;
    let mut model = CircuitModel::new(spec);
    let entry_states: Vec<usize> = (0..healthy).collect();
    model.set_fault_states(&fault_var, &entry_states)?;
    for v in &fam.variables {
        model.depends(&fault_var, &v.name)?;
        model.set_fault_states(&v.name, &[0, 2])?;
    }

    // Monte-Carlo tally: fit batch indices 0..n_states·samples, then an
    // extra healthy batch for the empirical check.
    let n_obs = fam.variables.len();
    let mut tally = vec![vec![vec![0usize; 3]; n_states]; n_obs];
    let mut empirical_fail = vec![0usize; n_obs];
    for s in 0..=n_states {
        let (inject, batch_noise) = if s < n_states {
            (state_faults[s], &state_noise[s])
        } else {
            (None, &state_noise[healthy])
        };
        for k in 0..cfg.samples {
            let idx = (s * cfg.samples + k) as u64;
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ idx.wrapping_mul(SEED_MIX));
            let device = Device {
                id: idx,
                variation: Variation::sample(circuit.block_count(), &mut rng),
                faults: inject.map(DeviceFaults::single).unwrap_or_default(),
            };
            let log = test_device(circuit, &fam.program, &device, batch_noise, &mut rng)?;
            debug_assert_eq!(log.records.len(), n_obs);
            for (j, record) in log.records.iter().enumerate() {
                let bin = bin_clamped(&fam.variables[j], record.value);
                if s < n_states {
                    tally[j][s][bin] += 1;
                } else if bin != 1 {
                    empirical_fail[j] += 1;
                }
            }
        }
    }

    // Expert tables: weighted prior over hypotheses, tallied likelihoods
    // per observable.
    let mut expert = ExpertKnowledge::new(cfg.ess);
    let mut prior: Vec<f64> = entries.iter().map(|e| e.weight.max(0.0)).collect();
    prior.push(cfg.healthy_weight.max(0.0));
    let total: f64 = prior.iter().sum();
    if total <= 0.0 {
        return Err(Error::Scenario(
            "hypothesis prior has no positive weight".into(),
        ));
    }
    for w in &mut prior {
        *w /= total;
    }
    expert.cpt(&fault_var, [prior]);
    let mut report = CalibrationReport::default();
    for (j, v) in fam.variables.iter().enumerate() {
        let rows: Vec<Vec<f64>> = (0..n_states)
            .map(|s| smoothed_row(&tally[j][s], cfg.samples))
            .collect();
        let modelled = 1.0 - rows[healthy][1];
        let (_, number, _) = fam.var_test[j];
        let sigma = fam
            .program
            .find_test(number)
            .map(|(_, t)| noise.sigma_for(circuit.net_name(t.measured)))
            .unwrap_or(noise.sigma);
        report.entries.push(ObservableCalibration {
            variable: v.name.clone(),
            sigma,
            modelled,
            empirical: empirical_fail[j] as f64 / cfg.samples as f64,
        });
        expert.cpt(&v.name, rows);
    }

    let model = ModelBuilder::new(model)
        .with_expert(expert)
        .build_expert_only()?;
    Ok(HypothesisFit {
        model,
        fault_var,
        tags,
        report,
    })
}

/// Noise confusion matrix of one banded variable: `m[s][j]` is the
/// probability a value truly in band `s` reads back in band `j` after a
/// Gaussian draw of `sigma`.
fn confusion(var: &VariableSpec, sigma: f64, samples: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let card = var.card();
    let mut m = vec![vec![0.0f64; card]; card];
    for (s, band) in var.bands.iter().enumerate() {
        for _ in 0..samples {
            let true_value = if band.hi > band.lo {
                band.lo + rng.gen::<f64>() * (band.hi - band.lo)
            } else {
                band.lo
            };
            let read = true_value + standard_normal(rng) * sigma;
            m[s][bin_clamped(var, read)] += 1.0;
        }
        for p in &mut m[s] {
            *p /= samples as f64;
        }
    }
    m
}

/// Folds per-instrument measurement noise into the expert CPTs of every
/// observable that has one: each row becomes `row × M`, where `M` is the
/// variable's Monte-Carlo noise confusion matrix under
/// [`NoiseModel::sigma_for`] (keyed by *variable name* — add overrides
/// named after model variables to degrade a single observable). This is
/// the model-only calibration path for networks with no behavioural
/// circuit behind them, applied between expert estimation and learning.
///
/// Returns the calibration report; variables without an expert table and
/// zero-sigma instruments are left untouched and unreported.
///
/// # Errors
///
/// Returns [`Error::Scenario`] for a zero-sample config.
pub fn calibrate_observables(
    model: &CircuitModel,
    expert: &mut ExpertKnowledge,
    noise: &NoiseModel,
    cfg: &NoiseCalibration,
) -> Result<CalibrationReport> {
    if cfg.samples == 0 {
        return Err(Error::Scenario(
            "NoiseCalibration.samples must be positive".into(),
        ));
    }
    let mut report = CalibrationReport::default();
    for (vi, var) in model.spec().variables().iter().enumerate() {
        if !var.ftype.is_observable() {
            continue;
        }
        let sigma = noise.sigma_for(&var.name);
        if sigma <= 0.0 {
            continue;
        }
        let Some(table) = expert.table(&var.name).map(<[f64]>::to_vec) else {
            continue;
        };
        let card = var.card();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (vi as u64).wrapping_mul(SEED_MIX));
        let m = confusion(var, sigma, cfg.samples, &mut rng);
        let mut eval_rng =
            StdRng::seed_from_u64(cfg.seed ^ SEED_MIX ^ (vi as u64).wrapping_mul(SEED_MIX));
        let m_eval = confusion(var, sigma, cfg.samples, &mut eval_rng);
        let rows: Vec<Vec<f64>> = table
            .chunks(card)
            .map(|row| {
                (0..card)
                    .map(|j| (0..card).map(|s| row[s] * m[s][j]).sum())
                    .collect()
            })
            .collect();
        expert.cpt(&var.name, rows);
        let diag = |mat: &[Vec<f64>]| {
            1.0 - mat.iter().enumerate().map(|(s, r)| r[s]).sum::<f64>() / card as f64
        };
        report.entries.push(ObservableCalibration {
            variable: var.name.clone(),
            sigma,
            modelled: diag(&m),
            empirical: diag(&m_eval),
        });
    }
    Ok(report)
}
