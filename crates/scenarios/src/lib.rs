//! # abbd-scenarios — the scenario engine
//!
//! Diagnosis workloads are generated here instead of hand-coded. The
//! paper's block-level Bayesian diagnosis is only as good as the fault
//! scenarios and test designs it is exercised on; this crate turns the
//! three hand-built regulator case studies and the one synthetic board
//! into *families* of labelled workloads that every downstream layer
//! (planner, server, fleet loop, benches) can draw from.
//!
//! ## Scenario engine
//!
//! Three pillars, one per module:
//!
//! 1. **Fault-mode library** ([`faults`]) — opens, shorts, stuck-at,
//!    parameter drift and degraded-instrument modes as composable
//!    [`FaultEntry`] injectors. One [`FaultLibrary`] drives all three
//!    injection levels: device-level (an [`abbd_blocks::FaultUniverse`]
//!    for the virtual ATE), model-level (forcing a latent's fault state
//!    and rewriting its CPT prior via [`pin_prior`]), and tester-level
//!    (folding degraded instruments into an [`abbd_ate::NoiseModel`]).
//! 2. **Stimulus-parameterised test families** ([`family`]) — a
//!    [`TestFamily`] sweeps a stimulus grid (supply × enable, voltage ×
//!    load, …) and discretises every grid point into limit-checked
//!    specification tests: one [`abbd_ate::TestSuite`] per point, one
//!    observable model variable and one `Action::Test` candidate per
//!    measurement. A 6 × 2 grid over five outputs hands
//!    `DiagnosisSession::rank_actions` a 60-candidate menu priced
//!    per-family through `CostModel` suite assignments and executed
//!    through the [`abbd_ate::OnDemandTester`].
//! 3. **Noise-calibrated likelihoods** ([`calibrate`]) — per-instrument
//!    noise models are Monte-Carlo-propagated into the observable CPTs
//!    at fit time ([`fit_fault_hypotheses`] for circuit-backed grids,
//!    [`calibrate_observables`] for any band-specified model), so the
//!    network's likelihoods reflect measurement error instead of hard
//!    thresholds. Every fit emits a [`CalibrationReport`] comparing
//!    modelled against empirical misclassification per observable.
//!
//! Population samplers ([`population`]) tie the pillars together: the
//! same library generates labelled device fleets for the regulator (via
//! the behavioural circuit and virtual ATE) and for the 100-variable
//! board (via ancestral sampling on the fitted network) through one API,
//! and every sampler takes an explicit seed and is byte-reproducible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod calibrate;
mod error;
pub mod family;
pub mod faults;
pub mod population;

pub use calibrate::{
    calibrate_observables, fit_fault_hypotheses, CalibrationReport, HypothesisFit, McFitConfig,
    NoiseCalibration, ObservableCalibration,
};
pub use error::{Error, Result};
pub use family::{FamilyMeasure, FamilyProgram, StimulusAxis, TestFamily};
pub use faults::{pin_prior, FaultEntry, FaultKind, FaultLibrary};
pub use population::{
    most_likely_truth, sample_model_population, sample_truth, scenario_executor,
    synthesize_failing, CircuitPopulation, FaultLabel, ModelScenario,
};

/// The golden-ratio multiplier every sampler mixes ids and indices into
/// seeds with — the same constant the ATE batch harness uses, so streams
/// never collide and every draw is reproducible from `(seed, index)`.
pub(crate) const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;
