//! Scenario-engine errors.

use std::fmt;

/// Everything that can go wrong while generating scenarios.
#[derive(Debug)]
pub enum Error {
    /// The virtual ATE failed (program validation, unknown test, …).
    Ate(abbd_ate::Error),
    /// The Bayesian-network layer failed (unknown variable, bad row, …).
    Bbn(abbd_bbn::Error),
    /// The behavioural circuit layer failed (unknown net or block, …).
    Blocks(abbd_blocks::Error),
    /// The diagnosis core failed (model build, spec lookup, …).
    Core(abbd_core::Error),
    /// Datalog-to-case conversion failed.
    Dlog(abbd_dlog2bbn::Error),
    /// A scenario pipeline invariant was violated (exhausted fault
    /// universe, non-converging golden device, empty library, …).
    Scenario(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Ate(e) => write!(f, "ate: {e}"),
            Error::Bbn(e) => write!(f, "bbn: {e}"),
            Error::Blocks(e) => write!(f, "blocks: {e}"),
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Dlog(e) => write!(f, "dlog2bbn: {e}"),
            Error::Scenario(msg) => write!(f, "scenario: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<abbd_ate::Error> for Error {
    fn from(e: abbd_ate::Error) -> Self {
        Error::Ate(e)
    }
}

impl From<abbd_bbn::Error> for Error {
    fn from(e: abbd_bbn::Error) -> Self {
        Error::Bbn(e)
    }
}

impl From<abbd_blocks::Error> for Error {
    fn from(e: abbd_blocks::Error) -> Self {
        Error::Blocks(e)
    }
}

impl From<abbd_core::Error> for Error {
    fn from(e: abbd_core::Error) -> Self {
        Error::Core(e)
    }
}

impl From<abbd_dlog2bbn::Error> for Error {
    fn from(e: abbd_dlog2bbn::Error) -> Self {
        Error::Dlog(e)
    }
}

/// Scenario-engine result alias.
pub type Result<T> = std::result::Result<T, Error>;
