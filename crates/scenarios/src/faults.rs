//! The fault-mode library: a named, weighted catalogue of fault modes
//! that injects at every level of the stack.
//!
//! A [`FaultEntry`] names a target (a circuit block / model latent, or a
//! measured net for instrument faults), a [`FaultKind`] and an occurrence
//! weight. One [`FaultLibrary`] then drives:
//!
//! * **device-level** injection — [`FaultLibrary::universe`] compiles the
//!   device kinds into an [`abbd_blocks::FaultUniverse`] for the virtual
//!   ATE's defective-population samplers;
//! * **model-level** injection — [`FaultLibrary::sample_model_entry`]
//!   picks a weighted entry whose latent fault state seeds truth-map
//!   construction ([`crate::population`]), and [`pin_prior`] rewrites the
//!   latent's CPT prior so a fitted model *believes* the scenario;
//! * **tester-level** injection — [`FaultLibrary::noise_model`] folds the
//!   degraded-instrument kinds into an [`abbd_ate::NoiseModel`] as
//!   per-net sigma overrides.

use crate::error::{Error, Result};
use abbd_ate::NoiseModel;
use abbd_blocks::{Circuit, Fault, FaultMode, FaultUniverse};
use abbd_core::{CircuitModel, ExpertKnowledge};
use rand::Rng;

/// What a fault mode does, abstracted over injection level.
///
/// The first six kinds are *device* faults (they map onto
/// [`abbd_blocks::FaultMode`] behaviours); [`FaultKind::DegradedInstrument`]
/// is a *measurement-path* fault — the device is healthy, one instrument
/// is noisy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Open defect: the block's output floats (high-impedance node).
    Open,
    /// Short defect: the block's output is shorted to its first input.
    Short,
    /// The block is dead (output stuck at the low rail).
    Dead,
    /// Output stuck at a fixed voltage regardless of inputs.
    StuckAt(f64),
    /// Parameter drift: gain scaled by the factor.
    GainDrift(f64),
    /// Parameter drift: output offset shifted by the voltage.
    OffsetDrift(f64),
    /// The instrument measuring the target net is degraded: its noise
    /// sigma is the rack's base sigma scaled by this factor.
    DegradedInstrument(f64),
}

impl FaultKind {
    /// The behavioural device fault this kind injects, or `None` for
    /// measurement-path kinds.
    pub fn device_mode(&self) -> Option<FaultMode> {
        match *self {
            FaultKind::Open => Some(FaultMode::FloatingOutput),
            FaultKind::Short => Some(FaultMode::ShortToInput),
            FaultKind::Dead => Some(FaultMode::Dead),
            FaultKind::StuckAt(v) => Some(FaultMode::StuckAt(v)),
            FaultKind::GainDrift(k) => Some(FaultMode::GainDrift(k)),
            FaultKind::OffsetDrift(dv) => Some(FaultMode::OffsetDrift(dv)),
            FaultKind::DegradedInstrument(_) => None,
        }
    }

    /// `true` for measurement-path kinds (no device fault is injected).
    pub fn is_instrument(&self) -> bool {
        matches!(self, FaultKind::DegradedInstrument(_))
    }

    /// Short human tag, identical to [`FaultMode::tag`] for device kinds
    /// so library tags match the ATE's datalog ground-truth labels.
    pub fn tag(&self) -> String {
        match *self {
            FaultKind::DegradedInstrument(factor) => format!("noise×{factor:.1}"),
            _ => self
                .device_mode()
                .expect("non-instrument kinds map to device modes")
                .tag(),
        }
    }
}

impl From<FaultMode> for FaultKind {
    fn from(mode: FaultMode) -> Self {
        match mode {
            FaultMode::FloatingOutput => FaultKind::Open,
            FaultMode::ShortToInput => FaultKind::Short,
            FaultMode::Dead => FaultKind::Dead,
            FaultMode::StuckAt(v) => FaultKind::StuckAt(v),
            FaultMode::GainDrift(k) => FaultKind::GainDrift(k),
            FaultMode::OffsetDrift(dv) => FaultKind::OffsetDrift(dv),
        }
    }
}

/// One catalogued fault mode: target, kind and relative occurrence
/// weight.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEntry {
    /// The faulted circuit block / model latent — or, for
    /// [`FaultKind::DegradedInstrument`], the measured net.
    pub target: String,
    /// The fault mode.
    pub kind: FaultKind,
    /// Relative occurrence weight (must be positive to be sampled).
    pub weight: f64,
    /// The latent state the fault manifests as at the model level.
    /// `None` uses the model's first declared fault state of the target.
    pub model_state: Option<usize>,
}

impl FaultEntry {
    /// `"target:mode"` — the ground-truth label format the ATE writes
    /// into [`abbd_ate::DeviceLog::truth`].
    pub fn tag(&self) -> String {
        format!("{}:{}", self.target, self.kind.tag())
    }
}

/// A weighted catalogue of fault modes — the scenario engine's source of
/// defects for every model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLibrary {
    entries: Vec<FaultEntry>,
}

impl FaultLibrary {
    /// An empty library.
    pub fn new() -> Self {
        FaultLibrary {
            entries: Vec::new(),
        }
    }

    /// Adds one entry (builder style).
    pub fn add(&mut self, target: impl Into<String>, kind: FaultKind, weight: f64) -> &mut Self {
        self.entries.push(FaultEntry {
            target: target.into(),
            kind,
            weight,
            model_state: None,
        });
        self
    }

    /// All entries, in declaration order.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the library has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The device-fault entries (everything except instrument kinds).
    pub fn device_entries(&self) -> impl Iterator<Item = &FaultEntry> {
        self.entries.iter().filter(|e| !e.kind.is_instrument())
    }

    /// Compiles the device-fault entries into a weighted
    /// [`FaultUniverse`] over a circuit instance — the sampler the
    /// virtual ATE's defective-population flow consumes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Blocks`] when an entry targets a block the
    /// circuit does not contain.
    pub fn universe(&self, circuit: &Circuit) -> Result<FaultUniverse> {
        let mut universe = FaultUniverse::new();
        for entry in self.device_entries() {
            let id = circuit.require_block(&entry.target)?;
            let mode = entry
                .kind
                .device_mode()
                .expect("device_entries filters instrument kinds");
            universe.add(Fault::new(id, mode), entry.weight);
        }
        Ok(universe)
    }

    /// Folds the degraded-instrument entries into `base` as per-net
    /// sigma overrides — the tester-level injection.
    pub fn noise_model(&self, base: NoiseModel) -> NoiseModel {
        self.entries
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::DegradedInstrument(factor) => Some((e.target.clone(), factor)),
                _ => None,
            })
            .fold(base, |noise, (net, factor)| noise.degraded(net, factor))
    }

    /// Samples one *model-level* entry (device kinds only, weighted) —
    /// the seed of a labelled model scenario. Returns `None` when no
    /// device entry has positive weight.
    pub fn sample_model_entry<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&FaultEntry> {
        let total: f64 = self
            .device_entries()
            .map(|e| e.weight.max(0.0))
            .sum::<f64>();
        if total <= 0.0 {
            return None;
        }
        let mut draw = rng.gen::<f64>() * total;
        let mut last = None;
        for entry in self.device_entries() {
            let w = entry.weight.max(0.0);
            if w <= 0.0 {
                continue;
            }
            last = Some(entry);
            if draw < w {
                return Some(entry);
            }
            draw -= w;
        }
        last
    }

    /// The latent fault state an entry manifests as under `model`: the
    /// explicit [`FaultEntry::model_state`] if set, otherwise the first
    /// declared fault state of the target variable.
    pub fn model_state_of(&self, model: &CircuitModel, entry: &FaultEntry) -> usize {
        entry.model_state.unwrap_or_else(|| {
            model
                .fault_states(&entry.target)
                .first()
                .copied()
                .unwrap_or(0)
        })
    }
}

impl FromIterator<(String, FaultKind, f64)> for FaultLibrary {
    fn from_iter<T: IntoIterator<Item = (String, FaultKind, f64)>>(iter: T) -> Self {
        let mut lib = FaultLibrary::new();
        for (target, kind, weight) in iter {
            lib.add(target, kind, weight);
        }
        lib
    }
}

impl<'a> FromIterator<(&'a str, FaultKind, f64)> for FaultLibrary {
    fn from_iter<T: IntoIterator<Item = (&'a str, FaultKind, f64)>>(iter: T) -> Self {
        iter.into_iter()
            .map(|(t, k, w)| (t.to_string(), k, w))
            .collect()
    }
}

/// Rewrites a latent's CPT prior in an [`ExpertKnowledge`] so that
/// `mass` of every row's probability sits on `state` — the model-level
/// face of fault injection: a scenario-conditioned model that *expects*
/// the fault, used for drifted-prior studies and for building
/// per-scenario reference posteriors.
///
/// The remaining `1 - mass` is spread uniformly over the other states.
/// All parent configurations get the same row (the injected belief is
/// unconditional).
///
/// # Errors
///
/// Returns [`Error::Core`] when `variable` is not in the model's spec,
/// and [`Error::Scenario`] when `state` is out of range or `mass` is not
/// a probability.
pub fn pin_prior(
    expert: &mut ExpertKnowledge,
    model: &CircuitModel,
    variable: &str,
    state: usize,
    mass: f64,
) -> Result<()> {
    let spec = model.spec();
    let card = spec.require(variable)?.card();
    if state >= card {
        return Err(Error::Scenario(format!(
            "state {state} out of range for `{variable}` (card {card})"
        )));
    }
    if !(0.0..=1.0).contains(&mass) {
        return Err(Error::Scenario(format!("prior mass {mass} outside [0, 1]")));
    }
    let rest = if card > 1 {
        (1.0 - mass) / (card - 1) as f64
    } else {
        0.0
    };
    let row: Vec<f64> = (0..card)
        .map(|s| if s == state { mass } else { rest })
        .collect();
    let configs: usize = model
        .parents_of(variable)
        .iter()
        .map(|p| spec.require(p).map(|v| v.card()))
        .collect::<std::result::Result<Vec<_>, _>>()?
        .into_iter()
        .product();
    expert.cpt(variable, std::iter::repeat_n(row, configs.max(1)));
    Ok(())
}
