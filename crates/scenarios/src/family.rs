//! Stimulus-parameterised test families: sweep a stimulus grid, get a
//! test program, model variables, and a candidate menu.
//!
//! The paper's programs pick a handful of hand-chosen stimulus corners;
//! a [`TestFamily`] instead declares *axes* (supply from 6 V to 20 V in
//! six steps, enable low/high, …) and [`TestFamily::discretize`] expands
//! the grid: one [`abbd_ate::TestSuite`] per grid point, one
//! limit-checked test per measured output, one 3-band `Observe` model
//! variable and one `Action::Test` candidate per test. A 6 × 2 grid over
//! five outputs hands `rank_actions` a 60-candidate menu — the regime
//! where value-of-information planning, suite-switch pricing and the
//! zero-allocation decision loop actually get exercised.
//!
//! Limits and bands are derived from the *golden device*: the family
//! solves the healthy circuit at every grid point and brackets each
//! measurement with `±tolerance` (pass band) inside `±span` (low/high
//! fault bands), so families transfer across designs without hand-tuned
//! limit tables.

use crate::error::{Error, Result};
use abbd_ate::{DeviceSession, Limits, OnDemandTester, TestDef, TestProgram, TestSuite};
use abbd_blocks::{Circuit, Device, SimConfig, Simulator, Stimulus};
use abbd_core::{Action, CostModel, Outcome};
use abbd_dlog2bbn::{FunctionalType, ModelSpec, StateBand, VariableSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One swept stimulus dimension: an input net and the values it takes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StimulusAxis {
    /// The forced input net.
    pub net: String,
    /// The grid values, in sweep order.
    pub values: Vec<f64>,
}

impl StimulusAxis {
    /// Convenience constructor.
    pub fn new(net: impl Into<String>, values: impl Into<Vec<f64>>) -> Self {
        StimulusAxis {
            net: net.into(),
            values: values.into(),
        }
    }

    /// `n` evenly spaced values across `[lo, hi]` inclusive.
    pub fn linspace(net: impl Into<String>, lo: f64, hi: f64, n: usize) -> Self {
        let values = match n {
            0 => Vec::new(),
            1 => vec![lo],
            _ => (0..n)
                .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
                .collect(),
        };
        StimulusAxis::new(net, values)
    }
}

/// One measured output: the net, the pass tolerance around the golden
/// reading, and the outer span bounding the low/high fault bands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyMeasure {
    /// The measured net.
    pub net: String,
    /// Half-width of the pass band around the golden voltage.
    pub tolerance: f64,
    /// Half-width of the full banded range (must exceed `tolerance`).
    pub span: f64,
}

impl FamilyMeasure {
    /// Convenience constructor.
    pub fn new(net: impl Into<String>, tolerance: f64, span: f64) -> Self {
        FamilyMeasure {
            net: net.into(),
            tolerance,
            span,
        }
    }
}

/// A stimulus-parameterised family of specification tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestFamily {
    /// Family name — prefixes suite and variable names.
    pub name: String,
    /// Fixed stimulus applied at every grid point.
    pub base: Vec<(String, f64)>,
    /// Swept axes; the grid is their cartesian product (last axis
    /// fastest).
    pub axes: Vec<StimulusAxis>,
    /// Outputs measured at every grid point.
    pub measures: Vec<FamilyMeasure>,
    /// ATE number of the first generated test; the rest are consecutive.
    pub first_test_number: u32,
    /// Seconds one in-suite test execution costs.
    pub test_seconds: f64,
    /// Seconds one stimulus (suite) switch costs.
    pub suite_switch_seconds: f64,
}

impl TestFamily {
    /// A family with no axes yet (builder style).
    pub fn new(name: impl Into<String>) -> Self {
        TestFamily {
            name: name.into(),
            base: Vec::new(),
            axes: Vec::new(),
            measures: Vec::new(),
            first_test_number: 1000,
            test_seconds: 1.0,
            suite_switch_seconds: 5.0,
        }
    }

    /// Fixes an input net at every grid point.
    pub fn hold(mut self, net: impl Into<String>, volts: f64) -> Self {
        self.base.push((net.into(), volts));
        self
    }

    /// Adds a swept axis.
    pub fn sweep(mut self, axis: StimulusAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Adds a measured output.
    pub fn measure(mut self, measure: FamilyMeasure) -> Self {
        self.measures.push(measure);
        self
    }

    /// Sets the family's ATE timing (test, suite-switch seconds).
    pub fn timing(mut self, test_seconds: f64, suite_switch_seconds: f64) -> Self {
        self.test_seconds = test_seconds;
        self.suite_switch_seconds = suite_switch_seconds;
        self
    }

    /// Number of grid points (product of axis lengths).
    pub fn grid_size(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Number of generated candidates (`grid_size × measures`).
    pub fn candidate_count(&self) -> usize {
        self.grid_size() * self.measures.len()
    }

    /// The stimulus values of grid point `p`, one per axis, with the
    /// last axis varying fastest.
    fn point(&self, p: usize) -> Vec<f64> {
        let mut values = vec![0.0; self.axes.len()];
        let mut rest = p;
        for (i, axis) in self.axes.iter().enumerate().rev() {
            let n = axis.values.len();
            values[i] = axis.values[rest % n];
            rest /= n;
        }
        values
    }

    /// Expands the grid against a circuit: solves the golden device at
    /// every point, derives limits and bands from the golden readings,
    /// and emits the suite-per-point test program plus the matching
    /// model variables and candidate actions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Blocks`] for unknown nets, and
    /// [`Error::Scenario`] when the family is degenerate (no axes, no
    /// measures, a tolerance not below its span) or the golden device
    /// does not converge at a grid point — a family whose healthy
    /// reference is undefined cannot set limits.
    pub fn discretize(&self, circuit: &Circuit) -> Result<FamilyProgram> {
        if self.grid_size() == 0 {
            return Err(Error::Scenario(format!(
                "family `{}` has an empty stimulus grid",
                self.name
            )));
        }
        if self.measures.is_empty() {
            return Err(Error::Scenario(format!(
                "family `{}` measures nothing",
                self.name
            )));
        }
        for m in &self.measures {
            if !(m.tolerance > 0.0 && m.span > m.tolerance) {
                return Err(Error::Scenario(format!(
                    "family `{}`: measure `{}` needs 0 < tolerance < span",
                    self.name, m.net
                )));
            }
        }
        let golden = Device::golden(circuit);
        let sim = Simulator::new(circuit, SimConfig::default());
        let mut suites = Vec::with_capacity(self.grid_size());
        let mut variables = Vec::with_capacity(self.candidate_count());
        let mut var_test = Vec::with_capacity(self.candidate_count());
        for p in 0..self.grid_size() {
            let values = self.point(p);
            let mut stimulus = Stimulus::new();
            for (net, volts) in &self.base {
                stimulus.force(circuit.require_net(net)?, *volts);
            }
            for (axis, volts) in self.axes.iter().zip(&values) {
                stimulus.force(circuit.require_net(&axis.net)?, *volts);
            }
            let op = sim.solve(&golden, &stimulus).map_err(|e| {
                Error::Scenario(format!(
                    "family `{}`: golden device does not converge at grid point {p}: {e}",
                    self.name
                ))
            })?;
            let suite_name = format!("{}#{p:02}", self.name);
            let mut tests = Vec::with_capacity(self.measures.len());
            for (mi, m) in self.measures.iter().enumerate() {
                let net = circuit.require_net(&m.net)?;
                let g = op.voltage(net);
                if !g.is_finite() {
                    return Err(Error::Scenario(format!(
                        "family `{}`: golden reading on `{}` is not finite at grid point {p}",
                        self.name, m.net
                    )));
                }
                let number = self.first_test_number + (p * self.measures.len() + mi) as u32;
                let var_name = format!("{}{p:02}_{}", self.name, m.net);
                tests.push(TestDef {
                    number,
                    name: var_name.clone(),
                    measured: net,
                    limits: Limits::new(g - m.tolerance, g + m.tolerance),
                });
                // Non-overlapping bands: the pass band owns its
                // boundaries, so low/high stop a hair outside them.
                let eps = 1e-9_f64.max(m.tolerance * 1e-9);
                variables.push(VariableSpec {
                    name: var_name.clone(),
                    ftype: FunctionalType::Observe,
                    bands: vec![
                        StateBand::new("0", g - m.span, g - m.tolerance - eps, "fail low"),
                        StateBand::new("1", g - m.tolerance, g + m.tolerance, "pass"),
                        StateBand::new("2", g + m.tolerance + eps, g + m.span, "fail high"),
                    ],
                    ckt_ref: None,
                });
                var_test.push((var_name, number, p));
            }
            suites.push(TestSuite {
                name: suite_name,
                stimulus,
                tests,
            });
        }
        let program: TestProgram = suites.into_iter().collect();
        program.validate(circuit)?;
        Ok(FamilyProgram {
            family: self.name.clone(),
            test_seconds: self.test_seconds,
            suite_switch_seconds: self.suite_switch_seconds,
            program,
            variables,
            var_test,
        })
    }
}

/// A discretised family: the executable program, the model variables it
/// observes, and the candidate menu it offers the planner.
#[derive(Debug, Clone)]
pub struct FamilyProgram {
    /// The generating family's name.
    pub family: String,
    /// Seconds one in-suite test execution costs.
    pub test_seconds: f64,
    /// Seconds one stimulus (suite) switch costs.
    pub suite_switch_seconds: f64,
    /// One suite per grid point, validated against the circuit.
    pub program: TestProgram,
    /// One 3-band `Observe` variable per generated test (fault states
    /// `0` = fail low, `2` = fail high; `1` passes).
    pub variables: Vec<VariableSpec>,
    /// `(variable, ATE test number, grid-point / suite index)` triples
    /// in generation order.
    pub var_test: Vec<(String, u32, usize)>,
}

impl FamilyProgram {
    /// The candidate menu: one `Action::Test` per generated variable, in
    /// generation order — feed straight to
    /// `DiagnosisSession::set_actions`.
    pub fn actions(&self) -> Vec<Action> {
        self.var_test
            .iter()
            .map(|(var, _, _)| Action::test(var.clone()))
            .collect()
    }

    /// The per-family cost model: every candidate priced at the family's
    /// test time, suite switches at the family's switch time, and each
    /// variable assigned to its grid point's suite so `rank_actions`
    /// discounts staying under the applied stimulus.
    ///
    /// # Errors
    ///
    /// Propagates cost-model validation errors.
    pub fn cost_model(&self, probe_seconds: f64) -> Result<CostModel> {
        let mut cost = CostModel::new(self.test_seconds, self.suite_switch_seconds, probe_seconds)?;
        for (var, _, suite) in &self.var_test {
            cost.assign_suite(var.clone(), *suite);
        }
        Ok(cost)
    }

    /// A measurement executor answering the family's candidates from a
    /// live [`DeviceSession`]: executes the mapped ATE test, bins the
    /// reading with the spec's bands (out-of-band readings clamp to the
    /// nearer fail state; non-converged readings fail low), and reports
    /// the ATE pass/fail verdict as the failing flag.
    pub fn executor<'s>(
        &self,
        spec: &'s ModelSpec,
        mut session: DeviceSession<'s, 's>,
    ) -> impl FnMut(&Action) -> abbd_core::Result<Outcome> + 's {
        let by_var: HashMap<String, u32> = self
            .var_test
            .iter()
            .map(|(var, number, _)| (var.clone(), *number))
            .collect();
        move |action: &Action| {
            let target = action.target();
            let Some(&number) = by_var.get(target) else {
                return Err(abbd_core::Error::Oracle {
                    variable: target.to_string(),
                    reason: "not a candidate of this test family".into(),
                });
            };
            let record = session
                .execute(number)
                .map_err(|e| abbd_core::Error::Oracle {
                    variable: target.to_string(),
                    reason: e.to_string(),
                })?;
            let var = spec.require(target).map_err(|e| abbd_core::Error::Oracle {
                variable: target.to_string(),
                reason: e.to_string(),
            })?;
            let state = match var.bin(record.value) {
                Some(s) => s,
                None if record.value.is_finite() && record.value > var.bands[1].hi => 2,
                None => 0,
            };
            Ok(Outcome {
                state,
                failing: !record.passed,
            })
        }
    }

    /// The tester the executor runs on (validates the program once).
    ///
    /// # Errors
    ///
    /// Propagates program-validation errors.
    pub fn tester<'a>(&'a self, circuit: &'a Circuit) -> Result<OnDemandTester<'a>> {
        Ok(OnDemandTester::new(circuit, &self.program)?)
    }
}
