//! Property-based tests for the block-level simulator: random chains and
//! stimuli must converge, fault transforms must respect their contracts,
//! and process variation must stay bounded.

use abbd_blocks::{
    Behavior, Circuit, CircuitBuilder, Device, DeviceFaults, Fault, FaultMode, SimConfig,
    Simulator, Stimulus, Variation, Window,
};
use proptest::prelude::*;

/// A random feed-forward chain of level shifters and references.
fn random_chain(stages: &[(f64, f64)]) -> Circuit {
    let mut cb = CircuitBuilder::new();
    let mut prev = cb.net("in").unwrap();
    for (i, (gain, offset)) in stages.iter().enumerate() {
        let out = cb.net(format!("n{i}")).unwrap();
        cb.block(
            format!("b{i}"),
            Behavior::LevelShift {
                gain: *gain,
                offset: *offset,
                rail: 20.0,
            },
            [prev],
            out,
        )
        .unwrap();
        prev = out;
    }
    cb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn feedforward_chains_always_converge(
        stages in proptest::collection::vec((0.1f64..2.0, -1.0f64..1.0), 1..12),
        vin in 0.0f64..15.0,
    ) {
        let circuit = random_chain(&stages);
        let sim = Simulator::new(&circuit, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(circuit.find_net("in").unwrap(), vin);
        let op = sim.solve(&Device::golden(&circuit), &stim).unwrap();
        // A DAG settles within depth+1 sweeps.
        prop_assert!(op.iterations() <= stages.len() + 1);
        // Every voltage respects the rail clamps.
        for v in op.voltages() {
            prop_assert!((0.0..=20.0).contains(v) || *v == vin);
        }
    }

    #[test]
    fn dead_fault_always_zeroes_its_output(
        stages in proptest::collection::vec((0.2f64..1.5, 0.0f64..0.5), 2..8),
        vin in 1.0f64..10.0,
        which in 0usize..8,
    ) {
        let circuit = random_chain(&stages);
        let which = which % stages.len();
        let block = circuit.find_block(&format!("b{which}")).unwrap();
        let mut dut = Device::golden(&circuit);
        dut.faults = DeviceFaults::single(Fault::new(block, FaultMode::Dead));
        let sim = Simulator::new(&circuit, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(circuit.find_net("in").unwrap(), vin);
        let op = sim.solve(&dut, &stim).unwrap();
        let out = circuit.block(block).output;
        prop_assert_eq!(op.voltage(out), 0.0);
    }

    #[test]
    fn stuck_fault_pins_its_output(
        stages in proptest::collection::vec((0.2f64..1.5, 0.0f64..0.5), 1..6),
        vin in 0.0f64..10.0,
        level in -2.0f64..18.0,
    ) {
        let circuit = random_chain(&stages);
        let block = circuit.find_block("b0").unwrap();
        let mut dut = Device::golden(&circuit);
        dut.faults = DeviceFaults::single(Fault::new(block, FaultMode::StuckAt(level)));
        let sim = Simulator::new(&circuit, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(circuit.find_net("in").unwrap(), vin);
        let op = sim.solve(&dut, &stim).unwrap();
        prop_assert_eq!(op.voltage(circuit.block(block).output), level);
    }

    #[test]
    fn gain_drift_scales_healthy_output(
        vin in 1.0f64..10.0,
        k in 0.1f64..1.5,
    ) {
        let circuit = random_chain(&[(1.0, 0.0)]);
        let block = circuit.find_block("b0").unwrap();
        let sim = Simulator::new(&circuit, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(circuit.find_net("in").unwrap(), vin);

        let healthy = sim.solve(&Device::golden(&circuit), &stim).unwrap();
        let mut dut = Device::golden(&circuit);
        dut.faults = DeviceFaults::single(Fault::new(block, FaultMode::GainDrift(k)));
        let drifted = sim.solve(&dut, &stim).unwrap();
        let out = circuit.block(block).output;
        prop_assert!(
            (drifted.voltage(out) - healthy.voltage(out) * k).abs() < 1e-9
        );
    }

    #[test]
    fn regulator_output_is_monotone_in_supply(
        v_lo in 0.0f64..6.0,
        delta in 0.0f64..10.0,
    ) {
        let reg = Behavior::Regulator {
            nominal: 5.0,
            dropout: 0.7,
            enable_threshold: 2.0,
            reference: Window::new(1.0, 1.4),
        };
        let lo = reg.evaluate(&[v_lo, 3.0, 1.2]);
        let hi = reg.evaluate(&[v_lo + delta, 3.0, 1.2]);
        prop_assert!(hi >= lo - 1e-12, "supply up, output must not fall");
        prop_assert!(hi <= 5.0 + 1e-12, "never exceeds nominal");
    }

    #[test]
    fn variation_z_scores_roundtrip(
        gains in proptest::collection::vec(-3.0f64..3.0, 1..10),
        offsets in proptest::collection::vec(-3.0f64..3.0, 1..10),
    ) {
        let n = gains.len().min(offsets.len());
        let v = Variation::from_z_scores(gains[..n].to_vec(), offsets[..n].to_vec());
        for i in 0..n {
            prop_assert_eq!(v.gain_z(i), gains[i]);
            prop_assert_eq!(v.offset_z(i), offsets[i]);
        }
        prop_assert_eq!(v.gain_z(n + 5), 0.0);
    }
}
