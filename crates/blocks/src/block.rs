//! Block and net handles plus the block definition record.

use crate::behavior::Behavior;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque handle to a functional block within a [`crate::Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// Builds a handle from a raw index (tests and cross-crate tables).
    pub fn from_index(index: usize) -> Self {
        BlockId(index as u32)
    }

    /// The underlying index into the circuit's block list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Opaque handle to a net (a named electrical node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(u32);

impl NetId {
    /// Builds a handle from a raw index.
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }

    /// The underlying index into the circuit's net list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One functional block: behaviour, wiring and process-variation spreads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable block name (unique within a circuit).
    pub name: String,
    /// DC transfer behaviour.
    pub behavior: Behavior,
    /// Input nets, in the order the behaviour expects.
    pub inputs: Vec<NetId>,
    /// The single output net this block drives.
    pub output: NetId,
    /// 1-sigma multiplicative process spread of the output (e.g. `0.01`).
    pub gain_sigma: f64,
    /// 1-sigma additive process spread of the output, in volts.
    pub offset_sigma: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_roundtrip_and_display() {
        let b = BlockId::from_index(7);
        assert_eq!(b.index(), 7);
        assert_eq!(b.to_string(), "b7");
        let n = NetId::from_index(3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "n3");
    }

    #[test]
    fn handles_order_by_index() {
        assert!(BlockId::from_index(1) < BlockId::from_index(2));
        assert!(NetId::from_index(0) < NetId::from_index(9));
    }
}
