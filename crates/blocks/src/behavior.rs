//! DC behavioural models of analogue functional blocks.
//!
//! Every block computes one output voltage from its input voltages. Models
//! are deliberately *block-level*: smooth enough to converge under
//! fixed-point iteration, detailed enough that block faults change the
//! voltages an ATE program measures — which is the only thing the paper's
//! diagnosis flow observes.

use serde::{Deserialize, Serialize};

/// How a logic-style block combines qualified inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogicOp {
    /// All inputs must qualify.
    And,
    /// At least one input must qualify.
    Or,
}

/// A voltage window `[lo, hi]` used to qualify an analogue level as "good".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive lower bound in volts.
    pub lo: f64,
    /// Inclusive upper bound in volts.
    pub hi: f64,
}

impl Window {
    /// Builds a window; callers should keep `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Window { lo, hi }
    }

    /// `true` when `v` lies inside the window.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// The DC transfer behaviour of a functional block.
///
/// Input counts are fixed per variant and validated at netlist build time:
///
/// | variant      | inputs                                  |
/// |--------------|-----------------------------------------|
/// | `Reference`  | `[supply]`                              |
/// | `Regulator`  | `[supply, enable, reference]`           |
/// | `Switch`     | `[supply, enable]`                      |
/// | `Logic`      | one per window                          |
/// | `LevelShift` | `[input]`                               |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// A bandgap-style voltage reference: outputs `nominal` once the supply
    /// clears `min_supply`, degrading proportionally below it.
    Reference {
        /// Nominal reference voltage.
        nominal: f64,
        /// Minimum supply for full regulation.
        min_supply: f64,
    },
    /// A linear regulator: `nominal` out when the supply has headroom, the
    /// enable is high and the reference is inside its window; tracks
    /// `supply - dropout` when starved; 0 V when disabled or unreferenced.
    Regulator {
        /// Nominal regulated output.
        nominal: f64,
        /// Dropout voltage (headroom) required above `nominal`.
        dropout: f64,
        /// Enable input threshold (high-active).
        enable_threshold: f64,
        /// Window qualifying the reference input.
        reference: Window,
    },
    /// A high-side power switch: passes `supply - drop` when enabled,
    /// clamping at `clamp`; 0 V when disabled.
    Switch {
        /// Series voltage drop when conducting.
        drop: f64,
        /// Output clamp level.
        clamp: f64,
        /// Enable input threshold (high-active).
        enable_threshold: f64,
    },
    /// Analogue decision logic: each input is qualified by its own window,
    /// the qualifications are combined with `op`, and the block outputs
    /// `out_high` or `out_low`.
    Logic {
        /// Combination operator.
        op: LogicOp,
        /// One qualification window per input.
        windows: Vec<Window>,
        /// Output voltage when the combination is false.
        out_low: f64,
        /// Output voltage when the combination is true.
        out_high: f64,
    },
    /// An affine level shifter / buffer: `gain * input + offset`, clipped
    /// to `[0, rail]`.
    LevelShift {
        /// Voltage gain.
        gain: f64,
        /// Output offset in volts.
        offset: f64,
        /// Positive clipping rail.
        rail: f64,
    },
}

impl Behavior {
    /// Number of inputs this behaviour expects.
    pub fn arity(&self) -> usize {
        match self {
            Behavior::Reference { .. } => 1,
            Behavior::Regulator { .. } => 3,
            Behavior::Switch { .. } => 2,
            Behavior::Logic { windows, .. } => windows.len(),
            Behavior::LevelShift { .. } => 1,
        }
    }

    /// Evaluates the healthy transfer function.
    ///
    /// `inputs` must have exactly [`Behavior::arity`] entries; the netlist
    /// guarantees this for simulator calls.
    pub fn evaluate(&self, inputs: &[f64]) -> f64 {
        match self {
            Behavior::Reference {
                nominal,
                min_supply,
            } => {
                let supply = inputs[0];
                if supply >= *min_supply {
                    *nominal
                } else if supply <= 0.0 {
                    0.0
                } else {
                    nominal * supply / min_supply
                }
            }
            Behavior::Regulator {
                nominal,
                dropout,
                enable_threshold,
                reference,
            } => {
                let supply = inputs[0];
                let enable = inputs[1];
                let vref = inputs[2];
                if enable < *enable_threshold || !reference.contains(vref) {
                    return 0.0;
                }
                if supply >= nominal + dropout {
                    *nominal
                } else {
                    (supply - dropout).max(0.0)
                }
            }
            Behavior::Switch {
                drop,
                clamp,
                enable_threshold,
            } => {
                let supply = inputs[0];
                let enable = inputs[1];
                if enable < *enable_threshold {
                    0.0
                } else {
                    (supply - drop).clamp(0.0, *clamp)
                }
            }
            Behavior::Logic {
                op,
                windows,
                out_low,
                out_high,
            } => {
                let decided = match op {
                    LogicOp::And => windows.iter().zip(inputs).all(|(w, &v)| w.contains(v)),
                    LogicOp::Or => windows.iter().zip(inputs).any(|(w, &v)| w.contains(v)),
                };
                if decided {
                    *out_high
                } else {
                    *out_low
                }
            }
            Behavior::LevelShift { gain, offset, rail } => {
                (gain * inputs[0] + offset).clamp(0.0, *rail)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_bounds() {
        let w = Window::new(1.0, 2.0);
        assert!(w.contains(1.0));
        assert!(w.contains(2.0));
        assert!(w.contains(1.5));
        assert!(!w.contains(0.999));
        assert!(!w.contains(2.001));
    }

    #[test]
    fn reference_degrades_below_min_supply() {
        let b = Behavior::Reference {
            nominal: 1.2,
            min_supply: 4.0,
        };
        assert_eq!(b.arity(), 1);
        assert_eq!(b.evaluate(&[8.0]), 1.2);
        assert_eq!(b.evaluate(&[4.0]), 1.2);
        assert!((b.evaluate(&[2.0]) - 0.6).abs() < 1e-12);
        assert_eq!(b.evaluate(&[0.0]), 0.0);
        assert_eq!(b.evaluate(&[-1.0]), 0.0);
    }

    #[test]
    fn regulator_modes() {
        let b = Behavior::Regulator {
            nominal: 5.0,
            dropout: 0.5,
            enable_threshold: 2.0,
            reference: Window::new(1.1, 1.3),
        };
        assert_eq!(b.arity(), 3);
        // Fully operational.
        assert_eq!(b.evaluate(&[12.0, 3.0, 1.2]), 5.0);
        // Disabled.
        assert_eq!(b.evaluate(&[12.0, 0.0, 1.2]), 0.0);
        // Reference lost.
        assert_eq!(b.evaluate(&[12.0, 3.0, 0.0]), 0.0);
        // Supply starved: tracks supply - dropout.
        assert!((b.evaluate(&[4.0, 3.0, 1.2]) - 3.5).abs() < 1e-12);
        // Deeply starved clamps at zero.
        assert_eq!(b.evaluate(&[0.2, 3.0, 1.2]), 0.0);
    }

    #[test]
    fn switch_modes() {
        let b = Behavior::Switch {
            drop: 0.3,
            clamp: 16.0,
            enable_threshold: 2.0,
        };
        assert_eq!(b.arity(), 2);
        assert!((b.evaluate(&[13.0, 3.0]) - 12.7).abs() < 1e-12);
        assert_eq!(b.evaluate(&[13.0, 1.0]), 0.0);
        // Clamp engages on load-dump supplies.
        assert_eq!(b.evaluate(&[40.0, 3.0]), 16.0);
        assert_eq!(b.evaluate(&[0.1, 3.0]), 0.0);
    }

    #[test]
    fn logic_and_or() {
        let and = Behavior::Logic {
            op: LogicOp::And,
            windows: vec![Window::new(1.0, 2.0), Window::new(4.0, 6.0)],
            out_low: 0.0,
            out_high: 5.0,
        };
        assert_eq!(and.arity(), 2);
        assert_eq!(and.evaluate(&[1.5, 5.0]), 5.0);
        assert_eq!(and.evaluate(&[0.5, 5.0]), 0.0);
        let or = Behavior::Logic {
            op: LogicOp::Or,
            windows: vec![Window::new(1.0, 2.0), Window::new(4.0, 6.0)],
            out_low: 0.2,
            out_high: 4.8,
        };
        assert_eq!(or.evaluate(&[0.0, 5.0]), 4.8);
        assert_eq!(or.evaluate(&[0.0, 0.0]), 0.2);
    }

    #[test]
    fn level_shift_clips() {
        let b = Behavior::LevelShift {
            gain: 2.0,
            offset: -1.0,
            rail: 5.0,
        };
        assert_eq!(b.arity(), 1);
        assert!((b.evaluate(&[2.0]) - 3.0).abs() < 1e-12);
        assert_eq!(b.evaluate(&[10.0]), 5.0);
        assert_eq!(b.evaluate(&[0.0]), 0.0);
    }
}
