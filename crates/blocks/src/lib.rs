//! # abbd-blocks — block-level behavioural analogue circuit simulation
//!
//! The physical substrate of the DATE 2010 reproduction: functional blocks
//! with DC behavioural models, wired into a [`Circuit`]; a fixed-point
//! [`Simulator`] that solves net voltages under a [`Stimulus`]; block-level
//! [`FaultMode`]s standing in for real silicon defects; and Monte-Carlo
//! population generation with per-block process variation.
//!
//! Everything the ATE layer measures — and therefore everything the
//! Bayesian diagnosis ever sees — comes out of this crate.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), abbd_blocks::Error> {
//! use abbd_blocks::{
//!     Behavior, CircuitBuilder, Device, DeviceFaults, Fault, FaultMode, SimConfig,
//!     Simulator, Stimulus, Window,
//! };
//!
//! // Bandgap feeding a 5 V regulator.
//! let mut cb = CircuitBuilder::new();
//! let vbat = cb.net("vbat")?;
//! let en = cb.net("en")?;
//! let vref = cb.net("vref")?;
//! let vout = cb.net("vout")?;
//! let bg = cb.block("bg", Behavior::Reference { nominal: 1.2, min_supply: 4.0 }, [vbat], vref)?;
//! cb.block(
//!     "reg",
//!     Behavior::Regulator {
//!         nominal: 5.0,
//!         dropout: 0.5,
//!         enable_threshold: 2.0,
//!         reference: Window::new(1.1, 1.3),
//!     },
//!     [vbat, en, vref],
//!     vout,
//! )?;
//! let circuit = cb.build()?;
//!
//! // A device whose bandgap died: the regulator output collapses too.
//! let mut dut = Device::golden(&circuit);
//! dut.faults = DeviceFaults::single(Fault::new(bg, FaultMode::Dead));
//! let sim = Simulator::new(&circuit, SimConfig::default());
//! let mut stim = Stimulus::new();
//! stim.force(vbat, 12.0).force(en, 3.3);
//! let op = sim.solve(&dut, &stim)?;
//! assert_eq!(op.voltage(vout), 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod block;
mod error;
mod fault;
mod mc;
mod netlist;
mod sim;

pub use behavior::{Behavior, LogicOp, Window};
pub use block::{Block, BlockId, NetId};
pub use error::{Error, Result};
pub use fault::{DeviceFaults, Fault, FaultMode, FaultUniverse};
pub use mc::{sample_defective_devices, sample_good_devices, standard_normal, Variation};
pub use netlist::{Circuit, CircuitBuilder};
pub use sim::{Device, OperatingPoint, SimConfig, Simulator, Stimulus};
