//! Monte-Carlo device populations: process variation and fault sampling.
//!
//! This module stands in for the paper's supply of real defective devices:
//! it fabricates good devices (process spread only) and defective devices
//! (process spread plus one sampled fault).

use crate::fault::{DeviceFaults, FaultUniverse};
use crate::netlist::Circuit;
use crate::sim::Device;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-block process variation, stored as z-scores so the block's declared
/// sigmas scale them at simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variation {
    gain_z: Vec<f64>,
    offset_z: Vec<f64>,
}

impl Variation {
    /// No variation at all (golden device).
    pub fn nominal(block_count: usize) -> Self {
        Variation {
            gain_z: vec![0.0; block_count],
            offset_z: vec![0.0; block_count],
        }
    }

    /// Builds from explicit z-score vectors (tests, corner analysis).
    pub fn from_z_scores(gain_z: Vec<f64>, offset_z: Vec<f64>) -> Self {
        Variation { gain_z, offset_z }
    }

    /// Draws i.i.d. standard-normal z-scores for every block.
    pub fn sample<R: Rng + ?Sized>(block_count: usize, rng: &mut R) -> Self {
        Variation {
            gain_z: (0..block_count).map(|_| standard_normal(rng)).collect(),
            offset_z: (0..block_count).map(|_| standard_normal(rng)).collect(),
        }
    }

    /// Gain z-score of block `index` (0.0 when out of range).
    pub fn gain_z(&self, index: usize) -> f64 {
        self.gain_z.get(index).copied().unwrap_or(0.0)
    }

    /// Offset z-score of block `index` (0.0 when out of range).
    pub fn offset_z(&self, index: usize) -> f64 {
        self.offset_z.get(index).copied().unwrap_or(0.0)
    }
}

/// Standard-normal draw via the Box–Muller transform (keeps the dependency
/// surface at `rand` alone).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `n` good devices (process variation, no faults).
pub fn sample_good_devices<R: Rng + ?Sized>(
    circuit: &Circuit,
    n: usize,
    first_id: u64,
    rng: &mut R,
) -> Vec<Device> {
    (0..n)
        .map(|i| Device {
            id: first_id + i as u64,
            variation: Variation::sample(circuit.block_count(), rng),
            faults: DeviceFaults::healthy(),
        })
        .collect()
}

/// Generates `n` defective devices, each carrying one fault drawn from the
/// universe. Returns an empty vector when the universe cannot be sampled.
pub fn sample_defective_devices<R: Rng + ?Sized>(
    circuit: &Circuit,
    universe: &FaultUniverse,
    n: usize,
    first_id: u64,
    rng: &mut R,
) -> Vec<Device> {
    (0..n)
        .filter_map(|i| {
            let fault = universe.sample(rng)?;
            Some(Device {
                id: first_id + i as u64,
                variation: Variation::sample(circuit.block_count(), rng),
                faults: DeviceFaults::single(fault),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use crate::block::BlockId;
    use crate::fault::{Fault, FaultMode};
    use crate::netlist::CircuitBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn one_block_circuit() -> Circuit {
        let mut cb = CircuitBuilder::new();
        let a = cb.net("a").unwrap();
        let o = cb.net("o").unwrap();
        cb.block(
            "buf",
            Behavior::LevelShift {
                gain: 1.0,
                offset: 0.0,
                rail: 5.0,
            },
            [a],
            o,
        )
        .unwrap();
        cb.build().unwrap()
    }

    #[test]
    fn nominal_variation_is_zero() {
        let v = Variation::nominal(3);
        for i in 0..3 {
            assert_eq!(v.gain_z(i), 0.0);
            assert_eq!(v.offset_z(i), 0.0);
        }
        assert_eq!(v.gain_z(99), 0.0, "out of range reads as nominal");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn good_devices_are_healthy_with_spread() {
        let c = one_block_circuit();
        let mut rng = StdRng::seed_from_u64(4);
        let devices = sample_good_devices(&c, 50, 100, &mut rng);
        assert_eq!(devices.len(), 50);
        assert_eq!(devices[0].id, 100);
        assert_eq!(devices[49].id, 149);
        assert!(devices.iter().all(|d| d.is_healthy()));
        // Not all variations identical (overwhelmingly likely).
        assert!(devices.windows(2).any(|w| w[0].variation != w[1].variation));
    }

    #[test]
    fn defective_devices_carry_one_fault() {
        let c = one_block_circuit();
        let mut universe = FaultUniverse::new();
        universe.add(Fault::new(BlockId::from_index(0), FaultMode::Dead), 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let devices = sample_defective_devices(&c, &universe, 20, 0, &mut rng);
        assert_eq!(devices.len(), 20);
        assert!(devices.iter().all(|d| d.faults.len() == 1));
    }

    #[test]
    fn empty_universe_yields_no_devices() {
        let c = one_block_circuit();
        let mut rng = StdRng::seed_from_u64(4);
        let devices = sample_defective_devices(&c, &FaultUniverse::new(), 5, 0, &mut rng);
        assert!(devices.is_empty());
    }
}
