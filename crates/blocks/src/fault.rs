//! Block-level fault models and fault universes.
//!
//! The paper learns from "a sufficiently large number of defective samples"
//! (70 customer returns for the regulator). We have no silicon, so
//! defective devices are synthesised by injecting one of these fault modes
//! into a functional block and re-simulating the test program.

use crate::block::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a faulty block's output deviates from its healthy behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultMode {
    /// Output collapses to 0 V (dead block, open supply bond).
    Dead,
    /// Output stuck at a fixed level (shorted node, latched driver).
    StuckAt(f64),
    /// Output shorted to the block's first input (typically its supply).
    ShortToInput,
    /// Multiplicative parametric drift: output scaled by the factor.
    GainDrift(f64),
    /// Additive parametric drift: offset in volts.
    OffsetDrift(f64),
    /// Output floats; a weak pulldown takes it near ground.
    FloatingOutput,
}

impl FaultMode {
    /// Applies the fault to a healthy output value given the block inputs.
    pub fn apply(&self, healthy: f64, inputs: &[f64]) -> f64 {
        match self {
            FaultMode::Dead => 0.0,
            FaultMode::StuckAt(level) => *level,
            FaultMode::ShortToInput => inputs.first().copied().unwrap_or(0.0),
            FaultMode::GainDrift(k) => healthy * k,
            FaultMode::OffsetDrift(dv) => healthy + dv,
            FaultMode::FloatingOutput => 0.05,
        }
    }

    /// A short human-readable tag (used in datalogs and reports).
    pub fn tag(&self) -> String {
        match self {
            FaultMode::Dead => "dead".into(),
            FaultMode::StuckAt(v) => format!("stuck@{v:.2}V"),
            FaultMode::ShortToInput => "short-to-input".into(),
            FaultMode::GainDrift(k) => format!("gain×{k:.2}"),
            FaultMode::OffsetDrift(dv) => format!("offset{dv:+.2}V"),
            FaultMode::FloatingOutput => "floating".into(),
        }
    }
}

/// A concrete fault: one block in one mode (single-fault assumption, the
/// standard setting for analogue diagnosis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// The faulty block.
    pub block: BlockId,
    /// Its failure mode.
    pub mode: FaultMode,
}

impl Fault {
    /// Convenience constructor.
    pub fn new(block: BlockId, mode: FaultMode) -> Self {
        Fault { block, mode }
    }
}

/// The fault state of one device under test: healthy, or carrying faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceFaults {
    modes: BTreeMap<BlockId, FaultMode>,
}

impl DeviceFaults {
    /// A healthy device.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A device with a single fault.
    pub fn single(fault: Fault) -> Self {
        let mut modes = BTreeMap::new();
        modes.insert(fault.block, fault.mode);
        DeviceFaults { modes }
    }

    /// Injects an additional fault (multi-fault devices for stress tests).
    pub fn inject(&mut self, fault: Fault) -> &mut Self {
        self.modes.insert(fault.block, fault.mode);
        self
    }

    /// The fault mode of `block`, if any.
    pub fn mode_of(&self, block: BlockId) -> Option<FaultMode> {
        self.modes.get(&block).copied()
    }

    /// `true` for a fault-free device.
    pub fn is_healthy(&self) -> bool {
        self.modes.is_empty()
    }

    /// Number of faulty blocks.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// `true` when no fault is present (alias of [`DeviceFaults::is_healthy`]).
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Iterates the injected faults.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.modes.iter().map(|(b, m)| Fault::new(*b, *m))
    }
}

/// A weighted catalogue of candidate faults — the population defective
/// devices are drawn from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultUniverse {
    entries: Vec<(Fault, f64)>,
}

impl FaultUniverse {
    /// An empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault with a relative occurrence weight.
    pub fn add(&mut self, fault: Fault, weight: f64) -> &mut Self {
        self.entries.push((fault, weight.max(0.0)));
        self
    }

    /// Number of catalogued faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(fault, weight)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Fault, f64)> + '_ {
        self.entries.iter().map(|(f, w)| (*f, *w))
    }

    /// Draws one fault according to the weights.
    ///
    /// Returns `None` on an empty universe or all-zero weights.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<Fault> {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut u = rng.gen::<f64>() * total;
        for (fault, w) in &self.entries {
            u -= w;
            if u <= 0.0 {
                return Some(*fault);
            }
        }
        self.entries.last().map(|(f, _)| *f)
    }
}

impl FromIterator<(Fault, f64)> for FaultUniverse {
    fn from_iter<I: IntoIterator<Item = (Fault, f64)>>(iter: I) -> Self {
        let mut u = FaultUniverse::new();
        for (f, w) in iter {
            u.add(f, w);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    #[test]
    fn fault_modes_transform_output() {
        let inputs = [12.0, 3.0];
        assert_eq!(FaultMode::Dead.apply(5.0, &inputs), 0.0);
        assert_eq!(FaultMode::StuckAt(1.8).apply(5.0, &inputs), 1.8);
        assert_eq!(FaultMode::ShortToInput.apply(5.0, &inputs), 12.0);
        assert_eq!(FaultMode::ShortToInput.apply(5.0, &[]), 0.0);
        assert!((FaultMode::GainDrift(0.8).apply(5.0, &inputs) - 4.0).abs() < 1e-12);
        assert!((FaultMode::OffsetDrift(-0.7).apply(5.0, &inputs) - 4.3).abs() < 1e-12);
        assert!(FaultMode::FloatingOutput.apply(5.0, &inputs) < 0.1);
    }

    #[test]
    fn tags_are_distinct_and_nonempty() {
        let tags: Vec<String> = [
            FaultMode::Dead,
            FaultMode::StuckAt(1.0),
            FaultMode::ShortToInput,
            FaultMode::GainDrift(0.5),
            FaultMode::OffsetDrift(0.5),
            FaultMode::FloatingOutput,
        ]
        .iter()
        .map(|m| m.tag())
        .collect();
        for t in &tags {
            assert!(!t.is_empty());
        }
        let unique: std::collections::HashSet<&String> = tags.iter().collect();
        assert_eq!(unique.len(), tags.len());
    }

    #[test]
    fn device_faults_accessors() {
        let mut d = DeviceFaults::healthy();
        assert!(d.is_healthy());
        assert!(d.is_empty());
        d.inject(Fault::new(b(2), FaultMode::Dead));
        d.inject(Fault::new(b(5), FaultMode::GainDrift(1.2)));
        assert_eq!(d.len(), 2);
        assert_eq!(d.mode_of(b(2)), Some(FaultMode::Dead));
        assert_eq!(d.mode_of(b(9)), None);
        assert_eq!(d.iter().count(), 2);

        let single = DeviceFaults::single(Fault::new(b(1), FaultMode::Dead));
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn universe_sampling_respects_weights() {
        let mut u = FaultUniverse::new();
        u.add(Fault::new(b(0), FaultMode::Dead), 9.0);
        u.add(Fault::new(b(1), FaultMode::Dead), 1.0);
        let mut rng = StdRng::seed_from_u64(19);
        let n = 20_000;
        let hits0 = (0..n)
            .filter(|_| u.sample(&mut rng).unwrap().block == b(0))
            .count();
        let frac = hits0 as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn empty_or_zero_weight_universe_yields_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(FaultUniverse::new().sample(&mut rng).is_none());
        let mut zeros = FaultUniverse::new();
        zeros.add(Fault::new(b(0), FaultMode::Dead), 0.0);
        assert!(zeros.sample(&mut rng).is_none());
        // Negative weights are clamped to zero.
        let mut neg = FaultUniverse::new();
        neg.add(Fault::new(b(0), FaultMode::Dead), -5.0);
        assert!(neg.sample(&mut rng).is_none());
    }

    #[test]
    fn universe_from_iterator() {
        let u: FaultUniverse = [(Fault::new(b(0), FaultMode::Dead), 1.0)]
            .into_iter()
            .collect();
        assert_eq!(u.len(), 1);
        assert!(!u.is_empty());
        assert_eq!(u.iter().count(), 1);
    }
}
