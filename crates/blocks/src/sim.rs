//! DC fixed-point simulation of a block-level circuit under stimulus,
//! process variation and injected faults.

use crate::block::NetId;
use crate::error::{Error, Result};
use crate::fault::DeviceFaults;
use crate::mc::Variation;
use crate::netlist::Circuit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Forced voltages on external input nets (supplies, enable pins).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stimulus {
    forced: BTreeMap<NetId, f64>,
}

impl Stimulus {
    /// An empty stimulus (all inputs float to 0 V).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces `net` to `volts`, replacing any previous value.
    pub fn force(&mut self, net: NetId, volts: f64) -> &mut Self {
        self.forced.insert(net, volts);
        self
    }

    /// The forced level on `net`, if any.
    pub fn level_of(&self, net: NetId) -> Option<f64> {
        self.forced.get(&net).copied()
    }

    /// Iterates `(net, volts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NetId, f64)> + '_ {
        self.forced.iter().map(|(n, v)| (*n, *v))
    }

    /// Number of forced nets.
    pub fn len(&self) -> usize {
        self.forced.len()
    }

    /// `true` when nothing is forced.
    pub fn is_empty(&self) -> bool {
        self.forced.is_empty()
    }
}

impl FromIterator<(NetId, f64)> for Stimulus {
    fn from_iter<I: IntoIterator<Item = (NetId, f64)>>(iter: I) -> Self {
        Stimulus {
            forced: iter.into_iter().collect(),
        }
    }
}

/// One device under test: identity, process variation and fault state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Serial number (unique within a population).
    pub id: u64,
    /// Per-block process variation.
    pub variation: Variation,
    /// Injected faults (empty for a good device).
    pub faults: DeviceFaults,
}

impl Device {
    /// A nominal, fault-free device (no process variation).
    pub fn golden(circuit: &Circuit) -> Self {
        Device {
            id: 0,
            variation: Variation::nominal(circuit.block_count()),
            faults: DeviceFaults::healthy(),
        }
    }

    /// `true` when no fault is injected.
    pub fn is_healthy(&self) -> bool {
        self.faults.is_healthy()
    }
}

/// Solver knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Maximum Gauss–Seidel sweeps.
    pub max_iterations: usize,
    /// Convergence threshold on the worst per-net voltage delta.
    pub tolerance: f64,
    /// Relaxation factor in `(0, 1]`; lower values damp feedback loops.
    pub damping: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_iterations: 200,
            tolerance: 1e-9,
            damping: 1.0,
        }
    }
}

/// The solved DC operating point of a device under one stimulus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    iterations: usize,
}

impl OperatingPoint {
    /// The voltage on `net`.
    pub fn voltage(&self, net: NetId) -> f64 {
        self.voltages[net.index()]
    }

    /// All net voltages, indexed by net.
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Sweeps the solver needed to settle.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// DC solver: repeated Gauss–Seidel sweeps over the blocks until every net
/// settles.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_blocks::Error> {
/// use abbd_blocks::{Behavior, CircuitBuilder, Device, SimConfig, Simulator, Stimulus};
///
/// let mut cb = CircuitBuilder::new();
/// let vbat = cb.net("vbat")?;
/// let vref = cb.net("vref")?;
/// cb.block("bg", Behavior::Reference { nominal: 1.2, min_supply: 4.0 }, [vbat], vref)?;
/// let circuit = cb.build()?;
///
/// let sim = Simulator::new(&circuit, SimConfig::default());
/// let mut stim = Stimulus::new();
/// stim.force(vbat, 12.0);
/// let op = sim.solve(&Device::golden(&circuit), &stim)?;
/// assert!((op.voltage(vref) - 1.2).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    circuit: &'a Circuit,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a solver over `circuit`.
    pub fn new(circuit: &'a Circuit, config: SimConfig) -> Self {
        Simulator { circuit, config }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Solves the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StimulusOnDrivenNet`] when the stimulus collides
    /// with a block output, and [`Error::NotConverged`] when the fixed
    /// point does not settle (oscillating feedback).
    pub fn solve(&self, device: &Device, stimulus: &Stimulus) -> Result<OperatingPoint> {
        for (net, _) in stimulus.iter() {
            if net.index() >= self.circuit.net_count() {
                return Err(Error::UnknownNet(format!("{net}")));
            }
            if self.circuit.driver_of(net).is_some() {
                return Err(Error::StimulusOnDrivenNet(
                    self.circuit.net_name(net).into(),
                ));
            }
        }

        let mut voltages = vec![0.0f64; self.circuit.net_count()];
        for (net, v) in stimulus.iter() {
            voltages[net.index()] = v;
        }

        let mut inputs_buf: Vec<f64> = Vec::new();
        for sweep in 0..self.config.max_iterations {
            let mut residual = 0.0f64;
            for b in self.circuit.blocks() {
                let blk = self.circuit.block(b);
                inputs_buf.clear();
                inputs_buf.extend(blk.inputs.iter().map(|n| voltages[n.index()]));
                let healthy = blk.behavior.evaluate(&inputs_buf);
                let varied = self.apply_variation(device, b.index(), healthy);
                let out = match device.faults.mode_of(b) {
                    Some(mode) => mode.apply(varied, &inputs_buf),
                    None => varied,
                };
                let slot = &mut voltages[blk.output.index()];
                let next = *slot + self.config.damping * (out - *slot);
                residual = residual.max((next - *slot).abs());
                *slot = next;
            }
            if residual <= self.config.tolerance {
                return Ok(OperatingPoint {
                    voltages,
                    iterations: sweep + 1,
                });
            }
        }
        Err(Error::NotConverged {
            iterations: self.config.max_iterations,
            residual: f64::NAN,
        })
    }

    fn apply_variation(&self, device: &Device, block_index: usize, value: f64) -> f64 {
        let blk = self
            .circuit
            .block(crate::block::BlockId::from_index(block_index));
        let gain = 1.0 + blk.gain_sigma * device.variation.gain_z(block_index);
        let offset = blk.offset_sigma * device.variation.offset_z(block_index);
        value * gain + offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Behavior, LogicOp, Window};
    use crate::block::BlockId;
    use crate::fault::{Fault, FaultMode};
    use crate::netlist::CircuitBuilder;

    /// bandgap -> regulator chain with an enable pin.
    fn chain() -> (Circuit, NetId, NetId, NetId, NetId) {
        let mut cb = CircuitBuilder::new();
        let vbat = cb.net("vbat").unwrap();
        let en = cb.net("en").unwrap();
        let vref = cb.net("vref").unwrap();
        let vout = cb.net("vout").unwrap();
        cb.block(
            "bandgap",
            Behavior::Reference {
                nominal: 1.2,
                min_supply: 4.0,
            },
            [vbat],
            vref,
        )
        .unwrap();
        cb.block(
            "reg",
            Behavior::Regulator {
                nominal: 5.0,
                dropout: 0.5,
                enable_threshold: 2.0,
                reference: Window::new(1.1, 1.3),
            },
            [vbat, en, vref],
            vout,
        )
        .unwrap();
        (cb.build().unwrap(), vbat, en, vref, vout)
    }

    #[test]
    fn healthy_chain_regulates() {
        let (c, vbat, en, vref, vout) = chain();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(vbat, 12.0).force(en, 3.3);
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        assert!((op.voltage(vref) - 1.2).abs() < 1e-9);
        assert!((op.voltage(vout) - 5.0).abs() < 1e-9);
        assert!(op.iterations() <= 5);
        assert_eq!(op.voltages().len(), 4);
    }

    #[test]
    fn disabled_regulator_outputs_zero() {
        let (c, vbat, en, _, vout) = chain();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(vbat, 12.0).force(en, 0.0);
        let op = sim.solve(&Device::golden(&c), &stim).unwrap();
        assert_eq!(op.voltage(vout), 0.0);
    }

    #[test]
    fn dead_bandgap_kills_downstream_regulator() {
        let (c, vbat, en, vref, vout) = chain();
        let bandgap = c.find_block("bandgap").unwrap();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(vbat, 12.0).force(en, 3.3);
        let mut dut = Device::golden(&c);
        dut.faults = DeviceFaults::single(Fault::new(bandgap, FaultMode::Dead));
        let op = sim.solve(&dut, &stim).unwrap();
        assert_eq!(op.voltage(vref), 0.0);
        assert_eq!(op.voltage(vout), 0.0, "regulator loses its reference");
    }

    #[test]
    fn gain_drift_propagates() {
        let (c, vbat, en, vref, vout) = chain();
        let bandgap = c.find_block("bandgap").unwrap();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(vbat, 12.0).force(en, 3.3);
        let mut dut = Device::golden(&c);
        // 20% low reference leaves the qualification window -> reg drops out.
        dut.faults = DeviceFaults::single(Fault::new(bandgap, FaultMode::GainDrift(0.8)));
        let op = sim.solve(&dut, &stim).unwrap();
        assert!((op.voltage(vref) - 0.96).abs() < 1e-9);
        assert_eq!(op.voltage(vout), 0.0);
    }

    #[test]
    fn stimulus_on_driven_net_is_rejected() {
        let (c, _, _, vref, _) = chain();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(vref, 1.2);
        assert!(matches!(
            sim.solve(&Device::golden(&c), &stim),
            Err(Error::StimulusOnDrivenNet(_))
        ));
    }

    #[test]
    fn unknown_stimulus_net_is_rejected() {
        let (c, _, _, _, _) = chain();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(NetId::from_index(99), 1.0);
        assert!(matches!(
            sim.solve(&Device::golden(&c), &stim),
            Err(Error::UnknownNet(_))
        ));
    }

    #[test]
    fn oscillating_loop_reports_nonconvergence() {
        // An inverter driving itself through the logic window flips forever.
        let mut cb = CircuitBuilder::new();
        let x = cb.net("x").unwrap();
        cb.block(
            "inv",
            Behavior::Logic {
                op: LogicOp::And,
                windows: vec![Window::new(0.0, 1.0)], // high when input low
                out_low: 0.0,
                out_high: 5.0,
            },
            [x],
            x,
        )
        .unwrap();
        let c = cb.build().unwrap();
        let sim = Simulator::new(
            &c,
            SimConfig {
                damping: 1.0,
                ..SimConfig::default()
            },
        );
        let err = sim.solve(&Device::golden(&c), &Stimulus::new());
        assert!(matches!(err, Err(Error::NotConverged { .. })));
    }

    #[test]
    fn variation_shifts_outputs() {
        let (c, vbat, en, vref, _) = chain();
        let sim = Simulator::new(&c, SimConfig::default());
        let mut stim = Stimulus::new();
        stim.force(vbat, 12.0).force(en, 3.3);
        let mut dut = Device::golden(&c);
        // +3 sigma gain on every block: bandgap 1% sigma -> +3%.
        dut.variation =
            Variation::from_z_scores(vec![3.0; c.block_count()], vec![0.0; c.block_count()]);
        let op = sim.solve(&dut, &stim).unwrap();
        assert!((op.voltage(vref) - 1.2 * 1.03).abs() < 1e-9);
        let _ = (vref, en);
    }

    #[test]
    fn stimulus_collection_helpers() {
        let mut s = Stimulus::new();
        assert!(s.is_empty());
        s.force(NetId::from_index(0), 1.5);
        s.force(NetId::from_index(0), 2.5); // replaces
        assert_eq!(s.len(), 1);
        assert_eq!(s.level_of(NetId::from_index(0)), Some(2.5));
        let s2: Stimulus = [(NetId::from_index(1), 3.0)].into_iter().collect();
        assert_eq!(s2.iter().count(), 1);
        let _ = BlockId::from_index(0);
    }
}
