//! Block-level netlists: nets, blocks, wiring validation.

use crate::behavior::Behavior;
use crate::block::{Block, BlockId, NetId};
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Incremental constructor for [`Circuit`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), abbd_blocks::Error> {
/// use abbd_blocks::{Behavior, CircuitBuilder};
///
/// let mut cb = CircuitBuilder::new();
/// let vbat = cb.net("vbat")?;
/// let vref = cb.net("vref")?;
/// cb.block(
///     "bandgap",
///     Behavior::Reference { nominal: 1.2, min_supply: 4.0 },
///     [vbat],
///     vref,
/// )?;
/// let circuit = cb.build()?;
/// assert_eq!(circuit.block_count(), 1);
/// assert_eq!(circuit.input_nets(), vec![vbat]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    nets: Vec<String>,
    nets_by_name: HashMap<String, NetId>,
    blocks: Vec<Block>,
    blocks_by_name: HashMap<String, BlockId>,
    driver: HashMap<NetId, BlockId>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a net.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateNet`] for repeated names.
    pub fn net<N: Into<String>>(&mut self, name: N) -> Result<NetId> {
        let name = name.into();
        if self.nets_by_name.contains_key(&name) {
            return Err(Error::DuplicateNet(name));
        }
        let id = NetId::from_index(self.nets.len());
        self.nets_by_name.insert(name.clone(), id);
        self.nets.push(name);
        Ok(id)
    }

    /// Declares a block with default process spreads (1% gain, 10 mV
    /// offset).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateBlock`], [`Error::UnknownNet`],
    /// [`Error::ArityMismatch`] or [`Error::MultipleDrivers`].
    pub fn block<N, I>(
        &mut self,
        name: N,
        behavior: Behavior,
        inputs: I,
        output: NetId,
    ) -> Result<BlockId>
    where
        N: Into<String>,
        I: IntoIterator<Item = NetId>,
    {
        self.block_with_spread(name, behavior, inputs, output, 0.01, 0.01)
    }

    /// Declares a block with explicit process spreads.
    ///
    /// # Errors
    ///
    /// See [`CircuitBuilder::block`]; additionally
    /// [`Error::InvalidParameter`] for negative spreads.
    pub fn block_with_spread<N, I>(
        &mut self,
        name: N,
        behavior: Behavior,
        inputs: I,
        output: NetId,
        gain_sigma: f64,
        offset_sigma: f64,
    ) -> Result<BlockId>
    where
        N: Into<String>,
        I: IntoIterator<Item = NetId>,
    {
        let name = name.into();
        if self.blocks_by_name.contains_key(&name) {
            return Err(Error::DuplicateBlock(name));
        }
        let inputs: Vec<NetId> = inputs.into_iter().collect();
        for n in inputs.iter().chain([&output]) {
            if n.index() >= self.nets.len() {
                return Err(Error::UnknownNet(format!("{n}")));
            }
        }
        if behavior.arity() != inputs.len() {
            return Err(Error::ArityMismatch {
                block: name,
                expected: behavior.arity(),
                actual: inputs.len(),
            });
        }
        if gain_sigma < 0.0 || offset_sigma < 0.0 {
            return Err(Error::InvalidParameter {
                block: name,
                reason: "process spreads must be non-negative".into(),
            });
        }
        if let Some(existing) = self.driver.get(&output) {
            return Err(Error::MultipleDrivers {
                net: self.nets[output.index()].clone(),
                block: self.blocks[existing.index()].name.clone(),
            });
        }
        let id = BlockId::from_index(self.blocks.len());
        self.driver.insert(output, id);
        self.blocks_by_name.insert(name.clone(), id);
        self.blocks.push(Block {
            name,
            behavior,
            inputs,
            output,
            gain_sigma,
            offset_sigma,
        });
        Ok(id)
    }

    /// Looks up a previously declared net.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets_by_name.get(name).copied()
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// Currently infallible for a builder that only accepted valid calls;
    /// kept fallible for forward compatibility.
    pub fn build(self) -> Result<Circuit> {
        Ok(Circuit {
            nets: self.nets,
            nets_by_name: self.nets_by_name,
            blocks: self.blocks,
            blocks_by_name: self.blocks_by_name,
        })
    }
}

/// A validated block-level circuit: named nets, blocks with behaviours,
/// and single-driver wiring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    nets: Vec<String>,
    nets_by_name: HashMap<String, NetId>,
    blocks: Vec<Block>,
    blocks_by_name: HashMap<String, BlockId>,
}

impl Circuit {
    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterator over all block handles in declaration order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Iterator over all net handles in declaration order.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(NetId::from_index)
    }

    /// The definition record of `block`.
    pub fn block(&self, block: BlockId) -> &Block {
        &self.blocks[block.index()]
    }

    /// The name of `net`.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.index()]
    }

    /// Looks up a block by name.
    pub fn find_block(&self, name: &str) -> Option<BlockId> {
        self.blocks_by_name.get(name).copied()
    }

    /// Looks up a net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets_by_name.get(name).copied()
    }

    /// Like [`Circuit::find_net`] but returns an error carrying the name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNet`].
    pub fn require_net(&self, name: &str) -> Result<NetId> {
        self.find_net(name)
            .ok_or_else(|| Error::UnknownNet(name.into()))
    }

    /// Like [`Circuit::find_block`] but returns an error carrying the name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownBlock`].
    pub fn require_block(&self, name: &str) -> Result<BlockId> {
        self.find_block(name)
            .ok_or_else(|| Error::UnknownBlock(name.into()))
    }

    /// The block driving `net`, if any.
    pub fn driver_of(&self, net: NetId) -> Option<BlockId> {
        self.blocks().find(|b| self.blocks[b.index()].output == net)
    }

    /// Nets with no driving block — the circuit's external inputs, which a
    /// [`crate::Stimulus`] is expected to force.
    pub fn input_nets(&self) -> Vec<NetId> {
        self.nets()
            .filter(|n| self.driver_of(*n).is_none())
            .collect()
    }

    /// Renders the block diagram in Graphviz DOT syntax.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph circuit {\n  rankdir=LR;\n");
        for b in self.blocks() {
            out.push_str(&format!("  \"{}\" [shape=box];\n", self.block(b).name));
        }
        for b in self.blocks() {
            let blk = self.block(b);
            for i in &blk.inputs {
                match self.driver_of(*i) {
                    Some(src) => out.push_str(&format!(
                        "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                        self.block(src).name,
                        blk.name,
                        self.net_name(*i)
                    )),
                    None => out.push_str(&format!(
                        "  \"{}\" [shape=plaintext];\n  \"{}\" -> \"{}\";\n",
                        self.net_name(*i),
                        self.net_name(*i),
                        blk.name
                    )),
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{LogicOp, Window};

    fn tiny() -> Circuit {
        let mut cb = CircuitBuilder::new();
        let vbat = cb.net("vbat").unwrap();
        let en = cb.net("en").unwrap();
        let vref = cb.net("vref").unwrap();
        let vout = cb.net("vout").unwrap();
        cb.block(
            "bandgap",
            Behavior::Reference {
                nominal: 1.2,
                min_supply: 4.0,
            },
            [vbat],
            vref,
        )
        .unwrap();
        cb.block(
            "reg",
            Behavior::Regulator {
                nominal: 5.0,
                dropout: 0.5,
                enable_threshold: 2.0,
                reference: Window::new(1.1, 1.3),
            },
            [vbat, en, vref],
            vout,
        )
        .unwrap();
        cb.build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let c = tiny();
        assert_eq!(c.net_count(), 4);
        assert_eq!(c.block_count(), 2);
        let reg = c.find_block("reg").unwrap();
        assert_eq!(c.block(reg).name, "reg");
        assert_eq!(c.block(reg).inputs.len(), 3);
        assert!(c.find_block("nope").is_none());
        assert!(c.require_block("nope").is_err());
        let vout = c.find_net("vout").unwrap();
        assert_eq!(c.net_name(vout), "vout");
        assert!(c.require_net("ghost").is_err());
        assert_eq!(c.driver_of(vout), Some(reg));
    }

    #[test]
    fn input_nets_are_undriven() {
        let c = tiny();
        let names: Vec<&str> = c.input_nets().iter().map(|n| c.net_name(*n)).collect();
        assert_eq!(names, vec!["vbat", "en"]);
    }

    #[test]
    fn rejects_duplicates() {
        let mut cb = CircuitBuilder::new();
        cb.net("a").unwrap();
        assert!(matches!(cb.net("a"), Err(Error::DuplicateNet(_))));
        let n = cb.net("out").unwrap();
        let s = cb.net("in").unwrap();
        cb.block(
            "x",
            Behavior::LevelShift {
                gain: 1.0,
                offset: 0.0,
                rail: 5.0,
            },
            [s],
            n,
        )
        .unwrap();
        assert!(matches!(
            cb.block(
                "x",
                Behavior::LevelShift {
                    gain: 1.0,
                    offset: 0.0,
                    rail: 5.0
                },
                [s],
                n
            ),
            Err(Error::DuplicateBlock(_))
        ));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut cb = CircuitBuilder::new();
        let a = cb.net("a").unwrap();
        let out = cb.net("out").unwrap();
        cb.block(
            "x",
            Behavior::LevelShift {
                gain: 1.0,
                offset: 0.0,
                rail: 5.0,
            },
            [a],
            out,
        )
        .unwrap();
        let err = cb.block(
            "y",
            Behavior::LevelShift {
                gain: 1.0,
                offset: 0.0,
                rail: 5.0,
            },
            [a],
            out,
        );
        assert!(matches!(err, Err(Error::MultipleDrivers { .. })));
    }

    #[test]
    fn rejects_arity_mismatch_and_bad_spread() {
        let mut cb = CircuitBuilder::new();
        let a = cb.net("a").unwrap();
        let out = cb.net("out").unwrap();
        assert!(matches!(
            cb.block(
                "or2",
                Behavior::Logic {
                    op: LogicOp::Or,
                    windows: vec![Window::new(0.0, 1.0), Window::new(0.0, 1.0)],
                    out_low: 0.0,
                    out_high: 5.0,
                },
                [a],
                out,
            ),
            Err(Error::ArityMismatch { .. })
        ));
        assert!(matches!(
            cb.block_with_spread(
                "bad",
                Behavior::LevelShift {
                    gain: 1.0,
                    offset: 0.0,
                    rail: 5.0
                },
                [a],
                out,
                -0.1,
                0.0,
            ),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rejects_unknown_net_handle() {
        let mut cb = CircuitBuilder::new();
        let a = cb.net("a").unwrap();
        let ghost = NetId::from_index(42);
        assert!(matches!(
            cb.block(
                "x",
                Behavior::LevelShift {
                    gain: 1.0,
                    offset: 0.0,
                    rail: 5.0
                },
                [a],
                ghost,
            ),
            Err(Error::UnknownNet(_))
        ));
    }

    #[test]
    fn dot_render_mentions_blocks_and_nets() {
        let c = tiny();
        let dot = c.to_dot();
        assert!(dot.contains("\"bandgap\""));
        assert!(dot.contains("\"reg\""));
        assert!(dot.contains("vref"));
        assert!(dot.contains("vbat"));
    }

    #[test]
    fn builder_find_net() {
        let mut cb = CircuitBuilder::new();
        let a = cb.net("a").unwrap();
        assert_eq!(cb.find_net("a"), Some(a));
        assert_eq!(cb.find_net("b"), None);
    }
}
