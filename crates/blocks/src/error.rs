//! Error type for circuit construction and simulation.

use std::fmt;

/// Result alias used throughout [`crate`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or simulating a block-level circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A block with this name was already declared.
    DuplicateBlock(String),
    /// A net with this name was already declared.
    DuplicateNet(String),
    /// The named block does not exist.
    UnknownBlock(String),
    /// The named net does not exist.
    UnknownNet(String),
    /// A net is driven by more than one block output.
    MultipleDrivers {
        /// The contested net.
        net: String,
        /// The block whose output collided.
        block: String,
    },
    /// A block was declared with the wrong number of inputs for its
    /// behaviour.
    ArityMismatch {
        /// The offending block.
        block: String,
        /// Inputs the behaviour expects.
        expected: usize,
        /// Inputs actually wired.
        actual: usize,
    },
    /// A behaviour parameter is out of its legal range.
    InvalidParameter {
        /// The offending block.
        block: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// The fixed-point solver did not settle within its iteration budget.
    NotConverged {
        /// Iterations attempted.
        iterations: usize,
        /// Worst per-net voltage delta at give-up time.
        residual: f64,
    },
    /// The stimulus drives a net that is also a block output.
    StimulusOnDrivenNet(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateBlock(name) => write!(f, "block `{name}` is already declared"),
            Error::DuplicateNet(name) => write!(f, "net `{name}` is already declared"),
            Error::UnknownBlock(name) => write!(f, "unknown block `{name}`"),
            Error::UnknownNet(name) => write!(f, "unknown net `{name}`"),
            Error::MultipleDrivers { net, block } => {
                write!(
                    f,
                    "net `{net}` already has a driver; block `{block}` collides"
                )
            }
            Error::ArityMismatch {
                block,
                expected,
                actual,
            } => write!(
                f,
                "block `{block}` expects {expected} input(s), got {actual}"
            ),
            Error::InvalidParameter { block, reason } => {
                write!(f, "invalid parameter on block `{block}`: {reason}")
            }
            Error::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "simulation did not converge after {iterations} iterations \
                 (residual {residual} V)"
            ),
            Error::StimulusOnDrivenNet(net) => {
                write!(f, "stimulus forces net `{net}` which is driven by a block")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let samples = [
            Error::DuplicateBlock("b".into()),
            Error::DuplicateNet("n".into()),
            Error::UnknownBlock("b".into()),
            Error::UnknownNet("n".into()),
            Error::MultipleDrivers {
                net: "n".into(),
                block: "b".into(),
            },
            Error::ArityMismatch {
                block: "b".into(),
                expected: 2,
                actual: 1,
            },
            Error::InvalidParameter {
                block: "b".into(),
                reason: "neg".into(),
            },
            Error::NotConverged {
                iterations: 9,
                residual: 0.5,
            },
            Error::StimulusOnDrivenNet("n".into()),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
