//! Developer utility: prints the learned CPT rows of the latent chain to
//! understand the EM equilibrium. Not part of the paper's tables.

use abbd_core::LearnAlgorithm;
use abbd_designs::regulator;

fn main() {
    let fitted = regulator::fit(70, 2010, LearnAlgorithm::default()).expect("pipeline");
    let net = fitted.engine.model().network();
    for name in [
        "vx", "enblSen", "hcbg", "warnvpst", "enb13", "enbsw", "lcbg", "sw",
    ] {
        let var = net.var(name).unwrap();
        let parents: Vec<&str> = net.parents(var).iter().map(|p| net.name(*p)).collect();
        println!("\n{name} | {}", parents.join(", "));
        let card = net.card(var);
        let configs = net.parent_configs(var);
        // Print at most 12 rows to keep vx's 125 rows manageable.
        for config in 0..configs.min(12) {
            let row = &net.cpt(var)[config * card..(config + 1) * card];
            let cells: Vec<String> = row.iter().map(|p| format!("{p:.3}")).collect();
            println!("  config {config:>3}: [{}]", cells.join(", "));
        }
        if configs > 12 {
            println!("  ... ({configs} configs total)");
        }
    }

    // Count the truth mix of the population.
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for log in &fitted.logs {
        for t in &log.truth {
            *counts.entry(t.clone()).or_default() += 1;
        }
    }
    println!("\npopulation truth mix:");
    for (tag, n) in counts {
        println!("  {tag}: {n}");
    }
}
