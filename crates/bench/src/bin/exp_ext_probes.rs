//! Extension experiment: probe planning for the paper's step two. For
//! each Table VI case, rank the internal blocks by the expected
//! information gained from physically probing them (FIB/SEM time is the
//! expensive resource the paper's flow tries to focus).
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_ext_probes`

use abbd_designs::regulator::{self, cases::case_studies};

fn main() {
    let fitted =
        regulator::fit(70, 2010, regulator::default_algorithm()).expect("regulator pipeline");
    println!("EXT-PROBES — expected information gain of probing each internal block\n");
    for case in case_studies() {
        let probes = fitted
            .engine
            .rank_probes(&case.observation())
            .expect("probe ranking");
        let shown: Vec<String> = probes
            .iter()
            .take(4)
            .map(|p| format!("{}({:.3})", p.variable, p.expected_information_gain))
            .collect();
        println!(
            "{}: paper verdict [{}] -> probe order: {}",
            case.id,
            case.expected_candidates.join(", "),
            shown.join("  ")
        );
    }
    println!(
        "\nreading: in d1 the method cannot separate warnvpst from hcbg from \
         the ATE data alone; the probe ranking shows which block to open \
         first to resolve the ambiguity."
    );
}
