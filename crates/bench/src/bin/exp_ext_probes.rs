//! Extension experiment: probe planning for the paper's step two. For
//! each Table VI case, rank the internal blocks by the expected
//! information gained from physically probing them (FIB/SEM time is the
//! expensive resource the paper's flow tries to focus).
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_ext_probes`

use abbd_core::{Action, DiagnosisSession, StoppingPolicy};
use abbd_designs::regulator::{self, cases::case_studies};
use std::sync::Arc;

fn main() {
    let fitted =
        regulator::fit(70, 2010, regulator::default_algorithm()).expect("regulator pipeline");
    println!("EXT-PROBES — expected information gain of probing each internal block\n");
    for case in case_studies() {
        let mut session = DiagnosisSession::new(
            Arc::clone(fitted.engine.compiled()),
            StoppingPolicy::default(),
        )
        .expect("session opens");
        session
            .observe_all(&case.observation())
            .expect("case seeds");
        let menu: Vec<Action> = session
            .compiled()
            .latent_names()
            .map(Action::probe)
            .collect();
        session.set_actions(menu).expect("probe menu");
        let shown: Vec<String> = session
            .rank_actions()
            .expect("probe ranking")
            .iter()
            .take(4)
            .map(|p| format!("{}({:.3})", p.name(), p.expected_information_gain()))
            .collect();
        println!(
            "{}: paper verdict [{}] -> probe order: {}",
            case.id,
            case.expected_candidates.join(", "),
            shown.join("  ")
        );
    }
    println!(
        "\nreading: in d1 the method cannot separate warnvpst from hcbg from \
         the ATE data alone; the probe ranking shows which block to open \
         first to resolve the ambiguity."
    );
}
