//! Developer utility: traces devices whose true block never appears in
//! the merged ranking.

use abbd_baselines::{group_by_device, Diagnoser};
use abbd_bench::BbnDeviceDiagnoser;
use abbd_designs::regulator::{self, program::suite_plans};

fn main() {
    let fitted = regulator::fit(70, 2010, regulator::default_algorithm()).unwrap();
    let adapter = BbnDeviceDiagnoser::new(&fitted.engine);
    let test = regulator::synthesize(400, 777, 1_000_000).unwrap();
    let sigs = group_by_device(&test.cases);

    let mut shown = 0;
    for sig in &sigs {
        let truth = sig.truth_blocks.first().cloned().unwrap_or_default();
        if truth != "warnvpst" && truth != "enbsw" && truth != "lcbg" {
            continue;
        }
        let ranking = adapter.diagnose(sig);
        if ranking.iter().any(|(b, _)| *b == truth) {
            continue;
        }
        shown += 1;
        if shown > 3 {
            break;
        }
        println!(
            "\n=== device {} truth {truth} ranking {ranking:?}",
            sig.device_id
        );
        // Per-suite detail.
        for plan in suite_plans() {
            let mut obs = abbd_core::Observation::new();
            let mut failing = Vec::new();
            for ((suite, var), &state) in &sig.features {
                if suite == plan.name {
                    obs.set(var.clone(), state);
                    if let Some(oi) = regulator::program::OBSERVED_VARS
                        .iter()
                        .position(|o| o == var)
                    {
                        if state != plan.healthy_states[oi] {
                            obs.mark_failing(var.clone());
                            failing.push(var.clone());
                        }
                    }
                }
            }
            if failing.is_empty() {
                println!("  suite {:<16} no deviations", plan.name);
                continue;
            }
            match fitted.engine.diagnose(&obs) {
                Ok(d) => {
                    let cands: Vec<String> = d
                        .candidates()
                        .iter()
                        .map(|c| {
                            format!(
                                "{}({:.2},anc{:.2},cond{:.2})",
                                c.variable,
                                c.fault_mass,
                                c.ancestor_fault_probability,
                                c.conditional_fault_expectation
                            )
                        })
                        .collect();
                    let states: Vec<String> = obs.iter().map(|(n, s)| format!("{n}={s}")).collect();
                    println!(
                        "  suite {:<16} failing {:?} cands [{}]",
                        plan.name,
                        failing,
                        cands.join(", ")
                    );
                    println!("        obs: {}", states.join(" "));
                }
                Err(e) => println!("  suite {:<16} ERROR: {e}", plan.name),
            }
        }
    }
    if shown == 0 {
        println!("no missed devices found");
    }
}
