//! Regenerates paper Fig. 3: the BBN model variables and structural
//! dependencies of the voltage regulator.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_fig3`

use abbd_designs::regulator::model::circuit_model;

fn main() {
    let m = circuit_model();
    println!("FIG. 3 — BBN MODEL VARIABLES AND STRUCTURAL DEPENDENCIES\n");
    println!(
        "{} model variables, {} dependency edges\n",
        m.spec().len(),
        m.edges().len()
    );
    for v in m.spec().variables() {
        let parents = m.parents_of(&v.name);
        if parents.is_empty() {
            println!("  {:<10} (root, {})", v.name, v.ftype.label());
        } else {
            println!(
                "  {:<10} <- {:<30} ({})",
                v.name,
                parents.join(", "),
                v.ftype.label()
            );
        }
    }
    println!("\nGraphviz:\n{}", m.to_dot());
}
