//! Regenerates paper Table I: model functional types of the hypothetical
//! circuit.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table1`

use abbd_designs::hypothetical;
use abbd_dlog2bbn::FunctionalType;

fn main() {
    println!("TABLE I — MODEL FUNCTIONAL TYPE\n");
    println!("{:<10} {:<22} Remarks", "Model", "Type");
    for v in hypothetical::model_spec().variables() {
        let remark = match v.ftype {
            FunctionalType::Control => "Controllable node",
            FunctionalType::Observe => "Observable node",
            FunctionalType::ControlObserve => "Controllable and Observable node",
            FunctionalType::Latent => "Neither Controllable nor Observable node",
        };
        println!("{:<10} {:<22} {remark}", v.name, v.ftype.label());
    }
}
