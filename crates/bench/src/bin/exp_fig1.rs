//! Regenerates paper Fig. 1: the hypothetical four-block circuit (1a) and
//! its BBN structural model (1b).
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_fig1`

use abbd_designs::hypothetical;

fn main() {
    let circuit = hypothetical::circuit();
    println!("FIG. 1a — HYPOTHETICAL ANALOGUE CIRCUIT (block netlist)\n");
    for b in circuit.blocks() {
        let blk = circuit.block(b);
        let inputs: Vec<&str> = blk.inputs.iter().map(|n| circuit.net_name(*n)).collect();
        println!(
            "  {:<8} inputs: [{}] -> output: {}",
            blk.name,
            inputs.join(", "),
            circuit.net_name(blk.output)
        );
    }
    println!("\nGraphviz:\n{}", circuit.to_dot());

    let model = hypothetical::circuit_model();
    println!("FIG. 1b — BBN STRUCTURAL MODEL\n");
    for (parent, child) in model.edges() {
        println!("  {parent} -> {child}");
    }
    println!("\nGraphviz:\n{}", model.to_dot());
}
