//! Regenerates paper Table V: the BBN model variables of the voltage
//! regulator circuit with circuit references and functional types.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table5`

use abbd_designs::regulator::model::model_spec;

fn main() {
    println!("TABLE V — BBN MODEL VARIABLES OF VOLTAGE REGULATOR CIRCUIT\n");
    println!("{:<12} {:<10} Type", "MVar.", "Ckt.Ref.");
    for v in model_spec().variables() {
        println!(
            "{:<12} {:<10} {}",
            v.name,
            v.ckt_ref.as_deref().unwrap_or("-"),
            v.ftype.label()
        );
    }
}
