//! Extension experiment: diagnosis accuracy vs training-set size, BBN vs
//! fault dictionary vs naive Bayes vs random guess, on a held-out
//! population of failing devices.
//!
//! Not in the paper (which validates against a human expert on five
//! cases); this quantifies the same pipeline on a statistically meaningful
//! sample.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_ext_accuracy [n_test]`

use abbd_baselines::{
    accuracy_at_k, group_by_device, Diagnoser, FaultDictionary, NaiveBayes, RandomGuess,
};
use abbd_bench::BbnDeviceDiagnoser;
use abbd_designs::regulator::{self, model::VARIABLES};

fn main() {
    let n_test: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);

    // Held-out evaluation set, disjoint seed and id space.
    let test_pop = regulator::synthesize(n_test, 777, 1_000_000).expect("test population");
    let test_sigs = group_by_device(&test_pop.cases);
    println!(
        "EXT-ACCURACY — top-k diagnosis accuracy on {} held-out failing devices",
        test_sigs.len()
    );
    println!(
        "\n{:>7} {:>18} {:>6} {:>6}  (k = 1 / 2)",
        "train", "method", "acc@1", "acc@2"
    );

    for n_train in [10usize, 30, 70, 150, 300] {
        let fitted = regulator::fit(n_train, 2010, regulator::default_algorithm())
            .expect("training pipeline");
        let train_sigs = group_by_device(&fitted.cases);

        let bbn = BbnDeviceDiagnoser::new(&fitted.engine);
        let dictionary = FaultDictionary::train(&train_sigs);
        let naive = NaiveBayes::train(&train_sigs, 1.0);
        let random = RandomGuess::new(VARIABLES.iter().copied(), 99);

        let methods: Vec<(&str, &dyn Diagnoser)> = vec![
            ("bbn", &bbn),
            ("fault-dictionary", &dictionary),
            ("naive-bayes", &naive),
            ("random", &random),
        ];
        for (name, method) in methods {
            let a1 = accuracy_at_k(method, &test_sigs, 1);
            let a2 = accuracy_at_k(method, &test_sigs, 2);
            println!("{n_train:>7} {name:>18} {a1:>6.3} {a2:>6.3}");
        }
        println!();
    }
}
