//! Regenerates paper Table VI: the five diagnostic case studies of the
//! voltage regulator, with conditions, responses and the deduced fail
//! candidates, compared against the paper's verdicts.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table6`

use abbd_bbn::learn::EmConfig;
use abbd_core::LearnAlgorithm;
use abbd_designs::regulator::{self, cases::case_studies};

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(regulator::DEFAULT_EM_ITERATIONS);
    let t0 = std::time::Instant::now();
    let fitted = regulator::fit(
        70,
        2010,
        LearnAlgorithm::Em(EmConfig {
            max_iterations: iters,
            tolerance: 1e-6,
        }),
    )
    .expect("regulator pipeline");
    eprintln!(
        "fitted on {} failing devices / {} cases in {:.1?} ({} EM iterations, {} skipped)",
        fitted.devices.len(),
        fitted.cases.len(),
        t0.elapsed(),
        fitted.engine.model().summary().map_or(0, |s| s.iterations),
        fitted
            .engine
            .model()
            .summary()
            .map_or(0, |s| s.skipped_cases),
    );

    println!("TABLE VI — SUMMARISING DIAGNOSTIC CASE STUDIES AND RESULTS");
    println!(
        "{:<5} {:<34} {:<28} {:<22} {:<22} {:>5}",
        "Case",
        "Controllable states",
        "Observable states",
        "Paper fail blocks",
        "Our candidates",
        "match"
    );
    let mut matches = 0usize;
    let studies = case_studies();
    for case in &studies {
        let obs = case.observation();
        let diagnosis = fitted.engine.diagnose(&obs).expect("diagnosis");
        let controls: Vec<String> = case
            .controls
            .iter()
            .map(|(n, s)| format!("{n}={s}"))
            .collect();
        let observables: Vec<String> = case
            .observables
            .iter()
            .map(|(n, s)| format!("{n}={s}"))
            .collect();
        let got: Vec<&str> = diagnosis
            .candidates()
            .iter()
            .map(|c| c.variable.as_str())
            .collect();
        let expected: Vec<&str> = case.expected_candidates.to_vec();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        let ok = got_sorted == expected_sorted;
        matches += usize::from(ok);
        println!(
            "{:<5} {:<34} {:<28} {:<22} {:<22} {:>5}",
            case.id,
            controls.join(" "),
            observables.join(" "),
            expected.join(", "),
            got.join(", "),
            if ok { "yes" } else { "NO" }
        );
        // Detail lines: latent fault masses.
        let mut masses: Vec<(String, f64)> = diagnosis
            .fault_mass()
            .iter()
            .map(|(n, m)| (n.clone(), *m))
            .collect();
        masses.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let detail: Vec<String> = masses
            .iter()
            .map(|(n, m)| format!("{n}:{:.2}", m))
            .collect();
        println!("      fault mass: {}", detail.join(" "));
    }
    println!(
        "\ncandidate-set agreement with the paper: {matches}/{} cases",
        studies.len()
    );
}
