//! Extension experiment: diagnostic resolution across the whole fault
//! universe — for every catalogued fault, where does the true block land
//! in the ranked candidate list, and how long is the list?
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_ext_resolution`

use abbd_baselines::{group_by_device, Diagnoser};
use abbd_bench::BbnDeviceDiagnoser;
use abbd_designs::regulator::{self, faults::fault_catalog};
use std::collections::BTreeMap;

fn main() {
    let fitted =
        regulator::fit(70, 2010, regulator::default_algorithm()).expect("training pipeline");
    let adapter = BbnDeviceDiagnoser::new(&fitted.engine);

    // A large held-out population so every catalogue entry appears.
    let test = regulator::synthesize(400, 777, 1_000_000).expect("test population");
    let sigs = group_by_device(&test.cases);

    #[derive(Default)]
    struct Agg {
        n: usize,
        rank_sum: usize,
        hits1: usize,
        list_len_sum: usize,
        missed: usize,
    }
    let mut per_block: BTreeMap<String, Agg> = BTreeMap::new();
    for sig in &sigs {
        let truth = sig.truth_blocks.first().cloned().unwrap_or_default();
        let ranking = adapter.diagnose(sig);
        let agg = per_block.entry(truth.clone()).or_default();
        agg.n += 1;
        agg.list_len_sum += ranking.len();
        match ranking.iter().position(|(b, _)| *b == truth) {
            Some(pos) => {
                agg.rank_sum += pos + 1;
                if pos == 0 {
                    agg.hits1 += 1;
                }
            }
            None => agg.missed += 1,
        }
    }

    println!(
        "EXT-RESOLUTION — rank of the true block over {} held-out devices",
        sigs.len()
    );
    println!(
        "\n{:<10} {:>4} {:>7} {:>9} {:>9} {:>7}",
        "block", "n", "acc@1", "mean rank", "list len", "missed"
    );
    for (block, agg) in &per_block {
        let found = agg.n - agg.missed;
        println!(
            "{:<10} {:>4} {:>7.3} {:>9.2} {:>9.2} {:>7}",
            block,
            agg.n,
            agg.hits1 as f64 / agg.n as f64,
            if found > 0 {
                agg.rank_sum as f64 / found as f64
            } else {
                f64::NAN
            },
            agg.list_len_sum as f64 / agg.n as f64,
            agg.missed
        );
    }
    let total: usize = per_block.values().map(|a| a.n).sum();
    let hits: usize = per_block.values().map(|a| a.hits1).sum();
    println!(
        "\noverall acc@1: {:.3} over {total} devices ({} catalogued fault modes)",
        hits as f64 / total as f64,
        fault_catalog().len()
    );
}
