//! Regenerates paper Table III: conditional probabilities P(Block-2 |
//! Block-1) and P(Block-3 | Block-1) of the hypothetical circuit — the
//! expert's estimate next to the values fine-tuned on simulated failing
//! devices.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table3`

use abbd_core::LearnAlgorithm;
use abbd_designs::hypothetical;

fn print_cpt(title: &str, net: &abbd_bbn::Network, child: &str, parent: &str) {
    let c = net.var(child).expect("variable exists");
    let p = net.var(parent).expect("variable exists");
    println!("\n{title}: P({child} | {parent})");
    let child_card = net.card(c);
    let header: Vec<String> = (0..child_card).map(|s| format!("State:{s}")).collect();
    println!("  {:<10} {}", parent, header.join("   "));
    for ps in 0..net.card(p) {
        let row = net.cpt_row(c, &[ps]).expect("row exists");
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.3}  ")).collect();
        println!("  State:{ps}    {}", cells.join("   "));
    }
}

fn main() {
    println!("TABLE III — CONDITIONAL PROBABILITY: BLOCK-1→BLOCK-2 AND BLOCK-1→BLOCK-3");

    // Expert estimate (the P_blk21_xx / P_blk31_xx entries).
    let expert_model = abbd_core::ModelBuilder::new(hypothetical::circuit_model())
        .with_expert(hypothetical::expert_knowledge(40.0))
        .build_expert_only()
        .expect("static model builds");
    print_cpt(
        "expert estimate",
        expert_model.network(),
        "block2",
        "block1",
    );
    print_cpt(
        "expert estimate",
        expert_model.network(),
        "block3",
        "block1",
    );

    // Fine-tuned on 60 simulated failing devices.
    let fitted =
        hypothetical::fit(60, 2010, LearnAlgorithm::default()).expect("hypothetical pipeline");
    let net = fitted.engine.model().network();
    print_cpt("fine-tuned on 60 failing devices", net, "block2", "block1");
    print_cpt("fine-tuned on 60 failing devices", net, "block3", "block1");
}
