//! Regenerates paper Fig. 2: the functional block schematic of the
//! multiple-output voltage regulator (block and net inventory).
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_fig2`

use abbd_designs::regulator::circuit::circuit;

fn main() {
    let c = circuit();
    println!("FIG. 2 — FUNCTIONAL BLOCK SCHEMATIC OF THE MULTIPLE-OUTPUT VOLTAGE REGULATOR\n");
    println!(
        "{} functional blocks, {} nets\n",
        c.block_count(),
        c.net_count()
    );
    println!("{:<10} {:<42} -> output net", "block", "input nets");
    for b in c.blocks() {
        let blk = c.block(b);
        let inputs: Vec<&str> = blk.inputs.iter().map(|n| c.net_name(*n)).collect();
        println!(
            "{:<10} {:<42} -> {}",
            blk.name,
            inputs.join(", "),
            c.net_name(blk.output)
        );
    }
    let inputs: Vec<&str> = c.input_nets().iter().map(|n| c.net_name(*n)).collect();
    println!("\nexternal inputs (stimulus): {}", inputs.join(", "));
    println!("\nGraphviz:\n{}", c.to_dot());
}
