//! Extension experiment (ablation of the paper's central claim): combining
//! design/test knowledge with fail data beats either source alone.
//!
//! The designer's input here is the *rough* estimate the paper describes
//! (every CPT row blended halfway to uniform), so fine-tuning has real
//! calibration work to do. Three models are compared on held-out devices:
//!
//! * rough-expert-only — the rough estimate, no fine-tuning;
//! * data-only         — uniform starting CPTs, EM on the cases;
//! * combined          — the paper's flow: rough estimate fine-tuned by EM.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_ext_priors`

use abbd_baselines::{accuracy_at_k, group_by_device};
use abbd_bbn::learn::EmConfig;
use abbd_bench::BbnDeviceDiagnoser;
use abbd_core::{DiagnosticEngine, ExpertKnowledge, LearnAlgorithm, ModelBuilder};
use abbd_designs::regulator::{self, expert::rough_expert_knowledge};

fn main() {
    let train = regulator::synthesize(70, 2010, 0).expect("training population");
    let test = regulator::synthesize(150, 777, 1_000_000).expect("test population");
    let test_sigs = group_by_device(&test.cases);
    let rig = regulator::rig();

    // A rough prior should bend to the data: modest strength, more
    // iterations than the headline pipeline.
    let ess = 30.0;
    let em = LearnAlgorithm::Em(EmConfig {
        max_iterations: 10,
        tolerance: 1e-6,
    });

    let rough_only = ModelBuilder::new(rig.model.clone())
        .with_expert(rough_expert_knowledge(ess))
        .build_expert_only()
        .expect("rough model");
    let data_only = ModelBuilder::new(rig.model.clone())
        .with_expert(ExpertKnowledge::new(1.0))
        .learn(&train.cases, em.clone())
        .expect("data-only model");
    let combined = ModelBuilder::new(rig.model.clone())
        .with_expert(rough_expert_knowledge(ess))
        .learn(&train.cases, em)
        .expect("combined model");

    println!(
        "EXT-PRIORS — knowledge-source ablation (70 training devices, {} held-out)",
        test_sigs.len()
    );
    println!(
        "\n{:>18} {:>6} {:>6}  (k = 1 / 2)",
        "model", "acc@1", "acc@2"
    );
    for (name, model) in [
        ("rough-expert-only", rough_only),
        ("data-only", data_only),
        ("combined", combined),
    ] {
        let engine = DiagnosticEngine::new(model).expect("engine compiles");
        let adapter = BbnDeviceDiagnoser::new(&engine);
        let a1 = accuracy_at_k(&adapter, &test_sigs, 1);
        let a2 = accuracy_at_k(&adapter, &test_sigs, 2);
        println!("{name:>18} {a1:>6.3} {a2:>6.3}");
    }
}
