//! Regenerates paper Table IV: conditional probability P(Block-4 |
//! Block-3) of the hypothetical circuit, expert vs fine-tuned.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table4`

use abbd_core::LearnAlgorithm;
use abbd_designs::hypothetical;

fn print_cpt(title: &str, net: &abbd_bbn::Network) {
    let c = net.var("block4").expect("variable exists");
    println!("\n{title}: P(block4 | block3)");
    println!("  block3     State:0    State:1");
    for ps in 0..2 {
        let row = net.cpt_row(c, &[ps]).expect("row exists");
        println!("  State:{ps}    {:.3}      {:.3}", row[0], row[1]);
    }
}

fn main() {
    println!("TABLE IV — CONDITIONAL PROBABILITY: BLOCK-3, BLOCK-4");
    let expert_model = abbd_core::ModelBuilder::new(hypothetical::circuit_model())
        .with_expert(hypothetical::expert_knowledge(40.0))
        .build_expert_only()
        .expect("static model builds");
    print_cpt("expert estimate", expert_model.network());

    let fitted =
        hypothetical::fit(60, 2010, LearnAlgorithm::default()).expect("hypothetical pipeline");
    print_cpt(
        "fine-tuned on 60 failing devices",
        fitted.engine.model().network(),
    );
}
