//! Regenerates paper Table VII: the full diagnostic state-probability
//! table of the voltage regulator — every model variable, every usable
//! state, voltage limits, the initial probabilities after parameter
//! learning, and the updated probabilities for the five diagnostic cases —
//! followed by a quantitative paper-vs-measured comparison.
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table7`

use abbd_core::{render_state_table, Diagnosis};
use abbd_designs::regulator::{self, cases::case_studies, model::LATENTS, paper};

fn main() {
    let fitted =
        regulator::fit(70, 2010, regulator::default_algorithm()).expect("regulator pipeline");
    let baseline = fitted.engine.baseline().expect("baseline propagation");

    let studies = case_studies();
    let diagnoses: Vec<(String, Diagnosis)> = studies
        .iter()
        .map(|c| {
            (
                c.id.to_string(),
                fitted.engine.diagnose(&c.observation()).expect("diagnosis"),
            )
        })
        .collect();
    let columns: Vec<(&str, &Diagnosis)> =
        diagnoses.iter().map(|(id, d)| (id.as_str(), d)).collect();

    println!("TABLE VII — DIAGNOSTIC CASE STUDIES: MODEL VARIABLE STATE PROBABILITIES\n");
    println!(
        "{}",
        render_state_table(fitted.engine.model(), &baseline, &columns)
    );

    // Paper-vs-measured: the Init column.
    println!("\nINIT COLUMN VS PAPER (percent, per state)");
    println!("{:<12} {:<28} {:<28}", "MVar.", "measured", "paper");
    let mut init_argmax_matches = 0usize;
    let mut init_vars = 0usize;
    for (name, dist) in &baseline {
        let Some(paper_dist) = paper::init_percent(name) else {
            continue;
        };
        let ours: Vec<String> = dist.iter().map(|p| format!("{:.1}", p * 100.0)).collect();
        let theirs: Vec<String> = paper_dist.iter().map(|p| format!("{p:.1}")).collect();
        println!(
            "{:<12} {:<28} {:<28}",
            name,
            ours.join(" "),
            theirs.join(" ")
        );
        init_vars += 1;
        let our_argmax = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i);
        let paper_argmax = paper_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i);
        if our_argmax == paper_argmax {
            init_argmax_matches += 1;
        }
    }

    // Paper-vs-measured: latent fault-state mass per diagnostic case.
    println!("\nLATENT FAULT-STATE MASS VS PAPER (percent)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "latent", "d1 us/paper", "d2 us/paper", "d3 us/paper", "d4 us/paper", "d5 us/paper"
    );
    let policy = fitted.engine.policy();
    let mut class_matches = 0usize;
    let mut class_total = 0usize;
    for latent in LATENTS {
        let paper_mass = paper::latent_fault_percent(latent).expect("reference data");
        let mut row = format!("{latent:<10}");
        for (ci, (_, diagnosis)) in diagnoses.iter().enumerate() {
            let ours = diagnosis.fault_mass()[latent] * 100.0;
            let theirs = paper_mass[ci];
            row.push_str(&format!(" {:>6.1}/{:<7.1}", ours, theirs));
            class_total += 1;
            // Qualitative agreement: same side of the ambiguity window.
            let ours_class = policy.classify(ours / 100.0);
            let paper_class = policy.classify(theirs / 100.0);
            if ours_class == paper_class {
                class_matches += 1;
            }
        }
        println!("{row}");
    }

    println!("\nAGREEMENT SUMMARY");
    println!("  init argmax state agreement:        {init_argmax_matches}/{init_vars} variables");
    println!(
        "  latent health-class agreement:      {class_matches}/{class_total} (latent, case) pairs"
    );
    let candidate_matches = studies
        .iter()
        .zip(&diagnoses)
        .filter(|(case, (_, d))| {
            let mut got: Vec<&str> = d.candidates().iter().map(|c| c.variable.as_str()).collect();
            got.sort_unstable();
            let mut want = case.expected_candidates.to_vec();
            want.sort_unstable();
            got == want
        })
        .count();
    println!(
        "  candidate-set agreement (Table VI): {candidate_matches}/{} cases",
        studies.len()
    );
}
