//! Extension experiment: EM convergence on the regulator cases — observed
//! log-likelihood per iteration on the training set and on a held-out set
//! (the latter shows the overfitting/blame-drift that motivates early
//! stopping).
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_ext_em [max_iters]`

use abbd_bbn::learn::{expected_statistics, Case, EmConfig};
use abbd_bbn::JunctionTree;
use abbd_core::{LearnAlgorithm, ModelBuilder};
use abbd_designs::regulator;

fn to_bbn_cases(net: &abbd_bbn::Network, cases: &[abbd_dlog2bbn::NamedCase]) -> Vec<Case> {
    cases
        .iter()
        .map(|c| {
            Case::from_pairs(
                c.assignment
                    .iter()
                    .map(|(name, state)| (net.var(name).expect("case variables exist"), *state)),
            )
        })
        .collect()
}

fn main() {
    let max_iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let train = regulator::synthesize(70, 2010, 0).expect("training population");
    let holdout = regulator::synthesize(70, 777, 1_000_000).expect("holdout population");
    let rig = regulator::rig();

    println!("EXT-EM — convergence of the fine-tuning objective");
    println!(
        "\n{:>5} {:>16} {:>16}",
        "iter", "train avg ll", "holdout avg ll"
    );
    for iters in 1..=max_iters {
        let fitted = ModelBuilder::new(rig.model.clone())
            .with_expert(rig.expert.clone())
            .learn(
                &train.cases,
                LearnAlgorithm::Em(EmConfig {
                    max_iterations: iters,
                    tolerance: 0.0,
                }),
            )
            .expect("learning");
        let net = fitted.network();
        let jt = JunctionTree::compile(net).expect("compiles");
        let train_cases = to_bbn_cases(net, &train.cases);
        let holdout_cases = to_bbn_cases(net, &holdout.cases);
        let (_, ll_train, _) = expected_statistics(&jt, &train_cases).expect("e-step");
        let (_, ll_holdout, _) = expected_statistics(&jt, &holdout_cases).expect("e-step");
        println!(
            "{iters:>5} {:>16.4} {:>16.4}",
            ll_train / train_cases.len() as f64,
            ll_holdout / holdout_cases.len() as f64
        );
    }
    println!(
        "\n(default iteration budget used by the experiments: {})",
        regulator::DEFAULT_EM_ITERATIONS
    );
}
