//! Regenerates paper Table II: model-variable state definitions of the
//! hypothetical circuit (states, lower/upper limits, remarks).
//!
//! Run: `cargo run --release -p abbd-bench --bin exp_table2`

use abbd_designs::hypothetical;

fn main() {
    println!("TABLE II — MODEL VARIABLES STATE DEFINITIONS\n");
    println!(
        "{:<10} {:>6} {:>12} {:>12} Remarks",
        "Block", "States", "LLimit (V)", "ULimit (V)"
    );
    for v in hypothetical::model_spec().variables() {
        for (i, band) in v.bands.iter().enumerate() {
            let name = if i == 0 { v.name.as_str() } else { "" };
            println!(
                "{:<10} {:>6} {:>12.2} {:>12.2} {}",
                name, band.label, band.lo, band.hi, band.remark
            );
        }
    }
}
