//! # abbd-bench — evaluation harness helpers
//!
//! Shared infrastructure for the experiment binaries (one per paper table
//! and figure, see `src/bin/`) and the Criterion performance benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abbd_baselines::{DeviceSignature, Diagnoser, Ranking};
use abbd_core::{DiagnosticEngine, Observation};
use abbd_designs::regulator::program::{suite_plans, SuitePlan, OBSERVED_VARS};
use std::collections::BTreeMap;

/// Adapts the block-level Bayesian diagnostic engine to the device-level
/// [`Diagnoser`] interface used by the baselines: each suite of the
/// signature with deviating outputs is diagnosed separately, and candidate
/// scores are accumulated per block.
#[derive(Debug)]
pub struct BbnDeviceDiagnoser<'a> {
    engine: &'a DiagnosticEngine,
    plans: Vec<SuitePlan>,
}

impl<'a> BbnDeviceDiagnoser<'a> {
    /// Wraps a fitted regulator engine.
    pub fn new(engine: &'a DiagnosticEngine) -> Self {
        BbnDeviceDiagnoser {
            engine,
            plans: suite_plans(),
        }
    }

    /// Rebuilds the per-suite observation from a device signature,
    /// marking outputs that deviate from the suite's healthy states.
    fn observation_for(
        &self,
        signature: &DeviceSignature,
        plan: &SuitePlan,
    ) -> Option<Observation> {
        let mut obs = Observation::new();
        let mut any = false;
        let mut failing = false;
        for ((suite, var), &state) in &signature.features {
            if suite == plan.name {
                obs.set(var.clone(), state);
                any = true;
                if let Some(oi) = OBSERVED_VARS.iter().position(|o| o == var) {
                    if state != plan.healthy_states[oi] {
                        obs.mark_failing(var.clone());
                        failing = true;
                    }
                }
            }
        }
        (any && failing).then_some(obs)
    }
}

impl Diagnoser for BbnDeviceDiagnoser<'_> {
    fn name(&self) -> &str {
        "bbn"
    }

    fn diagnose(&self, signature: &DeviceSignature) -> Ranking {
        let mut scores: BTreeMap<String, f64> = BTreeMap::new();
        for plan in &self.plans {
            let Some(obs) = self.observation_for(signature, plan) else {
                continue;
            };
            let Ok(diagnosis) = self.engine.diagnose(&obs) else {
                continue;
            };
            for candidate in diagnosis.candidates() {
                let slot = scores.entry(candidate.variable.clone()).or_default();
                *slot = slot.max(candidate.fault_mass);
            }
        }
        let mut ranking: Ranking = scores.into_iter().collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        ranking
    }
}

/// Formats a probability as a Table VII percentage cell.
pub fn pct(p: f64) -> String {
    format!("{:.1}", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_baselines::group_by_device;
    use abbd_core::LearnAlgorithm;
    use abbd_designs::regulator;

    #[test]
    fn bbn_adapter_ranks_injected_fault_first_for_clear_cases() {
        let fitted = regulator::fit(24, 5, regulator::default_algorithm()).unwrap();
        let signatures = group_by_device(&fitted.cases);
        let adapter = BbnDeviceDiagnoser::new(&fitted.engine);
        assert_eq!(adapter.name(), "bbn");
        // Find a device whose truth is enb13 (an unambiguous signature).
        let clear = signatures
            .iter()
            .find(|s| s.truth_blocks == vec!["enb13".to_string()]);
        if let Some(sig) = clear {
            let ranking = adapter.diagnose(sig);
            assert!(!ranking.is_empty());
            assert_eq!(ranking[0].0, "enb13", "{ranking:?}");
        }
        let _ = LearnAlgorithm::default();
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3");
        assert_eq!(pct(1.0), "100.0");
    }
}
