//! Circuit-simulator benchmarks: fixed-point solves and Monte-Carlo
//! population generation.

use abbd_blocks::{
    sample_defective_devices, sample_good_devices, Device, SimConfig, Simulator, Stimulus,
};
use abbd_designs::regulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn nominal_stimulus(circuit: &abbd_blocks::Circuit) -> Stimulus {
    let mut s = Stimulus::new();
    for (net, volts) in [
        ("vp1", 12.0),
        ("vp1x", 15.0),
        ("vp2", 8.0),
        ("enb13_pin", 1.2),
        ("enb4_pin", 1.2),
        ("enbsw_pin", 1.2),
    ] {
        s.force(circuit.find_net(net).unwrap(), volts);
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let rig = regulator::rig();
    let sim = Simulator::new(&rig.circuit, SimConfig::default());
    let stimulus = nominal_stimulus(&rig.circuit);
    let golden = Device::golden(&rig.circuit);
    let mut rng = StdRng::seed_from_u64(8);
    let faulty = sample_defective_devices(&rig.circuit, &rig.universe, 1, 0, &mut rng)
        .into_iter()
        .next()
        .expect("one device");

    let mut group = c.benchmark_group("dc_solve");
    group.bench_function("golden", |b| {
        b.iter(|| sim.solve(black_box(&golden), black_box(&stimulus)).unwrap())
    });
    group.bench_function("faulty", |b| {
        b.iter(|| sim.solve(black_box(&faulty), black_box(&stimulus)).unwrap())
    });
    group.finish();
}

fn bench_population(c: &mut Criterion) {
    let rig = regulator::rig();
    let mut group = c.benchmark_group("population_sampling");
    for n in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("good", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sample_good_devices(&rig.circuit, n, 0, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("defective", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sample_defective_devices(&rig.circuit, &rig.universe, n, 0, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_population);
criterion_main!(benches);
