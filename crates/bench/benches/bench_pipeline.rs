//! End-to-end pipeline benchmarks: device simulation → datalog → case →
//! diagnosis, the paper's complete operational loop.

use abbd_ate::{test_device, NoiseModel};
use abbd_blocks::{sample_defective_devices, Device};
use abbd_designs::regulator::{self, cases::case_studies};
use abbd_dlog2bbn::generate_cases;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_pipeline_stages(c: &mut Criterion) {
    let rig = regulator::rig();
    let mut rng = StdRng::seed_from_u64(3);
    let devices = sample_defective_devices(&rig.circuit, &rig.universe, 1, 0, &mut rng);
    let device = devices.into_iter().next().expect("one device");

    let mut group = c.benchmark_group("pipeline_stages");
    group.bench_function("test_one_device_full_program", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            test_device(
                &rig.circuit,
                &rig.program,
                black_box(&device),
                &NoiseModel::production(),
                &mut rng,
            )
            .unwrap()
        })
    });

    let mut rng2 = StdRng::seed_from_u64(4);
    let log = test_device(
        &rig.circuit,
        &rig.program,
        &device,
        &NoiseModel::production(),
        &mut rng2,
    )
    .unwrap();
    let logs = vec![log];
    group.bench_function("generate_cases_one_log", |b| {
        b.iter(|| generate_cases(rig.model.spec(), &rig.mapping, black_box(&logs)).unwrap())
    });

    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let observation = case_studies()[0].observation();
    group.bench_function("diagnose_one_observation", |b| {
        b.iter(|| fitted.engine.diagnose(black_box(&observation)).unwrap())
    });
    group.bench_function("diagnose_one_observation_reused_workspace", |b| {
        let mut ws = fitted.engine.make_workspace();
        b.iter(|| {
            fitted
                .engine
                .diagnose_with(&mut ws, black_box(&observation))
                .unwrap()
        })
    });
    let batch: Vec<_> = case_studies()
        .iter()
        .cycle()
        .take(64)
        .map(|case| case.observation())
        .collect();
    group.bench_function("diagnose_batch_64_boards", |b| {
        b.iter(|| fitted.engine.diagnose_batch(black_box(&batch)))
    });
    group.bench_function("golden_device_simulation", |b| {
        let golden = Device::golden(&rig.circuit);
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            test_device(
                &rig.circuit,
                &rig.program,
                black_box(&golden),
                &NoiseModel::none(),
                &mut rng,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_full_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_fit");
    group.sample_size(10);
    group.bench_function("fit_30_devices", |b| {
        b.iter(|| regulator::fit(30, black_box(2010), regulator::default_algorithm()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_stages, bench_full_fit);
criterion_main!(benches);
