//! Inference-engine benchmarks: posterior queries on the regulator network
//! and on synthetic chains, comparing variable elimination, junction-tree
//! propagation and likelihood weighting (the Netica-replacement cost).

use abbd_bbn::{
    likelihood_weighting, Evidence, JunctionTree, Network, NetworkBuilder, VariableElimination,
};
use abbd_core::{CostModel, SequentialDiagnoser, StoppingPolicy, Strategy};
use abbd_designs::regulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// The fitted regulator network plus the d1 evidence set.
fn regulator_setup() -> (Network, Evidence) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let net = fitted.engine.model().network().clone();
    let case = &regulator::cases::case_studies()[0];
    let evidence = fitted
        .engine
        .evidence_from(&case.observation())
        .expect("evidence maps");
    (net, evidence)
}

/// A binary chain x0 -> x1 -> ... -> x{n-1}.
fn chain(n: usize) -> Network {
    let mut b = NetworkBuilder::new();
    let mut prev = b.variable("x0", ["0", "1"]).unwrap();
    b.prior(prev, [0.6, 0.4]).unwrap();
    for i in 1..n {
        let v = b.variable(format!("x{i}"), ["0", "1"]).unwrap();
        b.cpt(v, [prev], [[0.9, 0.1], [0.2, 0.8]]).unwrap();
        prev = v;
    }
    b.build().unwrap()
}

fn bench_regulator_inference(c: &mut Criterion) {
    let (net, evidence) = regulator_setup();
    let mut group = c.benchmark_group("regulator_posteriors");

    group.bench_function("variable_elimination_all", |b| {
        let ve = VariableElimination::new(&net);
        b.iter(|| ve.all_posteriors(black_box(&evidence)).unwrap())
    });
    group.bench_function("junction_tree_compile", |b| {
        b.iter(|| JunctionTree::compile(black_box(&net)).unwrap())
    });
    group.bench_function("junction_tree_propagate", |b| {
        let jt = JunctionTree::compile(&net).unwrap();
        b.iter(|| jt.posteriors(black_box(&evidence)).unwrap())
    });
    group.bench_function("likelihood_weighting_2k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| likelihood_weighting(&net, black_box(&evidence), 2_000, &mut rng).unwrap())
    });
    group.finish();
}

/// The repeated-evidence serving loop: one compiled tree, many queries.
/// `clone_and_rebuild_baseline` is the seed's allocating propagation
/// (potentials rebuilt from CPTs with factor products on every call);
/// `compiled_schedule` is the flat-schedule path through a fresh workspace;
/// `compiled_reused_workspace` reuses one workspace across queries and is
/// the zero-allocation configuration batch serving uses.
fn bench_repeated_evidence(c: &mut Criterion) {
    let (net, evidence) = regulator_setup();
    let jt = JunctionTree::compile(&net).unwrap();
    let mut group = c.benchmark_group("repeated_evidence");

    group.bench_function("clone_and_rebuild_baseline", |b| {
        b.iter(|| {
            jt.propagate_baseline(black_box(&evidence))
                .unwrap()
                .all_posteriors()
                .unwrap()
        })
    });
    group.bench_function("compiled_schedule", |b| {
        b.iter(|| {
            jt.propagate(black_box(&evidence))
                .unwrap()
                .all_posteriors()
                .unwrap()
        })
    });
    group.bench_function("compiled_reused_workspace", |b| {
        let mut ws = jt.make_workspace();
        b.iter(|| {
            jt.propagate_in(&mut ws, black_box(&evidence))
                .unwrap()
                .all_posteriors()
                .unwrap()
        })
    });
    group.bench_function("compiled_log_likelihood_only", |b| {
        let mut ws = jt.make_workspace();
        b.iter(|| {
            jt.propagate_in(&mut ws, black_box(&evidence))
                .unwrap()
                .log_likelihood()
        })
    });
    group.finish();
}

/// Batch throughput: many independent boards against one compiled tree.
fn bench_batch_throughput(c: &mut Criterion) {
    let (net, evidence) = regulator_setup();
    let jt = JunctionTree::compile(&net).unwrap();
    let mut group = c.benchmark_group("batch_diagnosis");
    for n in [16usize, 64, 256] {
        let boards: Vec<Evidence> = (0..n).map(|_| evidence.clone()).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &boards, |b, boards| {
            let mut ws = jt.make_workspace();
            b.iter(|| {
                boards
                    .iter()
                    .map(|e| {
                        jt.propagate_in(&mut ws, e)
                            .unwrap()
                            .all_posteriors()
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("parallel_batch", n),
            &boards,
            |b, boards| b.iter(|| jt.posteriors_batch(black_box(boards))),
        );
    }
    group.finish();
}

/// The value-of-information decision loop of sequential adaptive
/// diagnosis (and the repaired `rank_probes`): dozens of hypothetical
/// propagations per decision, all through the compiled tree and reused
/// workspaces. `per_decision_scoring` is the steady-state number the
/// serving loop pays between measurements; `closed_loop_d1_adaptive` is a
/// whole case-study run (diagnose + score + apply until isolation).
fn bench_sequential_voi(c: &mut Criterion) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let engine = fitted.engine;
    let cases = regulator::cases::case_studies();
    let d1 = &cases[0];
    let observation = d1.observation();
    let mut group = c.benchmark_group("sequential_voi");

    group.bench_function("rank_probes_all_latents", |b| {
        b.iter(|| engine.rank_probes(black_box(&observation)).unwrap())
    });
    group.bench_function("per_decision_scoring", |b| {
        let mut diagnoser = SequentialDiagnoser::new(&engine, StoppingPolicy::default()).unwrap();
        for (name, state) in d1.controls {
            diagnoser.observe(name, state).unwrap();
        }
        b.iter(|| {
            let scored = diagnoser.score_candidates().unwrap();
            black_box(scored[0].expected_information_gain())
        })
    });
    group.bench_function("closed_loop_d1_adaptive", |b| {
        b.iter(|| {
            regulator::adaptive::adaptive_case_study(
                black_box(&engine),
                d1,
                StoppingPolicy::default(),
            )
            .unwrap()
            .tests_used()
        })
    });
    group.finish();
}

/// Cost-aware lookahead planning (PR 3): the per-decision price of the
/// depth-2 expectimax versus the myopic kernel it generalises, plus the
/// cost-weighted arbitration path. `lookahead2_per_decision` expands
/// roughly `candidates² × states²` hypothetical propagations through the
/// compiled tree and per-level reused workspaces; `closed_loop_d1_lookahead2`
/// is the whole case study planned at depth 2.
fn bench_lookahead_voi(c: &mut Criterion) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let engine = fitted.engine;
    let cases = regulator::cases::case_studies();
    let d1 = &cases[0];
    let mut group = c.benchmark_group("lookahead_voi");

    group.bench_function("cost_weighted_per_decision", |b| {
        let mut diagnoser = SequentialDiagnoser::new(&engine, StoppingPolicy::default()).unwrap();
        diagnoser.set_strategy(Strategy::CostWeighted).unwrap();
        diagnoser
            .set_cost_model(regulator::adaptive::reference_cost_model())
            .unwrap();
        for (name, state) in d1.controls {
            diagnoser.observe(name, state).unwrap();
        }
        b.iter(|| {
            let scored = diagnoser.score_candidates().unwrap();
            black_box(scored[0].score())
        })
    });
    group.bench_function("lookahead2_per_decision", |b| {
        let mut diagnoser = SequentialDiagnoser::new(&engine, StoppingPolicy::default()).unwrap();
        diagnoser
            .set_strategy(Strategy::Lookahead { depth: 2 })
            .unwrap();
        for (name, state) in d1.controls {
            diagnoser.observe(name, state).unwrap();
        }
        b.iter(|| {
            let scored = diagnoser.score_candidates().unwrap();
            black_box(scored[0].score())
        })
    });
    group.bench_function("closed_loop_d1_lookahead2", |b| {
        b.iter(|| {
            regulator::adaptive::traced_case_study(
                black_box(&engine),
                d1,
                StoppingPolicy::default(),
                Strategy::Lookahead { depth: 2 },
                CostModel::unit(),
            )
            .unwrap()
            .0
            .tests_used()
        })
    });
    group.finish();
}

fn bench_chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_posteriors");
    for n in [10usize, 40, 160] {
        let net = chain(n);
        let mut evidence = Evidence::new();
        evidence.observe(net.var(&format!("x{}", n - 1)).unwrap(), 1);
        group.bench_with_input(BenchmarkId::new("junction_tree", n), &n, |b, _| {
            let jt = JunctionTree::compile(&net).unwrap();
            b.iter(|| jt.posteriors(black_box(&evidence)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ve_single_query", n), &n, |b, _| {
            let ve = VariableElimination::new(&net);
            let x0 = net.var("x0").unwrap();
            b.iter(|| ve.posterior(black_box(&evidence), x0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_regulator_inference,
    bench_repeated_evidence,
    bench_batch_throughput,
    bench_sequential_voi,
    bench_lookahead_voi,
    bench_chain_scaling
);
criterion_main!(benches);
