//! Inference-engine benchmarks: posterior queries on the regulator network
//! and on synthetic chains, comparing variable elimination, junction-tree
//! propagation and likelihood weighting (the Netica-replacement cost).

use abbd_bbn::{
    likelihood_weighting, Evidence, JunctionTree, Network, NetworkBuilder, VariableElimination,
};
use abbd_core::{
    Action, CompiledModel, CostModel, DiagnosisSession, HierarchicalSession, SessionRequest,
    StoppingPolicy, Strategy,
};
use abbd_designs::board::{self, BoardConfig};
use abbd_designs::regulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

/// The fitted regulator network plus the d1 evidence set.
fn regulator_setup() -> (Network, Evidence) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let net = fitted.engine.model().network().clone();
    let case = &regulator::cases::case_studies()[0];
    let evidence = fitted
        .engine
        .evidence_from(&case.observation())
        .expect("evidence maps");
    (net, evidence)
}

/// A binary chain x0 -> x1 -> ... -> x{n-1}.
fn chain(n: usize) -> Network {
    let mut b = NetworkBuilder::new();
    let mut prev = b.variable("x0", ["0", "1"]).unwrap();
    b.prior(prev, [0.6, 0.4]).unwrap();
    for i in 1..n {
        let v = b.variable(format!("x{i}"), ["0", "1"]).unwrap();
        b.cpt(v, [prev], [[0.9, 0.1], [0.2, 0.8]]).unwrap();
        prev = v;
    }
    b.build().unwrap()
}

fn bench_regulator_inference(c: &mut Criterion) {
    let (net, evidence) = regulator_setup();
    let mut group = c.benchmark_group("regulator_posteriors");

    group.bench_function("variable_elimination_all", |b| {
        let ve = VariableElimination::new(&net);
        b.iter(|| ve.all_posteriors(black_box(&evidence)).unwrap())
    });
    group.bench_function("junction_tree_compile", |b| {
        b.iter(|| JunctionTree::compile(black_box(&net)).unwrap())
    });
    group.bench_function("junction_tree_propagate", |b| {
        let jt = JunctionTree::compile(&net).unwrap();
        b.iter(|| jt.posteriors(black_box(&evidence)).unwrap())
    });
    group.bench_function("likelihood_weighting_2k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| likelihood_weighting(&net, black_box(&evidence), 2_000, &mut rng).unwrap())
    });
    group.finish();
}

/// The repeated-evidence serving loop: one compiled tree, many queries.
/// `clone_and_rebuild_baseline` is the seed's allocating propagation
/// (potentials rebuilt from CPTs with factor products on every call);
/// `compiled_schedule` is the flat-schedule path through a fresh workspace;
/// `compiled_reused_workspace` reuses one workspace across queries and is
/// the zero-allocation configuration batch serving uses.
fn bench_repeated_evidence(c: &mut Criterion) {
    let (net, evidence) = regulator_setup();
    let jt = JunctionTree::compile(&net).unwrap();
    let mut group = c.benchmark_group("repeated_evidence");

    group.bench_function("clone_and_rebuild_baseline", |b| {
        b.iter(|| {
            jt.propagate_baseline(black_box(&evidence))
                .unwrap()
                .all_posteriors()
                .unwrap()
        })
    });
    group.bench_function("compiled_schedule", |b| {
        b.iter(|| {
            jt.propagate(black_box(&evidence))
                .unwrap()
                .all_posteriors()
                .unwrap()
        })
    });
    group.bench_function("compiled_reused_workspace", |b| {
        let mut ws = jt.make_workspace();
        b.iter(|| {
            jt.propagate_in(&mut ws, black_box(&evidence))
                .unwrap()
                .all_posteriors()
                .unwrap()
        })
    });
    group.bench_function("compiled_log_likelihood_only", |b| {
        let mut ws = jt.make_workspace();
        b.iter(|| {
            jt.propagate_in(&mut ws, black_box(&evidence))
                .unwrap()
                .log_likelihood()
        })
    });
    group.finish();
}

/// Batch throughput: many independent boards against one compiled tree.
fn bench_batch_throughput(c: &mut Criterion) {
    let (net, evidence) = regulator_setup();
    let jt = JunctionTree::compile(&net).unwrap();
    let mut group = c.benchmark_group("batch_diagnosis");
    for n in [16usize, 64, 256] {
        let boards: Vec<Evidence> = (0..n).map(|_| evidence.clone()).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &boards, |b, boards| {
            let mut ws = jt.make_workspace();
            b.iter(|| {
                boards
                    .iter()
                    .map(|e| {
                        jt.propagate_in(&mut ws, e)
                            .unwrap()
                            .all_posteriors()
                            .unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("parallel_batch", n),
            &boards,
            |b, boards| b.iter(|| jt.posteriors_batch(black_box(boards))),
        );
    }
    group.finish();
}

/// The value-of-information decision loop of sequential adaptive
/// diagnosis (and the repaired `rank_probes`): dozens of hypothetical
/// propagations per decision, all through the compiled tree and reused
/// workspaces. `per_decision_scoring` is the steady-state number the
/// serving loop pays between measurements; `closed_loop_d1_adaptive` is a
/// whole case-study run (diagnose + score + apply until isolation).
fn bench_sequential_voi(c: &mut Criterion) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let engine = fitted.engine;
    let cases = regulator::cases::case_studies();
    let d1 = &cases[0];
    let observation = d1.observation();
    let mut group = c.benchmark_group("sequential_voi");

    group.bench_function("rank_probes_all_latents", |b| {
        let mut session =
            DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::default())
                .unwrap();
        session.observe_all(&observation).unwrap();
        let menu: Vec<Action> = session
            .compiled()
            .latent_names()
            .map(Action::probe)
            .collect();
        session.set_actions(menu).unwrap();
        b.iter(|| {
            let ranked = session.rank_actions().unwrap();
            black_box(ranked[0].expected_information_gain())
        })
    });
    group.bench_function("per_decision_scoring", |b| {
        let mut diagnoser =
            DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::default())
                .unwrap();
        for (name, state) in d1.controls {
            diagnoser.observe(name, state).unwrap();
        }
        b.iter(|| {
            let scored = diagnoser.rank_actions().unwrap();
            black_box(scored[0].expected_information_gain())
        })
    });
    group.bench_function("closed_loop_d1_adaptive", |b| {
        b.iter(|| {
            regulator::adaptive::adaptive_case_study(
                black_box(&engine),
                d1,
                StoppingPolicy::default(),
            )
            .unwrap()
            .tests_used()
        })
    });
    group.finish();
}

/// Cost-aware lookahead planning (PR 3): the per-decision price of the
/// depth-2 expectimax versus the myopic kernel it generalises, plus the
/// cost-weighted arbitration path. `lookahead2_per_decision` expands
/// roughly `candidates² × states²` hypothetical propagations through the
/// compiled tree and per-level reused workspaces; `closed_loop_d1_lookahead2`
/// is the whole case study planned at depth 2.
fn bench_lookahead_voi(c: &mut Criterion) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let engine = fitted.engine;
    let cases = regulator::cases::case_studies();
    let d1 = &cases[0];
    let mut group = c.benchmark_group("lookahead_voi");

    group.bench_function("cost_weighted_per_decision", |b| {
        let mut diagnoser =
            DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::default())
                .unwrap();
        diagnoser.set_strategy(Strategy::CostWeighted).unwrap();
        diagnoser
            .set_cost_model(regulator::adaptive::reference_cost_model())
            .unwrap();
        for (name, state) in d1.controls {
            diagnoser.observe(name, state).unwrap();
        }
        b.iter(|| {
            let scored = diagnoser.rank_actions().unwrap();
            black_box(scored[0].score())
        })
    });
    group.bench_function("lookahead2_per_decision", |b| {
        let mut diagnoser =
            DiagnosisSession::new(Arc::clone(engine.compiled()), StoppingPolicy::default())
                .unwrap();
        diagnoser
            .set_strategy(Strategy::Lookahead { depth: 2 })
            .unwrap();
        for (name, state) in d1.controls {
            diagnoser.observe(name, state).unwrap();
        }
        b.iter(|| {
            let scored = diagnoser.rank_actions().unwrap();
            black_box(scored[0].score())
        })
    });
    group.bench_function("closed_loop_d1_lookahead2", |b| {
        b.iter(|| {
            regulator::adaptive::traced_case_study(
                black_box(&engine),
                d1,
                StoppingPolicy::default(),
                Strategy::Lookahead { depth: 2 },
                CostModel::unit(),
            )
            .unwrap()
            .0
            .tests_used()
        })
    });
    group.finish();
}

/// The facade-overhead audit of the unified session API: the same
/// myopic decision measured three ways. `direct_kernel` is the scoring
/// loop hand-rolled on the public bbn primitives (one base propagation,
/// per-latent entropies, per-candidate outcome distributions, one
/// hypothetical propagation per outcome) with no session in sight;
/// `session_rank_actions` is the facade doing exactly that through
/// `DiagnosisSession::rank_actions` (the contract: ≤5% apart);
/// `serve_request_round` is the stateless serde boundary — open a
/// session, seed it, diagnose, rank, assemble the report — i.e. what one
/// service round costs on top of the kernels.
fn bench_session_api(c: &mut Criterion) {
    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let engine = fitted.engine;
    let compiled = Arc::clone(engine.compiled());
    let cases = regulator::cases::case_studies();
    let d1 = &cases[0];
    let mut controls = abbd_core::Observation::new();
    for (name, state) in d1.controls {
        controls.set(name, state);
    }
    let candidate_names = ["reg1", "reg2", "reg3", "reg4", "sw"];
    let mut group = c.benchmark_group("session_api");

    group.bench_function("direct_kernel", |b| {
        let net = engine.model().network().clone();
        let jt = JunctionTree::compile(&net).unwrap();
        let evidence = engine.evidence_from(&controls).unwrap();
        let latents: Vec<abbd_bbn::VarId> = engine
            .model()
            .circuit_model()
            .latents()
            .iter()
            .map(|n| engine.model().var(n).unwrap())
            .collect();
        let candidates: Vec<abbd_bbn::VarId> = candidate_names
            .iter()
            .map(|n| engine.model().var(n).unwrap())
            .collect();
        let mut base_ws = jt.make_workspace();
        let mut hyp_ws = jt.make_workspace();
        let max_card = net.variables().map(|v| net.card(v)).max().unwrap();
        let mut dist = vec![0.0; max_card];
        let mut gains = vec![0.0; candidates.len()];
        b.iter(|| {
            let view = jt.propagate_in(&mut base_ws, &evidence).unwrap();
            let mut total = 0.0;
            for &v in &latents {
                total += view.posterior_entropy(v).unwrap();
            }
            for (gi, &cand) in candidates.iter().enumerate() {
                let card = net.card(cand);
                view.posterior_into(cand, &mut dist[..card]).unwrap();
                let mut expected_after = 0.0;
                for (state, &p) in dist[..card].iter().enumerate() {
                    if p <= 1e-12 {
                        continue;
                    }
                    let hyp = jt
                        .propagate_hypothetical_in(&mut hyp_ws, &evidence, cand, state)
                        .unwrap();
                    let mut h = 0.0;
                    for &v in &latents {
                        if v != cand {
                            h += hyp.posterior_entropy(v).unwrap();
                        }
                    }
                    expected_after += p * h;
                }
                gains[gi] = (total - expected_after).max(0.0);
            }
            black_box(gains.iter().cloned().fold(f64::MIN, f64::max))
        })
    });
    group.bench_function("session_rank_actions", |b| {
        let mut session =
            DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default()).unwrap();
        session.observe_all(&controls).unwrap();
        b.iter(|| {
            let ranked = session.rank_actions().unwrap();
            black_box(ranked[0].expected_information_gain())
        })
    });
    group.bench_function("serve_request_round", |b| {
        let request = SessionRequest::new(controls.clone());
        b.iter(|| black_box(compiled.serve(black_box(&request)).unwrap().ranked.len()))
    });
    group.finish();
}

/// The service layer's price list, measured over real TCP on loopback:
/// `stateless_round_wire` posts one `SessionRequest` per round to
/// `/v1/models/{m}/serve` (a fresh session server-side every time — the
/// wire twin of `serve_request_round`); `session_round_wire` posts the
/// same round to a *stored* session, which amortises the fresh-session
/// setup away and must come in under the `serve_request_round` baseline
/// per decision; `store_round_inprocess` is the same stored round minus
/// HTTP and JSON-string framing (checkout → absorb → report → check-in),
/// isolating the wire overhead; `batch_diagnose_16_wire` fans 16
/// evidence sets across the worker pool per request (diagnosis only —
/// divide by 16 for the per-device cost).
fn bench_server_throughput(c: &mut Criterion) {
    use abbd_core::Observation;
    use abbd_server::{Client, ModelRegistry, OpenSessionReply, Server, ServerConfig};

    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let compiled = Arc::clone(fitted.engine.compiled());
    let registry = ModelRegistry::new()
        .insert("regulator", Arc::clone(&compiled))
        .freeze();
    let server = Server::start(registry, ServerConfig::default()).expect("server binds");

    let cases = regulator::cases::case_studies();
    let mut controls = Observation::new();
    for (name, state) in cases[0].controls {
        controls.set(name, state);
    }
    let request = abbd_core::SessionRequest::new(controls.clone());
    let round_json = serde_json::to_string(&request).expect("request encodes");
    let mut group = c.benchmark_group("server_throughput");

    group.bench_function("stateless_round_wire", |b| {
        let mut client = Client::connect(server.addr()).expect("client connects");
        b.iter(|| {
            let (status, body) = client
                .post("/v1/models/regulator/serve", &round_json)
                .expect("serve round");
            assert_eq!(status, 200);
            black_box(body.len())
        })
    });
    group.bench_function("session_round_wire", |b| {
        let mut client = Client::connect(server.addr()).expect("client connects");
        let (status, body) = client
            .post("/v1/models/regulator/sessions", "{}")
            .expect("open session");
        assert_eq!(status, 201);
        let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply");
        let path = format!("/v1/sessions/{}/round", open.session_id);
        b.iter(|| {
            let (status, body) = client.post(&path, &round_json).expect("stored round");
            assert_eq!(status, 200);
            black_box(body.len())
        })
    });
    group.bench_function("session_round_wire_binary_delta", |b| {
        // The PR-6 wire diet measured together: after one full round
        // pins the control evidence server-side, every timed round is
        // an *empty delta* (nothing new to say — the steady-state
        // polling shape) encoded as one compact binary frame, with the
        // report returned as a binary frame too.
        let mut client = Client::connect(server.addr()).expect("client connects");
        let (status, body) = client
            .post("/v1/models/regulator/sessions", "{}")
            .expect("open session");
        assert_eq!(status, 201);
        let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply");
        let path = format!("/v1/sessions/{}/round", open.session_id);
        let (status, _) = client.post(&path, &round_json).expect("warmup round");
        assert_eq!(status, 200);
        let delta = abbd_core::SessionRequest::new(Observation::new()).into_delta();
        let frame = abbd_server::codec::to_frame(&delta);
        b.iter(|| {
            let (status, body) = client.post_binary(&path, &frame).expect("delta round");
            assert_eq!(status, 200);
            black_box(body.len())
        })
    });
    group.bench_function("store_round_inprocess", |b| {
        let store = abbd_server::SessionStore::new(std::time::Duration::from_secs(600), 16);
        let session =
            abbd_core::DiagnosisSession::new(Arc::clone(&compiled), StoppingPolicy::default())
                .expect("session opens");
        let id = store.open("regulator", session).expect("store admits");
        b.iter(|| {
            let mut stored = store.checkout(&id).expect("checkout");
            let report = stored.session.serve_round(&request).expect("round");
            store.checkin(&id, stored);
            black_box(report.ranked.len())
        })
    });
    group.bench_function("batch_diagnose_16_wire", |b| {
        let batch = abbd_server::BatchRequest {
            observations: (0..16).map(|_| controls.clone()).collect(),
            deduction: None,
        };
        let batch_json = serde_json::to_string(&batch).expect("batch encodes");
        let mut client = Client::connect(server.addr()).expect("client connects");
        b.iter(|| {
            let (status, body) = client
                .post("/v1/models/regulator/diagnose_batch", &batch_json)
                .expect("batch round");
            assert_eq!(status, 200);
            black_box(body.len())
        })
    });
    group.bench_function("batch_diagnose_16_wire_binary", |b| {
        // Streaming row-oriented binary batch: one header frame (the
        // shared deduction policy) followed by 16 observation frames;
        // the reply streams 16 entry frames back. Same fan-out as the
        // JSON row above, minus the JSON-string framing both ways.
        let mut wire = Vec::new();
        let header = serde::Value::Obj(vec![("deduction".to_string(), serde::Value::Null)]);
        abbd_server::codec::frame_into(&header, &mut wire);
        for _ in 0..16 {
            abbd_server::codec::frame_into(&controls, &mut wire);
        }
        let mut client = Client::connect(server.addr()).expect("client connects");
        b.iter(|| {
            let (status, body) = client
                .post_binary("/v1/models/regulator/diagnose_batch", &wire)
                .expect("binary batch");
            assert_eq!(status, 200);
            black_box(body.len())
        })
    });
    group.finish();
    server.shutdown();
}

/// The serializer price list on a real `SessionReport` (the largest DTO
/// that crosses the wire every round): for each codec, the streaming
/// fast path — `write_json`/`write_binary` straight into a byte buffer,
/// `read_from` straight off it — against the `Value`-tree fallback it
/// replaced (build or parse the tree, then convert). The byte-identity
/// proptests in `abbd-server/tests/codec.rs` pin that both paths emit
/// the same bytes; this group prices the tree they no longer build.
fn bench_wire_serialization(c: &mut Criterion) {
    use abbd_server::{codec, SessionReport};
    use serde::{Deserialize, Serialize};

    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let compiled = Arc::clone(fitted.engine.compiled());
    let case = &regulator::cases::case_studies()[0];
    let request = SessionRequest::new(case.observation());
    let report = compiled.serve(&request).expect("round serves");
    let report_json = serde_json::to_string(&report).expect("report encodes");
    let report_frame = codec::to_frame(&report);
    let mut group = c.benchmark_group("wire_serialization");

    group.bench_function("report_encode_json_streaming", |b| {
        let mut buf = Vec::with_capacity(report_json.len());
        b.iter(|| {
            buf.clear();
            black_box(&report).write_json(&mut buf);
            black_box(buf.len())
        })
    });
    group.bench_function("report_encode_json_value", |b| {
        let mut buf = Vec::with_capacity(report_json.len());
        b.iter(|| {
            buf.clear();
            serde::json::write_value(&black_box(&report).to_value(), &mut buf);
            black_box(buf.len())
        })
    });
    group.bench_function("report_encode_binary_streaming", |b| {
        let mut buf = Vec::with_capacity(report_frame.len());
        b.iter(|| {
            buf.clear();
            codec::frame_into(black_box(&report), &mut buf);
            black_box(buf.len())
        })
    });
    group.bench_function("report_encode_binary_value", |b| {
        let mut buf = Vec::with_capacity(report_frame.len());
        b.iter(|| {
            buf.clear();
            codec::write_frame(&black_box(&report).to_value(), &mut buf);
            black_box(buf.len())
        })
    });
    group.bench_function("report_decode_json_streaming", |b| {
        b.iter(|| {
            let report: SessionReport =
                serde_json::from_str(black_box(&report_json)).expect("decodes");
            black_box(report.ranked.len())
        })
    });
    group.bench_function("report_decode_json_value", |b| {
        b.iter(|| {
            let tree = serde_json::parse_value_str(black_box(&report_json)).expect("parses");
            let report = SessionReport::from_value(&tree).expect("decodes");
            black_box(report.ranked.len())
        })
    });
    group.bench_function("report_decode_binary_streaming", |b| {
        b.iter(|| {
            let report: SessionReport =
                codec::from_frame(black_box(&report_frame)).expect("decodes");
            black_box(report.ranked.len())
        })
    });
    group.bench_function("report_decode_binary_value", |b| {
        b.iter(|| {
            let mut pos = 0;
            let tree = codec::read_frame(black_box(&report_frame), &mut pos).expect("parses");
            let report = SessionReport::from_value(&tree).expect("decodes");
            black_box(report.ranked.len())
        })
    });
    group.finish();
}

/// The compiled abstraction hierarchy (PR 7) on the 100-variable
/// synthetic board: `flat100_per_decision` is the monolithic baseline —
/// one VOI ranking over the full 42-observable candidate menu through
/// the 100-variable junction tree; `root_per_decision` is the same
/// decision at the abstract board level (30-variable root, 14 summary
/// candidates) and `descended_block_per_decision` inside the extracted
/// 9-variable block sub-model — the two prices the two-phase loop
/// actually pays at steady state. The acceptance claim rides here: each
/// hierarchical decision must be ≥2× cheaper than the flat one.
/// `descend_first_visit` is the one-time toll at the boundary — compile
/// the block sub-model lazily, lift the board evidence down and open the
/// block session (later descents into the same block are pure cache, as
/// the zero-alloc harness pins).
fn bench_hierarchical(c: &mut Criterion) {
    let config = BoardConfig::default();
    let flat = CompiledModel::compile(board::flat_model(&config).expect("flat board builds"))
        .expect("flat board compiles")
        .shared();
    let hierarchy = board::hierarchy(&config)
        .expect("board hierarchy builds")
        .shared();
    let mut group = c.benchmark_group("hierarchical");

    group.bench_function("flat100_per_decision", |b| {
        let mut session =
            DiagnosisSession::new(Arc::clone(&flat), StoppingPolicy::default()).unwrap();
        session.observe("vin", 1).unwrap();
        session.observe("vload", 0).unwrap();
        b.iter(|| {
            let scored = session.rank_actions().unwrap();
            black_box(scored[0].expected_information_gain())
        })
    });
    group.bench_function("root_per_decision", |b| {
        let mut session =
            HierarchicalSession::new(Arc::clone(&hierarchy), StoppingPolicy::default()).unwrap();
        session.observe("vin", 1).unwrap();
        session.observe("vload", 0).unwrap();
        b.iter(|| {
            let scored = session.rank_actions().unwrap();
            black_box(scored[0].expected_information_gain())
        })
    });
    group.bench_function("descended_block_per_decision", |b| {
        let mut session =
            HierarchicalSession::new(Arc::clone(&hierarchy), StoppingPolicy::default()).unwrap();
        session.observe("vin", 1).unwrap();
        session.observe("vload", 0).unwrap();
        session.observe("out02", 0).unwrap();
        session.mark_failing("out02");
        session.descend(2).unwrap();
        b.iter(|| {
            let scored = session.rank_actions().unwrap();
            black_box(scored[0].expected_information_gain())
        })
    });
    group.bench_function("descend_first_visit", |b| {
        // A fresh hierarchy per iteration so every descent pays the lazy
        // sub-model compile (the cached path would be a no-op).
        b.iter(|| {
            let hierarchy = board::hierarchy(&config).unwrap().shared();
            let mut session =
                HierarchicalSession::new(hierarchy, StoppingPolicy::default()).unwrap();
            session.observe("vin", 1).unwrap();
            session.observe("vload", 0).unwrap();
            session.descend(black_box(2)).unwrap();
            black_box(session.descended_block().is_some())
        })
    });
    group.finish();
}

/// The fleet-learning loop's price list (PR 9): `aggregate_record_per_trace`
/// is the per-completed-session append into a model's sufficient
/// statistics — the only fleet cost a serving thread ever pays, and only
/// on a session's terminal round; `session_round_wire_lifecycle`
/// re-measures the stored wire round of `server_throughput` against a
/// *lifecycle-managed* registry, so the aggregation plumbing's hot-path
/// tax is the delta against `session_round_wire` (acceptance: ≤2%);
/// `refit_to_promotion` is one whole background learning cycle —
/// snapshot, incumbent-seeded EM, junction-tree compile, conformance
/// gate, promotion; `serve_round_during_refit` prices a serving round
/// while a background thread runs that cycle in a loop, the hot-swap
/// design's claim that learning never blocks serving.
fn bench_fleet_learning(c: &mut Criterion) {
    use abbd_core::conformance::self_references;
    use abbd_core::{ModelLifecycle, Observation, RefitPolicy, TraceAggregator};
    use abbd_server::{Client, ModelRegistry, OpenSessionReply, Server, ServerConfig};
    use std::sync::atomic::{AtomicBool, Ordering};

    let fitted = regulator::fit(30, 2010, regulator::default_algorithm()).expect("pipeline runs");
    let compiled = Arc::clone(fitted.engine.compiled());
    let observations: Vec<abbd_core::Observation> =
        fitted.cases.iter().map(Observation::from).collect();
    let d1 = &regulator::cases::case_studies()[0];
    let references = self_references(&compiled, [("d1".to_string(), d1.observation())])
        .expect("reference corpus");
    // The fitted population is 30 devices; lower the floor so every
    // refit in the timing loop actually fits rather than early-outs.
    let policy = RefitPolicy {
        min_rows: 8,
        ..RefitPolicy::default()
    };
    let lifecycle = |name: &str| {
        let lc = ModelLifecycle::new(
            name,
            Arc::clone(&compiled),
            references.clone(),
            policy.clone(),
        )
        .shared();
        for observation in &observations {
            lc.aggregator()
                .record(observation, &[("sw".to_string(), 0.25)]);
        }
        lc
    };
    let mut group = c.benchmark_group("fleet_learning");

    group.bench_function("aggregate_record_per_trace", |b| {
        let aggregator = TraceAggregator::new(&compiled, 64);
        let timings = [("sw".to_string(), 0.25)];
        let mut i = 0usize;
        b.iter(|| {
            let recorded =
                aggregator.record(black_box(&observations[i % observations.len()]), &timings);
            i += 1;
            black_box(recorded)
        })
    });
    group.bench_function("session_round_wire_lifecycle", |b| {
        let registry = ModelRegistry::new()
            .insert_lifecycle("regulator", lifecycle("regulator"))
            .freeze();
        let server = Server::start(registry, ServerConfig::default()).expect("server binds");
        let mut controls = Observation::new();
        for (name, state) in d1.controls {
            controls.set(name, state);
        }
        let round_json = serde_json::to_string(&abbd_core::SessionRequest::new(controls))
            .expect("request encodes");
        let mut client = Client::connect(server.addr()).expect("client connects");
        let (status, body) = client
            .post("/v1/models/regulator/sessions", "{}")
            .expect("open session");
        assert_eq!(status, 201);
        let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply");
        let path = format!("/v1/sessions/{}/round", open.session_id);
        b.iter(|| {
            let (status, body) = client.post(&path, &round_json).expect("stored round");
            assert_eq!(status, 200);
            black_box(body.len())
        });
        drop(client);
        server.shutdown();
    });
    group
        .sample_size(10)
        .bench_function("refit_to_promotion", |b| {
            let lc = lifecycle("regulator");
            b.iter(|| {
                let report = lc.refit();
                assert!(report.promoted, "the bench fit must pass its own gate");
                black_box(report.version)
            })
        });
    group.bench_function("serve_round_during_refit", |b| {
        let lc = lifecycle("regulator");
        let request = SessionRequest::new(d1.observation());
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    black_box(lc.refit().promoted);
                }
            });
            let serving = lc.active();
            b.iter(|| black_box(serving.serve(black_box(&request)).unwrap().ranked.len()));
            stop.store(true, Ordering::Relaxed);
        });
    });
    group.finish();
}

/// The scenario engine (PR 10): fleet sampling cost, the per-decision
/// price of ranking the regulator grid's full 60-candidate stimulus
/// family (cost-weighted, suite-switch priced — the decision geometry
/// the paper's 5-test menus never reach), and the whole grid closed loop
/// against a seeded catalogue fault. The Monte-Carlo hypothesis fit runs
/// once per group at a reduced sample count; per-decision numbers only
/// depend on the model's shape (22 hypothesis states × 60 observables).
fn bench_scenario_engine(c: &mut Criterion) {
    use abbd_designs::regulator::grid;
    use abbd_scenarios::{sample_model_population, McFitConfig};

    let rig = grid::grid_rig_with(&McFitConfig {
        samples: 8,
        ..McFitConfig::default()
    })
    .expect("grid rig builds");
    let reg = regulator::rig();
    let model = abbd_core::ModelBuilder::new(reg.model)
        .with_expert(reg.expert)
        .build_expert_only()
        .expect("expert-only model builds");
    let library = regulator::faults::fault_library();
    let controls: Vec<(String, usize)> = regulator::cases::case_studies()[0]
        .controls
        .iter()
        .map(|&(name, state)| (name.to_string(), state))
        .collect();
    let mut group = c.benchmark_group("scenario_engine");

    group.bench_function("sample_fleet_16", |b| {
        b.iter(|| {
            sample_model_population(&model, &library, black_box(&controls), 16, 2010)
                .unwrap()
                .len()
        })
    });
    group.bench_function("grid60_per_decision", |b| {
        let mut session =
            DiagnosisSession::new(Arc::clone(&rig.compiled), grid::grid_policy()).unwrap();
        session.set_strategy(Strategy::CostWeighted).unwrap();
        session
            .set_cost_model(rig.program.cost_model(grid::GRID_PROBE_SECONDS).unwrap())
            .unwrap();
        session.set_actions(rig.program.actions()).unwrap();
        b.iter(|| {
            let scored = session.rank_actions().unwrap();
            black_box(scored[0].expected_information_gain())
        })
    });
    group.bench_function("grid60_closed_loop", |b| {
        let entry = grid::grid_library()
            .entries()
            .iter()
            .find(|e| e.tag() == "reg1:dead")
            .expect("catalogue has reg1:dead")
            .clone();
        let device = grid::device_for_entry(&rig.circuit, &entry, 9001).unwrap();
        let noise = grid::noise_for_entry(&entry);
        b.iter(|| {
            let (outcome, _, _) = grid::diagnose_device(&rig, &device, &noise, 77).unwrap();
            black_box(outcome.tests_used())
        })
    });
    group.finish();
}

fn bench_chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_posteriors");
    for n in [10usize, 40, 160] {
        let net = chain(n);
        let mut evidence = Evidence::new();
        evidence.observe(net.var(&format!("x{}", n - 1)).unwrap(), 1);
        group.bench_with_input(BenchmarkId::new("junction_tree", n), &n, |b, _| {
            let jt = JunctionTree::compile(&net).unwrap();
            b.iter(|| jt.posteriors(black_box(&evidence)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ve_single_query", n), &n, |b, _| {
            let ve = VariableElimination::new(&net);
            let x0 = net.var("x0").unwrap();
            b.iter(|| ve.posterior(black_box(&evidence), x0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_regulator_inference,
    bench_repeated_evidence,
    bench_batch_throughput,
    bench_sequential_voi,
    bench_lookahead_voi,
    bench_session_api,
    bench_server_throughput,
    bench_wire_serialization,
    bench_hierarchical,
    bench_fleet_learning,
    bench_scenario_engine,
    bench_chain_scaling
);
criterion_main!(benches);
