//! Baseline benchmarks: fault-dictionary build/lookup and naive-Bayes
//! training/scoring as a function of the training-population size.

use abbd_baselines::{Diagnoser, FaultDictionary, NaiveBayes};
use abbd_designs::regulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dictionary(c: &mut Criterion) {
    let probe_pop = regulator::synthesize(5, 123, 9_000_000).expect("probe population");
    let probe = abbd_baselines::group_by_device(&probe_pop.cases)
        .into_iter()
        .next()
        .expect("one probe");

    let mut build_group = c.benchmark_group("dictionary_build");
    for n in [25usize, 100, 400] {
        let pop = regulator::synthesize(n, 321, 0).expect("population");
        let sigs = abbd_baselines::group_by_device(&pop.cases);
        build_group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| FaultDictionary::train(black_box(&sigs)))
        });
    }
    build_group.finish();

    let mut lookup_group = c.benchmark_group("dictionary_lookup");
    for n in [25usize, 100, 400] {
        let pop = regulator::synthesize(n, 321, 0).expect("population");
        let sigs = abbd_baselines::group_by_device(&pop.cases);
        let dict = FaultDictionary::train(&sigs);
        lookup_group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| dict.diagnose(black_box(&probe)))
        });
    }
    lookup_group.finish();

    let mut nb_group = c.benchmark_group("naive_bayes");
    let pop = regulator::synthesize(100, 321, 0).expect("population");
    let sigs = abbd_baselines::group_by_device(&pop.cases);
    nb_group.bench_function("train_100", |b| {
        b.iter(|| NaiveBayes::train(black_box(&sigs), 1.0))
    });
    let nb = NaiveBayes::train(&sigs, 1.0);
    nb_group.bench_function("score_one", |b| b.iter(|| nb.diagnose(black_box(&probe))));
    nb_group.finish();
}

criterion_group!(benches, bench_dictionary);
criterion_main!(benches);
