//! Learning benchmarks: EM iterations and complete-data counting on the
//! regulator cases, plus the conjugate-gradient alternative.

use abbd_bbn::learn::{
    fit_complete, fit_conjugate_gradient, fit_em, Case, CgConfig, DirichletPrior, EmConfig,
};
use abbd_bbn::{forward_sample_cases, Network};
use abbd_core::ModelBuilder;
use abbd_designs::regulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup() -> (Network, Vec<Case>) {
    let rig = regulator::rig();
    let population = regulator::synthesize(70, 2010, 0).expect("population");
    let network = ModelBuilder::new(rig.model.clone())
        .with_expert(rig.expert.clone())
        .build_network()
        .expect("network builds");
    let cases: Vec<Case> =
        population
            .cases
            .iter()
            .map(|c| {
                Case::from_pairs(c.assignment.iter().map(|(name, state)| {
                    (network.var(name).expect("case variables exist"), *state)
                }))
            })
            .collect();
    (network, cases)
}

fn bench_em(c: &mut Criterion) {
    let (network, cases) = setup();
    let prior = DirichletPrior::from_network(&network, regulator::DEFAULT_ESS);
    let mut group = c.benchmark_group("regulator_learning");
    group.sample_size(10);
    for iters in [1usize, 5] {
        group.bench_with_input(BenchmarkId::new("em", iters), &iters, |b, &iters| {
            b.iter(|| {
                fit_em(
                    black_box(&network),
                    black_box(&cases),
                    &prior,
                    &EmConfig {
                        max_iterations: iters,
                        tolerance: 0.0,
                    },
                )
                .unwrap()
            })
        });
    }
    group.bench_function("conjugate_gradient_3", |b| {
        b.iter(|| {
            fit_conjugate_gradient(
                black_box(&network),
                black_box(&cases),
                &prior,
                &CgConfig {
                    max_iterations: 3,
                    ..CgConfig::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_complete_counting(c: &mut Criterion) {
    let (network, _) = setup();
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("complete_data_counting");
    for n in [100usize, 1_000, 10_000] {
        let samples = forward_sample_cases(&network, n, &mut rng);
        let prior = DirichletPrior::uniform(&network, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fit_complete(black_box(&network), black_box(&samples), &prior).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em, bench_complete_counting);
criterion_main!(benches);
