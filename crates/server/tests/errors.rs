//! The error surface over the wire: malformed JSON, unknown names,
//! invalid evidence and wrong verbs all come back as structured JSON
//! error bodies with the right status code — and arbitrary byte junk on
//! the socket never takes the server down (the proptest at the bottom
//! holds it to that).

use abbd_core::fixtures::toy_compiled_model;
use abbd_server::{
    codec, Client, ErrorBody, HealthReport, ModelRegistry, OpenSessionReply, Server, ServerConfig,
    SessionRequest,
};
use proptest::prelude::*;
use std::sync::OnceLock;

// One server for the whole file: every test (and every proptest case)
// hammers the same process, which is itself part of the claim — a bad
// request must not poison the next one.
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        let registry = ModelRegistry::new()
            .insert("toy", toy_compiled_model())
            .freeze();
        Server::start(registry, ServerConfig::default()).expect("server binds")
    })
}

fn client() -> Client {
    Client::connect(server().addr()).expect("client connects")
}

/// Decodes a structured error reply, asserting the envelope shape.
fn decode_error(status: u16, body: &str) -> (u16, String) {
    let parsed: ErrorBody = serde_json::from_str(body)
        .unwrap_or_else(|e| panic!("error body is structured JSON ({e}): {body}"));
    assert_eq!(parsed.error.status, status, "body status echoes the wire");
    assert!(!parsed.error.message.is_empty());
    (status, parsed.error.code)
}

#[test]
fn malformed_json_is_400() {
    let mut c = client();
    let (status, body) = c.post("/v1/models/toy/serve", "{ not json").unwrap();
    assert_eq!(decode_error(status, &body), (400, "bad_request".into()));
    // Valid JSON of the wrong shape is still a 400, with the field named.
    let (status, body) = c.post("/v1/models/toy/serve", "{\"nope\": 1}").unwrap();
    assert_eq!(decode_error(status, &body), (400, "bad_request".into()));
}

#[test]
fn unknown_names_are_404() {
    let mut c = client();
    let request = serde_json::to_string(&SessionRequest::new(Default::default())).unwrap();
    let (status, body) = c.post("/v1/models/ghost/serve", &request).unwrap();
    assert_eq!(decode_error(status, &body), (404, "unknown_model".into()));
    let (status, body) = c.post("/v1/sessions/s00ghost/round", &request).unwrap();
    assert_eq!(decode_error(status, &body), (404, "unknown_session".into()));
    let (status, body) = c.get("/v1/nothing/here").unwrap();
    assert_eq!(decode_error(status, &body), (404, "not_found".into()));
}

#[test]
fn wrong_verbs_are_405() {
    let mut c = client();
    let (status, body) = c.post("/healthz", "{}").unwrap();
    assert_eq!(
        decode_error(status, &body),
        (405, "method_not_allowed".into())
    );
    let (status, body) = c.get("/v1/models/toy/serve").unwrap();
    assert_eq!(
        decode_error(status, &body),
        (405, "method_not_allowed".into())
    );
}

#[test]
fn invalid_evidence_is_422() {
    let mut c = client();
    // Unknown variable.
    let mut request = SessionRequest::new(Default::default());
    request.observation.set("ghost_pin", 1);
    let json = serde_json::to_string(&request).unwrap();
    let (status, body) = c.post("/v1/models/toy/serve", &json).unwrap();
    assert_eq!(decode_error(status, &body), (422, "invalid_request".into()));

    // Out-of-range state on a known variable.
    let mut request = SessionRequest::new(Default::default());
    request.observation.set("pin", 99);
    let json = serde_json::to_string(&request).unwrap();
    let (status, body) = c.post("/v1/models/toy/serve", &json).unwrap();
    assert_eq!(decode_error(status, &body), (422, "invalid_request".into()));

    // Malformed stopping policy.
    let mut request = SessionRequest::new(Default::default());
    request.policy.fault_mass_threshold = -1.0;
    let json = serde_json::to_string(&request).unwrap();
    let (status, body) = c.post("/v1/models/toy/serve", &json).unwrap();
    assert_eq!(decode_error(status, &body), (422, "invalid_request".into()));
}

/// A round whose request fails validation must leave the stored session
/// exactly as it was — no half-absorbed evidence contaminating later
/// rounds (the absorb is transactional in `abbd_core`).
#[test]
fn a_failed_round_leaves_the_stored_session_untouched() {
    let mut c = client();
    let (status, body) = c.post("/v1/models/toy/sessions", "{}").unwrap();
    assert_eq!(status, 201);
    let open: abbd_server::OpenSessionReply = serde_json::from_str(&body).unwrap();
    let round_path = format!("/v1/sessions/{}/round", open.session_id);

    // A request mixing a valid observation with an unknown variable is
    // rejected whole...
    let mut bad = SessionRequest::new(Default::default());
    bad.observation.set("pin", 1);
    bad.observation.set("ghost", 1);
    let (status, body) = c
        .post(&round_path, &serde_json::to_string(&bad).unwrap())
        .unwrap();
    assert_eq!(decode_error(status, &body), (422, "invalid_request".into()));

    // ... so a later valid round answers exactly what a fresh session
    // would: had `pin = 1` leaked in, these posteriors would differ.
    let mut good = SessionRequest::new(Default::default());
    good.observation.set("out1", 0);
    good.observation.mark_failing("out1");
    let (status, wire_body) = c
        .post(&round_path, &serde_json::to_string(&good).unwrap())
        .unwrap();
    assert_eq!(status, 200);
    let reference = toy_compiled_model().serve(&good).unwrap();
    assert_eq!(wire_body, serde_json::to_string(&reference).unwrap());
}

/// A 100k-deep `[[[[…` JSON body used to overflow the parser's stack
/// and abort the whole process; the streaming reader's depth cap turns
/// it into an ordinary 400 and the server keeps serving.
#[test]
fn hundred_thousand_deep_json_is_400_not_a_crash() {
    let mut c = client();
    // The whole body is the hostile array...
    let hostile = "[".repeat(100_000);
    let (status, body) = c.post("/v1/models/toy/serve", &hostile).unwrap();
    assert_eq!(decode_error(status, &body), (400, "bad_request".into()));
    // ... and smuggled under an unknown field, where decoding skips it
    // through the same depth-capped machinery.
    let smuggled = format!("{{\"zzz\":{hostile}");
    let (status, body) = c.post("/v1/models/toy/serve", &smuggled).unwrap();
    assert_eq!(decode_error(status, &body), (400, "bad_request".into()));
    assert!(healthy(), "server died on deep nesting");
}

#[test]
fn oversized_bodies_are_413() {
    let mut c = client();
    let huge = format!(
        "POST /v1/models/toy/serve HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        abbd_server::http::MAX_BODY + 1
    );
    let reply = c.send_raw(huge.as_bytes()).unwrap();
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 413 "), "got: {text}");
    assert!(text.contains("payload_too_large"));
}

#[test]
fn batch_isolates_per_item_failures() {
    let mut c = client();
    let body = r#"{"observations": [
        {"pairs": [["pin", 1]], "failing": []},
        {"pairs": [["ghost", 1]], "failing": []},
        {"pairs": [["pin", 0]], "failing": []}
    ]}"#;
    let (status, text) = c.post("/v1/models/toy/diagnose_batch", body).unwrap();
    assert_eq!(status, 200);
    let reply: abbd_server::BatchReply = serde_json::from_str(&text).unwrap();
    assert_eq!(reply.reports.len(), 3);
    assert!(reply.reports[0].ok.is_some() && reply.reports[0].error.is_none());
    let bad = reply.reports[1].error.as_ref().expect("ghost item fails");
    assert_eq!(bad.status, 422);
    assert!(reply.reports[2].ok.is_some(), "later items unaffected");
}

/// Opens a session, serves one full round pinning `pin = 1`, and
/// returns the round path + session id.
fn session_with_pin(c: &mut Client) -> (String, String) {
    let (status, body) = c.post("/v1/models/toy/sessions", "{}").unwrap();
    assert_eq!(status, 201, "open failed: {body}");
    let open: OpenSessionReply = serde_json::from_str(&body).unwrap();
    let path = format!("/v1/sessions/{}/round", open.session_id);
    let mut first = SessionRequest::new(Default::default());
    first.observation.set("pin", 1);
    let (status, body) = c
        .post(&path, &serde_json::to_string(&first).unwrap())
        .unwrap();
    assert_eq!(status, 200, "first round failed: {body}");
    (path, open.session_id)
}

/// What every round on a `pin = 1` session must answer: the report of a
/// fresh session given exactly that evidence.
fn pin_reference_json() -> String {
    let mut request = SessionRequest::new(Default::default());
    request.observation.set("pin", 1);
    let reference = toy_compiled_model().serve(&request).unwrap();
    serde_json::to_string(&reference).unwrap()
}

#[test]
fn inconsistent_deltas_are_422_and_leave_the_session_untouched() {
    let mut c = client();
    let (path, id) = session_with_pin(&mut c);

    // A delta that contradicts the stored evidence — and smuggles a new
    // variable alongside, which must not leak in either.
    let mut bad = SessionRequest::new(Default::default()).into_delta();
    bad.observation.set("pin", 0);
    bad.observation.set("out1", 1);
    let (status, body) = c
        .post(&path, &serde_json::to_string(&bad).unwrap())
        .unwrap();
    assert_eq!(
        decode_error(status, &body),
        (422, "inconsistent_delta".into())
    );

    // An empty delta replays the stored evidence: byte-identical to a
    // fresh session holding only `pin = 1`, so neither the contradiction
    // nor the smuggled `out1` took.
    let replay = SessionRequest::new(Default::default()).into_delta();
    let (status, wire) = c
        .post(&path, &serde_json::to_string(&replay).unwrap())
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(wire, pin_reference_json());
    let _ = c.delete(&format!("/v1/sessions/{id}"));
}

#[test]
fn binary_rounds_answer_the_same_report_as_json() {
    let mut c = client();
    let mut request = SessionRequest::new(Default::default());
    request.observation.set("pin", 1);
    let (status, bytes) = c
        .post_binary("/v1/models/toy/serve", &codec::to_frame(&request))
        .unwrap();
    assert_eq!(status, 200);
    let reference = toy_compiled_model().serve(&request).unwrap();
    // The reply frame is exactly the codec encoding of the reference
    // report, and it decodes to the same report the JSON path serves.
    assert_eq!(bytes, codec::to_frame(&reference));
    let decoded: abbd_server::SessionReport = codec::from_frame(&bytes).unwrap();
    assert_eq!(
        serde_json::to_string(&decoded).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
}

fn healthy() -> bool {
    let mut c = client();
    match c.get("/healthz") {
        Ok((200, body)) => {
            serde_json::from_str::<HealthReport>(&body).is_ok_and(|h| h.status == "ok")
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Arbitrary bytes down the socket — binary junk, truncated frames,
    /// pathological header shapes — never kill the server: each
    /// connection ends (with a 400 when the junk was parseable enough to
    /// answer) and the *next* health check still succeeds.
    #[test]
    fn byte_junk_never_kills_the_server(junk in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut c = client();
        let _ = c.send_raw(&junk);
        prop_assert!(healthy(), "server died after {junk:?}");
    }

    /// The same property for junk that *looks* like HTTP: a valid frame
    /// around a garbage body posted at a real endpoint.
    #[test]
    fn framed_junk_bodies_never_kill_the_server(body in proptest::collection::vec(0u8..=255, 0..256)) {
        let mut c = client();
        // A transport error here is acceptable (liveness is the claim);
        // an HTTP answer must be a client-error status.
        if let Ok((status, _)) = c.request("POST", "/v1/models/toy/serve", &body) {
            prop_assert!(status == 400 || status == 422, "status {status}");
        }
        prop_assert!(healthy(), "server died after framed {body:?}");
    }

    /// Garbage presented as the compact binary codec — wrong magic,
    /// truncated frames, lying length prefixes — is refused with a
    /// client error, never a crash.
    #[test]
    fn binary_junk_bodies_never_kill_the_server(body in proptest::collection::vec(0u8..=255, 0..256)) {
        let mut c = client();
        if let Ok((status, _)) = c.post_binary("/v1/models/toy/serve", &body) {
            prop_assert!(status == 400 || status == 422, "status {status}");
        }
        prop_assert!(healthy(), "server died after binary {body:?}");
    }

    /// A single corrupted byte inside an otherwise valid binary frame is
    /// either still decodable (some bytes are payload) or refused — and
    /// the server survives both.
    #[test]
    fn corrupted_binary_frames_never_kill_the_server(pos in 0usize..1024, byte in 0u8..=255) {
        let mut frame = codec::to_frame(&SessionRequest::new(Default::default()));
        let idx = pos % frame.len();
        frame[idx] = byte;
        let mut c = client();
        if let Ok((status, _)) = c.post_binary("/v1/models/toy/serve", &frame) {
            prop_assert!(status == 200 || status == 400 || status == 422, "status {status}");
        }
        prop_assert!(healthy(), "server died after flipping byte {idx} to {byte}");
    }

    /// Hostile delta rounds — contradictions, unknown variables,
    /// out-of-range states, in any mix — never corrupt the stored
    /// session: afterwards an empty delta still answers exactly what the
    /// untouched evidence dictates.
    #[test]
    fn malformed_deltas_never_corrupt_sessions(
        pairs in proptest::collection::vec((proptest::bool::ANY, 0usize..8), 0..4),
    ) {
        let mut c = client();
        let (path, id) = session_with_pin(&mut c);
        // Every generated pair either re-observes `pin` (state 1 is the
        // idempotent no-op, anything else a contradiction or range
        // error) or names an unknown variable — so no case can
        // *legitimately* extend the evidence, and the session must stay
        // exactly `{pin: 1}` whatever the server answered.
        let mut hostile = SessionRequest::new(Default::default()).into_delta();
        for (ghost, state) in &pairs {
            if *ghost {
                hostile.observation.set("ghost_pin", *state);
            } else {
                hostile.observation.set("pin", *state);
            }
        }
        let (_, _) = c.post(&path, &serde_json::to_string(&hostile).unwrap()).unwrap();
        let replay = SessionRequest::new(Default::default()).into_delta();
        let (status, wire) = c.post(&path, &serde_json::to_string(&replay).unwrap()).unwrap();
        prop_assert_eq!(status, 200);
        prop_assert_eq!(wire, pin_reference_json(), "session drifted after {:?}", pairs);
        let _ = c.delete(&format!("/v1/sessions/{id}"));
        prop_assert!(healthy());
    }
}
