//! The connection-scaling claim: **hundreds** of concurrent keep-alive
//! clients — far more connections than worker threads — each drive a
//! full d1 adaptive diagnosis loop over one persistent connection
//! against a server with a **4-thread** worker pool, and
//!
//! 1. every round's response body is byte-identical to the in-process
//!    `CompiledModel::serve` reference for the same cumulative
//!    evidence — including the clients that send **delta rounds**
//!    (only the newly applied measurement after the first request);
//! 2. the reference decision sequence replays the stored golden trace
//!    `tests/golden/d1_myopic.json`, so every wire transcript does too;
//! 3. while the whole herd is connected the server reports all of them
//!    open at once (`/v1/stats` `connections_open`), and afterwards the
//!    accepted-connection count shows keep-alive actually held — one
//!    accept per client, not one per request;
//! 4. no serving thread ever compiles a junction tree
//!    (`worker_compiles == 0`).

use abbd_bbn::jointree_compile_count;
use abbd_core::{CompiledModel, DecisionTrace, Observation, SessionReport, SessionRequest};
use abbd_designs::regulator::cases::{case_studies, CaseStudy};
use abbd_designs::regulator::program::{suite_plans, SuitePlan, OBSERVED_VARS};
use abbd_designs::regulator::{self};
use abbd_server::{Client, ModelRegistry, OpenSessionReply, Server, ServerConfig, StatsReport};
use std::sync::{Arc, Barrier, OnceLock};

/// Hundreds of simultaneous keep-alive connections...
const CLIENTS: usize = 200;
/// ...multiplexed onto this many diagnosis workers.
const WORKERS: usize = 4;

/// The same quick EM fit the golden-trace corpus pins (deterministic
/// for the fixed seed), compiled once for the whole file.
fn compiled_regulator() -> &'static Arc<CompiledModel> {
    static COMPILED: OnceLock<Arc<CompiledModel>> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let engine = regulator::fit(
            24,
            42,
            abbd_core::LearnAlgorithm::Em(abbd_bbn::learn::EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .expect("regulator pipeline runs")
        .engine;
        Arc::clone(engine.compiled())
    })
}

fn d1() -> (CaseStudy, SuitePlan) {
    let case = case_studies()
        .into_iter()
        .next()
        .expect("case studies exist");
    assert_eq!(case.id, "d1");
    let plan = suite_plans()
        .into_iter()
        .find(|p| p.name == case.suite)
        .expect("d1's suite has a plan");
    (case, plan)
}

/// Answers one recommended measurement from paper Table VI, with the
/// failing mark the virtual ATE would attach.
fn answer(case: &CaseStudy, plan: &SuitePlan, variable: &str) -> (usize, bool) {
    let index = OBSERVED_VARS
        .iter()
        .position(|v| *v == variable)
        .unwrap_or_else(|| panic!("server recommended a non-output `{variable}`"));
    let (_, state) = case.observables[index];
    (state, state != plan.healthy_states[index])
}

/// The in-process transcript every wire client must reproduce byte for
/// byte: one full d1 adaptive loop through `CompiledModel::serve`.
struct Reference {
    /// Expected response body per round, in order.
    bodies: Vec<String>,
    /// `(chosen, state, failing)` applied after each non-final round.
    applied: Vec<(String, usize, bool)>,
    /// Parsed mirror of each round, for the golden-trace conformance.
    reports: Vec<SessionReport>,
}

/// Drives the d1 loop in-process once, before any client thread exists.
/// Clients then only compare bytes — the 200-thread herd never computes
/// its own references, keeping the test's work proportional to the wire
/// traffic under test.
fn reference_loop(compiled: &Arc<CompiledModel>) -> Reference {
    let (case, plan) = d1();
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let mut reference = Reference {
        bodies: Vec::new(),
        applied: Vec::new(),
        reports: Vec::new(),
    };
    loop {
        let request = SessionRequest::new(observation.clone());
        let report = compiled.serve(&request).expect("in-process serve");
        reference
            .bodies
            .push(serde_json::to_string(&report).expect("report encodes"));
        let stop = report.stop.is_some();
        if !stop {
            let next = report.ranked[0].action.clone();
            let (state, failing) = answer(&case, &plan, next.target());
            observation.set(next.target(), state);
            if failing {
                observation.mark_failing(next.target());
            }
            reference
                .applied
                .push((next.target().to_string(), state, failing));
        }
        reference.reports.push(report);
        if stop {
            return reference;
        }
    }
}

/// The reference transcript replays the stored d1 golden trace — the
/// corpus that pins the in-process `DiagnosisSession`. Once this holds,
/// byte-identity makes every wire transcript golden too.
fn assert_matches_golden(reference: &Reference) {
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/d1_myopic.json");
    let golden: DecisionTrace = serde_json::from_str(
        &std::fs::read_to_string(&golden_path).expect("golden d1 trace is readable"),
    )
    .expect("golden trace parses");
    assert_eq!(
        reference.applied.len(),
        golden.steps.len(),
        "same number of measurements to isolation"
    );
    for (applied, step) in reference.applied.iter().zip(&golden.steps) {
        assert_eq!(applied.0, step.chosen, "same measurement chosen");
        assert_eq!(applied.1, step.state, "same observed state");
        assert_eq!(applied.2, step.failing, "same limit verdict");
    }
    for (k, step) in golden.steps.iter().enumerate() {
        assert_eq!(
            reference.reports[k + 1].fault_mass,
            step.fault_mass,
            "fault mass diverged after measurement {k}"
        );
    }
    let last = reference.reports.last().expect("at least one round");
    assert_eq!(last.stop, Some(golden.stop), "same stop reason");
    assert_eq!(last.top_candidate, golden.top_candidate, "same verdict");
    assert_eq!(last.fault_mass, golden.final_fault_mass);
}

/// One client's whole life on a single keep-alive connection: open a
/// stored session, hold the connection through both barriers so the
/// entire herd is provably connected at once, then post every round and
/// require the exact reference bytes back. Odd-numbered clients switch
/// to delta rounds after the first request — the response contract is
/// identical either way.
fn drive_scaled_client(
    addr: &str,
    reference: &Reference,
    use_delta: bool,
    connected: &Barrier,
    released: &Barrier,
) {
    let (case, _) = d1();
    let mut client = Client::connect(addr).expect("client connects");
    let (status, body) = client
        .post("/v1/models/regulator/sessions", "{}")
        .expect("open session");
    assert_eq!(status, 201, "open failed: {body}");
    let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply parses");

    // Everybody is connected with a live session before anyone rounds —
    // the main thread reads the connection gauge between these barriers.
    connected.wait();
    released.wait();

    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    for (k, expected) in reference.bodies.iter().enumerate() {
        let request = if use_delta && k > 0 {
            // Only the measurement applied after the previous round —
            // the server already holds everything else.
            let (name, state, failing) = &reference.applied[k - 1];
            let mut fresh = Observation::new();
            fresh.set(name, *state);
            if *failing {
                fresh.mark_failing(name);
            }
            SessionRequest::new(fresh).into_delta()
        } else {
            SessionRequest::new(observation.clone())
        };
        let request_json = serde_json::to_string(&request).expect("request encodes");
        let (status, wire_body) = client
            .post(
                &format!("/v1/sessions/{}/round", open.session_id),
                &request_json,
            )
            .expect("round posts");
        assert_eq!(status, 200, "round {k} failed: {wire_body}");
        assert_eq!(
            &wire_body, expected,
            "round {k} diverged from the in-process reference (delta={use_delta})"
        );
        if k < reference.applied.len() {
            let (name, state, failing) = &reference.applied[k];
            observation.set(name, *state);
            if *failing {
                observation.mark_failing(name);
            }
        }
    }
    let (status, body) = client
        .delete(&format!("/v1/sessions/{}", open.session_id))
        .expect("close session");
    assert_eq!(status, 200, "close failed: {body}");
}

#[test]
fn hundreds_of_keepalive_clients_share_four_workers_byte_identically() {
    let compiled = Arc::clone(compiled_regulator());
    let registry = ModelRegistry::new()
        .insert("regulator", Arc::clone(&compiled))
        .freeze();
    let server = Server::start(
        registry,
        ServerConfig {
            workers: WORKERS,
            // Each client keeps at most one request in flight, so the
            // herd fits the queue and no round ever sees a 503 — which
            // the byte-identity assertions would catch.
            queue_depth: CLIENTS + 32,
            session_capacity: CLIENTS + 8,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.addr().to_string();

    let reference = reference_loop(&compiled);
    assert_matches_golden(&reference);
    let compiles_before = jointree_compile_count();

    let connected = Barrier::new(CLIENTS + 1);
    let released = Barrier::new(CLIENTS + 1);
    std::thread::scope(|scope| {
        for index in 0..CLIENTS {
            let addr = &addr;
            let reference = &reference;
            let connected = &connected;
            let released = &released;
            scope.spawn(move || {
                drive_scaled_client(addr, reference, index % 2 == 1, connected, released);
            });
        }
        // The whole herd holds open sessions on open connections right
        // now — the gauge must see every one of them at once.
        connected.wait();
        let mut probe = Client::connect(&addr).expect("stats client");
        let (status, body) = probe.get("/v1/stats").expect("stats");
        assert_eq!(status, 200);
        let stats: StatsReport = serde_json::from_str(&body).expect("stats parse");
        assert!(
            stats.connections_open as usize >= CLIENTS,
            "only {} connections open with {CLIENTS} clients connected",
            stats.connections_open
        );
        assert_eq!(stats.sessions_live as usize, CLIENTS);
        released.wait();
        // Scope join: every client finishes its loop before we audit.
    });
    assert_eq!(
        jointree_compile_count() - compiles_before,
        0,
        "no thread may compile while the herd runs"
    );

    let mut client = Client::connect(&addr).expect("final stats client");
    let (status, body) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats: StatsReport = serde_json::from_str(&body).expect("stats parse");
    assert_eq!(
        stats.worker_compiles, 0,
        "a worker compiled a junction tree"
    );
    assert_eq!(stats.sessions_opened as usize, CLIENTS);
    assert_eq!(stats.sessions_live, 0, "every session was closed");
    assert_eq!(
        stats.rounds as usize,
        CLIENTS * reference.bodies.len(),
        "every client completed every round"
    );
    // Keep-alive held: each client made 2 + rounds requests over ONE
    // accepted connection (plus the two stats probes and slack for any
    // client whose connection the OS recycled).
    assert!(
        stats.connections_accepted as usize <= CLIENTS + 8,
        "{} accepts for {CLIENTS} keep-alive clients — connections are not being reused",
        stats.connections_accepted
    );
    assert_eq!(
        stats.queue_full_rejections, 0,
        "the sized queue must never have overflowed"
    );
}
