//! Session-store lifecycle: TTL expiry, LRU eviction, checkout/checkin
//! exclusivity, and capacity behaviour — all on a synthetic clock via
//! the store's `*_at` methods, so nothing here sleeps.

use abbd_core::fixtures::toy_compiled_model;
use abbd_core::{CompiledModel, DiagnosisSession, StoppingPolicy};
use abbd_server::SessionStore;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn session(compiled: &Arc<CompiledModel>) -> DiagnosisSession {
    DiagnosisSession::new(Arc::clone(compiled), StoppingPolicy::default()).unwrap()
}

const TTL: Duration = Duration::from_secs(60);

#[test]
fn ttl_reaps_idle_sessions_and_checkin_refreshes() {
    let compiled = toy_compiled_model();
    let store = SessionStore::new(TTL, 16);
    let t0 = Instant::now();
    let id = store.open_at("toy", session(&compiled), t0).unwrap();

    // Just under the TTL the session is alive; the checkout/checkin
    // round refreshes its clock.
    let t1 = t0 + TTL - Duration::from_secs(1);
    let stored = store.checkout_at(&id, t1).unwrap();
    assert_eq!(stored.model, "toy");
    store.checkin_at(&id, stored, t1);

    // A full TTL after the *refresh* (not the open), it survives ...
    store.reap_at(t1 + TTL - Duration::from_secs(1));
    assert_eq!(store.stats().live, 1);

    // ... and at the refresh + TTL boundary it is reaped.
    store.reap_at(t1 + TTL);
    assert_eq!(store.stats().live, 0);
    assert_eq!(store.stats().expired, 1);
    let err = store.checkout_at(&id, t1 + TTL).unwrap_err();
    assert_eq!((err.status, err.code.as_str()), (404, "unknown_session"));
}

#[test]
fn expiry_is_lazy_on_open_and_checkout() {
    let compiled = toy_compiled_model();
    let store = SessionStore::new(TTL, 16);
    let t0 = Instant::now();
    let stale = store.open_at("toy", session(&compiled), t0).unwrap();
    // Opening a new session far in the future reaps the stale one as a
    // side effect — no background thread needed.
    let fresh = store
        .open_at("toy", session(&compiled), t0 + 2 * TTL)
        .unwrap();
    assert_eq!(store.stats().live, 1);
    assert_eq!(store.stats().expired, 1);
    assert!(store.checkout_at(&stale, t0 + 2 * TTL).is_err());
    assert!(store.checkout_at(&fresh, t0 + 2 * TTL).is_ok());
}

#[test]
fn lru_evicts_the_least_recently_used_idle_session() {
    let compiled = toy_compiled_model();
    let store = SessionStore::new(TTL, 3);
    let t0 = Instant::now();
    let a = store.open_at("toy", session(&compiled), t0).unwrap();
    let b = store.open_at("toy", session(&compiled), t0).unwrap();
    let c = store.open_at("toy", session(&compiled), t0).unwrap();

    // Touch `a`, making `b` the coldest.
    let stored = store.checkout_at(&a, t0).unwrap();
    store.checkin_at(&a, stored, t0);

    let d = store.open_at("toy", session(&compiled), t0).unwrap();
    assert_eq!(store.stats().live, 3);
    assert_eq!(store.stats().evicted, 1);
    assert!(store.checkout_at(&b, t0).is_err(), "b was LRU and evicted");
    for id in [&a, &c, &d] {
        let stored = store.checkout_at(id, t0).unwrap();
        store.checkin_at(id, stored, t0);
    }
}

#[test]
fn busy_sessions_resist_concurrent_rounds_eviction_and_expiry() {
    let compiled = toy_compiled_model();
    let store = SessionStore::new(TTL, 1);
    let t0 = Instant::now();
    let id = store.open_at("toy", session(&compiled), t0).unwrap();
    let stored = store.checkout_at(&id, t0).unwrap();

    // A second round on the same session conflicts instead of
    // interleaving evidence.
    let busy = store.checkout_at(&id, t0).unwrap_err();
    assert_eq!((busy.status, busy.code.as_str()), (409, "session_busy"));

    // At capacity with the only resident busy, an open is refused.
    let full = store.open_at("toy", session(&compiled), t0).unwrap_err();
    assert_eq!((full.status, full.code.as_str()), (503, "store_full"));

    // TTL cannot reap a busy session (the round may legitimately be
    // long); it starts aging again from its check-in.
    store.reap_at(t0 + 3 * TTL);
    assert_eq!(store.stats().live, 1);
    store.checkin_at(&id, stored, t0 + 3 * TTL);
    let stored = store.checkout_at(&id, t0 + 3 * TTL).unwrap();
    store.checkin_at(&id, stored, t0 + 3 * TTL);
}

#[test]
fn close_drops_idle_now_and_busy_at_checkin() {
    let compiled = toy_compiled_model();
    let store = SessionStore::new(TTL, 16);
    let t0 = Instant::now();

    let idle = store.open_at("toy", session(&compiled), t0).unwrap();
    assert!(store.close(&idle));
    assert!(!store.close(&idle), "double close reports not-found");
    assert_eq!(store.stats().live, 0);

    let busy = store.open_at("toy", session(&compiled), t0).unwrap();
    let stored = store.checkout_at(&busy, t0).unwrap();
    assert!(store.close(&busy));
    // The round in flight finishes; its check-in completes the close.
    store.checkin_at(&busy, stored, t0);
    assert_eq!(store.stats().live, 0);
    assert!(store.checkout_at(&busy, t0).is_err());
}

#[test]
fn stored_sessions_keep_their_evidence_between_rounds() {
    let compiled = toy_compiled_model();
    let store = SessionStore::new(TTL, 16);
    let mut s = session(&compiled);
    s.observe("pin", 1).unwrap();
    let id = store.open("toy", s).unwrap();

    let mut stored = store.checkout(&id).unwrap();
    stored.session.observe("out1", 0).unwrap();
    stored.session.mark_failing("out1");
    stored.rounds += 1;
    store.checkin(&id, stored);

    let stored = store.checkout(&id).unwrap();
    assert_eq!(stored.rounds, 1);
    assert_eq!(stored.session.observation().state_of("pin"), Some(1));
    assert_eq!(stored.session.observation().state_of("out1"), Some(0));
    assert_eq!(stored.session.observation().failing(), ["out1"]);
    store.checkin(&id, stored);
}
