//! The end-to-end serving claim: 8 concurrent clients each drive a full
//! d1 adaptive diagnosis loop **over the wire** — open a stored session,
//! post decision rounds, follow the server's ranked recommendation,
//! answer from the paper's Table VI — and
//!
//! 1. every round's response body is **byte-identical** to the
//!    in-process `CompiledModel::serve` of the same cumulative request;
//! 2. the decision sequence (chosen measurement, observed state, failing
//!    flag, posterior fault mass per step, stop reason, final verdict)
//!    replays the stored golden trace `tests/golden/d1_myopic.json` —
//!    the same corpus that pins the in-process `DiagnosisSession`;
//! 3. no serving thread ever compiles a junction tree (`/v1/stats`
//!    `worker_compiles == 0`, client-thread compile deltas == 0); the
//!    one compilation happened at registry build time.

use abbd_bbn::jointree_compile_count;
use abbd_core::{CompiledModel, DecisionTrace, Observation, SessionReport, SessionRequest};
use abbd_designs::regulator::cases::{case_studies, CaseStudy};
use abbd_designs::regulator::program::{suite_plans, SuitePlan, OBSERVED_VARS};
use abbd_designs::regulator::{self};
use abbd_server::{Client, ModelRegistry, OpenSessionReply, Server, ServerConfig, StatsReport};
use std::sync::{Arc, OnceLock};

const CLIENTS: usize = 8;

struct Fixture {
    server: Server,
    compiled: Arc<CompiledModel>,
}

/// The same quick EM fit the golden-trace corpus pins (deterministic
/// for the fixed seed), compiled once for the whole file.
fn compiled_regulator() -> &'static Arc<CompiledModel> {
    static COMPILED: OnceLock<Arc<CompiledModel>> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let engine = regulator::fit(
            24,
            42,
            abbd_core::LearnAlgorithm::Em(abbd_bbn::learn::EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .expect("regulator pipeline runs")
        .engine;
        Arc::clone(engine.compiled())
    })
}

/// A fresh server per test on the shared compilation — each test owns
/// its `/v1/stats` counters, so the harness can run tests in parallel
/// without the global assertions racing each other.
fn fixture() -> Fixture {
    let compiled = Arc::clone(compiled_regulator());
    let registry = ModelRegistry::new()
        .insert("regulator", Arc::clone(&compiled))
        .freeze();
    let server = Server::start(
        registry,
        ServerConfig {
            workers: CLIENTS,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    Fixture { server, compiled }
}

fn d1() -> (CaseStudy, SuitePlan) {
    let case = case_studies()
        .into_iter()
        .next()
        .expect("case studies exist");
    assert_eq!(case.id, "d1");
    let plan = suite_plans()
        .into_iter()
        .find(|p| p.name == case.suite)
        .expect("d1's suite has a plan");
    (case, plan)
}

/// Answers one recommended measurement from paper Table VI, with the
/// failing mark the virtual ATE would attach.
fn answer(case: &CaseStudy, plan: &SuitePlan, variable: &str) -> (usize, bool) {
    let index = OBSERVED_VARS
        .iter()
        .position(|v| *v == variable)
        .unwrap_or_else(|| panic!("server recommended a non-output `{variable}`"));
    let (_, state) = case.observables[index];
    (state, state != plan.healthy_states[index])
}

/// One client's complete wire transcript of a d1 adaptive loop.
struct Transcript {
    /// Raw response body per round, in order.
    round_bodies: Vec<String>,
    /// Parsed mirror of each round.
    reports: Vec<SessionReport>,
    /// `(chosen, state, failing)` per applied measurement.
    applied: Vec<(String, usize, bool)>,
}

/// Drives one full adaptive loop over the wire, asserting byte-identity
/// with the in-process `serve` of every cumulative request as it goes.
fn drive_one_client(fx: &Fixture) -> Transcript {
    let (case, plan) = d1();
    let mut client = Client::connect(fx.server.addr()).expect("client connects");
    let (status, body) = client
        .post("/v1/models/regulator/sessions", "{}")
        .expect("open session");
    assert_eq!(status, 201, "open failed: {body}");
    let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply parses");

    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let mut transcript = Transcript {
        round_bodies: Vec::new(),
        reports: Vec::new(),
        applied: Vec::new(),
    };
    loop {
        let request = SessionRequest::new(observation.clone());
        let request_json = serde_json::to_string(&request).expect("request encodes");
        let (status, wire_body) = client
            .post(
                &format!("/v1/sessions/{}/round", open.session_id),
                &request_json,
            )
            .expect("round posts");
        assert_eq!(status, 200, "round failed: {wire_body}");

        // Byte-identity: the stored-session round answers exactly what
        // the stateless in-process boundary answers for the same
        // cumulative request.
        let reference = fx.compiled.serve(&request).expect("in-process serve");
        let reference_json = serde_json::to_string(&reference).expect("reference encodes");
        assert_eq!(
            wire_body, reference_json,
            "wire round diverged from in-process serve"
        );

        let report: SessionReport = serde_json::from_str(&wire_body).expect("report parses");
        transcript.round_bodies.push(wire_body);
        transcript.reports.push(report);
        let report = transcript.reports.last().expect("just pushed");
        if report.stop.is_some() {
            break;
        }
        let next = &report.ranked[0].action;
        let (state, failing) = answer(&case, &plan, next.target());
        observation.set(next.target(), state);
        if failing {
            observation.mark_failing(next.target());
        }
        transcript
            .applied
            .push((next.target().to_string(), state, failing));
    }
    let (status, body) = client
        .delete(&format!("/v1/sessions/{}", open.session_id))
        .expect("close session");
    assert_eq!(status, 200, "close failed: {body}");
    transcript
}

#[test]
fn concurrent_wire_loops_replay_the_golden_trace_without_compiling() {
    let fx = fixture();
    let compiles_before = jointree_compile_count();

    // 8 concurrent clients, one thread each, all on the same stored
    // model; every thread also computes its own in-process references
    // and must never trigger a compilation doing so.
    let transcripts: Vec<Transcript> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    let before = jointree_compile_count();
                    let transcript = drive_one_client(&fx);
                    assert_eq!(
                        jointree_compile_count() - before,
                        0,
                        "client thread must not compile"
                    );
                    transcript
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    assert_eq!(
        jointree_compile_count() - compiles_before,
        0,
        "serving must not compile on the driving thread either"
    );

    // Every client saw the identical transcript, byte for byte.
    for transcript in &transcripts[1..] {
        assert_eq!(transcript.round_bodies, transcripts[0].round_bodies);
    }

    // The decision sequence replays the stored d1 golden trace (the
    // corpus that pins the in-process DiagnosisSession).
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/d1_myopic.json");
    let golden: DecisionTrace = serde_json::from_str(
        &std::fs::read_to_string(&golden_path).expect("golden d1 trace is readable"),
    )
    .expect("golden trace parses");
    let transcript = &transcripts[0];
    assert_eq!(
        transcript.applied.len(),
        golden.steps.len(),
        "same number of measurements to isolation"
    );
    for (applied, step) in transcript.applied.iter().zip(&golden.steps) {
        assert_eq!(applied.0, step.chosen, "same measurement chosen");
        assert_eq!(applied.1, step.state, "same observed state");
        assert_eq!(applied.2, step.failing, "same limit verdict");
    }
    // Post-absorb fault mass per step: the wire round after measurement
    // k reports what the golden trace recorded at step k.
    for (k, step) in golden.steps.iter().enumerate() {
        assert_eq!(
            transcript.reports[k + 1].fault_mass,
            step.fault_mass,
            "fault mass diverged after measurement {k}"
        );
    }
    let last = transcript.reports.last().expect("at least one round");
    assert_eq!(last.stop, Some(golden.stop), "same stop reason");
    assert_eq!(last.top_candidate, golden.top_candidate, "same verdict");
    assert_eq!(last.fault_mass, golden.final_fault_mass);

    // The serving side agrees it never compiled, and the bookkeeping
    // adds up: one session and one full loop per client.
    let mut client = Client::connect(fx.server.addr()).expect("stats client");
    let (status, body) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats: StatsReport = serde_json::from_str(&body).expect("stats parse");
    assert_eq!(
        stats.worker_compiles, 0,
        "a worker compiled a junction tree"
    );
    assert_eq!(stats.sessions_opened as usize, CLIENTS);
    assert_eq!(
        stats.rounds as usize,
        transcripts
            .iter()
            .map(|t| t.round_bodies.len())
            .sum::<usize>()
    );
    assert_eq!(stats.sessions_live, 0, "every session was closed");
}

/// The same loop through the *stateless* endpoint must land on the same
/// bytes as the stored-session loop — statefulness is a performance
/// feature, never a behavioural one.
#[test]
fn stateless_endpoint_agrees_with_stored_sessions() {
    let fx = fixture();
    let (case, plan) = d1();
    let mut client = Client::connect(fx.server.addr()).expect("client connects");

    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let mut stateless_bodies = Vec::new();
    loop {
        let request = SessionRequest::new(observation.clone());
        let request_json = serde_json::to_string(&request).expect("request encodes");
        let (status, body) = client
            .post("/v1/models/regulator/serve", &request_json)
            .expect("serve posts");
        assert_eq!(status, 200, "serve failed: {body}");
        let report: SessionReport = serde_json::from_str(&body).expect("report parses");
        stateless_bodies.push(body);
        if report.stop.is_some() {
            break;
        }
        let next = report.ranked[0].action.clone();
        let (state, failing) = answer(&case, &plan, next.target());
        observation.set(next.target(), state);
        if failing {
            observation.mark_failing(next.target());
        }
    }
    let stored = drive_one_client(&fx);
    assert_eq!(stateless_bodies, stored.round_bodies);
}
