//! Versioned hot-swap under live traffic: stored sessions opened against
//! v1 keep producing byte-identical v1 replies while a wire-triggered
//! refit promotes v2 mid-flight, new work lands on v2, pinned
//! `name@vN` references address both, rollback is a metadata flip, and
//! the whole dance never compiles a junction tree on a worker thread.
//!
//! The scenario, end to end over the wire:
//!
//! 1. a refit request before any traces exist is rejected with the
//!    structured `insufficient_data` reason (and counted);
//! 2. a drifted fleet population arrives through the batch endpoint and
//!    lands in the model's trace aggregate;
//! 3. client threads drive full d1 adaptive loops on stored sessions
//!    while the main thread triggers the refit — every round of every
//!    session answers 200 with bytes identical to the v1 in-process
//!    reference, before, during and after the promotion (in-flight
//!    sessions pin their compile);
//! 4. after the swap, stateless serving resolves to v2, `regulator@1`
//!    and `regulator@2` pin their exact versions, `/versions` lists
//!    both entries, activate(1)/activate(2) roll back and forward, and
//!    `/v1/stats` reconciles with the lifecycle's own counters.

use abbd_core::conformance::self_references;
use abbd_core::{CompiledModel, Observation, SessionRequest};
use abbd_designs::regulator::cases::{case_studies, CaseStudy};
use abbd_designs::regulator::program::{suite_plans, SuitePlan, OBSERVED_VARS};
use abbd_designs::regulator::{self, drift};
use abbd_server::{
    ActivateReply, BatchReply, BatchRequest, Client, ModelLifecycle, ModelRegistry,
    OpenSessionReply, RefitPolicy, RefitReport, Server, ServerConfig, StatsReport, VersionsReport,
};
use std::sync::{Arc, Barrier, OnceLock};

/// Stored sessions driving rounds across the swap.
const SESSIONS: usize = 6;

fn compiled_regulator() -> &'static Arc<CompiledModel> {
    static COMPILED: OnceLock<Arc<CompiledModel>> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let engine = regulator::fit(
            24,
            42,
            abbd_core::LearnAlgorithm::Em(abbd_bbn::learn::EmConfig {
                max_iterations: 8,
                tolerance: 1e-4,
            }),
        )
        .expect("regulator pipeline runs")
        .engine;
        Arc::clone(engine.compiled())
    })
}

/// The evidence-determined Table VI case studies (d1–d4) as the
/// conformance corpus. d5 is a prior tie the drifted refit legitimately
/// moves, so it is monitored by the holdout, not pinned.
fn lifecycle() -> Arc<ModelLifecycle> {
    let compiled = Arc::clone(compiled_regulator());
    let scenarios = case_studies()
        .into_iter()
        .filter(|case| case.id != "d5")
        .map(|case| {
            let mut observation = Observation::new();
            for &(name, state) in case.controls.iter().chain(case.observables.iter()) {
                observation.set(name, state);
            }
            (case.id.to_string(), observation)
        });
    let references = self_references(&compiled, scenarios).expect("reference corpus");
    ModelLifecycle::new("regulator", compiled, references, RefitPolicy::default()).shared()
}

fn d1() -> (CaseStudy, SuitePlan) {
    let case = case_studies()
        .into_iter()
        .next()
        .expect("case studies exist");
    assert_eq!(case.id, "d1");
    let plan = suite_plans()
        .into_iter()
        .find(|p| p.name == case.suite)
        .expect("d1's suite has a plan");
    (case, plan)
}

fn answer(case: &CaseStudy, plan: &SuitePlan, variable: &str) -> (usize, bool) {
    let index = OBSERVED_VARS
        .iter()
        .position(|v| *v == variable)
        .unwrap_or_else(|| panic!("server recommended a non-output `{variable}`"));
    let (_, state) = case.observables[index];
    (state, state != plan.healthy_states[index])
}

/// The v1 in-process d1 transcript every pinned session must reproduce
/// byte for byte, no matter when the promotion lands.
struct Reference {
    bodies: Vec<String>,
    applied: Vec<(String, usize, bool)>,
}

fn reference_loop(compiled: &Arc<CompiledModel>) -> Reference {
    let (case, plan) = d1();
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let mut reference = Reference {
        bodies: Vec::new(),
        applied: Vec::new(),
    };
    loop {
        let report = compiled
            .serve(&SessionRequest::new(observation.clone()))
            .expect("in-process serve");
        reference
            .bodies
            .push(serde_json::to_string(&report).expect("report encodes"));
        if report.stop.is_some() {
            return reference;
        }
        let next = report.ranked[0].action.clone();
        let (state, failing) = answer(&case, &plan, next.target());
        observation.set(next.target(), state);
        if failing {
            observation.mark_failing(next.target());
        }
        reference
            .applied
            .push((next.target().to_string(), state, failing));
    }
}

/// One pinned session's whole life: opened against v1 before the swap,
/// every round byte-compared against the v1 reference while the refit
/// promotes v2 underneath it.
fn drive_pinned_session(
    addr: &str,
    reference: &Reference,
    opened: &Barrier,
    racing: &Barrier,
) -> String {
    let (case, _) = d1();
    let mut client = Client::connect(addr).expect("client connects");
    let (status, body) = client
        .post("/v1/models/regulator/sessions", "{}")
        .expect("open session");
    assert_eq!(status, 201, "open failed: {body}");
    let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply parses");

    // First round lands strictly pre-swap: the session's pin is proven
    // v1 before the refit may promote.
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let round_path = format!("/v1/sessions/{}/round", open.session_id);
    let request = serde_json::to_string(&SessionRequest::new(observation.clone())).unwrap();
    let (status, wire_body) = client.post(&round_path, &request).expect("round posts");
    assert_eq!(status, 200, "pre-swap round failed: {wire_body}");
    assert_eq!(&wire_body, &reference.bodies[0], "pre-swap round diverged");

    opened.wait();
    racing.wait(); // the main thread fires the refit now

    for (k, expected) in reference.bodies.iter().enumerate().skip(1) {
        let (name, state, failing) = &reference.applied[k - 1];
        observation.set(name, *state);
        if *failing {
            observation.mark_failing(name);
        }
        let request = serde_json::to_string(&SessionRequest::new(observation.clone())).unwrap();
        let (status, wire_body) = client.post(&round_path, &request).expect("round posts");
        assert_eq!(status, 200, "round {k} failed during swap: {wire_body}");
        assert_eq!(
            &wire_body, expected,
            "round {k} diverged from the v1 reference across the swap"
        );
    }
    let (status, body) = client
        .delete(&format!("/v1/sessions/{}", open.session_id))
        .expect("close session");
    assert_eq!(status, 200, "close failed: {body}");
    open.session_id
}

/// Serves one stateless d1 opening round against `name` and returns the
/// response body.
fn stateless_round(client: &mut Client, name: &str) -> String {
    let (case, _) = d1();
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let request = serde_json::to_string(&SessionRequest::new(observation)).unwrap();
    let (status, body) = client
        .post(&format!("/v1/models/{name}/serve"), &request)
        .expect("stateless serve");
    assert_eq!(status, 200, "stateless serve on `{name}` failed: {body}");
    body
}

#[test]
fn refit_promotion_hot_swaps_under_live_sessions() {
    let lc = lifecycle();
    let v1 = lc.active();
    let registry = ModelRegistry::new()
        .insert_lifecycle("regulator", Arc::clone(&lc))
        .freeze();
    let server = Server::start(
        registry,
        ServerConfig {
            workers: 4,
            queue_depth: 256,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.addr().to_string();
    let reference = reference_loop(&v1);

    let mut client = Client::connect(&addr).expect("main client");

    // 1. No traces yet: the gate rejects with a structured reason.
    let (status, body) = client
        .post("/v1/models/regulator/refit", "{}")
        .expect("premature refit");
    assert_eq!(status, 200, "refit endpoint failed: {body}");
    let report: RefitReport = serde_json::from_str(&body).expect("refit report parses");
    assert!(!report.promoted, "no data, no promotion");
    let reason = report.rejection.expect("structured rejection");
    assert!(
        reason.to_string().contains("only 0 aggregated rows"),
        "unexpected reason: {reason}"
    );
    assert_eq!(lc.active_version(), 1);

    // 2. The drifted fleet arrives through the batch endpoint.
    let rig = regulator::rig();
    let train = drift::synthesize_drifted(&rig, 64, 777, 10_000).expect("drifted population");
    let batch = BatchRequest {
        observations: train.cases.iter().map(Observation::from).collect(),
        deduction: None,
    };
    let (status, body) = client
        .post(
            "/v1/models/regulator/diagnose_batch",
            &serde_json::to_string(&batch).unwrap(),
        )
        .expect("batch posts");
    assert_eq!(status, 200, "batch failed: {body}");
    let reply: BatchReply = serde_json::from_str(&body).expect("batch reply parses");
    let batch_traces = reply.reports.iter().filter(|e| e.ok.is_some()).count() as u64;
    assert!(
        batch_traces >= RefitPolicy::default().min_rows,
        "the population must exceed the refit floor, got {batch_traces}"
    );
    assert_eq!(lc.traces_aggregated(), batch_traces);

    // 3. Pinned sessions round across the promotion.
    let opened = Barrier::new(SESSIONS + 1);
    let racing = Barrier::new(SESSIONS + 1);
    std::thread::scope(|scope| {
        for _ in 0..SESSIONS {
            let addr = &addr;
            let reference = &reference;
            let opened = &opened;
            let racing = &racing;
            scope.spawn(move || drive_pinned_session(addr, reference, opened, racing));
        }
        opened.wait();
        racing.wait();
        // Every session is open with its v1 pin proven, and the herd is
        // posting rounds right now.
        let (status, body) = client
            .post("/v1/models/regulator/refit", "{}")
            .expect("refit posts");
        assert_eq!(status, 200, "refit failed: {body}");
        let report: RefitReport = serde_json::from_str(&body).expect("refit report parses");
        assert!(
            report.promoted,
            "gate must pass the drift refit: {:?}",
            report.rejection.map(|r| r.to_string())
        );
        assert_eq!(report.version, Some(2));
        // Scope join: every pinned session finishes byte-identically.
    });
    assert_eq!(lc.active_version(), 2);
    let v2 = lc.active();

    // 4. New traffic lands on v2; pinned names address both versions.
    let unversioned = stateless_round(&mut client, "regulator");
    let pinned_v1 = stateless_round(&mut client, "regulator@v1");
    let pinned_v2 = stateless_round(&mut client, "regulator@v2");
    let (case, _) = d1();
    let mut observation = Observation::new();
    for (name, state) in case.controls {
        observation.set(name, state);
    }
    let round = SessionRequest::new(observation);
    let v1_body = serde_json::to_string(&v1.serve(&round).expect("v1 serves")).unwrap();
    let v2_body = serde_json::to_string(&v2.serve(&round).expect("v2 serves")).unwrap();
    assert_eq!(pinned_v1, v1_body, "regulator@v1 must serve the v1 bytes");
    assert_eq!(pinned_v2, v2_body, "regulator@v2 must serve the v2 bytes");
    assert_eq!(unversioned, v2_body, "the bare name follows the promotion");
    assert_ne!(v1_body, v2_body, "the refit changed the model");

    // Sessions opened after the swap serve v2.
    let (status, body) = client
        .post("/v1/models/regulator/sessions", "{}")
        .expect("post-swap session opens");
    assert_eq!(status, 201);
    let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply parses");
    let request = serde_json::to_string(&round).unwrap();
    let (status, body) = client
        .post(&format!("/v1/sessions/{}/round", open.session_id), &request)
        .expect("post-swap round");
    assert_eq!(status, 200);
    assert_eq!(body, v2_body, "a fresh session must open against v2");
    client
        .delete(&format!("/v1/sessions/{}", open.session_id))
        .expect("close");

    // 5. The versions report lists both entries with the right default.
    let (status, body) = client
        .get("/v1/models/regulator/versions")
        .expect("versions");
    assert_eq!(status, 200);
    let versions: VersionsReport = serde_json::from_str(&body).expect("versions parse");
    assert_eq!(versions.model, "regulator");
    assert_eq!(versions.active_version, 2);
    assert_eq!(versions.versions.len(), 2);
    assert!(!versions.versions[0].active && versions.versions[1].active);
    assert_eq!(versions.versions[1].source, "refit");
    // Sessions that stopped before the refit snapshotted may have added
    // their trace on top of the batch rows — the floor is the batch.
    assert!(versions.versions[1].rows_fitted >= batch_traces);

    // 6. Rollback is a metadata flip, observable on the very next round.
    let (status, body) = client
        .post("/v1/models/regulator/activate", r#"{"version":1}"#)
        .expect("activate v1");
    assert_eq!(status, 200, "activate failed: {body}");
    let rolled: ActivateReply = serde_json::from_str(&body).expect("activate reply parses");
    assert_eq!(rolled.active_version, 1);
    assert_eq!(stateless_round(&mut client, "regulator"), v1_body);
    let (status, body) = client
        .post("/v1/models/regulator/activate", r#"{"version":2}"#)
        .expect("activate v2");
    assert_eq!(status, 200, "roll forward failed: {body}");
    assert_eq!(stateless_round(&mut client, "regulator"), v2_body);
    // Unknown version and unknown model answer structured errors.
    let (status, _) = client
        .post("/v1/models/regulator/activate", r#"{"version":9}"#)
        .expect("bad activate");
    assert_eq!(status, 422);
    let (status, _) = client.post("/v1/models/nope/refit", "{}").expect("404s");
    assert_eq!(status, 404);

    // 7. Stats reconcile with the lifecycle's own counters, and no
    //    worker thread ever compiled — refits included.
    let (status, body) = client.get("/v1/stats").expect("stats");
    assert_eq!(status, 200);
    let stats: StatsReport = serde_json::from_str(&body).expect("stats parse");
    assert_eq!(stats.worker_compiles, 0, "a worker compiled during refit");
    assert_eq!(stats.refits_run, lc.refits_run());
    assert_eq!(stats.refits_rejected, lc.refits_rejected());
    assert_eq!(stats.refits_run, 2, "one premature, one promoting");
    assert_eq!(stats.refits_rejected, 1, "only the premature one");
    assert_eq!(stats.traces_aggregated, lc.traces_aggregated());
    // The batch rows plus exactly one trace per pinned session, folded
    // on its terminal round. The post-swap session and the stateless
    // probes never reached a stop, so they contribute nothing.
    assert_eq!(
        stats.traces_aggregated,
        batch_traces + SESSIONS as u64,
        "every stored session records its trace exactly once"
    );
    let model = stats
        .models
        .iter()
        .find(|m| m.name == "regulator")
        .expect("regulator stats row");
    assert_eq!(model.active_version, Some(2));
    assert_eq!(model.traces_aggregated, stats.traces_aggregated);
    assert_eq!(model.refits_run, 2);
    assert_eq!(
        model.rounds,
        stats.rounds + stats.stateless_rounds,
        "every stored and stateless round lands on the one model"
    );
    assert_eq!(
        stats.rounds as usize,
        SESSIONS * reference.bodies.len() + 1,
        "the pinned herd's rounds plus the post-swap probe"
    );

    server.shutdown();
}
