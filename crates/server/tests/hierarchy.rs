//! Hierarchical serving over the wire: a synthetic board registered as a
//! compiled hierarchy serves its abstract root under the board name,
//! descends a stored session into the suspect block **server-side**, and
//! exposes the block sub-models under `{board}/{block}` — with the lazy
//! child compile counted once per block in `/v1/stats`, never in the
//! `worker_compiles` pin.

use abbd_core::{Observation, SessionReport, SessionRequest};
use abbd_designs::board::{self, BoardConfig};
use abbd_server::{
    Client, ModelInfo, ModelRegistry, ModelsReport, OpenSessionReply, Server, ServerConfig,
    StatsReport,
};

const CONFIG: BoardConfig = BoardConfig {
    blocks: 4,
    seed: 2010,
};

fn board_server() -> Server {
    let hierarchy = board::hierarchy(&CONFIG)
        .expect("board hierarchy builds")
        .shared();
    let registry = ModelRegistry::new()
        .insert_hierarchy("board", hierarchy)
        .freeze();
    Server::start(registry, ServerConfig::default()).expect("server binds")
}

fn stats(client: &mut Client) -> StatsReport {
    let (status, body) = client.get("/v1/stats").expect("stats answers");
    assert_eq!(status, 200, "stats failed: {body}");
    serde_json::from_str(&body).expect("stats parse")
}

/// Posts one stored round with the cumulative `observation`.
fn round(client: &mut Client, session_id: &str, observation: &Observation) -> SessionReport {
    let request = SessionRequest::new(observation.clone());
    let body = serde_json::to_string(&request).expect("request encodes");
    let (status, reply) = client
        .post(&format!("/v1/sessions/{session_id}/round"), &body)
        .expect("round posts");
    assert_eq!(status, 200, "round failed: {reply}");
    serde_json::from_str(&reply).expect("report parses")
}

/// Drives one wire client through the d1-style two-phase loop: summary
/// evidence in, descended block-level recommendations out, following the
/// server's ranking until it stops. Returns the final report.
fn drive_board_loop(client: &mut Client, scenario: &board::FaultScenario) -> SessionReport {
    let (status, body) = client
        .post("/v1/models/board/sessions", "{}")
        .expect("open session");
    assert_eq!(status, 201, "open failed: {body}");
    let open: OpenSessionReply = serde_json::from_str(&body).expect("open reply parses");
    assert_eq!(open.model, "board");

    // Round 1: the board-level summary tests (the only measurements a
    // tester has before descent).
    let mut observation = Observation::new();
    for k in 0..CONFIG.blocks {
        let out = format!("out{k:02}");
        let state = scenario.truth[&out];
        observation.set(&out, state);
        if state == 0 {
            observation.mark_failing(&out);
        }
    }
    let mut report = round(client, &open.session_id, &observation);
    // The failing summary pushes the block over the descend threshold in
    // this very round: the reply already speaks block-level variables.
    assert!(
        report
            .posteriors
            .iter()
            .any(|(name, _)| name == &scenario.fault),
        "report still board-level after a failing summary: {:?}",
        report.posteriors.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    // Follow the server's block-level recommendations to isolation.
    while report.stop.is_none() {
        let next = report.ranked.first().expect("no stop, so a ranked action");
        let target = next.action.target();
        let state = scenario.truth[target];
        observation.set(target, state);
        if state == 0 {
            observation.mark_failing(target);
        }
        report = round(client, &open.session_id, &observation);
    }
    let (status, body) = client
        .delete(&format!("/v1/sessions/{}", open.session_id))
        .expect("close session");
    assert_eq!(status, 200, "close failed: {body}");
    report
}

#[test]
fn models_report_lists_the_hierarchy() {
    let server = board_server();
    let mut client = Client::connect(server.addr()).expect("client connects");
    let (status, body) = client.get("/v1/models").expect("models answers");
    assert_eq!(status, 200, "models failed: {body}");
    let report: ModelsReport = serde_json::from_str(&body).expect("models parse");
    assert_eq!(report.models.len(), 1 + CONFIG.blocks);
    let root: &ModelInfo = &report.models[0];
    assert_eq!(root.name, "board");
    assert_eq!(root.parent, None);
    assert_eq!(
        root.children,
        (0..CONFIG.blocks)
            .map(|k| format!("board/reg{k:02}"))
            .collect::<Vec<_>>()
    );
    // Root model: 2 rails + per block one pseudo-latent and one summary.
    assert_eq!(root.variables, 2 + 2 * CONFIG.blocks);
    for (k, child) in report.models[1..].iter().enumerate() {
        assert_eq!(child.name, format!("board/reg{k:02}"));
        assert_eq!(child.parent.as_deref(), Some("board"));
        assert!(child.children.is_empty());
        // 7 block members + the 2-rail interface.
        assert_eq!(child.variables, 9);
        assert_eq!(child.latents, 4);
        assert_eq!(child.observables, 3);
    }
    server.shutdown();
}

#[test]
fn stored_board_sessions_descend_server_side_and_compile_each_block_once() {
    let server = board_server();
    let mut client = Client::connect(server.addr()).expect("client connects");

    let before = stats(&mut client);
    assert_eq!(before.models_compiled, 1, "only the root at startup");
    assert_eq!(before.submodels_compiled_lazy, 0);

    let scenario = board::d1_scenario(&CONFIG, 2);
    let report = drive_board_loop(&mut client, &scenario);
    assert_eq!(
        report.top_candidate.as_deref(),
        Some(scenario.fault.as_str()),
        "wire loop must isolate the dead driver (stop: {:?})",
        report.stop
    );

    let after_first = stats(&mut client);
    assert_eq!(
        after_first.submodels_compiled_lazy, 1,
        "one descent, one compile"
    );
    assert_eq!(after_first.models_compiled, 2, "root + one child resident");
    assert_eq!(after_first.worker_compiles, 0, "descent is sanctioned");

    // A second device with the same suspect block reuses the cached
    // child — the compile-once pin, over the wire.
    let report = drive_board_loop(&mut client, &scenario);
    assert_eq!(
        report.top_candidate.as_deref(),
        Some(scenario.fault.as_str())
    );
    let after_second = stats(&mut client);
    assert_eq!(
        after_second.submodels_compiled_lazy, 1,
        "block compiled at most once"
    );
    assert_eq!(after_second.worker_compiles, 0);

    server.shutdown();
}

#[test]
fn child_submodels_serve_statelessly_under_slash_names() {
    let server = board_server();
    let mut client = Client::connect(server.addr()).expect("client connects");

    // The block's full test signature (out/ilim fail, aux pass) — enough
    // for one stateless round to implicate the driver.
    let scenario = board::d1_scenario(&CONFIG, 1);
    let mut observation = Observation::new();
    for name in ["out01", "aux01", "ilim01"] {
        let state = scenario.truth[name];
        observation.set(name, state);
        if state == 0 {
            observation.mark_failing(name);
        }
    }
    let request = SessionRequest::new(observation);
    let body = serde_json::to_string(&request).expect("request encodes");
    let (status, reply) = client
        .post("/v1/models/board/reg01/serve", &body)
        .expect("stateless serve posts");
    assert_eq!(status, 200, "serve failed: {reply}");
    let report: SessionReport = serde_json::from_str(&reply).expect("report parses");
    // One passive round can't separate the dead driver from its
    // upstream causes (the §IV-B deduction ranks the root cause first —
    // probing is what settles it, as the stored-session test shows), but
    // the whole verdict must stay inside the block, with the driver
    // heavily implicated.
    let block_latents = ["bias01", "bg01", "reg_s01", "drv01"];
    let top = report.top_candidate.as_deref().expect("a candidate");
    assert!(
        block_latents.contains(&top),
        "top candidate `{top}` is not a block latent"
    );
    let drv_mass = report
        .fault_mass
        .iter()
        .find(|(name, _)| name == &scenario.fault)
        .map(|&(_, mass)| mass)
        .expect("driver fault mass reported");
    assert!(drv_mass > 0.8, "dead driver under-implicated: {drv_mass}");

    // Unknown blocks stay 404, exactly like unknown models.
    let (status, _) = client
        .post("/v1/models/board/reg99/serve", &body)
        .expect("unknown block posts");
    assert_eq!(status, 404);

    server.shutdown();
}
