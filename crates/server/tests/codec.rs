//! The two wire codecs are interchangeable: any `SessionRequest` or
//! `SessionReport` decodes to the same value from its JSON encoding and
//! its compact binary encoding. The proptests below pin that on
//! messy-but-finite floats (thirds, ten-thousandths — values whose
//! decimal rendering exercises the shortest-roundtrip printer) and on
//! real inference output, whose posteriors and log-likelihoods are
//! arbitrary doubles the kernels actually produced.

use abbd_core::fixtures::toy_compiled_model;
use abbd_server::{codec, SessionReport, SessionRequest};
use proptest::prelude::*;

/// Canonical comparison form: the JSON rendering. (The DTOs do not all
/// implement `Eq`, and float identity is exactly what the JSON printer's
/// shortest-roundtrip guarantee makes comparable.)
fn json_of<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("encodes")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// A request decodes to the same value from both codecs, and both
    /// equal the original.
    #[test]
    fn requests_decode_equal_from_both_codecs(
        pin in 0usize..2,
        out1 in proptest::option::of(0usize..2),
        threshold_millis in 1u32..1000,
        min_gain_micros in 0u32..1_000_000,
        max_steps in 1usize..64,
        delta in proptest::bool::ANY,
    ) {
        let mut request = SessionRequest::new(Default::default());
        request.observation.set("pin", pin);
        if let Some(state) = out1 {
            request.observation.set("out1", state);
            if state == 0 {
                request.observation.mark_failing("out1");
            }
        }
        // Non-dyadic fractions: decimal values like 0.123 have no exact
        // binary representation, so a codec that rounds through a lossy
        // intermediate would drift here.
        request.policy.fault_mass_threshold = f64::from(threshold_millis) / 1000.0;
        request.policy.min_gain = f64::from(min_gain_micros) / 1_000_000.0;
        request.policy.max_steps = max_steps;
        if delta {
            request = request.into_delta();
        }

        let from_json: SessionRequest = serde_json::from_str(&json_of(&request)).unwrap();
        let from_binary: SessionRequest = codec::from_frame(&codec::to_frame(&request)).unwrap();
        prop_assert_eq!(json_of(&from_json), json_of(&from_binary));
        prop_assert_eq!(json_of(&from_binary), json_of(&request));
        prop_assert_eq!(from_binary.delta, delta);
    }

    /// Real inference output — posteriors, fault masses, ranked actions,
    /// log-likelihoods — survives both codecs equally. These doubles
    /// come out of the propagation kernels, not a generator, so they
    /// cover the full messiness of actual wire traffic.
    #[test]
    fn reports_decode_equal_from_both_codecs(
        pin in 0usize..2,
        fail_out1 in proptest::bool::ANY,
    ) {
        let mut request = SessionRequest::new(Default::default());
        request.observation.set("pin", pin);
        if fail_out1 {
            request.observation.set("out1", 0);
            request.observation.mark_failing("out1");
        }
        let report = toy_compiled_model().serve(&request).unwrap();

        let from_json: SessionReport = serde_json::from_str(&json_of(&report)).unwrap();
        let from_binary: SessionReport = codec::from_frame(&codec::to_frame(&report)).unwrap();
        prop_assert_eq!(json_of(&from_json), json_of(&from_binary));
        prop_assert_eq!(json_of(&from_binary), json_of(&report));
    }

    /// The streaming serializers emit byte-identical wire output to the
    /// `Value`-tree fallback, both codecs, on arbitrary requests — so
    /// retiring the intermediate tree cannot change a single wire byte.
    #[test]
    fn streaming_requests_are_byte_identical_to_the_value_path(
        pin in 0usize..2,
        threshold_millis in 1u32..1000,
        max_steps in 1usize..64,
        delta in proptest::bool::ANY,
    ) {
        let mut request = SessionRequest::new(Default::default());
        request.observation.set("pin", pin);
        request.policy.fault_mass_threshold = f64::from(threshold_millis) / 1000.0;
        request.policy.max_steps = max_steps;
        if delta {
            request = request.into_delta();
        }
        let tree = serde::Serialize::to_value(&request);

        let mut streamed_json = Vec::new();
        serde::Serialize::write_json(&request, &mut streamed_json);
        let mut tree_json = Vec::new();
        serde::json::write_value(&tree, &mut tree_json);
        prop_assert_eq!(&streamed_json, &tree_json);

        let mut streamed_frame = Vec::new();
        codec::frame_into(&request, &mut streamed_frame);
        let mut tree_frame = Vec::new();
        codec::write_frame(&tree, &mut tree_frame);
        prop_assert_eq!(streamed_frame, tree_frame);
    }

    /// The same byte-identity on real inference output: reports stream
    /// onto the wire exactly as the tree path encoded them, and the
    /// streaming decoder reads back what the tree decoder reads.
    #[test]
    fn streaming_reports_are_byte_identical_to_the_value_path(
        pin in 0usize..2,
        fail_out1 in proptest::bool::ANY,
    ) {
        let mut request = SessionRequest::new(Default::default());
        request.observation.set("pin", pin);
        if fail_out1 {
            request.observation.set("out1", 0);
            request.observation.mark_failing("out1");
        }
        let report = toy_compiled_model().serve(&request).unwrap();
        let tree = serde::Serialize::to_value(&report);

        let mut streamed_json = Vec::new();
        serde::Serialize::write_json(&report, &mut streamed_json);
        let mut tree_json = Vec::new();
        serde::json::write_value(&tree, &mut tree_json);
        prop_assert_eq!(String::from_utf8(streamed_json).unwrap(), String::from_utf8(tree_json).unwrap());

        let mut streamed_frame = Vec::new();
        codec::frame_into(&report, &mut streamed_frame);
        let mut tree_frame = Vec::new();
        codec::write_frame(&tree, &mut tree_frame);
        prop_assert_eq!(&streamed_frame, &tree_frame);

        // Decode equivalence: the streaming reader and the tree reader
        // agree on the same frame.
        let streamed: SessionReport = codec::from_frame(&streamed_frame).unwrap();
        let mut pos = 0;
        let tree_back = codec::read_frame(&streamed_frame, &mut pos).unwrap();
        let via_tree = <SessionReport as serde::Deserialize>::from_value(&tree_back).unwrap();
        prop_assert_eq!(json_of(&streamed), json_of(&via_tree));
    }

    /// Frame-level sanity under concatenation: N encoded requests stream
    /// back out of one buffer in order, exactly as the batch reply path
    /// relies on.
    #[test]
    fn frames_stream_in_order(steps in proptest::collection::vec(1usize..64, 1..8)) {
        let mut wire = Vec::new();
        for &max_steps in &steps {
            let mut request = SessionRequest::new(Default::default());
            request.policy.max_steps = max_steps;
            codec::write_frame(&serde::Serialize::to_value(&request), &mut wire);
        }
        let mut pos = 0;
        for &max_steps in &steps {
            let value = codec::read_frame(&wire, &mut pos).unwrap();
            let decoded = <SessionRequest as serde::Deserialize>::from_value(&value).unwrap();
            prop_assert_eq!(decoded.policy.max_steps, max_steps);
        }
        prop_assert_eq!(pos, wire.len());
    }
}
