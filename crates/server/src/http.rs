//! A small, strict HTTP/1.1 layer over byte buffers.
//!
//! The build environment is fully offline, so instead of tokio/hyper this
//! is an in-tree implementation in the spirit of the workspace's `shims/`:
//! exactly the surface the diagnosis service needs — request parsing with
//! hard limits, keep-alive, JSON and binary responses — and nothing else.
//! Parsing is **buffer-oriented** so the readiness-driven connection
//! layer ([`crate`]'s `net` module) can feed it partial reads:
//! [`parse_request`] either consumes one complete request off the front
//! of the buffer, reports `Ok(None)` ("need more bytes"), or fails with
//! a [`ParseError`]. Every parse failure is an *error value*, never a
//! panic: arbitrary byte junk on the socket must at worst cost the
//! client a `400` (the proptest in `tests/errors.rs` feeds the server
//! fuzz bytes to hold it to that).
//!
//! Limits (per request): request line ≤ [`MAX_LINE`] bytes, ≤
//! [`MAX_HEADERS`] header lines of ≤ [`MAX_LINE`] bytes each, body ≤
//! [`MAX_BODY`] bytes. Anything larger is answered with `400`/`413` and
//! the connection is closed.

use std::io::{self, Write};

/// Hard cap on one request or header line, bytes (excluding CRLF).
pub const MAX_LINE: usize = 8 * 1024;
/// Hard cap on the number of header lines per request.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on a request body, bytes.
pub const MAX_BODY: usize = 2 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request target path, query string stripped.
    pub path: String,
    /// Raw body bytes (`Content-Length` delimited; no chunked encoding).
    pub body: Vec<u8>,
    /// `true` when the client asked to keep the connection open
    /// (HTTP/1.1 default) rather than `Connection: close`.
    pub keep_alive: bool,
    /// The `content-type` header value (trimmed), when sent — selects
    /// the request-body codec (JSON unless it names the binary type).
    pub content_type: Option<String>,
    /// The `accept` header value (trimmed), when sent — selects the
    /// response-body codec (JSON unless it names the binary type).
    pub accept: Option<String>,
}

/// Why a request could not be parsed. (Bytes that merely *end* before
/// the request is complete are `Ok(None)` from [`parse_request`] — the
/// connection layer reads more and retries.)
#[derive(Debug)]
pub enum ParseError {
    /// The bytes were not a well-formed HTTP request; answered `400`.
    Malformed(&'static str),
    /// The declared body length exceeds [`MAX_BODY`]; answered `413`.
    BodyTooLarge,
}

/// Pulls the next CRLF- (or bare-LF-) terminated line out of `buf`
/// starting at `*pos`, capped at [`MAX_LINE`] bytes. `Ok(None)` means
/// the line is not complete yet.
fn next_line<'a>(buf: &'a [u8], pos: &mut usize) -> Result<Option<&'a str>, ParseError> {
    let rest = &buf[*pos..];
    match rest.iter().position(|&b| b == b'\n') {
        Some(newline) => {
            let mut line = &rest[..newline];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.len() > MAX_LINE {
                return Err(ParseError::Malformed("line too long"));
            }
            *pos += newline + 1;
            std::str::from_utf8(line)
                .map(Some)
                .map_err(|_| ParseError::Malformed("non-UTF-8 header bytes"))
        }
        None if rest.len() > MAX_LINE => Err(ParseError::Malformed("line too long")),
        None => Ok(None),
    }
}

/// Parses one complete request off the front of `buf`. Returns the
/// request plus the number of bytes it consumed, or `Ok(None)` when the
/// buffer does not yet hold a whole request (head still arriving, or
/// body shorter than its declared `content-length`).
///
/// # Errors
///
/// [`ParseError::Malformed`] for bytes that are not HTTP (answered
/// `400`), [`ParseError::BodyTooLarge`] for bodies declared over
/// [`MAX_BODY`] (answered `413`). Both are detected as early as the
/// offending bytes arrive — an oversized declaration is refused before
/// any of its body is read.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    let mut pos = 0usize;
    let Some(request_line) = next_line(buf, &mut pos)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed("bad request line"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("bad request target"));
    }

    let mut content_length: Option<usize> = None;
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_type: Option<String> = None;
    let mut accept: Option<String> = None;
    for i in 0.. {
        if i > MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers"));
        }
        let Some(line) = next_line(buf, &mut pos)? else {
            return Ok(None);
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("bad header line"));
        };
        // RFC 9112 §5.1: no whitespace is allowed between the field name
        // and the colon (nor inside the name) — "Content-Length : 5"
        // must be an error, not an unknown header, or the body framing
        // desynchronises behind any proxy that does parse it.
        if name.is_empty() || name.contains(|c: char| c.is_ascii_whitespace()) {
            return Err(ParseError::Malformed("whitespace in header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9110 §8.6: 1*DIGIT only. `usize::from_str` would also
            // take a leading `+`, which a stricter front proxy may frame
            // differently — refuse anything but plain digits.
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::Malformed("bad content-length"));
            }
            let length: usize = value
                .parse()
                .map_err(|_| ParseError::Malformed("bad content-length"))?;
            // Duplicate content-length headers are the classic request-
            // smuggling vector (two frame interpretations); refuse them.
            if content_length.is_some() {
                return Err(ParseError::Malformed("duplicate content-length"));
            }
            content_length = Some(length);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are out of scope for this service; refusing
            // them outright is safer than desynchronising on the framing.
            return Err(ParseError::Malformed("transfer-encoding unsupported"));
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("content-type") {
            content_type = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("accept") {
            accept = Some(value.to_string());
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::BodyTooLarge);
    }
    if buf.len() - pos < content_length {
        return Ok(None);
    }
    let body = buf[pos..pos + content_length].to_vec();
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Some((
        Request {
            method: method.to_string(),
            path,
            body,
            keep_alive,
            content_type,
            accept,
        },
        pos + content_length,
    )))
}

/// One response ready to write: status, body bytes, codec, connection
/// verdict and the optional backpressure hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes (JSON text or a binary frame).
    pub body: Vec<u8>,
    /// The `content-type` the body is encoded under.
    pub content_type: &'static str,
    /// Whether the connection stays open after this response.
    pub keep_alive: bool,
    /// When set, a `retry-after: N` header (seconds) rides along — the
    /// backpressure hint on `503`s from a full request queue.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into().into_bytes(),
            content_type: "application/json",
            keep_alive: true,
            retry_after: None,
        }
    }

    /// A binary-framed response with the given status (the codec's
    /// content type; see [`crate::codec`]).
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            body,
            content_type: crate::codec::CONTENT_TYPE,
            keep_alive: true,
            retry_after: None,
        }
    }

    /// The standard reason phrase for the status codes this service uses.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serialises the whole response (head and body) onto the end of
    /// `out` — the connection layer's zero-IO encode step, so one
    /// reusable per-connection buffer carries head plus body to the
    /// socket in a single write.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        // Writes into a Vec<u8> are infallible.
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
        );
        if let Some(seconds) = self.retry_after {
            let _ = write!(out, "retry-after: {seconds}\r\n");
        }
        let _ = write!(
            out,
            "connection: {}\r\n\r\n",
            if self.keep_alive {
                "keep-alive"
            } else {
                "close"
            },
        );
        out.extend_from_slice(&self.body);
    }

    /// Serialises the response onto a blocking stream ([`Response::write_into`]
    /// plus the IO).
    ///
    /// # Errors
    ///
    /// Propagates stream write errors (the connection is then dropped).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        self.write_into(&mut out);
        writer.write_all(&out)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        parse_request(bytes)
    }

    #[test]
    fn parses_a_post_with_body() {
        let (req, consumed) = parse(b"POST /v1/x HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/x");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert_eq!(
            consumed,
            b"POST /v1/x HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd".len()
        );
    }

    #[test]
    fn strips_query_and_honours_connection_close() {
        let (req, _) = parse(b"GET /healthz?probe=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive);
    }

    #[test]
    fn captures_codec_headers() {
        let (req, _) = parse(
            b"POST /v1/x HTTP/1.1\r\ncontent-type: application/x-abbd-binary\r\n\
              accept: application/x-abbd-binary\r\ncontent-length: 0\r\n\r\n",
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            req.content_type.as_deref(),
            Some("application/x-abbd-binary")
        );
        assert_eq!(req.accept.as_deref(), Some("application/x-abbd-binary"));
    }

    #[test]
    fn incomplete_requests_ask_for_more_bytes() {
        // An empty buffer, a partial head, a complete head with a short
        // body — all "need more", none an error.
        for partial in [
            &b""[..],
            b"POST /v1/x HT",
            b"POST /v1/x HTTP/1.1\r\ncontent-len",
            b"POST /v1/x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc",
        ] {
            assert!(matches!(parse(partial), Ok(None)), "{partial:?}");
        }
    }

    #[test]
    fn consumes_exactly_one_request_leaving_pipelined_bytes() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, consumed) = parse(two).unwrap().unwrap();
        assert_eq!(req.path, "/a");
        let (req2, consumed2) = parse(&two[consumed..]).unwrap().unwrap();
        assert_eq!(req2.path, "/b");
        assert_eq!(consumed + consumed2, two.len());
    }

    #[test]
    fn junk_is_malformed_not_a_panic() {
        for junk in [
            &b"\xff\xfe\xfd\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            // Request-smuggling shapes: duplicate content-length (two
            // framings) and whitespace before the colon (a proxy may
            // honour the header this parser would ignore).
            b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 0\r\n\r\nAAAAA",
            b"POST / HTTP/1.1\r\ncontent-length : 5\r\n\r\nAAAAA",
            b"GET / HTTP/1.1\r\n bad-fold: 1\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: +5\r\n\r\nAAAAA",
        ] {
            assert!(
                matches!(parse(junk), Err(ParseError::Malformed(_))),
                "{junk:?}"
            );
        }
    }

    #[test]
    fn oversized_declarations_are_refused() {
        // The oversized declaration is refused before any body arrives.
        let huge = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::BodyTooLarge)
        ));
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 8));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
        // A line that never terminates is refused as soon as it exceeds
        // the cap — a dribbling client cannot grow the buffer forever.
        let unterminated = vec![b'a'; MAX_LINE + 8];
        assert!(matches!(
            parse(&unterminated),
            Err(ParseError::Malformed(_))
        ));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "x-h: 1\r\n".repeat(MAX_HEADERS + 2)
        );
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn responses_render_with_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn retry_after_rides_on_backpressure_responses() {
        let mut response = Response::json(503, "{}");
        response.retry_after = Some(1);
        response.keep_alive = false;
        let mut out = Vec::new();
        response.write_into(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
