//! A small, strict HTTP/1.1 layer over [`std::io`] streams.
//!
//! The build environment is fully offline, so instead of tokio/hyper this
//! is an in-tree implementation in the spirit of the workspace's `shims/`:
//! exactly the surface the diagnosis service needs — request parsing with
//! hard limits, keep-alive, JSON responses — and nothing else. Every
//! parse failure is an *error value*, never a panic: arbitrary byte junk
//! on the socket must at worst cost the client a `400` (the proptest in
//! `tests/errors.rs` feeds the server fuzz bytes to hold it to that).
//!
//! Limits (per request): request line ≤ [`MAX_LINE`] bytes, ≤
//! [`MAX_HEADERS`] header lines of ≤ [`MAX_LINE`] bytes each, body ≤
//! [`MAX_BODY`] bytes. Anything larger is answered with `400`/`413` and
//! the connection is closed.

use std::io::{self, BufRead, Write};

/// Hard cap on one request or header line, bytes (excluding CRLF).
pub const MAX_LINE: usize = 8 * 1024;
/// Hard cap on the number of header lines per request.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on a request body, bytes.
pub const MAX_BODY: usize = 2 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// The request target path, query string stripped.
    pub path: String,
    /// Raw body bytes (`Content-Length` delimited; no chunked encoding).
    pub body: Vec<u8>,
    /// `true` when the client asked to keep the connection open
    /// (HTTP/1.1 default) rather than `Connection: close`.
    pub keep_alive: bool,
}

/// Why a request could not be parsed. (A peer closing cleanly between
/// requests is `Ok(None)` from [`read_request`], not an error.)
#[derive(Debug)]
pub enum ParseError {
    /// The stream failed mid-request (timeout, reset); the connection is
    /// unusable and is simply dropped.
    Io(io::Error),
    /// The bytes were not a well-formed HTTP request; answered `400`.
    Malformed(&'static str),
    /// The declared body length exceeds [`MAX_BODY`]; answered `413`.
    BodyTooLarge,
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, capped at [`MAX_LINE`]
/// bytes. Returns `Ok(None)` on immediate EOF.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, ParseError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ParseError::Malformed("truncated line"));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > MAX_LINE {
                    return Err(ParseError::Malformed("line too long"));
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map(Some)
                    .map_err(|_| ParseError::Malformed("non-UTF-8 header bytes"));
            }
            None => {
                let take = buf.len();
                if line.len() + take > MAX_LINE {
                    return Err(ParseError::Malformed("line too long"));
                }
                line.extend_from_slice(buf);
                reader.consume(take);
            }
        }
    }
}

/// Parses one request off the stream. `Ok(None)` means the peer closed
/// cleanly between requests (keep-alive end).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ParseError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Malformed("bad request line"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed("bad method token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed("bad request target"));
    }

    let mut content_length: Option<usize> = None;
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut keep_alive = version == "HTTP/1.1";
    for i in 0.. {
        if i > MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers"));
        }
        let line = read_line(reader)?.ok_or(ParseError::Malformed("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed("bad header line"));
        };
        // RFC 9112 §5.1: no whitespace is allowed between the field name
        // and the colon (nor inside the name) — "Content-Length : 5"
        // must be an error, not an unknown header, or the body framing
        // desynchronises behind any proxy that does parse it.
        if name.is_empty() || name.contains(|c: char| c.is_ascii_whitespace()) {
            return Err(ParseError::Malformed("whitespace in header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9110 §8.6: 1*DIGIT only. `usize::from_str` would also
            // take a leading `+`, which a stricter front proxy may frame
            // differently — refuse anything but plain digits.
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::Malformed("bad content-length"));
            }
            let length: usize = value
                .parse()
                .map_err(|_| ParseError::Malformed("bad content-length"))?;
            // Duplicate content-length headers are the classic request-
            // smuggling vector (two frame interpretations); refuse them.
            if content_length.is_some() {
                return Err(ParseError::Malformed("duplicate content-length"));
            }
            content_length = Some(length);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are out of scope for this service; refusing
            // them outright is safer than desynchronising on the framing.
            return Err(ParseError::Malformed("transfer-encoding unsupported"));
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::BodyTooLarge);
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Some(Request {
        method: method.to_string(),
        path,
        body,
        keep_alive,
    }))
}

/// One response ready to write: status, JSON body, connection verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this service).
    pub body: String,
    /// Whether the connection stays open after this response.
    pub keep_alive: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            keep_alive: true,
        }
    }

    /// The standard reason phrase for the status codes this service uses.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serialises the response onto the stream.
    ///
    /// # Errors
    ///
    /// Propagates stream write errors (the connection is then dropped).
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            self.status,
            self.reason(),
            self.body.len(),
            if self.keep_alive { "keep-alive" } else { "close" },
        )?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/x HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/x");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn strips_query_and_honours_connection_close() {
        let req = parse(b"GET /healthz?probe=1 HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(matches!(parse(b""), Ok(None)));
    }

    #[test]
    fn junk_is_malformed_not_a_panic() {
        for junk in [
            &b"\xff\xfe\xfd\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            // Request-smuggling shapes: duplicate content-length (two
            // framings) and whitespace before the colon (a proxy may
            // honour the header this parser would ignore).
            b"POST / HTTP/1.1\r\ncontent-length: 5\r\ncontent-length: 0\r\n\r\nAAAAA",
            b"POST / HTTP/1.1\r\ncontent-length : 5\r\n\r\nAAAAA",
            b"GET / HTTP/1.1\r\n bad-fold: 1\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: +5\r\n\r\nAAAAA",
        ] {
            assert!(
                matches!(parse(junk), Err(ParseError::Malformed(_))),
                "{junk:?}"
            );
        }
    }

    #[test]
    fn oversized_declarations_are_refused() {
        let huge = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::BodyTooLarge)
        ));
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 8));
        assert!(matches!(
            parse(long_line.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "x-h: 1\r\n".repeat(MAX_HEADERS + 2)
        );
        assert!(matches!(
            parse(many_headers.as_bytes()),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"),
            Err(ParseError::Io(_))
        ));
    }

    #[test]
    fn responses_render_with_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
