//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! just enough to drive the service from tests, benches and the
//! `abbd-loadgen` binary without external dependencies.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One keep-alive connection to the server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Reused encode buffer for [`Client::post_json`] /
    /// [`Client::post_frame`]: request bodies stream straight into it,
    /// so steady-state sends allocate nothing.
    encode_buf: Vec<u8>,
}

impl Client {
    /// Connects (TCP no-delay, 30 s read timeout).
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            encode_buf: Vec::new(),
        })
    }

    /// Sends one request and reads the reply, reusing the connection.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] for transport failures or replies this
    /// minimal parser cannot frame.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<(u16, String)> {
        let (status, bytes) = self.request_with(method, path, &[], body)?;
        String::from_utf8(bytes)
            .map(|text| (status, text))
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }

    /// Sends one request with extra headers and reads the reply as raw
    /// bytes — the general form behind [`Client::request`] and
    /// [`Client::post_binary`].
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<(u16, Vec<u8>)> {
        // One buffer, one write: head and body leave in a single syscall
        // (and, with TCP_NODELAY, usually a single segment).
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: abbd\r\n");
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        let mut frame = head.into_bytes();
        frame.extend_from_slice(body);
        self.writer.write_all(&frame)?;
        self.writer.flush()?;

        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, body))
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, b"")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn post(&mut self, path: &str, json: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, json.as_bytes())
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn delete(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("DELETE", path, b"")
    }

    /// `POST path` with a compact-binary body (see [`crate::codec`]),
    /// asking for a binary reply too. The reply bytes are binary frames
    /// on success and JSON on error — check the status before decoding.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn post_binary(&mut self, path: &str, frame: &[u8]) -> io::Result<(u16, Vec<u8>)> {
        self.request_with(
            "POST",
            path,
            &[
                ("content-type", crate::codec::CONTENT_TYPE),
                ("accept", crate::codec::CONTENT_TYPE),
            ],
            frame,
        )
    }

    /// `POST path` serialising `value` as JSON straight into the
    /// client's reused encode buffer (no intermediate `Value` tree or
    /// `String`).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn post_json<T: serde::Serialize>(
        &mut self,
        path: &str,
        value: &T,
    ) -> io::Result<(u16, String)> {
        let mut buf = std::mem::take(&mut self.encode_buf);
        buf.clear();
        value.write_json(&mut buf);
        let result = self.request("POST", path, &buf);
        self.encode_buf = buf;
        result
    }

    /// `POST path` serialising `value` as one compact-binary frame
    /// straight into the client's reused encode buffer, asking for a
    /// binary reply (same reply convention as [`Client::post_binary`]).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn post_frame<T: serde::Serialize>(
        &mut self,
        path: &str,
        value: &T,
    ) -> io::Result<(u16, Vec<u8>)> {
        let mut buf = std::mem::take(&mut self.encode_buf);
        buf.clear();
        crate::codec::frame_into(value, &mut buf);
        let result = self.request_with(
            "POST",
            path,
            &[
                ("content-type", crate::codec::CONTENT_TYPE),
                ("accept", crate::codec::CONTENT_TYPE),
            ],
            &buf,
        );
        self.encode_buf = buf;
        result
    }

    /// Writes raw bytes down the connection *without* HTTP framing — the
    /// fuzz harness uses this to feed the server junk — then tries to
    /// read whatever (possibly nothing) comes back.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (the server dropping junk
    /// connections mid-read is expected and *not* an error here: reads
    /// report whatever arrived before the close).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<Vec<u8>> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
        let mut reply = Vec::new();
        let _ = self.reader.read_to_end(&mut reply);
        Ok(reply)
    }
}
