//! The model registry: named [`CompiledModel`]s, compiled **once** at
//! startup and served as `Arc`s to every worker thread for the whole
//! process lifetime. Registration is the only moment a junction tree is
//! triangulated; after [`ModelRegistry::freeze`] the registry is
//! immutable and lock-free to read.
//!
//! Models come from two places:
//!
//! * in-process artifacts (the regulator fixture the launcher fits at
//!   startup, test fixtures) via [`ModelRegistry::insert`];
//! * [`ModelBundle`] JSON files passed on the `abbd-serve` CLI — a
//!   `dlog2bbn` [`ModelSpec`] (the paper's Table I/V variable sheet)
//!   plus the cause–effect edges and the product expert's CPT estimates,
//!   built with [`ModelBuilder::build_expert_only`] and compiled.

use crate::error::ApiError;
use abbd_core::fleet::{ModelLifecycle, RefitPolicy};
use abbd_core::{
    BlockSpec, CircuitModel, CompiledModel, DiagnosticModel, ExpertKnowledge, HierarchicalModel,
    ModelBuilder,
};
use abbd_dlog2bbn::ModelSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A self-contained, JSON-loadable model definition: everything needed
/// to compile a [`CompiledModel`] without code. The `spec` field is the
/// exact [`ModelSpec`] encoding `dlog2bbn` emits, so a spec file produced
/// by the case-generator tool drops in directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Model variables with functional types and voltage state bands.
    pub spec: ModelSpec,
    /// Cause–effect dependency edges, `(parent, child)`.
    pub edges: Vec<(String, String)>,
    /// The product expert's CPT estimates.
    pub expert: ExpertKnowledge,
    /// Per-variable fault-state overrides (defaults apply when absent).
    #[serde(default)]
    pub fault_states: Vec<(String, Vec<usize>)>,
    /// Optional hierarchy partition. When present, the bundle registers
    /// as a compiled abstraction tree instead of a flat model: the board
    /// answers under the registered name and every block under
    /// `{name}/{block}`, exactly like the in-process board fixture.
    #[serde(default)]
    pub partition: Option<BundlePartition>,
}

/// A bundle's block partition: the interface variables shared across
/// blocks, and the blocks themselves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundlePartition {
    /// Interface variables (shared rails): visible to every block, no
    /// block-internal ancestors.
    pub interface: Vec<String>,
    /// The blocks, in board order.
    pub blocks: Vec<BundleBlock>,
}

/// One block of a [`BundlePartition`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleBlock {
    /// Block name — the `{block}` segment of `{board}/{block}`.
    pub name: String,
    /// Member variables (every non-interface parent of a member must be
    /// a member too).
    pub members: Vec<String>,
    /// The members serving as board-level summary observables.
    pub summary: Vec<String>,
}

impl ModelBundle {
    /// Parses a bundle from JSON text, re-validating the spec (which
    /// also rebuilds its name index — the serde skip-field).
    ///
    /// # Errors
    ///
    /// Returns a `400`-shaped [`ApiError`] naming the parse or
    /// validation failure.
    pub fn from_json(text: &str) -> Result<Self, ApiError> {
        let mut bundle: ModelBundle = serde_json::from_str(text)
            .map_err(|e| ApiError::bad_request(format!("model bundle does not parse: {e}")))?;
        bundle.spec = ModelSpec::new(bundle.spec.variables().to_vec())
            .map_err(|e| ApiError::bad_request(format!("model bundle spec invalid: {e}")))?;
        Ok(bundle)
    }

    /// Builds the fitted (expert-only) flat model the bundle describes —
    /// the shared front half of both the flat and the partitioned
    /// compile paths.
    fn build(&self) -> Result<DiagnosticModel, ApiError> {
        let mut model = CircuitModel::new(self.spec.clone());
        for (parent, child) in &self.edges {
            model
                .depends(parent, child)
                .map_err(|e| ApiError::new(422, "invalid_request", e.to_string()))?;
        }
        for (variable, states) in &self.fault_states {
            model
                .set_fault_states(variable, states)
                .map_err(|e| ApiError::new(422, "invalid_request", e.to_string()))?;
        }
        ModelBuilder::new(model)
            .with_expert(self.expert.clone())
            .build_expert_only()
            .map_err(|e| ApiError::new(422, "invalid_request", e.to_string()))
    }

    /// Builds and compiles the bundle into the servable artifact (the
    /// expert-only CPT path — fine-tuning on case data happens offline,
    /// upstream of the server). Ignores any partition stanza; use
    /// [`ModelBundle::compile_hierarchy`] for the tree form.
    ///
    /// # Errors
    ///
    /// Returns a `422`-shaped [`ApiError`] for inconsistent bundles
    /// (unknown edge endpoints, CPT shape mismatches, cyclic structure).
    pub fn compile(&self) -> Result<Arc<CompiledModel>, ApiError> {
        let compiled = CompiledModel::compile(self.build()?)
            .map_err(|e| ApiError::new(422, "invalid_request", e.to_string()))?;
        Ok(compiled.shared())
    }

    /// Builds the bundle's partition stanza into a compiled abstraction
    /// tree. Returns `None` when the bundle has no partition.
    ///
    /// # Errors
    ///
    /// Returns a `422`-shaped [`ApiError`] for inconsistent bundles and
    /// for partitions violating the extraction contract (a member's
    /// parent outside block and interface, interface with block
    /// ancestors, unknown names).
    pub fn compile_hierarchy(&self) -> Result<Option<Arc<HierarchicalModel>>, ApiError> {
        let Some(partition) = &self.partition else {
            return Ok(None);
        };
        let blocks: Vec<BlockSpec> = partition
            .blocks
            .iter()
            .map(|b| BlockSpec::new(b.name.clone(), b.members.clone(), b.summary.clone()))
            .collect();
        let tree = HierarchicalModel::build(self.build()?, partition.interface.clone(), blocks)
            .map_err(|e| ApiError::new(422, "invalid_request", e.to_string()))?;
        Ok(Some(tree.shared()))
    }
}

/// One registry row as reported by `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registry name (the `{name}` path segment of the model endpoints).
    pub name: String,
    /// Total model variables.
    pub variables: usize,
    /// Latent blocks (probe targets).
    pub latents: usize,
    /// Observable variables (test targets).
    pub observables: usize,
    /// For a hierarchy child (`{board}/{block}`): the board it belongs
    /// to. `null` for flat models and hierarchy roots.
    #[serde(default)]
    pub parent: Option<String>,
    /// For a hierarchy root: its children's registry names, in block
    /// order. Empty for flat models and children.
    #[serde(default)]
    pub children: Vec<String>,
}

/// Named compiled models, immutable after [`ModelRegistry::freeze`].
///
/// Two kinds of entry coexist: lifecycle-managed flat models, and
/// compiled [`HierarchicalModel`] trees. A hierarchy contributes its
/// abstract root under the registered name plus one addressable child
/// per block under `{board}/{block}` — children are compiled lazily on
/// first use (the one deliberate exception to "serving never compiles",
/// counted by [`ModelRegistry::lazy_submodel_compiles`] and surfaced in
/// `/v1/stats`).
///
/// ## Model lifecycle
///
/// Every flat entry is a [`ModelLifecycle`] (see [`abbd_core::fleet`]):
/// the registry structure stays frozen after
/// [`ModelRegistry::freeze`] — no names appear or disappear — but each
/// lifecycle *internally* versions its compiled model. A bare name
/// resolves to the lifecycle's current default version (the atomic
/// hot-swap point); `name@vN` pins any retained version, so a client
/// can compare a refit against its predecessor or keep serving the old
/// parameters during a staged rollout.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<ModelLifecycle>>,
    hierarchies: BTreeMap<String, Arc<HierarchicalModel>>,
    /// Decision rounds served per hierarchy (root and children pooled
    /// under the board name); flat models count inside their lifecycle.
    hierarchy_rounds: BTreeMap<String, AtomicU64>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a compiled model under `name` (builder style; replaces
    /// any previous entry with that name). The model is wrapped in a
    /// [`ModelLifecycle`] with no reference corpus and the default
    /// [`RefitPolicy`]; use [`ModelRegistry::insert_lifecycle`] to
    /// control gating.
    pub fn insert(self, name: impl Into<String>, model: Arc<CompiledModel>) -> Self {
        let name = name.into();
        let lifecycle =
            ModelLifecycle::new(name.clone(), model, Vec::new(), RefitPolicy::default()).shared();
        self.insert_lifecycle(name, lifecycle)
    }

    /// Registers a fully configured model lifecycle (reference corpus,
    /// refit policy) under `name`.
    pub fn insert_lifecycle(
        mut self,
        name: impl Into<String>,
        lifecycle: Arc<ModelLifecycle>,
    ) -> Self {
        self.models.insert(name.into(), lifecycle);
        self
    }

    /// Registers a [`ModelBundle`], compiling it now. A bundle with a
    /// partition stanza registers as a hierarchy — the board under
    /// `name`, each block under `{name}/{block}` — a flat bundle as a
    /// lifecycle-managed flat model.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelBundle::compile`] /
    /// [`ModelBundle::compile_hierarchy`] errors.
    pub fn insert_bundle(
        self,
        name: impl Into<String>,
        bundle: &ModelBundle,
    ) -> Result<Self, ApiError> {
        if let Some(tree) = bundle.compile_hierarchy()? {
            return Ok(self.insert_hierarchy(name, tree));
        }
        let compiled = bundle.compile()?;
        Ok(self.insert(name, compiled))
    }

    /// Registers a compiled hierarchy under `name`: the abstract root
    /// answers for `name` itself, and every block becomes addressable as
    /// `{name}/{block}` (builder style; replaces any previous hierarchy
    /// with that name).
    pub fn insert_hierarchy(
        mut self,
        name: impl Into<String>,
        hierarchy: Arc<HierarchicalModel>,
    ) -> Self {
        let name = name.into();
        self.hierarchy_rounds
            .insert(name.clone(), AtomicU64::new(0));
        self.hierarchies.insert(name, hierarchy);
        self
    }

    /// Freezes the registry for serving.
    pub fn freeze(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Looks a *flat* model up by name, returning its current default
    /// version (hierarchies resolve through [`ModelRegistry::resolve`]).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::unknown_model`] when absent.
    pub fn get(&self, name: &str) -> Result<Arc<CompiledModel>, ApiError> {
        self.models
            .get(name)
            .map(|lc| lc.active())
            .ok_or_else(|| ApiError::unknown_model(name))
    }

    /// Looks a flat model's lifecycle up by name (accepting a `@vN` pin,
    /// which addresses the same lifecycle).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::unknown_model`] when absent.
    pub fn lifecycle(&self, name: &str) -> Result<&Arc<ModelLifecycle>, ApiError> {
        let base = name.split_once('@').map_or(name, |(base, _)| base);
        self.models
            .get(base)
            .ok_or_else(|| ApiError::unknown_model(name))
    }

    /// Looks a hierarchy up by its board name.
    pub fn hierarchy(&self, name: &str) -> Option<&Arc<HierarchicalModel>> {
        self.hierarchies.get(name)
    }

    /// Iterates the lifecycle-managed flat models in name order.
    pub fn lifecycles(&self) -> impl Iterator<Item = (&str, &Arc<ModelLifecycle>)> {
        self.models.iter().map(|(n, lc)| (n.as_str(), lc))
    }

    /// Iterates `(board, rounds served)` for the registered hierarchies.
    pub fn hierarchy_round_counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.hierarchy_rounds
            .iter()
            .map(|(n, c)| (n.as_str(), c.load(Ordering::Relaxed)))
    }

    /// Counts one served decision round against `name` (a flat model,
    /// possibly `@vN`-pinned, a hierarchy root, or a `{board}/{block}`
    /// child — children pool under their board).
    pub fn note_round(&self, name: &str) {
        let base = name.split_once('@').map_or(name, |(base, _)| base);
        if let Some(lifecycle) = self.models.get(base) {
            lifecycle.note_round();
            return;
        }
        let board = base.rsplit_once('/').map_or(base, |(board, _)| board);
        if let Some(counter) = self.hierarchy_rounds.get(board) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Resolves any registry name to a servable compiled model: a flat
    /// model's default version, a `name@vN` pinned version, a
    /// hierarchy's abstract root, or — for `{board}/{block}` — a block's
    /// sub-model, compiled lazily on first resolution.
    ///
    /// # Errors
    ///
    /// [`ApiError::unknown_model`] for names nothing answers to
    /// (including a pinned version that was never promoted); a
    /// `422`-shaped error if a lazy child compile fails.
    pub fn resolve(&self, name: &str) -> Result<Arc<CompiledModel>, ApiError> {
        if let Some(lifecycle) = self.models.get(name) {
            return Ok(lifecycle.active());
        }
        if let Some((base, pin)) = name.split_once('@') {
            if let Some(lifecycle) = self.models.get(base) {
                return pin
                    .strip_prefix('v')
                    .and_then(|v| v.parse::<u32>().ok())
                    .and_then(|v| lifecycle.version(v))
                    .ok_or_else(|| ApiError::unknown_model(name));
            }
        }
        if let Some(hierarchy) = self.hierarchies.get(name) {
            return Ok(Arc::clone(hierarchy.root()));
        }
        if let Some((board, block)) = name.rsplit_once('/') {
            if let Some(hierarchy) = self.hierarchies.get(board) {
                return hierarchy.child_by_name(block).map_err(|e| match e {
                    abbd_core::Error::Hierarchy(_) => ApiError::unknown_model(name),
                    other => ApiError::new(422, "invalid_request", other.to_string()),
                });
            }
        }
        Err(ApiError::unknown_model(name))
    }

    /// The registry rows, flat models in name order followed by each
    /// hierarchy's root and its children in block order.
    pub fn list(&self) -> Vec<ModelInfo> {
        let mut rows: Vec<ModelInfo> = self
            .models
            .iter()
            .map(|(name, lifecycle)| {
                let compiled = lifecycle.active();
                ModelInfo {
                    name: name.clone(),
                    variables: compiled.model().circuit_model().spec().len(),
                    latents: compiled.latent_names().count(),
                    observables: compiled.observable_names().count(),
                    parent: None,
                    children: Vec::new(),
                }
            })
            .collect();
        for (name, hierarchy) in &self.hierarchies {
            let root = hierarchy.root();
            rows.push(ModelInfo {
                name: name.clone(),
                variables: root.model().circuit_model().spec().len(),
                latents: root.latent_names().count(),
                observables: root.observable_names().count(),
                parent: None,
                children: hierarchy
                    .block_specs()
                    .map(|b| format!("{name}/{}", b.name))
                    .collect(),
            });
            // Child rows are derivable without forcing the lazy compile:
            // a child's variables are its block members plus the
            // interface.
            let cm = hierarchy.flat().circuit_model();
            let latents = cm.latents();
            let observables = cm.observables();
            for block in hierarchy.block_specs() {
                rows.push(ModelInfo {
                    name: format!("{name}/{}", block.name),
                    variables: hierarchy.interface().len() + block.members.len(),
                    latents: block
                        .members
                        .iter()
                        .filter(|m| latents.contains(&m.as_str()))
                        .count(),
                    observables: block
                        .members
                        .iter()
                        .filter(|m| observables.contains(&m.as_str()))
                        .count(),
                    parent: Some(name.clone()),
                    children: Vec::new(),
                });
            }
        }
        rows
    }

    /// Compiled models resident right now: flat models, hierarchy roots
    /// and every lazily compiled child (the `/v1/stats` gauge).
    pub fn compiled_models(&self) -> u64 {
        let children: usize = self
            .hierarchies
            .values()
            .map(|h| {
                (0..h.block_count())
                    .filter(|&k| h.child_compiled(k))
                    .count()
            })
            .sum();
        (self.models.len() + self.hierarchies.len() + children) as u64
    }

    /// Sub-models compiled lazily since startup, summed over every
    /// hierarchy (the `/v1/stats` gauge pinned to "at most once per
    /// block" by the integration suite).
    pub fn lazy_submodel_compiles(&self) -> u64 {
        self.hierarchies
            .values()
            .map(|h| h.submodel_compiles())
            .sum()
    }

    /// Number of registered models (each hierarchy counts once).
    pub fn len(&self) -> usize {
        self.models.len() + self.hierarchies.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty() && self.hierarchies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abbd_core::fixtures::toy_compiled_model;
    use abbd_dlog2bbn::{FunctionalType, StateBand, VariableSpec};

    /// A two-variable bundle: `src` (latent) drives `out` (observable).
    fn tiny_bundle() -> ModelBundle {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("src", FunctionalType::Latent),
            var("out", FunctionalType::Observe),
        ])
        .unwrap();
        let mut expert = ExpertKnowledge::new(10.0);
        expert.cpt("src", [[0.2, 0.8]]);
        expert.cpt("out", [[0.9, 0.1], [0.1, 0.9]]);
        ModelBundle {
            spec,
            edges: vec![("src".into(), "out".into())],
            expert,
            fault_states: Vec::new(),
            partition: None,
        }
    }

    /// A two-block board bundle: a `vin` rail feeding two latent/observable
    /// pairs, partitioned one block per pair.
    fn board_bundle() -> ModelBundle {
        let var = |name: &str, ftype| VariableSpec {
            name: name.into(),
            ftype,
            bands: vec![
                StateBand::new("0", 0.0, 1.0, "bad"),
                StateBand::new("1", 1.0, 2.0, "good"),
            ],
            ckt_ref: None,
        };
        let spec = ModelSpec::new([
            var("vin", FunctionalType::Control),
            var("lat_a", FunctionalType::Latent),
            var("obs_a", FunctionalType::Observe),
            var("lat_b", FunctionalType::Latent),
            var("obs_b", FunctionalType::Observe),
        ])
        .unwrap();
        let mut expert = ExpertKnowledge::new(10.0);
        for lat in ["lat_a", "lat_b"] {
            expert.cpt(lat, [[0.05, 0.95], [0.02, 0.98]]);
        }
        for obs in ["obs_a", "obs_b"] {
            expert.cpt(obs, [[0.95, 0.05], [0.1, 0.9]]);
        }
        ModelBundle {
            spec,
            edges: vec![
                ("vin".into(), "lat_a".into()),
                ("lat_a".into(), "obs_a".into()),
                ("vin".into(), "lat_b".into()),
                ("lat_b".into(), "obs_b".into()),
            ],
            expert,
            fault_states: Vec::new(),
            partition: Some(BundlePartition {
                interface: vec!["vin".into()],
                blocks: vec![
                    BundleBlock {
                        name: "blk_a".into(),
                        members: vec!["lat_a".into(), "obs_a".into()],
                        summary: vec!["obs_a".into()],
                    },
                    BundleBlock {
                        name: "blk_b".into(),
                        members: vec!["lat_b".into(), "obs_b".into()],
                        summary: vec!["obs_b".into()],
                    },
                ],
            }),
        }
    }

    #[test]
    fn bundles_round_trip_and_compile() {
        let bundle = tiny_bundle();
        let json = serde_json::to_string(&bundle).unwrap();
        let back = ModelBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        let compiled = back.compile().unwrap();
        assert_eq!(compiled.latent_names().collect::<Vec<_>>(), ["src"]);
        assert!(ModelBundle::from_json("{ not json").is_err());
    }

    #[test]
    fn bad_bundles_are_422_not_panics() {
        let mut bundle = tiny_bundle();
        bundle.edges.push(("ghost".into(), "out".into()));
        let err = bundle.compile().unwrap_err();
        assert_eq!(err.status, 422);
    }

    #[test]
    fn registry_lists_and_looks_up() {
        let registry = ModelRegistry::new()
            .insert("toy", toy_compiled_model())
            .insert_bundle("tiny", &tiny_bundle())
            .unwrap()
            .freeze();
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
        let rows = registry.list();
        assert_eq!(rows[0].name, "tiny");
        assert_eq!(rows[1].name, "toy");
        assert_eq!(rows[1].variables, 7);
        assert_eq!(rows[1].latents, 3);
        assert!(registry.get("toy").is_ok());
        assert_eq!(registry.get("ghost").unwrap_err().status, 404);
    }

    #[test]
    fn partitioned_bundles_register_as_hierarchies() {
        let bundle = board_bundle();
        let json = serde_json::to_string(&bundle).unwrap();
        let back = ModelBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
        let registry = ModelRegistry::new()
            .insert_bundle("board", &back)
            .unwrap()
            .freeze();
        assert_eq!(registry.len(), 1);
        assert!(registry.hierarchy("board").is_some());
        let rows = registry.list();
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["board", "board/blk_a", "board/blk_b"]);
        assert_eq!(rows[0].children, ["board/blk_a", "board/blk_b"]);
        assert_eq!(rows[1].parent.as_deref(), Some("board"));
        // A flat bundle (no stanza) still lands in the lifecycle path.
        assert!(board_bundle().compile().is_ok());
    }

    #[test]
    fn bad_partitions_are_422_not_panics() {
        let mut bundle = board_bundle();
        // Violates the extraction contract: lat_b's parent vin stays
        // interface, but obs_b's parent lat_b moves out of the block.
        bundle.partition.as_mut().unwrap().blocks[1]
            .members
            .retain(|m| m != "lat_b");
        let err = ModelRegistry::new()
            .insert_bundle("board", &bundle)
            .unwrap_err();
        assert_eq!(err.status, 422);
    }
}
