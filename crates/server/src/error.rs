//! The structured error surface: every failure a client can cause maps
//! to a stable machine-readable JSON body and an HTTP status code —
//! malformed bytes, unknown names, invalid evidence — instead of a
//! panicking worker or a bare status line.

use crate::http::Response;
use serde::{Deserialize, Serialize};

/// One service error as it crosses the wire (inside an
/// [`ErrorBody`] envelope).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiError {
    /// HTTP status code the error was answered with.
    pub status: u16,
    /// Stable machine-readable code (`bad_request`, `unknown_model`,
    /// `unknown_session`, `session_busy`, `invalid_request`,
    /// `inconsistent_delta`, `impossible_evidence`, `store_full`,
    /// `internal`).
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The top-level JSON envelope every error response carries:
/// `{"error": {"status": ..., "code": ..., "message": ...}}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// The error itself.
    pub error: ApiError,
}

impl ApiError {
    /// An error with the given status, code and message.
    pub fn new(status: u16, code: &str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// `400 bad_request`: the request frame or JSON body did not parse.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad_request", message)
    }

    /// `404 unknown_model`: no registry entry under that name.
    pub fn unknown_model(name: &str) -> Self {
        Self::new(404, "unknown_model", format!("no model named `{name}`"))
    }

    /// `404 unknown_session`: no live session under that id (never
    /// opened, closed, expired or evicted).
    pub fn unknown_session(id: &str) -> Self {
        Self::new(
            404,
            "unknown_session",
            format!("no live session `{id}` (expired, evicted or never opened)"),
        )
    }

    /// `409 session_busy`: another request is mid-round on this session.
    pub fn session_busy(id: &str) -> Self {
        Self::new(
            409,
            "session_busy",
            format!("session `{id}` is serving another round; retry"),
        )
    }

    /// `404 not_found`: no route matches the path.
    pub fn not_found(path: &str) -> Self {
        Self::new(404, "not_found", format!("no route for `{path}`"))
    }

    /// `405 method_not_allowed`.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        Self::new(
            405,
            "method_not_allowed",
            format!("`{method}` not allowed on `{path}`"),
        )
    }

    /// `503 store_full`: every session slot is live and busy.
    pub fn store_full() -> Self {
        Self::new(
            503,
            "store_full",
            "session store at capacity with every slot busy; retry or close sessions",
        )
    }

    /// Maps a diagnosis-layer error onto the wire: client-caused
    /// validation failures become `422`, impossible evidence and
    /// inconsistent delta rounds are called out with their own codes
    /// (the observation contradicts the model or the session's stored
    /// history — resend better data, the server is fine), anything else
    /// is a `500`.
    pub fn from_core(e: &abbd_core::Error) -> Self {
        use abbd_core::Error as E;
        match e {
            E::InvalidObservation { .. }
            | E::InvalidAction { .. }
            | E::InvalidPolicy(_)
            | E::InvalidStoppingPolicy(_)
            | E::InvalidCostModel(_)
            | E::InvalidStrategy(_) => Self::new(422, "invalid_request", e.to_string()),
            E::InconsistentDelta { .. } => Self::new(422, "inconsistent_delta", e.to_string()),
            E::Bbn(abbd_bbn::Error::ImpossibleEvidence) => {
                Self::new(422, "impossible_evidence", e.to_string())
            }
            _ => Self::new(500, "internal", e.to_string()),
        }
    }

    /// Renders the error as its HTTP response.
    pub fn into_response(self) -> Response {
        let status = self.status;
        let body = serde_json::to_string(&ErrorBody { error: self })
            .unwrap_or_else(|_| "{\"error\":{\"status\":500,\"code\":\"internal\",\"message\":\"error rendering failed\"}}".to_string());
        Response::json(status, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_errors_map_to_client_statuses() {
        let invalid = abbd_core::Error::InvalidObservation {
            variable: "x".into(),
            reason: "nope".into(),
        };
        let mapped = ApiError::from_core(&invalid);
        assert_eq!(mapped.status, 422);
        assert_eq!(mapped.code, "invalid_request");

        let unknown = abbd_core::Error::UnknownVariable("x".into());
        assert_eq!(ApiError::from_core(&unknown).status, 500);
    }

    #[test]
    fn error_bodies_round_trip_and_render() {
        let body = ErrorBody {
            error: ApiError::unknown_model("ghost"),
        };
        let json = serde_json::to_string(&body).unwrap();
        let back: ErrorBody = serde_json::from_str(&json).unwrap();
        assert_eq!(back, body);
        let response = body.error.into_response();
        assert_eq!(response.status, 404);
        let rendered = String::from_utf8(response.body.clone()).unwrap();
        assert!(rendered.contains("unknown_model"));
    }
}
